//! Deterministic case generation and the panic-reporting runner.

use crate::strategy::Strategy;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Test-runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// SplitMix64: tiny, fast, and good enough for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, 1]`.
    pub fn unit_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` against `config.cases` generated values, reporting the
/// inputs of the first failing case. Deterministic per `name` unless the
/// `PROPTEST_CASES` env var overrides the case count.
pub fn run<S, F>(config: &Config, name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value),
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let mut rng = TestRng::new(fnv1a(name));
    for case in 0..cases {
        let value = strategy.new_value(&mut rng);
        let described = format!("{value:?}");
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(value))) {
            eprintln!("proptest: {name} failed at case {case}/{cases} with input: {described}");
            resume_unwind(payload);
        }
    }
}
