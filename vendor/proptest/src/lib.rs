//! Minimal offline subset of the `proptest` API (see README.md).
//!
//! Only what the Anda workspace test suites use is implemented: the
//! `proptest!` macro, `any::<T>()` for primitives, range and tuple
//! strategies, `prop_map`, `prop::collection::vec`, and the
//! `prop_assert*`/`prop_assume!` macros. No shrinking.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_prop(x in 0u32..100, v in any::<u16>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &($($strat,)+),
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current test case when the precondition does not hold.
///
/// The skipped case counts as passed (the real crate tracks rejection
/// rates; this stub does not).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}
