//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// Mirror of the real crate's `prelude::prop` module tree
/// (`prop::collection::vec` et al.).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
