//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of generated values for property tests.
///
/// Unlike the real crate there is no value tree or shrinking: a strategy
/// simply draws a fresh value from the RNG.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Rejects generated values for which `f` returns false.
    ///
    /// Gives up (panics) if 1000 consecutive draws are rejected, which in
    /// practice means the filter predicate is too strict.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $draw:ident),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy! {
    u8 => d, u16 => d, u32 => d, u64 => d, usize => d,
    i8 => d, i16 => d, i32 => d, i64 => d, isize => d,
}

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                self.start() + (self.end() - self.start()) * rng.unit_inclusive() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
