//! `any::<T>()` for the primitive types the workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (uniform over the bit patterns for
/// integers; see the per-type impls).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
