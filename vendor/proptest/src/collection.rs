//! `prop::collection::vec` and the size-range conversions it accepts.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + (rng.next_u64() as usize % span);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
