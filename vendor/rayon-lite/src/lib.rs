//! Minimal scoped thread pool for the Anda workspace (see README.md).
//!
//! The build environment has no registry access, so instead of `rayon`
//! this vendored crate provides the small subset the GeMM hot paths need:
//!
//! - [`ThreadPool::new`] / [`global`] — a fixed-size pool of persistent
//!   worker threads; the global pool is sized by the `ANDA_THREADS`
//!   environment variable (default: available parallelism).
//! - [`ThreadPool::scope`] + [`Scope::spawn`] — structured fork/join over
//!   borrowed data, in the style of `rayon::scope`.
//! - [`ThreadPool::par_chunks_mut`] — the one parallel iterator shape the
//!   kernels use: disjoint contiguous chunks of a mutable slice (output
//!   row ranges), each handed to a closure with its chunk index. Chunks
//!   are *claimed* from a shared atomic cursor rather than pre-assigned,
//!   so uneven per-chunk work (mixed prefill-chunk/decode jobs, pages
//!   with different fill) self-balances across the pool — the minimal
//!   work-stealing shape, without deques.
//!
//! Design notes:
//!
//! - A pool of `n` threads runs `n - 1` workers; the thread calling
//!   [`ThreadPool::scope`] participates by draining the job queue while it
//!   waits, so all `n` threads compute and nested scopes cannot deadlock.
//! - A 1-thread pool spawns no workers and runs every job inline at
//!   [`Scope::spawn`], making `ANDA_THREADS=1` exactly the serial code
//!   path.
//! - Panics inside spawned jobs are caught, the scope still waits for all
//!   siblings (so borrowed data stays alive), and the first payload is
//!   re-thrown from [`ThreadPool::scope`] on the calling thread.
//!
//! Determinism contract: the pool only ever hands a closure a chunk the
//! caller carved out; it never splits, reorders, or merges floating-point
//! work itself. Kernels built on [`ThreadPool::par_chunks_mut`] are
//! bit-identical at every thread count as long as each chunk's computation
//! is independent of the sharding — which the Anda GeMM kernels guarantee
//! by keeping one accumulator per output element, walked over `k` in a
//! fixed order.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared worker state: the job queue plus its wakeup signal.
struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a job is pushed or shutdown begins.
    available: Condvar,
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl Shared {
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().jobs.pop_front()
    }

    fn push(&self, job: Job) {
        self.queue.lock().unwrap().jobs.push_back(job);
        self.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        job();
    }
}

/// A fixed-size pool of persistent worker threads with scoped fork/join.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool that computes with `threads` threads (minimum 1).
    ///
    /// `threads - 1` workers are spawned; the caller of [`Self::scope`]
    /// is the remaining computing thread. `new(1)` spawns nothing and
    /// runs every job inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-lite-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            threads,
            workers,
        }
    }

    /// The number of computing threads (workers + the scoping caller).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which jobs borrowing the environment
    /// can be spawned, and returns only after every spawned job finished.
    ///
    /// The calling thread executes queued jobs while it waits. If a
    /// spawned job panicked, the first payload is re-thrown here after all
    /// siblings completed; if `f` itself panics, the scope still drains
    /// before unwinding.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'_, 'scope>) -> R) -> R {
        let scope = Scope {
            pool: self,
            latch: Arc::new(Latch::default()),
            marker: std::marker::PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.latch.wait_helping(&self.shared);
        if let Some(payload) = scope.latch.take_panic() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Splits `data` into contiguous chunks of `chunk_len` elements and
    /// runs `f(chunk_index, chunk)` on the pool, returning when all chunks
    /// are done. Chunk `i` covers `data[i * chunk_len ..]`; the final
    /// chunk may be shorter.
    ///
    /// Chunks are not pre-assigned to threads: at most
    /// `min(threads, n_chunks)` claim loops are spawned, each repeatedly
    /// taking the next unclaimed chunk index from a shared atomic cursor.
    /// A thread stuck on a heavy chunk therefore claims fewer chunks while
    /// its peers drain the rest — uneven per-chunk work self-balances, and
    /// the pool queue holds `O(threads)` jobs instead of `O(n_chunks)`.
    /// Chunk boundaries (and thus every floating-point result) are
    /// identical to the pre-split form: claiming only changes *which
    /// thread* runs a chunk, never what the chunk computes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0` while `data` is non-empty, or if `f`
    /// panics for any chunk (first payload propagated).
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        assert!(chunk_len > 0, "par_chunks_mut chunk_len must be > 0");
        let n_chunks = data.len().div_ceil(chunk_len);
        let claimers = self.threads.min(n_chunks);
        if claimers <= 1 {
            for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(idx, chunk);
            }
            return;
        }
        let len = data.len();
        let base = SendPtr(data.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        self.scope(|s| {
            for _ in 0..claimers {
                let (f, base, cursor) = (&f, &base, &cursor);
                s.spawn(move || loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_chunks {
                        break;
                    }
                    let start = idx * chunk_len;
                    let end = (start + chunk_len).min(len);
                    // SAFETY: `fetch_add` hands out each chunk index at
                    // most once, indices map to disjoint in-bounds ranges
                    // of `data`, and the scope joins every claim loop
                    // before `data`'s borrow ends — so each element is
                    // aliased by exactly one live `&mut` slice.
                    let chunk =
                        unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
                    f(idx, chunk);
                });
            }
        });
    }
}

/// A raw base pointer that claim loops may share across threads.
///
/// Soundness comes from the claiming protocol in
/// [`ThreadPool::par_chunks_mut`] (disjoint ranges, scope-bounded
/// lifetime), not from this wrapper — it only asserts the `Send`/`Sync`
/// bounds the protocol justifies.
struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Tracks outstanding jobs of one scope and the first panic among them.
#[derive(Default)]
struct Latch {
    state: Mutex<LatchState>,
    /// Signalled when the last outstanding job completes.
    done: Condvar,
}

#[derive(Default)]
struct LatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn add(&self) {
        self.state.lock().unwrap().pending += 1;
    }

    fn complete(&self, payload: Option<Box<dyn Any + Send>>) {
        let mut state = self.state.lock().unwrap();
        state.pending -= 1;
        if state.panic.is_none() {
            state.panic = payload;
        }
        if state.pending == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until `pending == 0`, executing queued jobs (of any scope)
    /// while there are some. When the queue is empty and jobs are still
    /// pending, they are in flight on other threads and we sleep on
    /// `done`. Jobs of this scope can no longer be pushed (spawning ended
    /// before the wait), so draining the queue before sleeping cannot miss
    /// one.
    fn wait_helping(&self, shared: &Shared) {
        loop {
            while let Some(job) = shared.try_pop() {
                job();
            }
            let state = self.state.lock().unwrap();
            if state.pending == 0 {
                return;
            }
            drop(self.done.wait(state).unwrap());
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().unwrap().panic.take()
    }
}

/// A fork/join scope created by [`ThreadPool::scope`].
///
/// The `'scope` lifetime is invariant (as in `std::thread::scope`), which
/// is what makes lending borrowed data to [`Scope::spawn`] sound: no job
/// can outlive the `scope` call that waits for it.
pub struct Scope<'pool, 'scope> {
    pool: &'pool ThreadPool,
    latch: Arc<Latch>,
    marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` on the pool (or runs it inline on a 1-thread pool).
    /// The job may borrow anything that outlives the enclosing `scope`
    /// call; panics are caught and re-thrown from [`ThreadPool::scope`].
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add();
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            latch.complete(result.err());
        });
        // SAFETY: the job is erased to 'static so it can sit in the shared
        // queue, but `ThreadPool::scope` does not return (or unwind) until
        // the latch counts this job complete, so every borrow with
        // lifetime 'scope in `f` outlives the job's execution. The
        // invariant 'scope marker prevents the scope (and thus spawn) from
        // being smuggled somewhere longer-lived.
        let job: Job = unsafe { std::mem::transmute(job) };
        if self.pool.threads == 1 {
            job();
        } else {
            self.pool.shared.push(job);
        }
    }
}

/// The number of threads the global pool uses: `ANDA_THREADS` when set to
/// a positive integer, otherwise the machine's available parallelism.
/// An unparsable or zero `ANDA_THREADS` falls back to the default too —
/// a typo must not silently serialize the whole process.
pub fn default_threads() -> usize {
    let fallback = || std::thread::available_parallelism().map_or(1, usize::from);
    match std::env::var("ANDA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => fallback(),
        },
        Err(_) => fallback(),
    }
}

/// The process-wide pool the kernels use, created on first use with
/// [`default_threads`] threads. `ANDA_THREADS` is read once; set it before
/// the first parallel kernel runs.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_reports_thread_count() {
        for n in [1, 2, 7] {
            assert_eq!(ThreadPool::new(n).threads(), n);
        }
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn scope_runs_all_jobs_and_returns_value() {
        for n in [1, 2, 3, 7] {
            let pool = ThreadPool::new(n);
            let counter = AtomicUsize::new(0);
            let out = pool.scope(|s| {
                for _ in 0..100 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
                41 + 1
            });
            assert_eq!(out, 42);
            assert_eq!(counter.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn jobs_borrow_the_environment_mutably_and_disjointly() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        let (left, right) = data.split_at_mut(32);
        pool.scope(|s| {
            s.spawn(|| left.iter_mut().for_each(|x| *x = 1));
            s.spawn(|| right.iter_mut().for_each(|x| *x = 2));
        });
        assert!(data[..32].iter().all(|&x| x == 1));
        assert!(data[32..].iter().all(|&x| x == 2));
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        for threads in [1, 2, 3, 7] {
            let pool = ThreadPool::new(threads);
            for (len, chunk) in [(100, 7), (12, 12), (13, 25), (96, 1)] {
                let mut data = vec![0usize; len];
                pool.par_chunks_mut(&mut data, chunk, |idx, part| {
                    for (off, x) in part.iter_mut().enumerate() {
                        *x = idx * chunk + off + 1;
                    }
                });
                let expect: Vec<usize> = (1..=len).collect();
                assert_eq!(data, expect, "threads {threads} len {len} chunk {chunk}");
            }
        }
    }

    #[test]
    fn par_chunks_mut_claims_each_chunk_exactly_once_under_uneven_work() {
        // Chunk 0 is made pathologically heavy; with pre-split
        // assignment half the chunks would wait behind it on one
        // thread, and a claiming bug (double-claim / skip) would show
        // up in the per-chunk execution counts.
        for threads in [2, 3, 7] {
            let pool = ThreadPool::new(threads);
            let n = 64;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let mut data = vec![0u64; n];
            pool.par_chunks_mut(&mut data, 1, |idx, part| {
                counts[idx].fetch_add(1, Ordering::Relaxed);
                let spins = if idx == 0 { 200_000 } else { 10 };
                let mut acc = 1u64;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                part[0] = acc | 1;
            });
            for (idx, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::Relaxed),
                    1,
                    "threads {threads} chunk {idx}"
                );
            }
            assert!(data.iter().all(|&x| x != 0));
        }
    }

    #[test]
    fn par_chunks_mut_on_empty_slice_is_a_no_op() {
        let pool = ThreadPool::new(3);
        let mut data: Vec<u8> = Vec::new();
        // chunk_len 0 is tolerated only because there is nothing to chunk.
        pool.par_chunks_mut(&mut data, 0, |_, _| unreachable!());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn job_panic_propagates_after_siblings_finish() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let finished = Arc::new(AtomicUsize::new(0));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for i in 0..8 {
                        let finished = Arc::clone(&finished);
                        s.spawn(move || {
                            if i == 3 {
                                panic!("boom");
                            }
                            finished.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }));
            assert!(result.is_err(), "threads {threads}");
            assert_eq!(finished.load(Ordering::Relaxed), 7, "threads {threads}");
            // The pool stays usable after a panicked scope.
            let ok = pool.scope(|s| {
                s.spawn(|| ());
                true
            });
            assert!(ok);
        }
    }

    #[test]
    fn global_pool_is_reused() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
