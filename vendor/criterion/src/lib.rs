//! Minimal offline subset of the `criterion` benchmarking API (see
//! README.md). Times each benchmark with a fixed warm-up plus adaptive
//! batching and prints the median ns/iter; no statistical engine, no
//! HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch-size hint for `iter_batched`; the stub treats all variants alike.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; recorded and echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures under measurement.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    measured_ns: f64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until ~10ms of work or 5 iterations, whichever is later.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_iters < 5 || warmup_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        // Size batches to ~5ms, take the median of several batches.
        let batch = ((5_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = (0..7)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.measured_ns = samples[samples.len() / 2];
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Setup cost is excluded per batch element by timing only the routine.
        let mut samples: Vec<f64> = (0..15)
            .map(|_| {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                t.elapsed().as_nanos() as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.measured_ns = samples[samples.len() / 2];
    }
}

fn report(group: Option<&str>, id: &str, throughput: Option<Throughput>, ns: f64) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("  ({:.1} MB/s)", n as f64 / ns * 1e3)
        }
        None => String::new(),
    };
    println!("{full:<56} {ns:>14.1} ns/iter{rate}");
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark-name filter from argv; other flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        if self.matches(&id.id) {
            let mut f = f;
            let mut b = Bencher { measured_ns: 0.0 };
            f(&mut b);
            report(None, &id.id, None, b.measured_ns);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        if self.criterion.matches(&format!("{}/{}", self.name, id.id)) {
            let mut f = f;
            let mut b = Bencher { measured_ns: 0.0 };
            f(&mut b);
            report(Some(&self.name), &id.id, self.throughput, b.measured_ns);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        if self.criterion.matches(&format!("{}/{}", self.name, id.id)) {
            let mut f = f;
            let mut b = Bencher { measured_ns: 0.0 };
            f(&mut b, input);
            report(Some(&self.name), &id.id, self.throughput, b.measured_ns);
        }
        self
    }

    pub fn finish(self) {}
}

/// Declares a group function that runs each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
