//! Cross-crate integration: the functional Fig.-13 datapath executor agrees
//! with the software GeMM operators across shapes and mantissa lengths, and
//! its cycle accounting is consistent with the analytical simulator.

use anda::quant::gemm::gemm_anda;
use anda::quant::{IntWeightMatrix, WeightQuantConfig};
use anda::sim::arch::Accelerator;
use anda::sim::functional::MxuExecutor;
use anda::sim::pe::PeKind;
use anda::tensor::{Matrix, Rng};

fn case(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, IntWeightMatrix) {
    let mut rng = Rng::new(seed);
    let mut x = Matrix::zeros(m, k);
    rng.fill_normal(x.as_mut_slice(), 2.0);
    // Outliers in some rows to stress exponent handling.
    if m > 1 {
        x[(1, 0)] = 120.0;
    }
    let mut w = Matrix::zeros(k, n);
    rng.fill_normal(w.as_mut_slice(), 0.04);
    (
        x,
        IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 64)),
    )
}

#[test]
fn functional_matches_software_across_shapes() {
    for (shape, seed) in [((1, 64, 1), 1u64), ((7, 128, 19), 2), ((33, 320, 17), 3)] {
        let (m, k, n) = shape;
        let (x, w) = case(m, k, n, seed);
        for mbits in [5u32, 9] {
            let (out, _, _) = MxuExecutor::paper(mbits).execute(&x, &w);
            let reference = gemm_anda(&x, &w, mbits);
            for i in 0..m {
                for j in 0..n {
                    let (a, b) = (out[(i, j)], reference[(i, j)]);
                    assert!(
                        (a - b).abs() <= a.abs().max(1.0) * 1e-5,
                        "shape {shape:?} m={mbits} ({i},{j}): {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn functional_cycles_consistent_with_analytical_model() {
    // Full tiles: functional word feeds = analytical array group-dot cycles.
    let (x, w) = case(32, 256, 32, 4);
    let arch = Accelerator::paper(PeKind::Anda);
    for mbits in [4u32, 8, 13] {
        let (_, _, stats) = MxuExecutor::paper(mbits).execute(&x, &w);
        // rows × k-groups × (M+1) words, reused across the 2 column tiles
        // of each row tile — the functional model feeds per (tile, row).
        let row_tiles = 2.0;
        let col_tiles = 2.0;
        let expect = 16.0 * row_tiles * col_tiles * (256.0 / 64.0) * f64::from(mbits + 1);
        assert_eq!(stats.mxu_cycles as f64, expect, "m={mbits}");
        // Analytical: group_dots × (M+1)/16 / 256 units equals the same
        // total divided by the array width.
        let group_dots = 32.0 * 32.0 * 4.0;
        let analytical = group_dots * arch.cycles_per_group(mbits) / 256.0;
        let functional_array_cycles =
            stats.mxu_cycles as f64 / 16.0 / row_tiles / col_tiles * (row_tiles * col_tiles);
        assert!(
            (functional_array_cycles / 16.0 - analytical).abs() / analytical < 0.01,
            "m={mbits}: functional {functional_array_cycles} vs analytical {analytical}"
        );
    }
}

#[test]
fn bpc_output_round_trips_through_next_layer() {
    // The compressed output of one GeMM is a valid input for the next: feed
    // the dequantized output back through another weight matrix.
    let (x, w1) = case(8, 128, 64, 5);
    let exec = MxuExecutor::paper(8);
    let (_, compressed, _) = exec.execute(&x, &w1);
    let next_input_flat = compressed.to_f32();
    let next_input = Matrix::from_vec(8, 64, next_input_flat);
    let (_, w2) = case(8, 64, 16, 6);
    let (out2, _, _) = exec.execute(&next_input, &w2);
    let reference = gemm_anda(&next_input, &w2, 8);
    for i in 0..8 {
        for j in 0..16 {
            assert!((out2[(i, j)] - reference[(i, j)]).abs() < 1e-3);
        }
    }
}
