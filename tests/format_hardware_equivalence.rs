//! Cross-crate integration: the numerical contract between the software
//! format path (quantize→dequantize→f32 GeMM) and the hardware path
//! (bit-plane storage → bit-serial integer dots → rescale → FP32
//! accumulation) must hold end to end.

use anda::format::compressor::BitPlaneCompressor;
use anda::format::{AndaConfig, AndaTensor};
use anda::quant::gemm::{gemm_anda, gemm_fake_quant, gemm_reference};
use anda::quant::{ActivationCodec, IntWeightMatrix, WeightQuantConfig};
use anda::tensor::{Matrix, Rng};

fn random_case(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, IntWeightMatrix) {
    let mut rng = Rng::new(seed);
    let mut x = Matrix::zeros(m, k);
    rng.fill_normal(x.as_mut_slice(), 1.0);
    // Outlier to exercise wide group exponents.
    x[(0, 3)] = 40.0;
    let mut w = Matrix::zeros(k, n);
    rng.fill_normal(w.as_mut_slice(), 0.05);
    (
        x,
        IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 128)),
    )
}

#[test]
fn integer_gemm_equals_fake_quant_gemm_across_mantissas() {
    let (x, w) = random_case(4, 256, 6, 42);
    for m in [2u32, 5, 8, 11, 14, 16] {
        let int_path = gemm_anda(&x, &w, m);
        let sw_path = gemm_fake_quant(&x, &w, &ActivationCodec::anda(m));
        for i in 0..x.rows() {
            for j in 0..w.n() {
                let (a, b) = (int_path[(i, j)], sw_path[(i, j)]);
                assert!(
                    (a - b).abs() <= a.abs().max(1.0) * 3e-5,
                    "m={m} ({i},{j}): hardware {a} vs software {b}"
                );
            }
        }
    }
}

#[test]
fn compressor_tensor_dequantizes_identically_to_direct_tensor() {
    let mut rng = Rng::new(9);
    let vals: Vec<f32> = (0..1000).map(|_| rng.normal_with(0.0, 3.0)).collect();
    for m in [1u32, 6, 12, 16] {
        let cfg = AndaConfig::hardware(m).unwrap();
        let direct = AndaTensor::from_f32(&vals, cfg);
        let (compressed, report) = BitPlaneCompressor::new(cfg).compress_f32(&vals);
        assert_eq!(direct, compressed, "m={m}");
        assert_eq!(report.groups, vals.len().div_ceil(64));
        assert_eq!(direct.to_f32(), compressed.to_f32());
    }
}

#[test]
fn wide_mantissa_gemm_converges_to_reference() {
    let (x, w) = random_case(3, 192, 4, 7);
    let exact = gemm_reference(&x, &w);
    let wide = gemm_anda(&x, &w, 16);
    for i in 0..3 {
        for j in 0..4 {
            let rel = (wide[(i, j)] - exact[(i, j)]).abs() / exact[(i, j)].abs().max(1.0);
            // FP16 rounding + alignment loss only.
            assert!(
                rel < 0.02,
                "({i},{j}): {} vs {}",
                wide[(i, j)],
                exact[(i, j)]
            );
        }
    }
}

#[test]
fn storage_accounting_consistent_across_crates() {
    // Codec-level storage bits must match the tensor-level accounting.
    let vals = vec![1.5f32; 640];
    for m in [4u32, 7, 10] {
        let tensor = AndaTensor::from_f32(&vals, AndaConfig::hardware(m).unwrap());
        let per_elem = tensor.storage_bits() as f64 / vals.len() as f64;
        let codec = ActivationCodec::anda(m).storage_bits_per_element();
        assert!(
            (per_elem - codec).abs() < 1e-9,
            "m={m}: {per_elem} vs {codec}"
        );
    }
}
