//! Cross-crate integration: hardware simulator results must be consistent
//! with the search's BOPs cost model and the paper's headline claims.

use anda::llm::modules::{ModuleKind, PrecisionCombo};
use anda::llm::zoo::{real_model, real_models};
use anda::search::bops::{bops_per_token, bops_per_token_fp16};
use anda::sim::pe::PeKind;
use anda::sim::system::{geo_mean, simulate_baseline, simulate_model};
use anda::sim::workload::{llm_gemms, total_macs};

#[test]
fn compute_cycles_track_bops_for_compute_bound_prefill() {
    // At batch-1 long prefill the workload is compute-bound, so the
    // speedup over FP-FP must track the BOPs saving (within the +1
    // bit-serial setup overhead).
    let cfg = real_model("OPT-6.7B").unwrap();
    let base = simulate_baseline(&cfg, 2048);
    for combo in [PrecisionCombo::uniform(7), PrecisionCombo([8, 6, 5, 5])] {
        let r = simulate_model(&cfg, 2048, PeKind::Anda, combo);
        let speedup = r.speedup_vs(&base);
        let bops_saving = bops_per_token_fp16(&cfg) as f64 / bops_per_token(&cfg, combo) as f64;
        // Bit-serial setup costs one extra cycle per group: speedup is a
        // bounded fraction of the BOPs saving.
        assert!(speedup < bops_saving, "{speedup} vs {bops_saving}");
        assert!(speedup > 0.7 * bops_saving, "{speedup} vs {bops_saving}");
    }
}

#[test]
fn paper_headline_averages_hold() {
    // Paper abstract: 2.4x speedup, 4.0x area efficiency, 3.1x energy
    // efficiency on average (1% loss). Use representative 1%-loss combos.
    let combo = PrecisionCombo([6, 5, 5, 4]);
    let mut speedups = Vec::new();
    let mut area_effs = Vec::new();
    let mut energy_effs = Vec::new();
    for cfg in real_models() {
        let seq = cfg.max_seq.min(2048);
        let base = simulate_baseline(&cfg, seq);
        let r = simulate_model(&cfg, seq, PeKind::Anda, combo);
        speedups.push(r.speedup_vs(&base));
        area_effs.push(r.area_efficiency_vs(&base));
        energy_effs.push(r.energy_efficiency_vs(&base));
    }
    let (s, a, e) = (
        geo_mean(&speedups),
        geo_mean(&area_effs),
        geo_mean(&energy_effs),
    );
    assert!(s > 2.0 && s < 3.2, "speedup geo-mean {s} (paper 2.49)");
    assert!(a > 3.0 && a < 5.2, "area-eff geo-mean {a} (paper 4.03)");
    assert!(e > 2.4 && e < 4.2, "energy-eff geo-mean {e} (paper 3.16)");
}

#[test]
fn workload_macs_agree_with_opcount_crate() {
    for cfg in real_models() {
        let seq = 1024;
        assert_eq!(
            total_macs(&cfg, seq),
            cfg.fp_int_macs_per_token() * seq as u64
        );
        // Every GeMM's k dimension is a multiple of 64 (Anda lanes).
        for g in llm_gemms(&cfg, seq) {
            assert_eq!(g.k % 64, 0, "{}: {:?}", cfg.name, g.module);
        }
    }
}

#[test]
fn per_module_mantissa_actually_routes_to_gemms() {
    // Lowering only A_d must speed up exactly the Down GeMM share.
    let cfg = real_model("OPT-13B").unwrap();
    let hi = simulate_model(&cfg, 1024, PeKind::Anda, PrecisionCombo::uniform(8));
    let lo_d = simulate_model(&cfg, 1024, PeKind::Anda, PrecisionCombo([8, 8, 8, 4]));
    assert!(lo_d.totals.compute_cycles < hi.totals.compute_cycles);
    let gemms = llm_gemms(&cfg, 1024);
    let down_macs: u64 = gemms
        .iter()
        .filter(|g| g.module == ModuleKind::Down)
        .map(|g| g.total_macs())
        .sum();
    let all_macs: u64 = gemms.iter().map(|g| g.total_macs()).sum();
    // Expected cycle ratio from the bit-serial model.
    let expected = (all_macs - down_macs) as f64 * 9.0 / 16.0 + down_macs as f64 * 5.0 / 16.0;
    let baseline = all_macs as f64 * 9.0 / 16.0;
    let measured = lo_d.totals.compute_cycles / hi.totals.compute_cycles;
    assert!(
        (measured - expected / baseline).abs() < 1e-6,
        "measured {measured}, expected {}",
        expected / baseline
    );
}

#[test]
fn energy_efficiency_improves_as_tolerance_relaxes() {
    // Fig. 18 monotonicity, using combos of decreasing width.
    let cfg = real_model("LLaMA-13B").unwrap();
    let base = simulate_baseline(&cfg, 2048);
    let mut prev = 0.0f64;
    for combo in [
        PrecisionCombo::uniform(11),
        PrecisionCombo::uniform(8),
        PrecisionCombo::uniform(6),
        PrecisionCombo::uniform(4),
    ] {
        let e = simulate_model(&cfg, 2048, PeKind::Anda, combo).energy_efficiency_vs(&base);
        assert!(e > prev, "combo {combo}: {e} vs {prev}");
        prev = e;
    }
}
