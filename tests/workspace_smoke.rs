//! Workspace bootstrap smoke test: every crate the `anda` umbrella
//! re-exports must resolve through its public path, and the cross-crate
//! seams (format → quant → llm → sim) must interoperate on a minimal
//! end-to-end value flow. Compile failure here means a re-export or a
//! crate dependency edge broke.

use anda::format::{AndaConfig, AndaTensor, BfpConfig, BfpTensor, BitPlaneGroup};
use anda::fp::{RoundingMode, F16};
use anda::llm::modules::PrecisionCombo;
use anda::llm::zoo::sim_models;
use anda::quant::{gemm_anda, ActivationCodec, GemmScratch, IntWeightMatrix, WeightQuantConfig};
use anda::search::bops::bops_saving;
use anda::sim::pe::PeKind;
use anda::tensor::{Matrix, Rng};

#[test]
fn umbrella_reexports_resolve_and_interoperate() {
    // fp + format: pack activations through the Anda format.
    let acts: Vec<F16> = (0..128)
        .map(|i| F16::from_f32(i as f32 * 0.25 - 16.0))
        .collect();
    let cfg = AndaConfig::new(64, 8).expect("valid Anda config");
    let packed = AndaTensor::from_f16(&acts, cfg);
    assert_eq!(packed.to_f32().len(), acts.len());

    // format: BFP and bit-plane layers are reachable too.
    let bfp = BfpTensor::from_f32_saturating(&[1.0, 2.0, 3.0], BfpConfig::new(64, 8).unwrap());
    assert_eq!(bfp.len(), 3);
    let aligned = anda::format::align::align_group(&acts[..64], 8, RoundingMode::Truncate).unwrap();
    let plane = BitPlaneGroup::from_aligned(&aligned);
    assert_eq!(plane.len(), 64);

    // tensor + quant: an FP-INT GeMM through the scratch-reusing path.
    let mut rng = Rng::new(7);
    let mut x = Matrix::zeros(2, 64);
    rng.fill_normal(x.as_mut_slice(), 1.0);
    let mut w = Matrix::zeros(64, 3);
    rng.fill_normal(w.as_mut_slice(), 0.05);
    let wq = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 64));
    let mut out = Matrix::zeros(2, 3);
    let mut scratch = GemmScratch::new();
    anda::quant::gemm_fake_quant_into(&x, &wq, &ActivationCodec::anda(8), &mut scratch, &mut out);
    let int_path = gemm_anda(&x, &wq, 8);
    for i in 0..2 {
        for j in 0..3 {
            assert!((out[(i, j)] - int_path[(i, j)]).abs() <= out[(i, j)].abs().max(1.0) * 2e-5);
        }
    }

    // llm + search + sim: the catalog, BOPs model and PE taxonomy resolve.
    let specs = sim_models();
    assert!(!specs.is_empty());
    let cfg = &specs[0].sim;
    // Narrower mantissas must save more bit-operations.
    assert!(
        bops_saving(cfg, PrecisionCombo([4, 4, 4, 4]))
            > bops_saving(cfg, PrecisionCombo([13, 13, 13, 13]))
    );
    assert!(!PeKind::Anda.name().is_empty());
}
