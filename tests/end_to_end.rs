//! Full-stack smoke test: one pass through every deliverable — format,
//! quantization, LLM, search, simulator — mirroring the paper's deployment
//! story (Fig. 1): offline one-shot calibration, then online
//! variable-precision inference on Anda hardware.

use anda::llm::corpus::corpus;
use anda::llm::eval::perplexity;
use anda::llm::modules::CodecAssignment;
use anda::llm::zoo::sim_model;
use anda::quant::WeightQuantConfig;
use anda::search::search::{adaptive_precision_search, PplEvaluator, SearchConfig};
use anda::sim::pe::PeKind;
use anda::sim::system::{simulate_baseline, simulate_model};

#[test]
fn offline_calibration_then_online_inference() {
    // --- Offline (compile-time) phase ---
    let spec = sim_model("OPT-1.3B").unwrap();
    let fp16 = spec.build();
    let data = corpus("wikitext2-sim").unwrap().generate(&fp16, 256, 256);
    let mut quant = fp16.quantize_weights(WeightQuantConfig::w4_sim());
    quant.calibrate_logit_scale(&data.calibration, 128);

    let mut evaluator = PplEvaluator::new(&quant, &data.calibration, 128);
    let outcome = adaptive_precision_search(
        &spec.sim,
        &mut evaluator,
        &SearchConfig::with_tolerance(0.01),
    );
    let combo = outcome.best.expect("1% search must succeed");

    // --- Online phase: accuracy on held-out data ---
    let base = perplexity(&quant, &CodecAssignment::fp16(), &data.validation, 128);
    let anda_ppl = perplexity(
        &quant,
        &CodecAssignment::from_combo(combo),
        &data.validation,
        128,
    );
    assert!(
        (anda_ppl - base) / base < 0.05,
        "validation ppl {anda_ppl} vs baseline {base} for {combo}"
    );

    // --- Hardware gains with that combo on the real-dimension model ---
    let real = &spec.real;
    let baseline_hw = simulate_baseline(real, 2048);
    let anda_hw = simulate_model(real, 2048, PeKind::Anda, combo);
    assert!(anda_hw.speedup_vs(&baseline_hw) > 1.5);
    assert!(anda_hw.energy_efficiency_vs(&baseline_hw) > 2.0);
    assert!(anda_hw.area_mm2 < baseline_hw.area_mm2);
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let spec = sim_model("LLaMA2-7B").unwrap();
        let fp16 = spec.build();
        let data = corpus("ptb-sim").unwrap().generate(&fp16, 128, 128);
        let mut quant = fp16.quantize_weights(WeightQuantConfig::w4_sim());
        quant.calibrate_logit_scale(&data.calibration, 128);
        let mut ev = PplEvaluator::new(&quant, &data.calibration, 128);
        let out =
            adaptive_precision_search(&spec.sim, &mut ev, &SearchConfig::with_tolerance(0.01));
        (out.best, out.trace.len(), out.baseline_ppl.to_bits())
    };
    assert_eq!(run(), run(), "identical seeds must give identical outcomes");
}
