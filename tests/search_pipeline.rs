//! Cross-crate integration: the full deployment pipeline — synthesize →
//! generate calibration data → quantize weights → search precisions →
//! validate — behaves like the paper's Algorithm 1 deployment flow.

use anda::llm::corpus::corpus;
use anda::llm::eval::perplexity;
use anda::llm::modules::{CodecAssignment, PrecisionCombo};
use anda::llm::zoo::{opt_125m_sim, sim_model};
use anda::quant::WeightQuantConfig;
use anda::search::bops::{bops_per_token, bops_saving};
use anda::search::search::{adaptive_precision_search, PplEvaluator, SearchConfig};

struct Pipeline {
    spec: anda::llm::zoo::SimModelSpec,
    quant: anda::llm::model::Model,
    calibration: Vec<usize>,
    validation: Vec<usize>,
}

fn pipeline(name: &str) -> Pipeline {
    let spec = if name == "OPT-125M" {
        opt_125m_sim()
    } else {
        sim_model(name).unwrap()
    };
    let fp16 = spec.build();
    let data = corpus("wikitext2-sim").unwrap().generate(&fp16, 256, 256);
    let mut quant = fp16.quantize_weights(WeightQuantConfig::w4_sim());
    quant.calibrate_logit_scale(&data.calibration, 128);
    Pipeline {
        spec,
        quant,
        calibration: data.calibration,
        validation: data.validation,
    }
}

#[test]
fn search_finds_combo_within_iteration_budget() {
    let p = pipeline("OPT-125M");
    let mut ev = PplEvaluator::new(&p.quant, &p.calibration, 128);
    let out = adaptive_precision_search(&p.spec.sim, &mut ev, &SearchConfig::with_tolerance(0.01));
    let best = out.best.expect("1% tolerance must be feasible");
    assert!(out.trace.len() <= 32);
    // The search must beat the conservative FIGNA point.
    assert!(bops_saving(&p.spec.sim, best) > 1.23);
    // And every module stays in the legal range.
    assert!(best.0.iter().all(|&m| (1..=13).contains(&m)));
}

#[test]
fn tighter_tolerance_never_gives_cheaper_combo() {
    let p = pipeline("OPT-2.7B");
    let combo_at = |tol: f64| {
        let mut ev = PplEvaluator::new(&p.quant, &p.calibration, 128);
        adaptive_precision_search(&p.spec.sim, &mut ev, &SearchConfig::with_tolerance(tol)).best
    };
    let tight = combo_at(0.001);
    let loose = combo_at(0.02);
    if let (Some(t), Some(l)) = (tight, loose) {
        assert!(
            bops_per_token(&p.spec.sim, t) >= bops_per_token(&p.spec.sim, l),
            "tight {t} must cost at least as much as loose {l}"
        );
    } else {
        assert!(
            tight.is_none(),
            "if anything fails it must be the tight one"
        );
    }
}

#[test]
fn searched_combo_validates_near_tolerance() {
    let p = pipeline("OPT-6.7B");
    let mut ev = PplEvaluator::new(&p.quant, &p.calibration, 128);
    let out = adaptive_precision_search(&p.spec.sim, &mut ev, &SearchConfig::with_tolerance(0.01));
    let best = out.best.expect("combo");
    let base = perplexity(&p.quant, &CodecAssignment::fp16(), &p.validation, 128);
    let ppl = perplexity(
        &p.quant,
        &CodecAssignment::from_combo(best),
        &p.validation,
        128,
    );
    let loss = (ppl - base) / base;
    // The paper notes validation can exceed the calibration constraint;
    // it must still be the right order of magnitude.
    assert!(loss < 0.06, "validation loss {loss} for {best}");
}

#[test]
fn trace_is_internally_consistent() {
    let p = pipeline("OPT-125M");
    let mut ev = PplEvaluator::new(&p.quant, &p.calibration, 128);
    let out = adaptive_precision_search(&p.spec.sim, &mut ev, &SearchConfig::with_tolerance(0.01));
    // BOPs recorded in the trace match the model.
    for step in &out.trace {
        assert_eq!(step.bops, bops_per_token(&p.spec.sim, step.combo));
    }
    // Accepted steps are exactly those that became best_after.
    let mut current_best = None;
    for step in &out.trace {
        if step.accepted {
            current_best = Some(step.combo);
        }
        assert_eq!(step.best_after, current_best);
    }
    // Uniform ladder comes first: the first evaluated combo is [4,4,4,4].
    assert_eq!(out.trace[0].combo, PrecisionCombo::uniform(4));
}
