//! Simulate one LLM inference on the Anda accelerator and every baseline:
//! speedup, energy breakdown and area efficiency versus the GPU-like FP-FP
//! system.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use anda::llm::modules::PrecisionCombo;
use anda::llm::zoo::real_model;
use anda::sim::pe::PeKind;
use anda::sim::system::{simulate_baseline, simulate_model};

fn main() {
    let cfg = real_model("LLaMA-13B").expect("model in catalog");
    let seq = 2048;
    // A representative searched combination at 1% tolerance.
    let combo = PrecisionCombo([7, 5, 6, 6]);

    println!(
        "== {} (batch 1, {seq}-token prefill), Anda combo {combo} ==\n",
        cfg.name
    );
    let base = simulate_baseline(&cfg, seq);

    println!(
        "{:<12} {:>8} {:>9} {:>9} {:>9} {:>22}",
        "system", "speedup", "area eff", "en. eff", "energy J", "split compute/sram/dram"
    );
    println!("{}", "-".repeat(75));
    for kind in PeKind::ALL {
        let m = kind.datapath_mantissa_bits().unwrap_or(0);
        let c = if kind == PeKind::Anda {
            combo
        } else {
            PrecisionCombo::uniform(m.max(4))
        };
        let r = simulate_model(&cfg, seq, kind, c);
        let (cf, sf, df) = r.energy_split();
        println!(
            "{:<12} {:>7.2}x {:>8.2}x {:>8.2}x {:>9.3} {:>9.0}%/{:.0}%/{:.0}%",
            kind.name(),
            r.speedup_vs(&base),
            r.area_efficiency_vs(&base),
            r.energy_efficiency_vs(&base),
            r.energy_j(),
            100.0 * cf,
            100.0 * sf,
            100.0 * df,
        );
    }

    let anda = simulate_model(&cfg, seq, PeKind::Anda, combo);
    println!(
        "\nAnda accelerator: {:.2} mm², {:.1} ms, {:.3} J for the FP-INT GeMM portion",
        anda.area_mm2,
        anda.time_s() * 1e3,
        anda.energy_j(),
    );
    println!("(paper: 2.4x speedup, 4.0x area efficiency, 3.1x energy efficiency on average)");
}
