//! The §VI extension in action: an Anda-compressed KV cache — memory
//! savings, attention fidelity, and long-context decode gains.
//!
//! Run with: `cargo run --release --example kv_cache`

use anda::llm::kv::{KvStorage, KvStore};
use anda::llm::modules::PrecisionCombo;
use anda::llm::zoo::real_model;
use anda::sim::decode::{simulate_decode, simulate_decode_baseline, KvPolicy};
use anda::sim::pe::PeKind;
use anda::tensor::Rng;

fn main() {
    println!("== Anda-compressed KV cache ==\n");

    // Functional: cache fidelity.
    let dim = 128;
    let mut rng = Rng::new(99);
    let rows: Vec<Vec<f32>> = (0..512)
        .map(|_| (0..dim).map(|_| rng.normal_with(0.0, 1.0)).collect())
        .collect();
    let q: Vec<f32> = (0..dim).map(|_| rng.normal_with(0.0, 1.0)).collect();

    let mut exact = KvStore::new(dim, KvStorage::Fp16);
    for r in &rows {
        exact.push(r, r);
    }
    let reference = exact.attend(&q, 4);

    println!(
        "{:<12} {:>12} {:>14}",
        "storage", "compression", "attn max|err|"
    );
    println!("{}", "-".repeat(40));
    for m in [4u32, 6, 8, 11] {
        let mut store = KvStore::new(dim, KvStorage::Anda { mantissa_bits: m });
        for r in &rows {
            store.push(r, r);
        }
        let out = store.attend(&q, 4);
        let err = reference
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "Anda M={m:<4} {:>11.2}x {:>14.5}",
            store.compression_vs_fp16(),
            err
        );
    }

    // System-level: long-context decode.
    let cfg = real_model("LLaMA2-13B").unwrap();
    let combo = PrecisionCombo([7, 6, 6, 6]);
    println!(
        "\ndecode of 64 tokens on {} (Anda combo {combo}):",
        cfg.name
    );
    for context in [2048usize, 8192, 16384] {
        let base = simulate_decode_baseline(&cfg, context, 64);
        let anda = simulate_decode(
            &cfg,
            context,
            64,
            PeKind::Anda,
            combo,
            KvPolicy::Anda { mantissa_bits: 6 },
        );
        println!(
            "  context {context:>6}: {:.2}x faster, {:.2}x energy efficiency",
            anda.speedup_vs(&base),
            anda.energy_efficiency_vs(&base),
        );
    }
    println!("\n(the KV stream grows with context; compressing it keeps decode scaling)");
}
