//! The §VI extension in action: the paged, Anda-compressed KV cache —
//! memory savings, attention fidelity, and long-context decode gains.
//!
//! Run with: `cargo run --release --example kv_cache`

use anda::llm::kv::{KvPoolConfig, KvReadScratch, KvStorage, PagePool};
use anda::llm::modules::PrecisionCombo;
use anda::llm::zoo::real_model;
use anda::sim::decode::{simulate_decode, simulate_decode_baseline, KvPolicy};
use anda::sim::pe::PeKind;
use anda::tensor::Rng;

fn main() {
    println!("== Paged Anda-compressed KV cache ==\n");

    // Functional: cache fidelity. Every cache leases 16-position pages
    // from its pool; only the storage policy differs.
    let dim = 128;
    let mut rng = Rng::new(99);
    let rows: Vec<Vec<f32>> = (0..512)
        .map(|_| (0..dim).map(|_| rng.normal_with(0.0, 1.0)).collect())
        .collect();
    let q: Vec<f32> = (0..dim).map(|_| rng.normal_with(0.0, 1.0)).collect();

    let mut exact = PagePool::new(KvPoolConfig::unbounded(KvStorage::Fp16)).new_cache(1);
    for r in &rows {
        exact.append_row(0, r, r);
    }
    let reference = exact.layer(0).attend(&q, 4);

    println!(
        "{:<12} {:>12} {:>14}",
        "storage", "compression", "attn max|err|"
    );
    println!("{}", "-".repeat(40));
    let mut scratch = KvReadScratch::new();
    let mut out = vec![0.0f32; dim];
    for m in [4u32, 6, 8, 11] {
        let pool = PagePool::new(KvPoolConfig::unbounded(KvStorage::Anda {
            mantissa_bits: m,
        }));
        let mut cache = pool.new_cache(1);
        for r in &rows {
            cache.append_row(0, r, r);
        }
        // Allocation-free read path: pages decode into the reused scratch.
        cache.layer(0).attend_into(&q, 4, &mut out, &mut scratch);
        let err = reference
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "Anda M={m:<4} {:>11.2}x {:>14.5}",
            cache.compression_vs_fp16(),
            err
        );
    }

    // System-level: long-context decode.
    let cfg = real_model("LLaMA2-13B").unwrap();
    let combo = PrecisionCombo([7, 6, 6, 6]);
    println!(
        "\ndecode of 64 tokens on {} (Anda combo {combo}):",
        cfg.name
    );
    for context in [2048usize, 8192, 16384] {
        let base = simulate_decode_baseline(&cfg, context, 64);
        let anda = simulate_decode(
            &cfg,
            context,
            64,
            PeKind::Anda,
            combo,
            KvPolicy::Anda { mantissa_bits: 6 },
        );
        println!(
            "  context {context:>6}: {:.2}x faster, {:.2}x energy efficiency",
            anda.speedup_vs(&base),
            anda.energy_efficiency_vs(&base),
        );
    }
    println!("\n(the KV stream grows with context; compressing it keeps decode scaling)");
}
