//! Execute a GeMM on the functional model of the Anda datapath (Fig. 13):
//! BPC conversion → bit-plane activation buffer → address generation →
//! 16×16 APU array → BPC write-back, with cycle statistics.
//!
//! Run with: `cargo run --release --example functional_hardware`

use anda::quant::gemm::gemm_reference;
use anda::quant::{IntWeightMatrix, WeightQuantConfig};
use anda::sim::functional::MxuExecutor;
use anda::tensor::{Matrix, Rng};

fn main() {
    // A 32×256×48 FP-INT GeMM.
    let mut rng = Rng::new(5);
    let mut x = Matrix::zeros(32, 256);
    rng.fill_normal(x.as_mut_slice(), 1.2);
    let mut w = Matrix::zeros(256, 48);
    rng.fill_normal(w.as_mut_slice(), 0.05);
    let wq = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 64));
    let exact = gemm_reference(&x, &wq);

    println!("== functional execution of a 32x256x48 FP-INT GeMM ==\n");
    println!(
        "{:<4} {:>11} {:>12} {:>11} {:>10} {:>12}",
        "M", "MXU cycles", "act words", "BPC cycles", "tiles", "max rel err"
    );
    println!("{}", "-".repeat(66));
    for m in [4u32, 6, 8, 11, 16] {
        let exec = MxuExecutor::paper(m);
        let (out, compressed, stats) = exec.execute(&x, &wq);
        let mut max_rel = 0.0f32;
        for i in 0..32 {
            for j in 0..48 {
                let rel = (out[(i, j)] - exact[(i, j)]).abs() / exact[(i, j)].abs().max(1.0);
                max_rel = max_rel.max(rel);
            }
        }
        println!(
            "{m:<4} {:>11} {:>12} {:>11} {:>10} {:>12.5}",
            stats.mxu_cycles, stats.act_words_read, stats.bpc_cycles, stats.tiles, max_rel
        );
        assert_eq!(compressed.len(), 32 * 48);
    }
    println!("\ncycles scale with (M+1); accuracy improves with M — the trade the");
    println!("adaptive precision search navigates per module.");
}
