//! Run the adaptive precision combination search (Algorithm 1) on a
//! simulated weight-only quantized LLM and inspect the trace.
//!
//! Run with: `cargo run --release --example precision_search`

use anda::llm::corpus::corpus;
use anda::llm::eval::perplexity;
use anda::llm::modules::CodecAssignment;
use anda::llm::zoo::sim_model;
use anda::quant::WeightQuantConfig;
use anda::search::bops::bops_saving;
use anda::search::search::{adaptive_precision_search, PplEvaluator, SearchConfig};

fn main() {
    let spec = sim_model("OPT-2.7B").expect("model in catalog");
    println!("== adaptive precision search on {} ==\n", spec.sim.name);

    // Build the FP16 reference, generate calibration data, quantize weights.
    let mut fp16 = spec.build();
    let data = corpus("wikitext2-sim").unwrap().generate(&fp16, 256, 512);
    let mut quant = fp16.quantize_weights(WeightQuantConfig::w4_sim());
    fp16.calibrate_logit_scale(&data.calibration, 128);
    quant.calibrate_logit_scale(&data.calibration, 128);

    for tolerance in [0.001, 0.01, 0.05] {
        let mut evaluator = PplEvaluator::new(&quant, &data.calibration, 128);
        let outcome = adaptive_precision_search(
            &spec.sim,
            &mut evaluator,
            &SearchConfig::with_tolerance(tolerance),
        );
        print!("δ = {:>4.1}%: ", 100.0 * tolerance);
        match outcome.best {
            Some(best) => {
                let val_base = perplexity(&quant, &CodecAssignment::fp16(), &data.validation, 128);
                let val_ppl = perplexity(
                    &quant,
                    &CodecAssignment::from_combo(best),
                    &data.validation,
                    128,
                );
                println!(
                    "best {best}  ({} iterations, {:.2}x BOPs saving, validation loss {:+.2}%)",
                    outcome.trace.len(),
                    bops_saving(&spec.sim, best),
                    100.0 * (val_ppl - val_base) / val_base,
                );
            }
            None => println!("no combination met the tolerance"),
        }
    }

    println!("\ntrace of the 1% search:");
    let mut evaluator = PplEvaluator::new(&quant, &data.calibration, 128);
    let outcome = adaptive_precision_search(
        &spec.sim,
        &mut evaluator,
        &SearchConfig::with_tolerance(0.01),
    );
    for step in &outcome.trace {
        println!(
            "  #{:<2} {}  ppl {:8.3}  {}",
            step.iteration,
            step.combo,
            step.ppl,
            if step.accepted {
                "accepted ✓"
            } else {
                "rejected"
            },
        );
    }
}
