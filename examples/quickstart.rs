//! Quickstart: convert FP16 activations to the Anda format, inspect the
//! bit-plane layout, run a bit-serial dot product, and measure round-trip
//! error versus plain FP16.
//!
//! Run with: `cargo run --release --example quickstart`

use anda::format::compressor::BitPlaneCompressor;
use anda::format::dot::{dot_f16_int_reference, dot_group_bit_serial, rescale_int_dot};
use anda::format::stats::{max_abs_err, sqnr_db};
use anda::format::{AndaConfig, AndaTensor};
use anda::fp::F16;

fn main() {
    // Some activations with an outlier, as LLM channels tend to have.
    let mut acts: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin() * 0.8).collect();
    acts[17] = 24.0; // outlier channel

    println!("== Anda quickstart ==\n");

    // 1. Convert at a few mantissa lengths and look at the cost of each.
    for m in [4u32, 6, 8, 11] {
        let cfg = AndaConfig::hardware(m).expect("1..=16 mantissa bits");
        let tensor = AndaTensor::from_f32(&acts, cfg);
        let restored = tensor.to_f32();
        let f16_ref: Vec<f32> = acts.iter().map(|&v| F16::from_f32(v).to_f32()).collect();
        println!(
            "M={m:2}  bits/elem={:5.2}  compression vs FP16 = {:.2}x  max|err|={:.4}  sqnr={:5.1} dB",
            tensor.bits_per_element(),
            tensor.compression_vs_f16(),
            max_abs_err(&f16_ref, &restored),
            sqnr_db(&f16_ref, &restored),
        );
    }

    // 2. The bit-plane layout: one sign plane + M mantissa planes of 64 bits.
    let cfg = AndaConfig::hardware(6).unwrap();
    let tensor = AndaTensor::from_f32(&acts, cfg);
    let group = &tensor.groups()[0];
    println!(
        "\ngroup #0: shared exponent {}, {} mantissa planes, {} memory words",
        group.shared_exp(),
        group.mantissa_bits(),
        group.mantissa_words(),
    );
    for (i, plane) in group.planes().iter().enumerate() {
        println!(
            "  plane {i} (bit {}): {plane:#018x}",
            group.mantissa_bits() as usize - 1 - i
        );
    }

    // 3. Bit-serial dot product against INT4 weights — exactly what the APU
    //    executes, plane by plane.
    let weights: Vec<i8> = (0..64).map(|i| ((i * 5) % 15) as i8 - 7).collect();
    let (int_dot, trace) = dot_group_bit_serial(group, &weights);
    let anda_result = rescale_int_dot(int_dot, group.shared_exp(), group.mantissa_bits(), 0.01);
    let f16_acts: Vec<F16> = acts.iter().map(|&v| F16::from_f32(v)).collect();
    let reference = dot_f16_int_reference(&f16_acts, &weights, 0.01);
    println!(
        "\nbit-serial dot: {anda_result:.4} in {} cycles (FP16 reference {reference:.4})",
        trace.cycles
    );

    // 4. The runtime compressor produces identical bit-planes on the fly.
    let (via_bpc, report) = BitPlaneCompressor::new(cfg).compress_f32(&acts);
    assert_eq!(via_bpc, tensor);
    println!(
        "\nBPC: {} groups in {} cycles, compression {:.2}x — identical to direct conversion",
        report.groups,
        report.cycles,
        report.compression_ratio(),
    );
}
