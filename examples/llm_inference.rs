//! End-to-end tiny-LLM inference: generate text with the FP16 reference,
//! then compare perplexity under FP16, FIGNA, VS-Quant and Anda activation
//! formats on the weight-only quantized model.
//!
//! Run with: `cargo run --release --example llm_inference`

use anda::llm::corpus::corpus;
use anda::llm::eval::{perplexity, relative_accuracy_loss};
use anda::llm::modules::{CodecAssignment, PrecisionCombo};
use anda::llm::zoo::sim_model;
use anda::quant::{ActivationCodec, WeightQuantConfig};
use anda::tensor::Rng;

fn main() {
    let spec = sim_model("LLaMA-7B").expect("model in catalog");
    println!(
        "== {} inference under different activation formats ==\n",
        spec.sim.name
    );

    let mut fp16 = spec.build();
    let data = corpus("c4-sim").unwrap().generate(&fp16, 256, 512);
    let mut quant = fp16.quantize_weights(WeightQuantConfig::w4_sim());
    fp16.calibrate_logit_scale(&data.calibration, 128);
    quant.calibrate_logit_scale(&data.calibration, 128);

    // A short generation from the quantized model, token ids only (the sim
    // vocabulary is synthetic).
    let mut rng = Rng::new(7);
    let generated = quant.generate(&[1, 2, 3, 4], 28, 0.9, &mut rng);
    println!("sample generation (token ids): {generated:?}\n");

    let base = perplexity(&quant, &CodecAssignment::fp16(), &data.validation, 128);
    println!("W4A16 baseline perplexity (FP16 activations): {base:.3}\n");

    let candidates: Vec<(&str, CodecAssignment)> = vec![
        ("FP16 everywhere", CodecAssignment::fp16()),
        (
            "FIGNA (M=13 uniform)",
            CodecAssignment::uniform(ActivationCodec::figna()),
        ),
        (
            "VS-Quant (M=4 uniform)",
            CodecAssignment::uniform(ActivationCodec::vs_quant()),
        ),
        (
            "Anda [8,6,7,6]",
            CodecAssignment::from_combo(PrecisionCombo([8, 6, 7, 6])),
        ),
        (
            "Anda [6,5,5,4]",
            CodecAssignment::from_combo(PrecisionCombo([6, 5, 5, 4])),
        ),
    ];

    println!("{:<24} {:>10} {:>12}", "activation format", "PPL", "loss");
    println!("{}", "-".repeat(48));
    for (name, codecs) in candidates {
        let ppl = perplexity(&quant, &codecs, &data.validation, 128);
        println!(
            "{name:<24} {ppl:>10.3} {:>11.2}%",
            100.0 * relative_accuracy_loss(base, ppl)
        );
    }
    println!("\nlower mantissa lengths trade accuracy for BOPs/storage savings;");
    println!("the adaptive search (see the precision_search example) picks the frontier point.");
}
