//! # Anda — variable-length grouped activation data format
//!
//! Umbrella crate for the reproduction of *"Anda: Unlocking Efficient LLM
//! Inference with a Variable-Length Grouped Activation Data Format"*
//! (HPCA 2025). It re-exports every workspace crate so examples, integration
//! tests and downstream users can depend on a single `anda` crate.
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`fp`] | software IEEE binary16 ([`fp::F16`]), rounding, bit utilities |
//! | [`tensor`] | dense tensors, matmul, softmax, normalization |
//! | [`format`](mod@format) | BFP + Anda formats, bit-plane layout, compressor, kernels |
//! | [`quant`] | weight-only INT quantization and baseline activation codecs |
//! | [`llm`] | transformer inference engine, model zoo, perplexity eval |
//! | [`serve`] | continuous-batching request scheduler over incremental decode |
//! | [`search`] | BOPs model and adaptive precision combination search |
//! | [`sim`] | cycle/energy accelerator simulator with all paper baselines |
//!
//! # Quickstart
//!
//! ```
//! use anda::format::{AndaConfig, AndaTensor};
//! use anda::fp::F16;
//!
//! let activations: Vec<F16> = (0..128).map(|i| F16::from_f32(i as f32 * 0.1)).collect();
//! let cfg = AndaConfig::new(64, 8).unwrap();
//! let packed = AndaTensor::from_f16(&activations, cfg);
//! let restored = packed.to_f32();
//! assert_eq!(restored.len(), activations.len());
//! ```

pub use anda_format as format;
pub use anda_fp as fp;
pub use anda_llm as llm;
pub use anda_quant as quant;
pub use anda_search as search;
pub use anda_serve as serve;
pub use anda_sim as sim;
pub use anda_tensor as tensor;
