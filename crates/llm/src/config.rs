//! Model architecture configuration.

/// Transformer family: determines norms, FFN shape and position encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// OPT-style: LayerNorm (gain+bias), ReLU FFN (`4·d` hidden), learned
    /// absolute position embeddings.
    Opt,
    /// LLaMA-style: RMSNorm, SwiGLU FFN, rotary position embeddings.
    Llama,
}

impl Family {
    /// Human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Opt => "OPT",
            Family::Llama => "LLaMA",
        }
    }
}

/// Architecture description of a (real or simulated) model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Display name, e.g. `"OPT-6.7B"` or `"OPT-1.3B-sim"`.
    pub name: String,
    /// Architecture family.
    pub family: Family,
    /// Hidden size.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Attention heads (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// FFN hidden size (`4·d_model` for OPT; ≈`8/3·d_model` for LLaMA).
    pub d_ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length supported.
    pub max_seq: usize,
}

impl ModelConfig {
    /// Head dimension.
    pub fn d_head(&self) -> usize {
        debug_assert_eq!(self.d_model % self.n_heads, 0);
        self.d_model / self.n_heads
    }

    /// Total parameter count of the dense weights (embeddings + blocks),
    /// used for sanity checks on the real-dimension catalog.
    pub fn param_count(&self) -> u64 {
        let d = self.d_model as u64;
        let ffn = self.d_ffn as u64;
        let per_block = match self.family {
            // Wqkv (d×3d) + Wo (d×d) + FFN up (d×ffn) + down (ffn×d)
            Family::Opt => 3 * d * d + d * d + 2 * d * ffn,
            // Wqkv + Wo + gate/up/down
            Family::Llama => 3 * d * d + d * d + 3 * d * ffn,
        };
        let embed = self.vocab as u64 * d;
        embed + self.n_layers as u64 * per_block
    }

    /// FP-INT GeMM MAC count for one token passing through all blocks
    /// (the four quantized module types only).
    pub fn fp_int_macs_per_token(&self) -> u64 {
        let d = self.d_model as u64;
        let ffn = self.d_ffn as u64;
        let per_block = match self.family {
            Family::Opt => d * 3 * d + d * d + d * ffn + ffn * d,
            Family::Llama => d * 3 * d + d * d + 2 * d * ffn + ffn * d,
        };
        self.n_layers as u64 * per_block
    }

    /// Attention (activation-activation, non-quantized) MAC count for one
    /// token attending over a prefix of `context` tokens: `QKᵀ` plus `P·V`.
    pub fn attention_macs_at(&self, context: u64) -> u64 {
        2 * self.d_model as u64 * context * self.n_layers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(family: Family) -> ModelConfig {
        ModelConfig {
            name: "toy".into(),
            family,
            d_model: 64,
            n_layers: 2,
            n_heads: 4,
            d_ffn: 256,
            vocab: 100,
            max_seq: 128,
        }
    }

    #[test]
    fn head_dim() {
        assert_eq!(toy(Family::Opt).d_head(), 16);
    }

    #[test]
    fn param_count_formulas() {
        let opt = toy(Family::Opt);
        // embed 100·64 + 2·(3·64² + 64² + 2·64·256)
        assert_eq!(opt.param_count(), 6400 + 2 * (4 * 4096 + 2 * 16384));
        let llama = toy(Family::Llama);
        assert_eq!(llama.param_count(), 6400 + 2 * (4 * 4096 + 3 * 16384));
    }

    #[test]
    fn llama_has_more_ffn_macs_per_token() {
        let opt = toy(Family::Opt).fp_int_macs_per_token();
        let llama = toy(Family::Llama).fp_int_macs_per_token();
        assert!(llama > opt);
    }

    #[test]
    fn attention_macs_grow_with_context() {
        let m = toy(Family::Opt);
        assert_eq!(m.attention_macs_at(10) * 2, m.attention_macs_at(20));
    }
}
