//! The transformer inference engine.
//!
//! [`Model`] holds effective (`f32`) weights plus, in [`WeightMode::Int4`]
//! mode, the quantized [`IntWeightMatrix`] handles the hardware simulator
//! and storage accounting use. Forward passes apply a per-module
//! [`CodecAssignment`] to the four FP-INT GeMM activations — all other
//! arithmetic (attention scores, softmax, norms, residuals) stays in
//! floating point, matching the paper's methodology (§V-A keeps non-GeMM
//! operators and the KV cache in FP16).

use anda_format::bfp::saturate_to_f16;
use anda_quant::{IntWeightMatrix, WeightQuantConfig};
use anda_tensor::{ops, Matrix, Rng};
use rayon_lite::ThreadPool;

use crate::config::{Family, ModelConfig};
use crate::kv::{attend_head, KvReadScratch, KvRows, KvSegment, KvStorage, PageDecodeCache};
use crate::modules::CodecAssignment;
use crate::synth::{boost_columns, dense, norm_bias, norm_gain, SensitivityProfile};

pub use crate::kv::{KvCache, LayerKv};

/// How the model's GeMM weights are stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightMode {
    /// FP16 weights (the full-precision baseline row of Table II).
    Fp16,
    /// W4A16-style group-wise INT4 weights (the deployment baseline).
    Int4,
}

/// One transformer block's weights.
#[derive(Clone, Debug)]
pub struct Layer {
    /// Pre-attention norm gain.
    pub attn_gain: Vec<f32>,
    /// Pre-attention norm bias (zero for LLaMA-style RMSNorm).
    pub attn_bias: Vec<f32>,
    /// Pre-FFN norm gain.
    pub ffn_gain: Vec<f32>,
    /// Pre-FFN norm bias.
    pub ffn_bias: Vec<f32>,
    /// Fused Q/K/V projection, `d × 3d`.
    pub wqkv: Matrix,
    /// Output projection, `d × d`.
    pub wo: Matrix,
    /// Gate projection (`d × ffn`), LLaMA family only.
    pub wgate: Option<Matrix>,
    /// Up projection, `d × ffn`.
    pub wup: Matrix,
    /// Down projection, `ffn × d`.
    pub wdown: Matrix,
    /// Quantized handles (Int4 mode only), in module order
    /// `[wqkv, wo, wgate?, wup, wdown]`.
    pub quantized: Option<LayerQuant>,
}

/// Quantized weight handles for one block.
#[derive(Clone, Debug)]
pub struct LayerQuant {
    /// Fused Q/K/V projection.
    pub wqkv: IntWeightMatrix,
    /// Output projection.
    pub wo: IntWeightMatrix,
    /// Gate projection (LLaMA only).
    pub wgate: Option<IntWeightMatrix>,
    /// Up projection.
    pub wup: IntWeightMatrix,
    /// Down projection.
    pub wdown: IntWeightMatrix,
}

/// A synthesized transformer model.
#[derive(Clone, Debug)]
pub struct Model {
    config: ModelConfig,
    mode: WeightMode,
    /// Token embedding, `vocab × d` (tied with the LM head).
    embed: Matrix,
    /// Learned position embedding, `max_seq × d` (OPT family only).
    pos_embed: Option<Matrix>,
    layers: Vec<Layer>,
    final_gain: Vec<f32>,
    final_bias: Vec<f32>,
    /// Scalar logit temperature calibration (1.0 = uncalibrated). Tiny
    /// synthesized models are miscalibrated after weight quantization in a
    /// way billion-parameter checkpoints are not; a single fitted scale
    /// removes that confound from the activation-format comparisons.
    logit_scale: f32,
}

const NORM_EPS: f32 = 1e-5;

impl Model {
    /// Synthesizes a model with FP16 weights from a sensitivity profile and
    /// seed (deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `d_model`/`d_ffn` are not multiples of 64 (required by the
    /// 64-lane Anda grouping and the weight group size).
    pub fn synthesize(config: ModelConfig, profile: &SensitivityProfile, seed: u64) -> Self {
        assert!(
            config.d_model.is_multiple_of(64) && config.d_ffn.is_multiple_of(64),
            "model dims must be multiples of 64 (got d={}, ffn={})",
            config.d_model,
            config.d_ffn
        );
        let mut rng = Rng::new(seed);
        let d = config.d_model;
        let ffn = config.d_ffn;

        let mut embed = dense(config.vocab, d, profile.logit_sharpness, &mut rng);
        // Renormalize embedding rows so logits reflect direction, not length.
        for r in 0..config.vocab {
            let row = embed.row_mut(r);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            let target = profile.logit_sharpness;
            for x in row.iter_mut() {
                *x *= target / norm;
            }
        }

        let pos_embed = match config.family {
            Family::Opt => Some(dense(config.max_seq, d, 0.3, &mut rng)),
            Family::Llama => None,
        };

        let layers = (0..config.n_layers)
            .map(|_| {
                let attn_gain = norm_gain(d, profile.qkv, &mut rng);
                let attn_bias = match config.family {
                    Family::Opt => norm_bias(d, &mut rng),
                    Family::Llama => vec![0.0; d],
                };
                let ffn_gain = norm_gain(d, profile.u, &mut rng);
                let ffn_bias = match config.family {
                    Family::Opt => norm_bias(d, &mut rng),
                    Family::Llama => vec![0.0; d],
                };
                let wqkv = dense(d, 3 * d, profile.weight_std, &mut rng);
                let mut wo = dense(d, d, profile.weight_std, &mut rng);
                boost_columns(&mut wo, crate::synth::OutlierSpec::NONE, &mut rng);
                let wgate = match config.family {
                    Family::Llama => Some(dense(d, ffn, profile.weight_std, &mut rng)),
                    Family::Opt => None,
                };
                let mut wup = dense(d, ffn, profile.weight_std, &mut rng);
                // Outlier columns in the up projection widen A_d's range.
                boost_columns(&mut wup, profile.d, &mut rng);
                let wdown = dense(ffn, d, profile.weight_std, &mut rng);

                // Outlier columns in the value third of wqkv widen A_o's
                // range (attention output inherits V's channel structure).
                let mut wqkv = wqkv;
                if profile.o.count > 0 {
                    let mut vpart = wqkv.slice_cols(2 * d, d);
                    boost_columns(&mut vpart, profile.o, &mut rng);
                    for r in 0..d {
                        for c in 0..d {
                            wqkv[(r, 2 * d + c)] = vpart[(r, c)];
                        }
                    }
                }

                Layer {
                    attn_gain,
                    attn_bias,
                    ffn_gain,
                    ffn_bias,
                    wqkv,
                    wo,
                    wgate,
                    wup,
                    wdown,
                    quantized: None,
                }
            })
            .collect();

        let final_gain = norm_gain(d, crate::synth::OutlierSpec::NONE, &mut rng);
        let final_bias = vec![0.0; d];

        let mut model = Model {
            config,
            mode: WeightMode::Fp16,
            embed,
            pos_embed,
            layers,
            final_gain,
            final_bias,
            logit_scale: 1.0,
        };
        model.round_weights_to_f16();
        model
    }

    /// Rounds all GeMM weights to FP16 values (the FP16 storage baseline).
    fn round_weights_to_f16(&mut self) {
        let round = |m: &mut Matrix| m.map_inplace(|v| saturate_to_f16(v).to_f32());
        for layer in &mut self.layers {
            round(&mut layer.wqkv);
            round(&mut layer.wo);
            if let Some(g) = &mut layer.wgate {
                round(g);
            }
            round(&mut layer.wup);
            round(&mut layer.wdown);
        }
    }

    /// Produces the weight-only quantized (W4A16-style) version of this
    /// model: GeMM weights are group-wise INT4; effective weights become the
    /// dequantized values; quantized handles are retained.
    pub fn quantize_weights(&self, qcfg: WeightQuantConfig) -> Model {
        let mut out = self.clone();
        out.mode = WeightMode::Int4;
        for layer in &mut out.layers {
            let qqkv = IntWeightMatrix::quantize(&layer.wqkv, qcfg);
            let qo = IntWeightMatrix::quantize(&layer.wo, qcfg);
            let qgate = layer
                .wgate
                .as_ref()
                .map(|g| IntWeightMatrix::quantize(g, qcfg));
            let qup = IntWeightMatrix::quantize(&layer.wup, qcfg);
            let qdown = IntWeightMatrix::quantize(&layer.wdown, qcfg);

            layer.wqkv = qqkv.dequantize();
            layer.wo = qo.dequantize();
            if let Some(g) = &qgate {
                layer.wgate = Some(g.dequantize());
            }
            layer.wup = qup.dequantize();
            layer.wdown = qdown.dequantize();
            layer.quantized = Some(LayerQuant {
                wqkv: qqkv,
                wo: qo,
                wgate: qgate,
                wup: qup,
                wdown: qdown,
            });
        }
        out
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The weight storage mode.
    pub fn mode(&self) -> WeightMode {
        self.mode
    }

    /// The transformer blocks (weights exposed for the simulator).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Full-sequence forward pass with causal attention.
    ///
    /// Returns the `T × vocab` logit matrix. The four GeMM-module
    /// activations pass through `codecs`.
    ///
    /// Allocates a fresh [`ForwardScratch`] per call; callers evaluating
    /// many sequences (perplexity windows, calibration sweeps) should hold
    /// one scratch and use [`Model::forward_with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, exceeds `max_seq`, or contains an
    /// out-of-vocab id.
    pub fn forward(&self, tokens: &[usize], codecs: &CodecAssignment) -> Matrix {
        let mut scratch = ForwardScratch::new();
        self.forward_with_scratch(tokens, codecs, &mut scratch);
        scratch.logits
    }

    /// [`Model::forward`] with caller-provided buffers: the whole pass —
    /// including the `T × vocab` logit matrix — lives in `scratch`, so no
    /// allocation happens at steady state. Returns a borrow of
    /// `scratch`'s logits.
    pub fn forward_with_scratch<'s>(
        &self,
        tokens: &[usize],
        codecs: &CodecAssignment,
        scratch: &'s mut ForwardScratch,
    ) -> &'s Matrix {
        let t = tokens.len();
        assert!(t > 0, "empty token sequence");
        assert!(
            t <= self.config.max_seq,
            "sequence length {t} exceeds max_seq {}",
            self.config.max_seq
        );
        let d = self.config.d_model;
        let s = scratch;

        // Embedding (+ learned positions for OPT).
        let x = &mut s.x;
        x.resize(t, d);
        for (i, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.config.vocab, "token {tok} out of vocab");
            x.row_mut(i).copy_from_slice(self.embed.row(tok));
            if let Some(pos) = &self.pos_embed {
                for (xv, &pv) in x.row_mut(i).iter_mut().zip(pos.row(i)) {
                    *xv += pv;
                }
            }
        }

        for layer in &self.layers {
            // Attention block.
            s.h.copy_from(x);
            self.apply_norm(&mut s.h, &layer.attn_gain, &layer.attn_bias);
            codecs.qkv.apply_matrix_into(&s.h, &mut s.act);
            s.qkv.resize(t, layer.wqkv.cols());
            s.act.matmul_into(&layer.wqkv, &mut s.qkv);
            self.attention_into(&s.qkv, t, &mut s.attn);
            codecs.o.apply_matrix_into(&s.attn.out, &mut s.act);
            s.proj.resize(t, d);
            s.act.matmul_into(&layer.wo, &mut s.proj);
            x.add_inplace(&s.proj);

            // FFN block.
            s.h.copy_from(x);
            self.apply_norm(&mut s.h, &layer.ffn_gain, &layer.ffn_bias);
            codecs.u.apply_matrix_into(&s.h, &mut s.act);
            let hidden = match (&layer.wgate, self.config.family) {
                (Some(wgate), Family::Llama) => {
                    s.gate.resize(t, wgate.cols());
                    s.act.matmul_into(wgate, &mut s.gate);
                    s.hidden.resize(t, layer.wup.cols());
                    s.act.matmul_into(&layer.wup, &mut s.hidden);
                    for (u, &g) in s.hidden.as_mut_slice().iter_mut().zip(s.gate.as_slice()) {
                        *u *= ops::silu(g);
                    }
                    &s.hidden
                }
                _ => {
                    s.hidden.resize(t, layer.wup.cols());
                    s.act.matmul_into(&layer.wup, &mut s.hidden);
                    s.hidden.map_inplace(ops::relu);
                    &s.hidden
                }
            };
            codecs.d.apply_matrix_into(hidden, &mut s.act);
            s.proj.resize(t, d);
            s.act.matmul_into(&layer.wdown, &mut s.proj);
            x.add_inplace(&s.proj);
        }

        self.apply_norm(x, &self.final_gain, &self.final_bias);
        // Tied LM head: logits = x · Eᵀ (kept in FP, like the paper's
        // non-GeMM operators).
        s.logits.resize(t, self.embed.rows());
        x.matmul_transposed_into(&self.embed, &mut s.logits);
        if self.logit_scale != 1.0 {
            s.logits.scale(self.logit_scale);
        }
        &s.logits
    }

    /// The current logit temperature scale.
    pub fn logit_scale(&self) -> f32 {
        self.logit_scale
    }

    /// Fits the scalar logit scale on `tokens` by grid search (0.5..=1.5 in
    /// 0.05 steps), minimizing perplexity. Returns the chosen scale.
    ///
    /// This is one-parameter post-hoc temperature calibration; it does not
    /// touch any weight and is applied identically under every activation
    /// codec, so relative comparisons between codecs remain untouched.
    pub fn calibrate_logit_scale(&mut self, tokens: &[usize], window: usize) -> f32 {
        let codecs = CodecAssignment::fp16();
        // One scratch serves the whole grid: 21 perplexity sweeps reuse
        // the same forward buffers instead of reallocating per scale.
        let mut scratch = ForwardScratch::new();
        let mut best = (f64::INFINITY, 1.0f32);
        let mut scale = 0.5f32;
        while scale <= 1.501 {
            self.logit_scale = scale;
            let ppl =
                crate::eval::perplexity_with_scratch(self, &codecs, tokens, window, &mut scratch);
            if ppl < best.0 {
                best = (ppl, scale);
            }
            scale += 0.05;
        }
        self.logit_scale = best.1;
        best.1
    }

    fn apply_norm(&self, m: &mut Matrix, gain: &[f32], bias: &[f32]) {
        match self.config.family {
            Family::Opt => ops::layer_norm(m, gain, bias, NORM_EPS),
            Family::Llama => ops::rms_norm(m, gain, NORM_EPS),
        }
    }

    /// Multi-head causal attention over a fused `T × 3d` QKV matrix,
    /// writing the result to `s.out`. All per-head intermediates reuse the
    /// scratch buffers.
    fn attention_into(&self, qkv: &Matrix, t: usize, s: &mut AttnScratch) {
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        s.out.resize(t, d);
        // Heads normally tile the full width; if a hand-built config has
        // d_model % n_heads != 0, zero the buffer so the uncovered tail
        // columns stay deterministically 0.0 instead of holding stale data.
        if self.config.n_heads * dh != d {
            s.out.as_mut_slice().fill(0.0);
        }

        for head in 0..self.config.n_heads {
            let off = head * dh;
            // Gather per-head q, k, v (t × dh), applying RoPE if LLaMA.
            s.q.resize(t, dh);
            s.k.resize(t, dh);
            s.v.resize(t, dh);
            for i in 0..t {
                for c in 0..dh {
                    s.q[(i, c)] = qkv[(i, off + c)];
                    s.k[(i, c)] = qkv[(i, d + off + c)];
                    s.v[(i, c)] = qkv[(i, 2 * d + off + c)];
                }
                if self.config.family == Family::Llama {
                    rope_in_place(s.q.row_mut(i), i);
                    rope_in_place(s.k.row_mut(i), i);
                }
            }

            // scores = q·kᵀ with causal mask, softmax, then ·v.
            s.scores.resize(t, t);
            s.q.matmul_transposed_into(&s.k, &mut s.scores);
            s.scores.scale(scale);
            for i in 0..t {
                for j in (i + 1)..t {
                    s.scores[(i, j)] = f32::NEG_INFINITY;
                }
            }
            ops::softmax_rows(&mut s.scores);
            s.head_out.resize(t, dh);
            s.scores.matmul_into(&s.v, &mut s.head_out);
            for i in 0..t {
                s.out.row_mut(i)[off..off + dh].copy_from_slice(s.head_out.row(i));
            }
        }
    }

    /// Greedy/temperature sampling generation with a KV cache, always using
    /// FP16 reference activations (corpus synthesis path). The cache is a
    /// private paged FP16-policy store ([`KvCache::new`]).
    ///
    /// Returns `prompt.len() + n_new` tokens (prompt included).
    ///
    /// This is the sequential (one-stream) reference the serving layer's
    /// batched decode is bit-exact against: it is built from the same
    /// public pieces ([`Model::prefill`], [`DecodeScratch::sample_last`],
    /// [`Model::decode_step`]) a scheduler composes per stream.
    ///
    /// # Panics
    ///
    /// Panics if the total length exceeds `max_seq` or the prompt is empty.
    pub fn generate(
        &self,
        prompt: &[usize],
        n_new: usize,
        temperature: f32,
        rng: &mut Rng,
    ) -> Vec<usize> {
        let mut cache = KvCache::new(self.config.n_layers);
        self.generate_with_cache(prompt, n_new, temperature, rng, &mut cache)
    }

    /// [`Model::generate`] on a caller-provided (empty) cache, so solo
    /// generation can run under any KV storage policy/pool — the
    /// sequential reference for compressed-KV serving.
    ///
    /// # Panics
    ///
    /// As [`Model::generate`], plus if `cache` is non-empty or covers a
    /// different layer count.
    pub fn generate_with_cache(
        &self,
        prompt: &[usize],
        n_new: usize,
        temperature: f32,
        rng: &mut Rng,
        cache: &mut KvCache,
    ) -> Vec<usize> {
        assert!(
            prompt.len() + n_new <= self.config.max_seq,
            "generation length exceeds max_seq"
        );
        assert!(cache.is_empty(), "generation starts from an empty cache");
        let mut scratch = DecodeScratch::default();
        let mut tokens = prompt.to_vec();
        self.prefill(prompt, cache, &mut scratch);
        for _ in 0..n_new {
            let next = scratch.sample_last(temperature, rng);
            tokens.push(next);
            self.decode_step(next, tokens.len() - 1, cache, &mut scratch);
        }
        tokens
    }

    /// Runs KV-cached prefill: the hidden-state decode pass per token,
    /// starting at the cache's current length, then **one** LM head over
    /// the final position. After the call `s` holds the last position's
    /// next-token logits ([`DecodeScratch::logits`]), ready for the first
    /// sample — bit-identical to running [`Model::decode_step`] per token
    /// (which is how this used to be built), minus the intermediate
    /// positions' LM heads, whose logits nothing ever read.
    ///
    /// Starting at the cache's length is what makes this the
    /// prefill-into-forked-cache entry point for shared-prefix serving: a
    /// cache produced by [`KvCache::fork_prefix`] already holds the prefix
    /// positions, so prefilling only the request's private suffix continues
    /// at the right positions and is bit-identical to prefilling
    /// `prefix ++ suffix` contiguously into a fresh cache — decode steps
    /// depend only on the cached rows, and shared pages hold exactly the
    /// bits a private prefill would have written (copy-on-write preserves
    /// them on append).
    ///
    /// The same resumability powers *chunked* prefill
    /// ([`Model::prefill_chunk`]): any split of `tokens` into consecutive
    /// chunks, prefilled in order against the same cache, writes the same
    /// KV rows and produces the same final logits.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or the cache would grow past `max_seq`.
    pub fn prefill(&self, tokens: &[usize], cache: &mut KvCache, s: &mut DecodeScratch) {
        assert!(!tokens.is_empty(), "prompt must not be empty");
        let start = cache.len();
        for (i, &tok) in tokens.iter().enumerate() {
            self.decode_hidden_impl(tok, start + i, cache, s, true);
        }
        self.lm_head_into(&s.x, &mut s.logits);
    }

    /// One resumable chunk of a prefill: advances the cache by `tokens`
    /// consecutive prompt positions (starting at the cache's current
    /// length — the cursor is the cache itself) and leaves the chunk's
    /// last final-normed hidden state in [`DecodeScratch::hidden_state`].
    /// No LM head runs: mid-prompt logits are dead work, and the serving
    /// layer batches the final chunk's LM head with the rest of its step
    /// ([`Model::lm_head_batch`]).
    ///
    /// Prefilling a prompt as any sequence of chunks is bit-identical to
    /// [`Model::prefill`] in one call: each position's kernels read only
    /// the cache rows before it, which are the same however the chunk
    /// boundaries fall. Kernels run serially (`par = false`), matching
    /// [`Model::decode_hidden`] — this is the per-stream fallback's chunk
    /// unit, called from inside a batch-level scope.
    ///
    /// # Panics
    ///
    /// As [`Model::prefill`].
    pub fn prefill_chunk(&self, tokens: &[usize], cache: &mut KvCache, s: &mut DecodeScratch) {
        assert!(!tokens.is_empty(), "prefill chunk must not be empty");
        let start = cache.len();
        for (i, &tok) in tokens.iter().enumerate() {
            self.decode_hidden_impl(tok, start + i, cache, s, false);
        }
    }

    /// One KV-cached decode step: processes `token` at position `pos` and
    /// leaves the next-token logits in `s` ([`DecodeScratch::logits`]).
    /// Activations stay in FP16 (reference path), matching a full-sequence
    /// [`Model::forward`] with FP16 codecs. All per-token intermediates
    /// reuse `s`'s buffers; K/V rows are written straight into the cache's
    /// tail page (FP16-rounded or Anda-encoded by the cache's policy), so
    /// steady-state decode allocates nothing — the cache leases a pool
    /// page only every `page_positions` tokens.
    ///
    /// Kernels auto-dispatch on the global pool (attention heads, the big
    /// vector matmuls and the LM head shard when the work is large enough);
    /// results are bit-identical to the serial path at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocab, `pos` does not equal the cache's
    /// current length, or `pos` reaches `max_seq`.
    pub fn decode_step(
        &self,
        token: usize,
        pos: usize,
        cache: &mut KvCache,
        s: &mut DecodeScratch,
    ) {
        self.decode_hidden_impl(token, pos, cache, s, true);
        self.lm_head_into(&s.x, &mut s.logits);
    }

    /// The hidden-state half of [`Model::decode_step`]: identical through
    /// the final norm, but stops before the LM head, leaving the
    /// final-normed residual in `s` ([`DecodeScratch::hidden_state`]) so a
    /// serving layer can run the LM head over a whole batch of streams with
    /// one GEMM ([`Model::lm_head_batch`]).
    ///
    /// Kernels run serially: batch schedulers call this from worker jobs
    /// inside **one pool scope per batch** (one job per stream), which
    /// amortizes dispatch better than nested per-kernel scopes. Serial and
    /// pooled kernels are bit-identical, so
    /// `decode_hidden` + [`Model::lm_head_batch`] reproduces
    /// [`Model::decode_step`]'s logits bit-for-bit.
    ///
    /// # Panics
    ///
    /// As [`Model::decode_step`].
    pub fn decode_hidden(
        &self,
        token: usize,
        pos: usize,
        cache: &mut KvCache,
        s: &mut DecodeScratch,
    ) {
        self.decode_hidden_impl(token, pos, cache, s, false);
    }

    /// Grouped variable-length batched attention: advances every stream
    /// in `batch` by one hidden-state step (the [`Model::decode_hidden`]
    /// computation), walking each layer's KV pages **once for the whole
    /// batch** so a physical Anda page decodes at most once per step no
    /// matter how many streams attend through it — the fix for the N×
    /// redundant decode of shared prefix pages.
    ///
    /// Streams may have different context lengths (the variable
    /// dimension, in the oneDNN grouped-memory sense): each stream's
    /// per-head score/prob lanes are sized by its own `t`, and its KV
    /// view is a table of per-page segments (`KvSegment`) resolving into
    /// either its own float pages (read in place) or the shared decode
    /// arena in `decode_cache`.
    ///
    /// Per layer the walk runs three phases:
    ///
    /// 1. **Stage** (one pool job per stream): finish the previous
    ///    layer's post-attention work, then norm → QKV matmul → RoPE →
    ///    KV append, exactly the per-stream op sequence.
    /// 2. **Decode once** (serial): every stream's page table is staged
    ///    against `decode_cache`; an Anda page seen by N streams decodes
    ///    on first sight and is reused by identity thereafter.
    /// 3. **Attend**, fanned across the pool by (stream, head); when the
    ///    batch's total attention work is below the parallel threshold
    ///    (or the pool is single-threaded) the heads run inline instead
    ///    — the serial fallback.
    ///
    /// Every stream's result is bit-identical (`f32::to_bits`) to a solo
    /// [`Model::decode_hidden`] call at any thread count: phases 1 and 3
    /// run the same kernels in the same per-stream order, and decoded
    /// arena rows carry the exact bits per-stream decode scratch would
    /// (per-row decode is independent, so sharing changes nothing). The
    /// per-stream path remains the oracle the grouped suites compare
    /// against.
    ///
    /// # Panics
    ///
    /// As [`Model::decode_hidden`], per entry; also panics if an entry's
    /// cache does not have one layer per model layer.
    pub fn decode_hidden_batch(
        &self,
        batch: &mut [BatchEntry<'_>],
        decode_cache: &mut PageDecodeCache,
        pool: &ThreadPool,
    ) {
        for entry in batch.iter() {
            assert!(
                !entry.tokens.is_empty(),
                "batch entry must carry at least one token"
            );
            for &token in entry.tokens {
                assert!(token < self.config.vocab, "token {token} out of vocab");
            }
            assert_eq!(
                entry.pos,
                entry.cache.len(),
                "decode position must match the cached length"
            );
            assert!(
                entry.pos + entry.tokens.len() <= self.config.max_seq,
                "positions {}..{} exceed max_seq {}",
                entry.pos,
                entry.pos + entry.tokens.len(),
                self.config.max_seq
            );
            assert_eq!(
                entry.cache.n_layers(),
                self.layers.len(),
                "cache layer count must match the model"
            );
        }
        if batch.is_empty() {
            return;
        }
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let heads = self.config.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let n_layers = self.layers.len();

        for l in 0..n_layers {
            let layer = &self.layers[l];
            let prev = l.checked_sub(1).map(|p| &self.layers[p]);
            // On the last layer only each entry's final lane feeds
            // anything downstream: earlier chunk tokens exist to append
            // their K/V rows, and once those land (phase 1) their
            // attend/finish would compute dead residuals — so the walk
            // skips them. A span of one (a decode step) skips nothing.
            let last_layer = l + 1 == n_layers;

            // Phase 1: per-stream pre-attention staging, entries claimed
            // one at a time across the pool. Within an entry the span's
            // tokens run strictly in position order — lane j's staging
            // reads lane j's residual and appends its K/V row before
            // lane j+1 stages — which is exactly the solo per-token op
            // sequence (embed, then per layer: stage → append → attend →
            // finish); a decode step is simply a span of one.
            pool.par_chunks_mut(batch, 1, |_, part| {
                let entry = &mut part[0];
                let span = entry.tokens.len();
                let s = &mut *entry.scratch;
                if prev.is_none() {
                    s.x.clear();
                    s.x.resize(span * d, 0.0);
                    s.q.clear();
                    s.q.resize(span * d, 0.0);
                }
                for (j, &token) in entry.tokens.iter().enumerate() {
                    match prev {
                        None => {
                            self.embed_into_lane(token, entry.pos + j, &mut s.x[j * d..(j + 1) * d])
                        }
                        Some(prev) => self.finish_layer_lane(prev, j, s, false),
                    }
                    self.stage_qkv_lane(layer, entry.pos + j, j, s, false);
                    let (kv_pool, kv_layers) = entry.cache.split_mut();
                    kv_layers[l].push(kv_pool, &s.k_row, &s.v_row);
                }
            });

            // Phase 2 (serial): stage every stream's KV view. Each
            // physical Anda page *reserves* a shared-arena range at most
            // once this layer, keyed by page identity — shared prefix
            // pages land once for the whole batch, and a prefill chunk
            // attending through a forked prefix reuses the same staging.
            // Lane j of a span attends its causal window `t_j = pos + j
            // + 1`, shorter than the table (which already holds the
            // whole span's rows); `attend_head` reads exactly
            // `scores_h.len()` leading rows, which is what makes a chunk
            // lane causal — and bit-identical to the solo decode of
            // position `pos + j` — for free.
            decode_cache.begin_layer();
            let mut batch_muladds = 0usize;
            for (idx, entry) in batch.iter_mut().enumerate() {
                let span = entry.tokens.len();
                let kv = entry.cache.layer(l);
                debug_assert_eq!(kv.len(), entry.pos + span, "phase 1 appended the span");
                let s = &mut *entry.scratch;
                decode_cache.stage_layer(idx, kv, &mut s.kv_segs);
                let lane0 = if last_layer { span - 1 } else { 0 };
                s.attn.clear();
                s.attn.resize(span * d, 0.0);
                let mut lane_floats = 0usize;
                for j in lane0..span {
                    let t_j = entry.pos + j + 1;
                    lane_floats += heads * t_j;
                    batch_muladds += 2 * heads * t_j * dh;
                }
                s.scores.clear();
                s.scores.resize(lane_floats, 0.0);
                s.probs.clear();
                s.probs.resize(lane_floats, 0.0);
            }

            // Phase 2b: decode the newly staged pages into their
            // (disjoint, bump-allocated in staging order) arena ranges.
            // Pages are independent, so the decode fans across the pool
            // when there is enough of it; the arena is carved inside the
            // scope directly, so no per-layer job list is allocated.
            {
                let (pending, arena_k, arena_v) = decode_cache.pending_split();
                let decode_elems: usize = pending.iter().map(|p| p.fill * d).sum();
                let fan_decode =
                    pool.threads() > 1 && pending.len() > 1 && decode_elems >= DECODE_PAR_MIN_ELEMS;
                let batch_ref: &[BatchEntry<'_>] = &*batch;
                let mut k_rest: &mut [f32] = arena_k;
                let mut v_rest: &mut [f32] = arena_v;
                let mut cursor = 0usize;
                pool.scope(|sc| {
                    for p in pending.iter() {
                        debug_assert_eq!(p.off, cursor, "pending ranges must be contiguous");
                        let elems = p.fill * d;
                        let (k_chunk, k_tail) = std::mem::take(&mut k_rest).split_at_mut(elems);
                        let (v_chunk, v_tail) = std::mem::take(&mut v_rest).split_at_mut(elems);
                        k_rest = k_tail;
                        v_rest = v_tail;
                        cursor += elems;
                        let (entry, page, fill) = (p.entry, p.page, p.fill);
                        let mut job = move || {
                            batch_ref[entry]
                                .cache
                                .layer(l)
                                .page_at(page)
                                .decode_rows_into(fill, k_chunk, v_chunk);
                        };
                        if fan_decode {
                            sc.spawn(job);
                        } else {
                            job();
                        }
                    }
                });
                pending.clear();
            }

            // Phase 3: attend, fanned by (stream, lane, head). Below the
            // work threshold the heads run inline — the serial fallback
            // (the decode-once staging above is kept either way).
            let (arena_k, arena_v) = decode_cache.arenas();
            let fan_out = pool.threads() > 1 && batch_muladds >= ATTN_PAR_MIN_MULADDS;
            pool.scope(|sc| {
                for entry in batch.iter_mut() {
                    let span = entry.tokens.len();
                    let pos = entry.pos;
                    let kv = entry.cache.layer(l);
                    let DecodeScratch {
                        q,
                        attn,
                        scores,
                        probs,
                        kv_segs,
                        ..
                    } = &mut *entry.scratch;
                    let rows = KvRows::Grouped {
                        layer: kv,
                        arena_k,
                        arena_v,
                        segs: kv_segs,
                    };
                    let q: &[f32] = q;
                    let lane0 = if last_layer { span - 1 } else { 0 };
                    let mut attn_rest: &mut [f32] = &mut attn[lane0 * d..];
                    let mut scores_rest: &mut [f32] = scores;
                    let mut probs_rest: &mut [f32] = probs;
                    for j in lane0..span {
                        let t_j = pos + j + 1;
                        let (attn_j, a_tail) = std::mem::take(&mut attn_rest).split_at_mut(d);
                        let (scores_j, s_tail) =
                            std::mem::take(&mut scores_rest).split_at_mut(heads * t_j);
                        let (probs_j, p_tail) =
                            std::mem::take(&mut probs_rest).split_at_mut(heads * t_j);
                        attn_rest = a_tail;
                        scores_rest = s_tail;
                        probs_rest = p_tail;
                        let q_j = &q[j * d..(j + 1) * d];
                        let head_lanes = attn_j
                            .chunks_mut(dh)
                            .zip(scores_j.chunks_mut(t_j).zip(probs_j.chunks_mut(t_j)))
                            .enumerate();
                        for (head, (attn_h, (scores_h, probs_h))) in head_lanes {
                            if fan_out {
                                sc.spawn(move || {
                                    attend_head(
                                        q_j, rows, head, dh, scale, attn_h, scores_h, probs_h,
                                    );
                                });
                            } else {
                                attend_head(q_j, rows, head, dh, scale, attn_h, scores_h, probs_h);
                            }
                        }
                    }
                }
            });
        }

        // Epilogue: finish the last layer's final lane and apply the
        // final norm, entries claimed across the pool; the final lane's
        // residual is collapsed to the front of `x` so
        // `hidden_state()` stays `d_model` wide regardless of span.
        let last = self.layers.last().expect("models have at least one layer");
        pool.par_chunks_mut(batch, 1, |_, part| {
            let entry = &mut part[0];
            let span = entry.tokens.len();
            let s = &mut *entry.scratch;
            self.finish_layer_lane(last, span - 1, s, false);
            if span > 1 {
                s.x.copy_within((span - 1) * d.., 0);
            }
            s.x.truncate(d);
            self.norm_vec(&mut s.x, &self.final_gain, &self.final_bias);
        });
    }

    /// Shared decode body; `par` gates every pool dispatch (the serving
    /// layer runs with `par = false` inside its own batch-level scope).
    fn decode_hidden_impl(
        &self,
        token: usize,
        pos: usize,
        cache: &mut KvCache,
        s: &mut DecodeScratch,
        par: bool,
    ) {
        assert!(token < self.config.vocab, "token {token} out of vocab");
        assert_eq!(
            pos,
            cache.len(),
            "decode position must match the cached length"
        );
        assert!(
            pos < self.config.max_seq,
            "decode position {pos} reaches max_seq {}",
            self.config.max_seq
        );
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let heads = self.config.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();

        self.embed_into(token, pos, &mut s.x);

        let storage = cache.storage();
        let (kv_pool, kv_layers) = cache.split_mut();
        for (layer, kv) in self.layers.iter().zip(kv_layers.iter_mut()) {
            // Attention block.
            self.stage_qkv(layer, pos, s, par);
            kv.push(kv_pool, &s.k_row, &s.v_row);

            let t = kv.len();
            s.attn.clear();
            s.attn.resize(d, 0.0);
            // Flat per-head score/prob lanes so heads can run concurrently:
            // head `h` owns `attn[h·dh..]`, `scores[h·t..]`, `probs[h·t..]`.
            s.scores.clear();
            s.scores.resize(heads * t, 0.0);
            s.probs.clear();
            s.probs.resize(heads * t, 0.0);
            // Float pages are attended in place; Anda pages decode once
            // per layer into the read scratch, and every head reads the
            // same decoded planes.
            let rows = match storage {
                KvStorage::Fp32 | KvStorage::Fp16 | KvStorage::Bf16 => KvRows::InPlace(kv),
                KvStorage::Anda { .. } => {
                    kv.decode_rows(&mut s.kv_read.k, &mut s.kv_read.v);
                    KvRows::Decoded {
                        k: &s.kv_read.k,
                        v: &s.kv_read.v,
                        dim: d,
                    }
                }
            };
            let q = &s.q;
            let head_lanes = s
                .attn
                .chunks_mut(dh)
                .zip(s.scores.chunks_mut(t).zip(s.probs.chunks_mut(t)))
                .enumerate();
            let pool = rayon_lite::global();
            if par && pool.threads() > 1 && heads > 1 && 2 * heads * t * dh >= ATTN_PAR_MIN_MULADDS
            {
                pool.scope(|sc| {
                    for (head, (attn_h, (scores_h, probs_h))) in head_lanes {
                        sc.spawn(move || {
                            attend_head(q, rows, head, dh, scale, attn_h, scores_h, probs_h);
                        });
                    }
                });
            } else {
                for (head, (attn_h, (scores_h, probs_h))) in head_lanes {
                    attend_head(q, rows, head, dh, scale, attn_h, scores_h, probs_h);
                }
            }
            self.finish_layer(layer, s, par);
        }

        self.norm_vec(&mut s.x, &self.final_gain, &self.final_bias);
    }

    /// Embeds `token` (plus the learned position embedding for OPT-style
    /// models) into the residual buffer `x` — the step every decode pass
    /// opens with.
    fn embed_into(&self, token: usize, pos: usize, x: &mut Vec<f32>) {
        x.clear();
        x.resize(self.config.d_model, 0.0);
        self.embed_into_lane(token, pos, x);
    }

    /// [`Model::embed_into`] targeting one pre-sized `d_model`-wide lane
    /// of a multi-token residual buffer (prefill chunks keep one lane
    /// per chunk token).
    fn embed_into_lane(&self, token: usize, pos: usize, x_lane: &mut [f32]) {
        x_lane.copy_from_slice(self.embed.row(token));
        if let Some(posm) = &self.pos_embed {
            for (xv, &pv) in x_lane.iter_mut().zip(posm.row(pos)) {
                *xv += pv;
            }
        }
    }

    /// Pre-attention half of one decode layer: residual norm, FP16
    /// rounding, the fused QKV matmul, the head split and RoPE. Leaves
    /// the current-position query in `s.q` and the staged (post-RoPE)
    /// K/V rows in `s.k_row`/`s.v_row`, ready for the cache append.
    /// Shared verbatim by the per-stream and grouped decode paths, so
    /// the two cannot drift numerically.
    fn stage_qkv(&self, layer: &Layer, pos: usize, s: &mut DecodeScratch, par: bool) {
        s.q.clear();
        s.q.resize(self.config.d_model, 0.0);
        self.stage_qkv_lane(layer, pos, 0, s, par);
    }

    /// [`Model::stage_qkv`] for lane `lane` of a multi-token span: reads
    /// the residual from `s.x`'s lane, writes the query into `s.q`'s
    /// lane (both pre-sized `span × d`), and stages the K/V rows in the
    /// shared `s.k_row`/`s.v_row` temporaries — span tokens run
    /// sequentially within a batch entry, so the staged rows are
    /// consumed (cache-appended) before the next lane overwrites them.
    fn stage_qkv_lane(
        &self,
        layer: &Layer,
        pos: usize,
        lane: usize,
        s: &mut DecodeScratch,
        par: bool,
    ) {
        let d = self.config.d_model;
        let dh = self.config.d_head();
        let heads = self.config.n_heads;
        let DecodeScratch {
            x,
            h,
            qkv,
            q,
            k_row,
            v_row,
            ..
        } = s;
        h.clear();
        h.extend_from_slice(&x[lane * d..(lane + 1) * d]);
        self.norm_vec(h, &layer.attn_gain, &layer.attn_bias);
        round_to_f16(h);
        vec_matmul_into(h, &layer.wqkv, qkv, par);
        let q_lane = &mut q[lane * d..(lane + 1) * d];
        q_lane.copy_from_slice(&qkv[..d]);
        // Stage the K/V rows in scratch; the cache's tail page encodes
        // them under its storage policy (no per-token allocation).
        k_row.clear();
        k_row.extend_from_slice(&qkv[d..2 * d]);
        v_row.clear();
        v_row.extend_from_slice(&qkv[2 * d..]);
        if self.config.family == Family::Llama {
            for head in 0..heads {
                rope_in_place(&mut q_lane[head * dh..(head + 1) * dh], pos);
                rope_in_place(&mut k_row[head * dh..(head + 1) * dh], pos);
            }
        }
    }

    /// Post-attention half of one decode layer: FP16-rounds the head
    /// mix, output projection + residual, then the FFN block + residual.
    /// Shared verbatim by the per-stream and grouped decode paths.
    fn finish_layer(&self, layer: &Layer, s: &mut DecodeScratch, par: bool) {
        self.finish_layer_lane(layer, 0, s, par);
    }

    /// [`Model::finish_layer`] for lane `lane` of a multi-token span:
    /// reads the head mix from `s.attn`'s lane and updates `s.x`'s lane
    /// in place; the GeMM temporaries (`h`, `gate`, `hidden`, `proj`)
    /// are shared across lanes, sequential within a batch entry.
    fn finish_layer_lane(&self, layer: &Layer, lane: usize, s: &mut DecodeScratch, par: bool) {
        let d = self.config.d_model;
        let DecodeScratch {
            x,
            h,
            attn,
            proj,
            gate,
            hidden,
            ..
        } = s;
        let x_lane = &mut x[lane * d..(lane + 1) * d];
        let attn_lane = &mut attn[lane * d..(lane + 1) * d];
        round_to_f16(attn_lane);
        vec_matmul_into(attn_lane, &layer.wo, proj, par);
        for (xv, ov) in x_lane.iter_mut().zip(&*proj) {
            *xv += ov;
        }

        // FFN block.
        h.clear();
        h.extend_from_slice(x_lane);
        self.norm_vec(h, &layer.ffn_gain, &layer.ffn_bias);
        round_to_f16(h);
        match (&layer.wgate, self.config.family) {
            (Some(wgate), Family::Llama) => {
                vec_matmul_into(h, wgate, gate, par);
                vec_matmul_into(h, &layer.wup, hidden, par);
                for (u, &g) in hidden.iter_mut().zip(&*gate) {
                    *u *= ops::silu(g);
                }
            }
            _ => {
                vec_matmul_into(h, &layer.wup, hidden, par);
                for u in hidden.iter_mut() {
                    *u = ops::relu(*u);
                }
            }
        }
        round_to_f16(hidden);
        vec_matmul_into(hidden, &layer.wdown, proj, par);
        for (xv, dv) in x_lane.iter_mut().zip(&*proj) {
            *xv += dv;
        }
    }

    /// Runs the tied LM head over a whole batch of decode hidden states
    /// with one GEMM-shaped dispatch: every `B × vocab` output element is
    /// the same ascending-`k` dot [`Model::decode_step`] computes, so row
    /// `i` of [`BatchOutput::logits_row`] is bit-identical to the logits a
    /// solo `decode_step` would have produced for stream `i` — batching
    /// only amortizes the pool dispatch, it never changes a value.
    ///
    /// Uses the global pool; see [`Model::lm_head_batch_pool`] for an
    /// explicit pool (tests pin thread counts with it).
    ///
    /// # Panics
    ///
    /// Panics if a pushed hidden row is not `d_model` wide.
    pub fn lm_head_batch(&self, batch: &mut BatchOutput) {
        self.lm_head_batch_pool(batch, rayon_lite::global());
    }

    /// [`Model::lm_head_batch`] on an explicit pool.
    pub fn lm_head_batch_pool(&self, batch: &mut BatchOutput, pool: &ThreadPool) {
        let d = self.config.d_model;
        let vocab = self.config.vocab;
        let b = batch.len();
        if b > 0 {
            assert_eq!(batch.dim, d, "hidden width must be d_model");
        }
        batch.logits.resize(b, vocab);
        if b == 0 {
            return;
        }
        let hidden = &batch.hidden;
        // Element f of the flat B × vocab output, computed exactly like
        // `lm_head_into`'s per-token dot (ascending k, one accumulator).
        let elem = |f: usize| -> f32 {
            let (row, tok) = (f / vocab, f % vocab);
            let x = &hidden[row * d..(row + 1) * d];
            let dot: f32 = self
                .embed
                .row(tok)
                .iter()
                .zip(x.iter())
                .map(|(&e, &xv)| e * xv)
                .sum();
            dot * self.logit_scale
        };
        let total = b * vocab;
        let out = &mut batch.logits.as_mut_slice()[..total];
        if pool.threads() > 1 && total * d >= VEC_PAR_MIN_MULADDS && total > 1 {
            let chunk = total.div_ceil(pool.threads()).max(1);
            pool.par_chunks_mut(out, chunk, |idx, part| {
                for (off, o) in part.iter_mut().enumerate() {
                    *o = elem(idx * chunk + off);
                }
            });
        } else {
            for (f, o) in out.iter_mut().enumerate() {
                *o = elem(f);
            }
        }
    }

    /// Tied LM head for one position: `logits[tok] = embed[tok] · x` times
    /// the logit scale. Vocab rows are sharded across the global pool when
    /// large enough; each logit is one sequential dot either way, so the
    /// parallel result is bit-identical to the serial one.
    fn lm_head_into(&self, x: &[f32], logits: &mut Vec<f32>) {
        let vocab = self.config.vocab;
        let row_logit = |tok: usize| -> f32 {
            let dot: f32 = self
                .embed
                .row(tok)
                .iter()
                .zip(x.iter())
                .map(|(&e, &xv)| e * xv)
                .sum();
            dot * self.logit_scale
        };
        logits.clear();
        let pool = rayon_lite::global();
        if pool.threads() > 1 && vocab * x.len() >= VEC_PAR_MIN_MULADDS && vocab > 1 {
            logits.resize(vocab, 0.0);
            let toks_per_chunk = vocab.div_ceil(pool.threads()).max(1);
            pool.par_chunks_mut(&mut logits[..], toks_per_chunk, |idx, chunk| {
                for (off, l) in chunk.iter_mut().enumerate() {
                    *l = row_logit(idx * toks_per_chunk + off);
                }
            });
        } else {
            logits.extend((0..vocab).map(row_logit));
        }
    }

    fn norm_vec(&self, v: &mut [f32], gain: &[f32], bias: &[f32]) {
        let n = v.len() as f32;
        match self.config.family {
            Family::Opt => {
                let mean = v.iter().sum::<f32>() / n;
                let var = v.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
                let inv = 1.0 / (var + NORM_EPS).sqrt();
                for ((x, &g), &b) in v.iter_mut().zip(gain).zip(bias) {
                    *x = (*x - mean) * inv * g + b;
                }
            }
            Family::Llama => {
                let ms = v.iter().map(|&x| x * x).sum::<f32>() / n;
                let inv = 1.0 / (ms + NORM_EPS).sqrt();
                for (x, &g) in v.iter_mut().zip(gain) {
                    *x = *x * inv * g;
                }
            }
        }
    }
}

/// Reusable buffers for [`Model::forward_with_scratch`].
///
/// Holding one scratch across calls (perplexity windows, calibration
/// sweeps, codec comparisons) removes every per-layer allocation from the
/// forward pass; buffers are resized in place as sequence length and layer
/// widths require.
#[derive(Clone, Debug, Default)]
pub struct ForwardScratch {
    /// Residual stream (`t × d`).
    x: Matrix,
    /// Normalized residual input to a GeMM block.
    h: Matrix,
    /// Codec-processed activations.
    act: Matrix,
    /// Fused QKV projection output (`t × 3d`).
    qkv: Matrix,
    /// Attention/FFN output projection (`t × d`).
    proj: Matrix,
    /// SwiGLU gate projection (`t × ffn`), LLaMA family only.
    gate: Matrix,
    /// FFN hidden activations (`t × ffn`).
    hidden: Matrix,
    /// Attention working set.
    attn: AttnScratch,
    /// Output logits (`t × vocab`), the pass's return value.
    logits: Matrix,
}

impl ForwardScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-head attention buffers (part of [`ForwardScratch`]).
#[derive(Clone, Debug, Default)]
struct AttnScratch {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    scores: Matrix,
    head_out: Matrix,
    /// Concatenated head outputs (`t × d`).
    out: Matrix,
}

/// Reusable buffers for KV-cached decode steps; one instance serves a
/// whole generation loop (or one serving-layer stream), so per-token work
/// allocates nothing at steady state (pair with [`DecodeScratch::reserve`]
/// and [`crate::kv::PagePool::preallocate`] for a hard zero).
#[derive(Clone, Debug, Default)]
pub struct DecodeScratch {
    /// Residual stream (`d`); after a decode pass, the final-normed hidden
    /// state ([`DecodeScratch::hidden_state`]).
    x: Vec<f32>,
    /// Normalized GeMM input.
    h: Vec<f32>,
    /// Fused QKV output (`3d`).
    qkv: Vec<f32>,
    /// Current-position query (`d`).
    q: Vec<f32>,
    /// Attention mix output (`d`).
    attn: Vec<f32>,
    /// Per-head attention scores over cached positions (`heads × t`,
    /// head-major lanes).
    scores: Vec<f32>,
    /// Per-head log-softmax output (`heads × t`, head-major lanes).
    probs: Vec<f32>,
    /// Output/down projection result (`d`).
    proj: Vec<f32>,
    /// SwiGLU gate (`ffn`).
    gate: Vec<f32>,
    /// FFN hidden activations (`ffn`).
    hidden: Vec<f32>,
    /// Next-token logits (`vocab`).
    logits: Vec<f32>,
    /// Staged current-position key row (`d`, post-RoPE) awaiting the
    /// cache append.
    k_row: Vec<f32>,
    /// Staged current-position value row (`d`).
    v_row: Vec<f32>,
    /// Decoded K/V read planes for compressed caches (`t × d` each).
    kv_read: KvReadScratch,
    /// Per-page KV view segments staged for a grouped batched attend
    /// (one per page; see [`Model::decode_hidden_batch`]).
    kv_segs: Vec<KvSegment>,
}

impl DecodeScratch {
    /// Empty scratch; buffers grow to steady-state sizes on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves every decode buffer for `config`-shaped models at
    /// contexts up to `max_len` positions, so no later decode step ever
    /// grows a buffer. With the cache's pool preallocated and its page
    /// tables reserved, decoding is then allocation-free per token (the
    /// `kv_alloc` counting-allocator suite enforces this).
    pub fn reserve(&mut self, config: &ModelConfig, max_len: usize) {
        let d = config.d_model;
        let ffn = config.d_ffn;
        let lanes = (config.n_heads * max_len).max(config.vocab);
        self.x.reserve(d);
        self.h.reserve(d);
        self.qkv.reserve(3 * d);
        self.q.reserve(d);
        self.attn.reserve(d);
        self.proj.reserve(d);
        self.gate.reserve(ffn);
        self.hidden.reserve(ffn);
        // Score/prob lanes double as sampling staging (`vocab` wide).
        self.scores.reserve(lanes);
        self.probs.reserve(lanes);
        self.logits.reserve(config.vocab);
        self.k_row.reserve(d);
        self.v_row.reserve(d);
        self.kv_read.reserve(max_len, d);
        // One segment per page; pages never outnumber positions.
        self.kv_segs.reserve(max_len);
    }

    /// The next-token logits left by the last [`Model::decode_step`] /
    /// [`Model::prefill`] (empty before the first step).
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// The final-normed hidden state left by the last decode pass
    /// (`d_model` wide), the row [`BatchOutput::push_hidden`] gathers.
    /// (This is the residual-stream buffer, distinct from the FFN's
    /// internal `hidden` activations.)
    pub fn hidden_state(&self) -> &[f32] {
        &self.x
    }

    /// Samples from the scratch's own logits (the last decoded position),
    /// staging in the idle score/prob buffers. Greedy argmax when
    /// `temperature <= 0` (no RNG draw).
    pub fn sample_last(&mut self, temperature: f32, rng: &mut Rng) -> usize {
        let DecodeScratch {
            logits,
            scores,
            probs,
            ..
        } = self;
        sample_logits(logits, temperature, rng, scores, probs)
    }

    /// Copies `src`'s logits into this scratch, so a stream forked from
    /// a live donor (`KvCache::fork_full`) can sample its first token via
    /// [`DecodeScratch::sample_last`] exactly as if it had run the
    /// donor's prefill itself — the logits of the last prompt position
    /// are a pure function of the prompt, so every forked sibling starts
    /// from bit-identical logits.
    pub fn adopt_logits(&mut self, src: &DecodeScratch) {
        self.logits.clear();
        self.logits.extend_from_slice(&src.logits);
    }

    /// Samples from caller-provided logits (a [`BatchOutput`] row), with
    /// the same staging reuse as [`DecodeScratch::sample_last`].
    pub fn sample(&mut self, logits: &[f32], temperature: f32, rng: &mut Rng) -> usize {
        sample_logits(logits, temperature, rng, &mut self.scores, &mut self.probs)
    }
}

/// One stream's slot in a [`Model::decode_hidden_batch`] call: the
/// token span to process, its starting position, and mutable borrows of
/// the stream's own cache and scratch. Entries are independent (disjoint
/// borrows), which is what lets the grouped walk fan per-stream work
/// across pool workers.
///
/// A classic decode step is a span of one (the stream's latest sampled
/// token); a *prefill chunk* is a span of several consecutive prompt
/// positions, processed in one grouped step with per-token causal
/// attention — the two are the same operation at different widths, so
/// the serving layer packs them into the same batch.
pub struct BatchEntry<'s> {
    /// The consecutive tokens to process (non-empty). One token is a
    /// decode step; several are a prefill chunk.
    pub tokens: &'s [usize],
    /// Position of `tokens[0]`; must equal `cache.len()`.
    pub pos: usize,
    /// The stream's KV cache.
    pub cache: &'s mut KvCache,
    /// The stream's decode scratch; receives the final-normed hidden
    /// state of the span's **last** token
    /// ([`DecodeScratch::hidden_state`]).
    pub scratch: &'s mut DecodeScratch,
}

/// Batched LM-head staging for a serving layer: hidden rows gathered from
/// per-stream [`DecodeScratch`]es, logits produced for the whole batch by
/// one [`Model::lm_head_batch`] dispatch.
///
/// The buffers persist across engine iterations; [`BatchOutput::clear`]
/// empties the batch without releasing capacity.
#[derive(Clone, Debug, Default)]
pub struct BatchOutput {
    /// Gathered hidden rows, row-major (`B × d`).
    hidden: Vec<f32>,
    /// Hidden row width (set by the first push after a clear).
    dim: usize,
    /// Batch logits (`B × vocab`).
    logits: Matrix,
}

impl BatchOutput {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows currently gathered.
    pub fn len(&self) -> usize {
        self.hidden.len().checked_div(self.dim).unwrap_or(0)
    }

    /// `true` when no rows are gathered.
    pub fn is_empty(&self) -> bool {
        self.hidden.is_empty()
    }

    /// Empties the batch, keeping allocations for the next iteration.
    pub fn clear(&mut self) {
        self.hidden.clear();
        self.dim = 0;
    }

    /// Appends one stream's hidden state ([`DecodeScratch::hidden_state`]).
    ///
    /// # Panics
    ///
    /// Panics if `h` is empty or its width differs from earlier rows.
    pub fn push_hidden(&mut self, h: &[f32]) {
        assert!(!h.is_empty(), "hidden row must not be empty");
        if self.hidden.is_empty() {
            self.dim = h.len();
        } else {
            assert_eq!(h.len(), self.dim, "hidden rows must share one width");
        }
        self.hidden.extend_from_slice(h);
    }

    /// Row `i` of the batch logits computed by [`Model::lm_head_batch`].
    pub fn logits_row(&self, i: usize) -> &[f32] {
        self.logits.row(i)
    }
}

/// Below this many multiply-adds the decode-path vector kernels run
/// serially even when the global pool has threads (dispatch overhead
/// would dominate). Unlike the prefill GeMMs, which shard output rows,
/// decode works on a single token, so these kernels shard output
/// *columns*; each element still accumulates over k in ascending order,
/// keeping results bit-identical at every thread count.
const VEC_PAR_MIN_MULADDS: usize = 256 * 1024;

/// Below this many multiply-adds (`2 · heads · t · d_head`, the score and
/// mix loops together) the decode attention runs its heads serially.
/// Head sharding never changes a value: each head owns disjoint
/// `attn`/`scores`/`probs` lanes and its math is independent of the
/// sharding, so results stay bit-identical at every thread count.
const ATTN_PAR_MIN_MULADDS: usize = 16 * 1024;

/// Below this many arena floats (K-plane elements; each page job also
/// decodes its V plane) the grouped step decodes pending pages inline
/// instead of fanning one job per page. Decode order never changes a
/// bit: every page decodes into its own disjoint arena range and per-row
/// decode is independent.
const DECODE_PAR_MIN_ELEMS: usize = 1024;

/// `v(1×k) · m(k×n)` row-vector matmul into a reused buffer.
///
/// With `par`, output columns are sharded across the global pool when the
/// product is large enough; each chunk walks k in the same ascending order
/// (with the same `a == 0` skip) as the serial loop, so the parallel
/// result is bit-identical.
/// Rounds every lane through saturating FP16 — the reference activation
/// precision between decode kernels (§V-A keeps non-GeMM operators in
/// FP16).
fn round_to_f16(v: &mut [f32]) {
    for x in v.iter_mut() {
        *x = saturate_to_f16(*x).to_f32();
    }
}

fn vec_matmul_into(v: &[f32], m: &Matrix, out: &mut Vec<f32>, par: bool) {
    assert_eq!(v.len(), m.rows(), "vec_matmul shape mismatch");
    let n = m.cols();
    out.clear();
    out.resize(n, 0.0);
    let pool = rayon_lite::global();
    if par && pool.threads() > 1 && v.len() * n >= VEC_PAR_MIN_MULADDS && n > 1 {
        let cols_per_chunk = n.div_ceil(pool.threads()).max(1);
        pool.par_chunks_mut(&mut out[..], cols_per_chunk, |idx, chunk| {
            let c0 = idx * cols_per_chunk;
            for (kidx, &a) in v.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_cols = &m.row(kidx)[c0..c0 + chunk.len()];
                for (o, &b) in chunk.iter_mut().zip(b_cols) {
                    *o += a * b;
                }
            }
        });
    } else {
        for (kidx, &a) in v.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (o, &b) in out.iter_mut().zip(m.row(kidx)) {
                *o += a * b;
            }
        }
    }
}

/// Applies rotary position embedding to one head row at position `pos`.
fn rope_in_place(row: &mut [f32], pos: usize) {
    let dh = row.len();
    let half = dh / 2;
    for i in 0..half {
        let theta = pos as f32 / 10000f32.powf(2.0 * i as f32 / dh as f32);
        let (sin, cos) = theta.sin_cos();
        let (a, b) = (row[2 * i], row[2 * i + 1]);
        row[2 * i] = a * cos - b * sin;
        row[2 * i + 1] = a * sin + b * cos;
    }
}

/// Samples a token from `logits / temperature`, staging the scaled logits
/// and probabilities in caller-provided buffers (cleared and refilled).
fn sample_logits(
    logits: &[f32],
    temperature: f32,
    rng: &mut Rng,
    scaled: &mut Vec<f32>,
    probs: &mut Vec<f32>,
) -> usize {
    if temperature <= 0.0 {
        return ops::argmax(logits);
    }
    scaled.clear();
    scaled.extend(logits.iter().map(|&l| l / temperature));
    ops::log_softmax_into(scaled, probs);
    for p in probs.iter_mut() {
        *p = p.exp();
    }
    rng.categorical(probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn tiny_spec() -> zoo::SimModelSpec {
        zoo::sim_models()
            .into_iter()
            .find(|s| s.sim.name == "OPT-125M-sim")
            .unwrap()
    }

    #[test]
    fn forward_shapes() {
        let spec = tiny_spec();
        let model = spec.build();
        let tokens = [1usize, 5, 9, 2];
        let logits = model.forward(&tokens, &CodecAssignment::fp16());
        assert_eq!(logits.shape(), (4, model.config().vocab));
    }

    #[test]
    fn forward_is_deterministic() {
        let spec = tiny_spec();
        let model = spec.build();
        let tokens = [3usize, 1, 4, 1, 5];
        let a = model.forward(&tokens, &CodecAssignment::fp16());
        let b = model.forward(&tokens, &CodecAssignment::fp16());
        assert_eq!(a, b);
    }

    #[test]
    fn causal_masking_prefix_invariance() {
        // Logits at position i must not depend on later tokens.
        let spec = tiny_spec();
        let model = spec.build();
        let codecs = CodecAssignment::fp16();
        let a = model.forward(&[7, 8, 9, 10], &codecs);
        let b = model.forward(&[7, 8, 9, 450], &codecs);
        for c in 0..model.config().vocab {
            assert!((a[(1, c)] - b[(1, c)]).abs() < 1e-4);
            assert!((a[(2, c)] - b[(2, c)]).abs() < 1e-4);
        }
    }

    #[test]
    fn quantized_model_stays_close_to_fp16() {
        let spec = tiny_spec();
        let model = spec.build();
        let q = model.quantize_weights(WeightQuantConfig::w4_g128());
        assert_eq!(q.mode(), WeightMode::Int4);
        let codecs = CodecAssignment::fp16();
        let tokens = [2usize, 4, 6, 8, 10, 12];
        let a = model.forward(&tokens, &codecs);
        let b = q.forward(&tokens, &codecs);
        // Correlated but not identical.
        let mut diff = 0.0f32;
        let mut norm = 0.0f32;
        for i in 0..tokens.len() {
            for c in 0..model.config().vocab {
                diff += (a[(i, c)] - b[(i, c)]).powi(2);
                norm += a[(i, c)].powi(2);
            }
        }
        assert!(diff > 0.0, "quantization must change logits");
        // Tiny sim models are far more weight-quantization-sensitive than
        // billion-parameter LLMs; the working requirement is only that the
        // W4A16 model remains a usable baseline (all Table II accuracy
        // numbers are measured relative to it, as in the paper).
        assert!(diff / norm < 0.5, "relative logit error {}", diff / norm);
    }

    #[test]
    fn codec_degradation_orders_by_mantissa() {
        let spec = tiny_spec();
        let model = spec.build().quantize_weights(WeightQuantConfig::w4_g128());
        let tokens: Vec<usize> = (0..24).map(|i| (i * 13) % 400).collect();
        let reference = model.forward(&tokens, &CodecAssignment::fp16());
        let err = |m: u32| {
            let codecs = CodecAssignment::uniform(anda_quant::ActivationCodec::anda(m));
            let out = model.forward(&tokens, &codecs);
            let mut e = 0.0f64;
            for i in 0..tokens.len() {
                for c in 0..model.config().vocab {
                    e += f64::from((out[(i, c)] - reference[(i, c)]).powi(2));
                }
            }
            e
        };
        let (e3, e11) = (err(3), err(11));
        assert!(e3 > 10.0 * e11, "m=3 err {e3} vs m=11 err {e11}");
    }

    #[test]
    fn generation_extends_prompt() {
        let spec = tiny_spec();
        let model = spec.build();
        let mut rng = Rng::new(42);
        let out = model.generate(&[1, 2, 3], 5, 0.9, &mut rng);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < model.config().vocab));
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let spec = tiny_spec();
        let model = spec.build();
        let mut r1 = Rng::new(1);
        let mut r2 = Rng::new(2);
        let a = model.generate(&[5, 6], 4, 0.0, &mut r1);
        let b = model.generate(&[5, 6], 4, 0.0, &mut r2);
        assert_eq!(a, b, "greedy decoding ignores the rng");
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_panics() {
        let spec = tiny_spec();
        let model = spec.build();
        let _ = model.forward(&[999_999], &CodecAssignment::fp16());
    }

    #[test]
    fn llama_family_uses_rope_and_gate() {
        let spec = zoo::sim_models()
            .into_iter()
            .find(|s| s.sim.family == Family::Llama)
            .unwrap();
        let model = spec.build();
        assert!(model.layers()[0].wgate.is_some());
        let logits = model.forward(&[1, 2, 3], &CodecAssignment::fp16());
        assert_eq!(logits.rows(), 3);
        // RoPE means position matters even without learned positions:
        let l2 = model.forward(&[2, 1, 3], &CodecAssignment::fp16());
        assert_ne!(logits, l2);
    }
}
