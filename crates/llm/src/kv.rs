//! Anda-compressed KV cache (paper §VI, "KV cache optimization").
//!
//! The paper keeps the KV cache in FP16 (§V-A) but points out that Anda
//! "could synergize with KV cache optimizations to significantly accelerate
//! long-context LLM inference". This module implements that extension: a
//! KV store whose key/value rows are held in the Anda format, decompressed
//! on read. Memory shrinks by `16 / (M + 1 + 5/64)`; the attention output
//! degrades gracefully with M (quantified in the `ablation_kv_cache`
//! experiment binary).

use anda_format::{AndaConfig, AndaTensor};

/// Storage policy for cached K/V rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvStorage {
    /// FP16 rows (the paper's baseline configuration).
    Fp16,
    /// Anda-format rows with the given mantissa length.
    Anda {
        /// Mantissa length (1..=16).
        mantissa_bits: u32,
    },
}

/// A single-layer KV store with optional Anda compression.
#[derive(Clone, Debug)]
pub struct KvStore {
    storage: KvStorage,
    dim: usize,
    keys: Vec<KvRow>,
    values: Vec<KvRow>,
}

#[derive(Clone, Debug)]
enum KvRow {
    Fp16(Vec<f32>),
    Anda(AndaTensor),
}

impl KvRow {
    fn encode(row: &[f32], storage: KvStorage) -> Self {
        match storage {
            KvStorage::Fp16 => KvRow::Fp16(
                row.iter()
                    .map(|&v| anda_format::bfp::saturate_to_f16(v).to_f32())
                    .collect(),
            ),
            KvStorage::Anda { mantissa_bits } => {
                let cfg =
                    AndaConfig::hardware(mantissa_bits).expect("validated at KvStore construction");
                KvRow::Anda(AndaTensor::from_f32(row, cfg))
            }
        }
    }

    fn decode(&self) -> Vec<f32> {
        match self {
            KvRow::Fp16(v) => v.clone(),
            KvRow::Anda(t) => t.to_f32(),
        }
    }

    fn storage_bits(&self, dim: usize) -> usize {
        match self {
            KvRow::Fp16(_) => dim * 16,
            KvRow::Anda(t) => t.storage_bits(),
        }
    }
}

impl KvStore {
    /// Creates an empty store for `dim`-wide K/V rows.
    ///
    /// # Panics
    ///
    /// Panics if an Anda policy has mantissa bits outside 1..=16.
    pub fn new(dim: usize, storage: KvStorage) -> Self {
        if let KvStorage::Anda { mantissa_bits } = storage {
            AndaConfig::hardware(mantissa_bits).expect("mantissa bits must be 1..=16");
        }
        KvStore {
            storage,
            dim,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends one position's key and value rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not `dim` wide.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.dim, "key width");
        assert_eq!(value.len(), self.dim, "value width");
        self.keys.push(KvRow::encode(key, self.storage));
        self.values.push(KvRow::encode(value, self.storage));
    }

    /// Decodes the key row at `pos`.
    pub fn key(&self, pos: usize) -> Vec<f32> {
        self.keys[pos].decode()
    }

    /// Decodes the value row at `pos`.
    pub fn value(&self, pos: usize) -> Vec<f32> {
        self.values[pos].decode()
    }

    /// Single-query multi-head attention over the cached positions:
    /// softmax(q·Kᵀ/√d_head)·V per head, heads concatenated.
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty, `q` is not `dim` wide, or `dim` is not
    /// divisible by `n_heads`.
    pub fn attend(&self, q: &[f32], n_heads: usize) -> Vec<f32> {
        assert!(!self.is_empty(), "attention over an empty cache");
        assert_eq!(q.len(), self.dim, "query width");
        assert_eq!(self.dim % n_heads, 0, "head split");
        let dh = self.dim / n_heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let keys: Vec<Vec<f32>> = (0..self.len()).map(|p| self.key(p)).collect();
        let values: Vec<Vec<f32>> = (0..self.len()).map(|p| self.value(p)).collect();

        let mut out = vec![0.0f32; self.dim];
        for h in 0..n_heads {
            let off = h * dh;
            let qh = &q[off..off + dh];
            let mut scores: Vec<f32> = keys
                .iter()
                .map(|k| {
                    qh.iter()
                        .zip(&k[off..off + dh])
                        .map(|(&a, &b)| a * b)
                        .sum::<f32>()
                        * scale
                })
                .collect();
            let max = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut sum = 0.0f32;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                sum += *s;
            }
            for (s, v) in scores.iter().zip(&values) {
                let p = s / sum;
                for (o, &vv) in out[off..off + dh].iter_mut().zip(&v[off..off + dh]) {
                    *o += p * vv;
                }
            }
        }
        out
    }

    /// Total cache storage in bits.
    pub fn storage_bits(&self) -> usize {
        self.keys
            .iter()
            .chain(&self.values)
            .map(|r| r.storage_bits(self.dim))
            .sum()
    }

    /// Compression ratio versus an FP16 cache of the same shape.
    pub fn compression_vs_fp16(&self) -> f64 {
        let fp16 = (2 * self.len() * self.dim * 16) as f64;
        if self.storage_bits() == 0 {
            1.0
        } else {
            fp16 / self.storage_bits() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anda_tensor::Rng;

    fn rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.normal_with(0.0, 1.0)).collect())
            .collect()
    }

    #[test]
    fn fp16_store_round_trips_to_fp16_precision() {
        let mut store = KvStore::new(64, KvStorage::Fp16);
        let k = rows(3, 64, 1);
        for r in &k {
            store.push(r, r);
        }
        assert_eq!(store.len(), 3);
        for (i, r) in k.iter().enumerate() {
            for (a, &b) in store.key(i).iter().zip(r) {
                assert!((a - b).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn anda_store_error_bounded_and_decreasing_in_m() {
        let data = rows(4, 128, 2);
        let err_at = |m: u32| {
            let mut store = KvStore::new(128, KvStorage::Anda { mantissa_bits: m });
            for r in &data {
                store.push(r, r);
            }
            let mut err = 0.0f64;
            for (i, r) in data.iter().enumerate() {
                for (a, &b) in store.key(i).iter().zip(r) {
                    err += f64::from((a - b).abs());
                }
            }
            err
        };
        assert!(err_at(11) < err_at(6));
        assert!(err_at(6) < err_at(3));
    }

    #[test]
    fn compression_ratio_matches_format_accounting() {
        let mut store = KvStore::new(64, KvStorage::Anda { mantissa_bits: 5 });
        let data = rows(8, 64, 3);
        for r in &data {
            store.push(r, r);
        }
        // 5-bit mantissa: ≈ 6.08 bits/element vs 16.
        let expect = 16.0 / (5.0 + 1.0 + 5.0 / 64.0);
        assert!((store.compression_vs_fp16() - expect).abs() < 1e-9);
    }

    #[test]
    fn attention_with_wide_mantissa_matches_fp16() {
        let dim = 64;
        let data = rows(10, dim, 4);
        let q = &rows(1, dim, 5)[0];
        let mut exact = KvStore::new(dim, KvStorage::Fp16);
        let mut anda = KvStore::new(dim, KvStorage::Anda { mantissa_bits: 16 });
        for r in &data {
            exact.push(r, r);
            anda.push(r, r);
        }
        let a = exact.attend(q, 4);
        let b = anda.attend(q, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 2e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn attention_error_grows_as_m_shrinks() {
        let dim = 64;
        let data = rows(12, dim, 6);
        let q = &rows(1, dim, 7)[0];
        let mut exact = KvStore::new(dim, KvStorage::Fp16);
        for r in &data {
            exact.push(r, r);
        }
        let reference = exact.attend(q, 4);
        let err_at = |m: u32| {
            let mut store = KvStore::new(dim, KvStorage::Anda { mantissa_bits: m });
            for r in &data {
                store.push(r, r);
            }
            let out = store.attend(q, 4);
            reference
                .iter()
                .zip(&out)
                .map(|(a, b)| f64::from((a - b).abs()))
                .sum::<f64>()
        };
        assert!(err_at(12) < err_at(4));
    }

    #[test]
    #[should_panic(expected = "empty cache")]
    fn empty_attend_panics() {
        let store = KvStore::new(64, KvStorage::Fp16);
        let _ = store.attend(&vec![0.0; 64], 4);
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn invalid_mantissa_panics() {
        let _ = KvStore::new(64, KvStorage::Anda { mantissa_bits: 0 });
    }
}
