//! The paged, optionally Anda-compressed KV cache (paper §VI).
//!
//! The paper keeps the KV cache in FP16 (§V-A) but points out that Anda
//! "could synergize with KV cache optimizations to significantly accelerate
//! long-context LLM inference". This module is that extension, built the
//! way a serving system needs it: a [`PagePool`] block allocator owns
//! fixed-size pages (`page_positions` positions × `dim` lanes of K *and* V
//! rows), every [`KvCache`] is a per-layer page table over pages leased
//! from a pool, and the storage policy ([`KvStorage`]) decides whether a
//! page holds raw `f32` rows (the exact-reference policy), FP16-rounded
//! rows (the paper's §V-A baseline), BF16-rounded rows (same footprint,
//! full exponent range) — all read in place — or Anda bit-plane rows
//! (decoded on read into caller scratch via `anda_format::rowcodec`,
//! with zero per-token allocation). The rounded-policy appends and the
//! Anda encode/decode all run through the SIMD-dispatched kernels in
//! `anda_fp::simd` (scalar-oracle bit-exact on every leg).
//!
//! Pages move by value between the pool's free list and the caches, so a
//! page can never be double-freed; retiring a stream ([`KvCache::reset`])
//! recycles its pages for the next stream, and freed pages are always
//! reused before the pool grows. A bounded pool (`max_pages`) turns KV
//! memory into an admission resource: the serving scheduler reserves a
//! request's worst-case page demand up front and rejects what could never
//! fit, replacing worst-case token budgeting with real memory accounting.
//! Anda pages are `16 / (M + 1 + 5/64)` times smaller than FP16 pages, so
//! the same memory budget holds proportionally more pages — the
//! long-context headroom quantified by the `kv_memory` bench.
//!
//! # Prefix sharing and copy-on-write
//!
//! Streams that open with the same prompt prefix (a system prompt, a
//! few-shot header) cache bit-identical K/V rows, so full pages can be
//! *shared* instead of duplicated. [`KvCache::fork_prefix`] clones only
//! the page table: every page covering the prefix becomes a refcounted
//! [`SharedPage`] lease ([`PagePool::fork_page`] /
//! [`PagePool::release_page`]), counted once by the pool's ledger no
//! matter how many caches reference it. Shared pages are immutable; the
//! first append a forked stream makes into a shared (partial) tail page
//! triggers copy-on-write ([`PagePool::privatize`]) — the encoded rows
//! are copied *bitwise* into a freshly leased private page before the
//! mutation, so every stream's decode stays bit-exact while whole prefix
//! pages stay deduplicated. A shared page returns to the free list
//! exactly when its last lease drops; a sole-owner privatize reclaims
//! the page without copying. The `kv_sharing` bench quantifies the
//! resulting admission headroom: N streams over a P-position prefix pin
//! `pages(P) + N·pages(private)` pages, not `N·pages(P + private)`.

use std::sync::{Arc, Mutex};

use anda_format::rowcodec;
use anda_format::AndaConfig;
use anda_fp::batch::{saturate_bf16_widen_slice, saturate_f16_widen_slice};

/// Storage policy for cached K/V rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvStorage {
    /// Raw `f32` rows, read in place — the exact-reference policy (what
    /// solo `generate` has always cached) and the accounting baseline
    /// the compressed policies are measured against.
    Fp32,
    /// FP16-rounded rows (the paper's §V-A baseline), read in place.
    Fp16,
    /// BF16-rounded rows, read in place — same 16-bit footprint as FP16
    /// but trading mantissa for the full `f32` exponent range (no
    /// saturation below ±3.4e38), matching accelerators that keep KV in
    /// bfloat16.
    Bf16,
    /// Anda-format rows with the given mantissa length, decoded on read.
    Anda {
        /// Mantissa length (1..=16).
        mantissa_bits: u32,
    },
}

impl KvStorage {
    /// The Anda conversion config for this policy (`None` for the
    /// in-place float policies).
    ///
    /// # Panics
    ///
    /// Panics if an Anda policy has mantissa bits outside 1..=16.
    fn anda_config(self) -> Option<AndaConfig> {
        match self {
            KvStorage::Fp32 | KvStorage::Fp16 | KvStorage::Bf16 => None,
            KvStorage::Anda { mantissa_bits } => {
                Some(AndaConfig::hardware(mantissa_bits).expect("mantissa bits must be 1..=16"))
            }
        }
    }

    /// Storage bits of one `dim`-wide row under this policy (zero-padded
    /// trailing lanes of a partial Anda group included, as hardware would).
    pub fn row_bits(self, dim: usize) -> usize {
        match self {
            KvStorage::Fp32 => dim * 32,
            KvStorage::Fp16 | KvStorage::Bf16 => dim * 16,
            KvStorage::Anda { .. } => {
                rowcodec::row_storage_bits(dim, self.anda_config().expect("anda policy"))
            }
        }
    }

    /// `true` when rows are stored as plain `f32` words the attention
    /// kernel can read in place (no decode step).
    pub fn reads_in_place(self) -> bool {
        matches!(self, KvStorage::Fp32 | KvStorage::Fp16 | KvStorage::Bf16)
    }
}

/// Geometry and policy of a KV [`PagePool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvPoolConfig {
    /// How K/V rows are stored inside pages.
    pub storage: KvStorage,
    /// Cached positions per page (per layer; a page holds both K and V).
    pub page_positions: usize,
    /// Pool capacity in pages; `None` grows without bound (solo decode).
    pub max_pages: Option<usize>,
}

/// Default positions per page (vLLM-style block granularity).
pub const DEFAULT_PAGE_POSITIONS: usize = 16;

impl Default for KvPoolConfig {
    fn default() -> Self {
        KvPoolConfig {
            storage: KvStorage::Fp32,
            page_positions: DEFAULT_PAGE_POSITIONS,
            max_pages: None,
        }
    }
}

impl KvPoolConfig {
    /// An unbounded pool with the given policy and default page size.
    pub fn unbounded(storage: KvStorage) -> Self {
        KvPoolConfig {
            storage,
            ..Self::default()
        }
    }

    /// Storage bits of one page of `dim`-wide rows (K and V planes both).
    pub fn page_bits(&self, dim: usize) -> usize {
        2 * self.page_positions * self.storage.row_bits(dim)
    }

    /// Pages needed to hold `positions` cached positions of one layer.
    pub fn pages_for(&self, positions: usize) -> usize {
        positions.div_ceil(self.page_positions)
    }

    /// Caps the pool at the number of whole pages that fit in a memory
    /// budget of `budget_bits` for `dim`-wide rows — the knob that makes
    /// FP16 and Anda pools comparable at equal memory. A compressed
    /// policy yields proportionally more pages from the same budget.
    pub fn with_memory_budget(mut self, budget_bits: usize, dim: usize) -> Self {
        self.max_pages = Some(budget_bits / self.page_bits(dim));
        self
    }
}

/// One fixed-size block of KV storage: `page_positions` positions of one
/// layer, K and V rows both, under one [`KvStorage`] policy.
///
/// Pages are created by a [`PagePool`] and move by value between the
/// pool's free list and a cache's page table — there is no page handle to
/// double-free. Recycled pages keep their buffers; `used` gates every
/// read, so a reused page is indistinguishable from a fresh one.
#[derive(Debug)]
pub struct Page {
    /// Row width (model `d_model`).
    dim: usize,
    /// Position capacity.
    positions: usize,
    /// Positions filled (append-only until reset).
    used: usize,
    /// The policy rows were encoded under.
    storage: KvStorage,
    data: PageData,
}

#[derive(Debug)]
enum PageData {
    /// `positions × dim` plain `f32` words (raw for [`KvStorage::Fp32`],
    /// rounded then widened for [`KvStorage::Fp16`] / [`KvStorage::Bf16`]).
    Float { k: Vec<f32>, v: Vec<f32> },
    Anda {
        cfg: AndaConfig,
        k: EncodedRows,
        v: EncodedRows,
    },
}

/// Flat bit-plane buffers for `positions` encoded rows (row-major:
/// row `r`'s groups start at `r · groups_per_row`).
#[derive(Debug)]
struct EncodedRows {
    signs: Vec<u64>,
    exps: Vec<u16>,
    planes: Vec<u64>,
}

impl EncodedRows {
    fn new(positions: usize, dim: usize, cfg: AndaConfig) -> Self {
        let g = rowcodec::groups_per_row(dim, cfg);
        let m = cfg.mantissa_bits() as usize;
        EncodedRows {
            signs: vec![0; positions * g],
            exps: vec![0; positions * g],
            planes: vec![0; positions * g * m],
        }
    }

    fn encode(&mut self, row: usize, values: &[f32], cfg: AndaConfig) {
        let g = rowcodec::groups_per_row(values.len(), cfg);
        let m = cfg.mantissa_bits() as usize;
        rowcodec::encode_row_into(
            values,
            cfg,
            &mut self.signs[row * g..(row + 1) * g],
            &mut self.exps[row * g..(row + 1) * g],
            &mut self.planes[row * g * m..(row + 1) * g * m],
        );
    }

    fn decode(&self, row: usize, cfg: AndaConfig, out: &mut [f32]) {
        let g = rowcodec::groups_per_row(out.len(), cfg);
        let m = cfg.mantissa_bits() as usize;
        rowcodec::decode_row_into(
            cfg,
            &self.signs[row * g..(row + 1) * g],
            &self.exps[row * g..(row + 1) * g],
            &self.planes[row * g * m..(row + 1) * g * m],
            out,
        );
    }
}

impl Page {
    fn new(cfg: &KvPoolConfig, dim: usize) -> Self {
        let positions = cfg.page_positions;
        let data = match cfg.storage.anda_config() {
            None => PageData::Float {
                k: vec![0.0; positions * dim],
                v: vec![0.0; positions * dim],
            },
            Some(anda) => PageData::Anda {
                cfg: anda,
                k: EncodedRows::new(positions, dim, anda),
                v: EncodedRows::new(positions, dim, anda),
            },
        };
        Page {
            dim,
            positions,
            used: 0,
            storage: cfg.storage,
            data,
        }
    }

    /// Positions currently written.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Position capacity.
    pub fn capacity(&self) -> usize {
        self.positions
    }

    fn is_full(&self) -> bool {
        self.used == self.positions
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn reset(&mut self) {
        self.used = 0;
    }

    /// Appends one position (K and V rows), encoding under the page's
    /// policy without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the page is full or a row is not `dim` wide (a narrower
    /// row would silently leave a recycled page's stale lanes in the
    /// cached position).
    fn push_row(&mut self, key: &[f32], value: &[f32]) {
        assert!(!self.is_full(), "push into a full page");
        assert_eq!(key.len(), self.dim, "key width");
        assert_eq!(value.len(), self.dim, "value width");
        let slot = self.used;
        match &mut self.data {
            PageData::Float { k, v } => {
                let kd = &mut k[slot * self.dim..(slot + 1) * self.dim];
                let vd = &mut v[slot * self.dim..(slot + 1) * self.dim];
                match self.storage {
                    KvStorage::Fp32 => {
                        kd.copy_from_slice(key);
                        vd.copy_from_slice(value);
                    }
                    KvStorage::Fp16 => {
                        // Batch round-trip through the SIMD-dispatched
                        // conversion kernels (bit-identical to the
                        // element-wise `saturate_to_f16(x).to_f32()`).
                        saturate_f16_widen_slice(key, kd);
                        saturate_f16_widen_slice(value, vd);
                    }
                    KvStorage::Bf16 => {
                        saturate_bf16_widen_slice(key, kd);
                        saturate_bf16_widen_slice(value, vd);
                    }
                    KvStorage::Anda { .. } => {
                        unreachable!("float page under an Anda policy")
                    }
                }
            }
            PageData::Anda { cfg, k, v } => {
                k.encode(slot, key, *cfg);
                v.encode(slot, value, *cfg);
            }
        }
        self.used += 1;
    }

    /// Copies the first `rows` positions of `src` into this page as a
    /// *bitwise* copy of the encoded representation (float words or Anda
    /// sign/exponent/plane buffers) — the copy-on-write primitive. No
    /// decode/re-encode round trip happens, so the copied rows read back
    /// `f32::to_bits`-identical to the source under every policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometries or policies differ or `src` holds fewer
    /// than `rows` filled positions.
    fn copy_rows_from(&mut self, src: &Page, rows: usize) {
        assert_eq!(self.dim, src.dim, "copy between different row widths");
        assert_eq!(self.positions, src.positions, "copy between page sizes");
        assert_eq!(self.storage, src.storage, "copy between policies");
        assert!(
            rows <= src.used,
            "copying {rows} rows from a page with {} filled",
            src.used
        );
        match (&mut self.data, &src.data) {
            (PageData::Float { k, v }, PageData::Float { k: sk, v: sv }) => {
                let n = rows * self.dim;
                k[..n].copy_from_slice(&sk[..n]);
                v[..n].copy_from_slice(&sv[..n]);
            }
            (PageData::Anda { cfg, k, v }, PageData::Anda { k: sk, v: sv, .. }) => {
                let g = rowcodec::groups_per_row(self.dim, *cfg);
                let m = cfg.mantissa_bits() as usize;
                for (dst, from) in [(&mut *k, sk), (&mut *v, sv)] {
                    dst.signs[..rows * g].copy_from_slice(&from.signs[..rows * g]);
                    dst.exps[..rows * g].copy_from_slice(&from.exps[..rows * g]);
                    dst.planes[..rows * g * m].copy_from_slice(&from.planes[..rows * g * m]);
                }
            }
            _ => unreachable!("policy equality asserted above"),
        }
        self.used = rows;
    }

    /// The filled K (or V) rows as one in-place `f32` slice — float
    /// pages only; Anda pages must decode.
    fn rows_in_place(&self, want_v: bool) -> &[f32] {
        match &self.data {
            PageData::Float { k, v } => {
                let buf = if want_v { v } else { k };
                &buf[..self.used * self.dim]
            }
            PageData::Anda { .. } => {
                unreachable!("in-place reads are a float-policy path")
            }
        }
    }

    /// Decodes the first `fill` cached rows of an Anda page into
    /// row-major `fill × dim` K/V planes — the grouped decode path's
    /// arena fill, bit-identical to `fill` calls of [`Page::row_into`].
    ///
    /// # Panics
    ///
    /// Unreachable on float-policy pages (they are read in place, never
    /// staged for decode).
    pub(crate) fn decode_rows_into(&self, fill: usize, k_dst: &mut [f32], v_dst: &mut [f32]) {
        let PageData::Anda { cfg, k, v } = &self.data else {
            unreachable!("float pages are read in place, not decoded")
        };
        for slot in 0..fill {
            let dst = slot * self.dim;
            k.decode(slot, *cfg, &mut k_dst[dst..dst + self.dim]);
            v.decode(slot, *cfg, &mut v_dst[dst..dst + self.dim]);
        }
    }

    /// Decodes row `slot`'s K (or V) into `out` without allocating.
    fn row_into(&self, slot: usize, want_v: bool, out: &mut [f32]) {
        assert!(slot < self.used, "row {slot} not written");
        assert_eq!(out.len(), self.dim, "row width");
        match &self.data {
            PageData::Float { k, v } => {
                let buf = if want_v { v } else { k };
                out.copy_from_slice(&buf[slot * self.dim..(slot + 1) * self.dim]);
            }
            PageData::Anda { cfg, k, v } => {
                let buf = if want_v { v } else { k };
                buf.decode(slot, *cfg, out);
            }
        }
    }

    /// The policy this page's rows were encoded under.
    pub fn storage(&self) -> KvStorage {
        self.storage
    }

    fn row_bits(&self) -> usize {
        self.storage.row_bits(self.dim)
    }

    /// Bits occupied by the filled rows (K and V).
    pub fn used_bits(&self) -> usize {
        2 * self.used * self.row_bits()
    }

    /// Bits the whole page pins while leased, filled or not (K and V).
    pub fn capacity_bits(&self) -> usize {
        2 * self.positions * self.row_bits()
    }
}

#[derive(Debug)]
struct PoolState {
    /// Row width, bound by the first allocation (0 = unbound).
    dim: usize,
    /// Recycled pages awaiting reuse.
    free: Vec<Page>,
    /// Pages ever created (never exceeds `max_pages`).
    created: usize,
}

#[derive(Debug)]
struct PoolShared {
    cfg: KvPoolConfig,
    state: Mutex<PoolState>,
}

impl PoolShared {
    /// Returns a leased page to the free list (cleared, buffers kept) —
    /// the single recycling point behind [`PagePool::release`],
    /// [`PagePool::release_page`] and the last-lease drop of a
    /// [`SharedPage`].
    fn recycle(&self, mut page: Page) {
        assert_eq!(
            page.positions, self.cfg.page_positions,
            "page returned to a foreign pool"
        );
        assert_eq!(
            page.storage, self.cfg.storage,
            "page returned to a foreign pool"
        );
        let mut st = self.state.lock().expect("a pool lock holder panicked");
        assert_eq!(page.dim, st.dim, "page returned to a foreign pool");
        debug_assert!(
            st.free.len() < st.created,
            "more pages released than created"
        );
        page.reset();
        st.free.push(page);
    }
}

/// A refcounted lease of one pool page, shared read-only between any
/// number of page tables (prefix sharing). Handles are created by
/// [`PagePool::share`], duplicated only by [`PagePool::fork_page`] and
/// consumed by [`PagePool::release_page`] (or a plain drop) — there is no
/// `Clone`, so every refcount transition goes through the pool's ledger
/// API. The underlying page returns to its pool's free list exactly when
/// the last handle drops: releasing twice is unrepresentable (handles
/// move by value) and forgetting to release is impossible (drop
/// recycles), so the "double free" and "leak" halves of the ledger are
/// both closed by construction.
///
/// Shared pages are immutable. A cache that must append into one first
/// privatizes it ([`PagePool::privatize`]): a bitwise copy-on-write into
/// a fresh page — or a zero-copy reclaim when the handle turns out to be
/// the last one.
#[derive(Debug)]
pub struct SharedPage {
    inner: Arc<SharedInner>,
}

#[derive(Debug)]
struct SharedInner {
    /// `Some` until the last handle drops; taken exactly once, so the
    /// page rejoins the free list exactly once.
    page: Option<Page>,
    pool: Arc<PoolShared>,
}

impl Drop for SharedInner {
    fn drop(&mut self) {
        if let Some(page) = self.page.take() {
            self.pool.recycle(page);
        }
    }
}

impl SharedPage {
    /// Number of live leases of this page (1 = this handle is the sole
    /// owner).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    fn page(&self) -> &Page {
        self.inner
            .page
            .as_ref()
            .expect("present until the last drop")
    }

    fn same_pool(&self, pool: &PagePool) -> bool {
        Arc::ptr_eq(&self.inner.pool, &pool.shared)
    }
}

/// A shared block-pool allocator of KV [`Page`]s.
///
/// Cloning the pool clones a handle to the same pool (streams decoding on
/// worker threads lease pages concurrently; the lock is taken once per
/// page transition, never per token). Freed pages are always reused
/// before new ones are created, and creation stops at `max_pages`.
#[derive(Clone, Debug)]
pub struct PagePool {
    shared: Arc<PoolShared>,
}

impl PagePool {
    /// A pool with the given geometry and policy.
    ///
    /// # Panics
    ///
    /// Panics if `page_positions` is zero or an Anda policy has mantissa
    /// bits outside 1..=16.
    pub fn new(cfg: KvPoolConfig) -> Self {
        assert!(cfg.page_positions >= 1, "page_positions must be at least 1");
        let _ = cfg.storage.anda_config(); // validates mantissa bits
        PagePool {
            shared: Arc::new(PoolShared {
                cfg,
                state: Mutex::new(PoolState {
                    dim: 0,
                    free: Vec::new(),
                    created: 0,
                }),
            }),
        }
    }

    /// The pool's geometry and policy.
    pub fn config(&self) -> KvPoolConfig {
        self.shared.cfg
    }

    /// Pool capacity in pages (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.cfg.max_pages
    }

    /// Pages needed for `positions` cached positions of one layer.
    pub fn pages_for(&self, positions: usize) -> usize {
        self.shared.cfg.pages_for(positions)
    }

    /// An empty [`KvCache`] leasing its pages from this pool.
    pub fn new_cache(&self, n_layers: usize) -> KvCache {
        KvCache::with_pool(n_layers, self.clone())
    }

    /// Pages ever created. Stays flat while the free list feeds
    /// allocations — the "reuse before growth" invariant.
    pub fn pages_created(&self) -> usize {
        self.lock().created
    }

    /// Recycled pages currently waiting on the free list.
    pub fn pages_free(&self) -> usize {
        self.lock().free.len()
    }

    /// Pages currently leased to caches.
    pub fn pages_in_use(&self) -> usize {
        let st = self.lock();
        st.created - st.free.len()
    }

    /// Leases one page for `dim`-wide rows; `None` when the pool is at
    /// capacity with nothing on the free list. The first call binds the
    /// pool's row width.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or differs from the bound width.
    pub fn try_alloc(&self, dim: usize) -> Option<Page> {
        assert!(dim > 0, "row width must be positive");
        let mut st = self.lock();
        if st.dim == 0 {
            st.dim = dim;
        }
        assert_eq!(st.dim, dim, "page pool is bound to one row width");
        if let Some(page) = st.free.pop() {
            return Some(page);
        }
        if self
            .shared
            .cfg
            .max_pages
            .is_some_and(|cap| st.created >= cap)
        {
            return None;
        }
        st.created += 1;
        Some(Page::new(&self.shared.cfg, dim))
    }

    /// Returns a leased page to the free list (cleared, buffers kept).
    ///
    /// # Panics
    ///
    /// Panics if the page's geometry does not match this pool (it was
    /// leased from a different pool).
    pub fn release(&self, page: Page) {
        self.shared.recycle(page);
    }

    /// Converts an exclusively owned page into a refcount-1 shared lease
    /// — the sealing step [`KvCache::fork_prefix`] applies to every page
    /// covering the forked prefix. The page stays on the pool's in-use
    /// ledger (it is leased, just co-owned from now on).
    ///
    /// # Panics
    ///
    /// Panics if the page's geometry does not match this pool.
    pub fn share(&self, page: Page) -> SharedPage {
        assert_eq!(
            page.positions, self.shared.cfg.page_positions,
            "page shared into a foreign pool"
        );
        assert_eq!(
            page.storage, self.shared.cfg.storage,
            "page shared into a foreign pool"
        );
        assert_eq!(page.dim, self.lock().dim, "page shared into a foreign pool");
        SharedPage {
            inner: Arc::new(SharedInner {
                page: Some(page),
                pool: Arc::clone(&self.shared),
            }),
        }
    }

    /// Duplicates a shared lease (refcount + 1). The physical page stays
    /// a single entry on the pool's ledger — this is what makes N caches
    /// over one prefix cost `pages(prefix)` once, not N times.
    ///
    /// # Panics
    ///
    /// Panics if `page` is leased from a different pool.
    pub fn fork_page(&self, page: &SharedPage) -> SharedPage {
        assert!(page.same_pool(self), "fork of a foreign pool's page");
        SharedPage {
            inner: Arc::clone(&page.inner),
        }
    }

    /// Drops one shared lease. When it is the last one, the page rejoins
    /// the free list (reuse-before-growth preserved); while other leases
    /// remain, the page stays in use — a refcounted page can never
    /// re-enter the free list early.
    ///
    /// # Panics
    ///
    /// Panics if `page` is leased from a different pool.
    pub fn release_page(&self, page: SharedPage) {
        assert!(page.same_pool(self), "release of a foreign pool's page");
        drop(page);
    }

    /// Copy-on-write: turns a shared lease into an exclusively owned page
    /// holding the first `rows` positions, bit-identical to the source.
    /// When the handle is the sole lease the page is reclaimed in place
    /// (no copy, no allocation); otherwise a fresh page is leased and the
    /// encoded rows are copied bitwise, and the shared lease is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `page` is from a different pool, `rows` exceeds its
    /// filled positions, or the pool is exhausted when a copy is needed
    /// (admission must reserve the worst-case private pages, the CoW tail
    /// included).
    pub fn privatize(&self, page: SharedPage, rows: usize) -> Page {
        assert!(page.same_pool(self), "privatize of a foreign pool's page");
        match Arc::try_unwrap(page.inner) {
            Ok(mut sole) => {
                let mut page = sole.page.take().expect("present until the last drop");
                assert!(rows <= page.used, "privatize past the filled rows");
                page.used = rows;
                page
            }
            Err(inner) => {
                let shared = SharedPage { inner };
                let mut fresh = self
                    .try_alloc(shared.page().dim)
                    .expect("KV page pool exhausted (admission must reserve worst-case pages)");
                fresh.copy_rows_from(shared.page(), rows);
                fresh
            }
        }
    }

    /// Creates up to `n` pages onto the free list (bounded by capacity),
    /// so subsequent leases allocate nothing — the warm-up knob behind
    /// the zero-allocation decode guarantee.
    pub fn preallocate(&self, n: usize, dim: usize) {
        assert!(dim > 0, "row width must be positive");
        let mut st = self.lock();
        if st.dim == 0 {
            st.dim = dim;
        }
        assert_eq!(st.dim, dim, "page pool is bound to one row width");
        for _ in 0..n {
            if self
                .shared
                .cfg
                .max_pages
                .is_some_and(|cap| st.created >= cap)
            {
                break;
            }
            st.created += 1;
            let page = Page::new(&self.shared.cfg, dim);
            st.free.push(page);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.shared
            .state
            .lock()
            .expect("a pool lock holder panicked")
    }
}

/// One slot of a layer's page table: a page either exclusively owned by
/// this cache (mutable — the only kind plain decoding creates) or a
/// refcounted [`SharedPage`] lease of a prefix page (immutable — a write
/// must privatize first).
#[derive(Debug)]
enum TablePage {
    Owned(Page),
    Shared(SharedPage),
}

impl TablePage {
    fn page(&self) -> &Page {
        match self {
            TablePage::Owned(page) => page,
            TablePage::Shared(shared) => shared.page(),
        }
    }

    /// Moment-long placeholder swapped in while an `Owned` page is moved
    /// out for sealing; never observable (replaced in the same call) and
    /// allocation-free (`Vec::new` holds no buffer).
    fn placeholder() -> Self {
        TablePage::Owned(Page {
            dim: 0,
            positions: 0,
            used: 0,
            storage: KvStorage::Fp32,
            data: PageData::Float {
                k: Vec::new(),
                v: Vec::new(),
            },
        })
    }
}

/// One layer's cached key/value rows (post-RoPE for LLaMA-family models):
/// a page table over pool-leased pages in position order.
///
/// Entries are table pages: exclusively owned pages plus refcounted
/// [`SharedPage`] leases installed by [`KvCache::fork_prefix`]. `len` is
/// the *logical* position count; a shared tail page may physically hold
/// more rows than this table views (the donor cached past the fork
/// point), so every read path derives its row count from `len`, never
/// from the page's own fill.
#[derive(Debug, Default)]
pub struct LayerKv {
    pages: Vec<TablePage>,
    len: usize,
    /// This layer's index in its owning cache (0 for a standalone
    /// `LayerKv::default()`), carried so misuse panics can name the
    /// layer instead of pointing at an anonymous table.
    idx: usize,
}

impl LayerKv {
    /// Number of cached positions in this layer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages currently in the page table.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Pages in the table holding a shared (refcounted) lease.
    pub fn shared_page_count(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| matches!(p, TablePage::Shared(_)))
            .count()
    }

    fn page_positions(&self) -> usize {
        self.pages.first().map_or(1, |p| p.page().capacity())
    }

    /// Row width (`d_model`); 0 before the first append.
    pub fn dim(&self) -> usize {
        self.pages.first().map_or(0, |p| p.page().dim())
    }

    /// Logical rows the table views in page `i` (`<=` the page's own
    /// fill, which a shared tail may exceed past the fork point).
    fn rows_in_page(&self, i: usize) -> usize {
        let pp = self.page_positions();
        (self.len - i * pp).min(pp)
    }

    /// The physical page behind table slot `i` — the grouped decode
    /// executor's resolver for [`PendingDecode`] records.
    pub(crate) fn page_at(&self, i: usize) -> &Page {
        self.pages[i].page()
    }

    /// Appends one position's key and value rows, leasing a fresh page
    /// from `pool` when the tail page is (logically) full. A write that
    /// lands in a *shared* tail page first privatizes it — the
    /// copy-on-write guard: shared pages are never mutated, so sibling
    /// streams (and the prefix donor) keep reading their exact bits.
    ///
    /// # Panics
    ///
    /// Panics if the rows differ in width or the pool is exhausted
    /// (bounded pools are protected by admission-time reservation).
    pub(crate) fn push(&mut self, pool: &PagePool, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), value.len(), "key/value width mismatch");
        let tail_full = self.len == self.pages.len() * self.page_positions();
        if self.pages.is_empty() || tail_full {
            let page = pool
                .try_alloc(key.len())
                .expect("KV page pool exhausted (admission must reserve worst-case pages)");
            self.pages.push(TablePage::Owned(page));
        } else if matches!(self.pages.last(), Some(TablePage::Shared(_))) {
            // Copy-on-write before the mutation: replace the shared tail
            // with a private page holding a bitwise copy of the rows this
            // table views (or reclaim it copy-free as the sole lease).
            let rows = self.rows_in_page(self.pages.len() - 1);
            let Some(TablePage::Shared(shared)) = self.pages.pop() else {
                unreachable!("matched above");
            };
            self.pages
                .push(TablePage::Owned(pool.privatize(shared, rows)));
        }
        let Some(TablePage::Owned(tail)) = self.pages.last_mut() else {
            unreachable!("tail is owned: leased fresh or just privatized");
        };
        tail.push_row(key, value);
        self.len += 1;
    }

    /// Forks the first `positions` cached positions into a new table that
    /// *shares* every covered page: each one is sealed into a refcounted
    /// [`SharedPage`] (a no-op if already shared) and the fork holds a
    /// [`PagePool::fork_page`] lease — no row data is copied. A partial
    /// tail page is shared too; the first append either side makes into
    /// it copies it out bitwise first (see [`LayerKv::push`]), so the
    /// deep copy of the partial tail is deferred to the write that needs
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `positions > len`.
    pub(crate) fn fork_prefix(&mut self, pool: &PagePool, positions: usize) -> LayerKv {
        assert!(
            positions <= self.len,
            "fork of {positions} positions from a {}-position layer",
            self.len
        );
        let pp = self.page_positions();
        let n_pages = positions.div_ceil(pp);
        let mut pages = Vec::with_capacity(n_pages);
        for entry in &mut self.pages[..n_pages] {
            if matches!(entry, TablePage::Owned(_)) {
                let TablePage::Owned(page) = std::mem::replace(entry, TablePage::placeholder())
                else {
                    unreachable!("matched above");
                };
                *entry = TablePage::Shared(pool.share(page));
            }
            let TablePage::Shared(shared) = entry else {
                unreachable!("sealed above");
            };
            pages.push(TablePage::Shared(pool.fork_page(shared)));
        }
        LayerKv {
            pages,
            len: positions,
            idx: self.idx,
        }
    }

    /// Decodes the key row at `pos` into `out` (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len` or `out` is not `dim` wide.
    pub fn key_into(&self, pos: usize, out: &mut [f32]) {
        self.row_into(pos, false, out);
    }

    /// Decodes the value row at `pos` into `out` (no allocation).
    ///
    /// # Panics
    ///
    /// As [`LayerKv::key_into`].
    pub fn value_into(&self, pos: usize, out: &mut [f32]) {
        self.row_into(pos, true, out);
    }

    /// Decodes the key row at `pos` (allocating convenience).
    pub fn key(&self, pos: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        self.key_into(pos, &mut out);
        out
    }

    /// Decodes the value row at `pos` (allocating convenience).
    pub fn value(&self, pos: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        self.value_into(pos, &mut out);
        out
    }

    fn row_into(&self, pos: usize, want_v: bool, out: &mut [f32]) {
        assert!(pos < self.len, "position {pos} not cached");
        let pp = self.page_positions();
        self.pages[pos / pp].page().row_into(pos % pp, want_v, out);
    }

    fn reads_in_place(&self) -> bool {
        self.pages
            .first()
            .is_none_or(|p| p.page().storage.reads_in_place())
    }

    /// Decodes every cached K and V row into flat `t × dim` scratch
    /// buffers. Requests exactly `len × dim` capacity, so buffers
    /// pre-reserved for the maximum context ([`KvReadScratch::reserve`])
    /// never grow — the zero-allocation decode contract.
    pub(crate) fn decode_rows(&self, k_out: &mut Vec<f32>, v_out: &mut Vec<f32>) {
        let dim = self.dim();
        k_out.clear();
        v_out.clear();
        k_out.resize(self.len * dim, 0.0);
        v_out.resize(self.len * dim, 0.0);
        let mut written = 0;
        for (i, entry) in self.pages.iter().enumerate() {
            let page = entry.page();
            // Logical rows, not the page's own fill: a shared tail may
            // physically hold donor rows past this table's fork point.
            let rows = self.rows_in_page(i);
            let n = rows * dim;
            match &page.data {
                PageData::Float { k, v } => {
                    k_out[written..written + n].copy_from_slice(&k[..n]);
                    v_out[written..written + n].copy_from_slice(&v[..n]);
                }
                PageData::Anda { cfg, k, v } => {
                    for slot in 0..rows {
                        let dst = written + slot * dim;
                        k.decode(slot, *cfg, &mut k_out[dst..dst + dim]);
                        v.decode(slot, *cfg, &mut v_out[dst..dst + dim]);
                    }
                }
            }
            written += n;
        }
    }

    /// Returns every lease to `pool` (owned pages to the free list,
    /// shared leases dropped — the physical page rejoins the free list
    /// only with its last lease) and empties the layer.
    pub(crate) fn release_into(&mut self, pool: &PagePool) {
        for entry in self.pages.drain(..) {
            match entry {
                TablePage::Owned(page) => pool.release(page),
                TablePage::Shared(shared) => pool.release_page(shared),
            }
        }
        self.len = 0;
    }

    /// Bits occupied by the cached rows this table views under the
    /// layer's policy.
    pub fn storage_bits(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        2 * self.len * self.pages[0].page().row_bits()
    }

    /// Bits the layer's leased pages pin, filled or not — what the pool
    /// accounts for. Shared pages count fully in *every* table leasing
    /// them; the deduplicated pool-level footprint is
    /// `PagePool::pages_in_use() × page_bits`.
    pub fn resident_bits(&self) -> usize {
        self.pages.iter().map(|p| p.page().capacity_bits()).sum()
    }

    /// Validates that this layer can be attended at all: attention over
    /// zero cached positions is always a caller bug (softmax over an
    /// empty score row, or a grouped walk indexing past its offsets
    /// buffer), so every attend entry point rejects it *here*, at the
    /// API surface, with a message naming the layer and the misuse —
    /// instead of surfacing as a NaN or a slice panic deep inside the
    /// head kernel.
    ///
    /// # Panics
    ///
    /// Panics if the layer is empty.
    pub fn assert_attendable(&self) {
        assert!(
            !self.is_empty(),
            "attention over an empty cache: layer {} has no cached K/V positions — \
             prefill or append at least one row before attending",
            self.idx
        );
    }

    /// Single-query multi-head attention over the cached positions into a
    /// caller buffer, allocation-free: softmax(q·Kᵀ/√d_head)·V per head,
    /// heads concatenated. FP16 pages are read in place; Anda pages
    /// decode into `scratch` once for the whole call.
    ///
    /// # Panics
    ///
    /// Panics if the layer is empty (a clear API-surface message naming
    /// the layer — see [`LayerKv::assert_attendable`] — instead of a
    /// confusing failure deep in the head kernel), `q`/`out` are not
    /// `dim` wide, or `dim` is not divisible by `n_heads`.
    pub fn attend_into(
        &self,
        q: &[f32],
        n_heads: usize,
        out: &mut [f32],
        scratch: &mut KvReadScratch,
    ) {
        self.assert_attendable();
        let dim = self.dim();
        assert_eq!(q.len(), dim, "query width");
        assert_eq!(out.len(), dim, "output width");
        assert_eq!(dim % n_heads, 0, "head split");
        let dh = dim / n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let t = self.len;

        let KvReadScratch {
            k,
            v,
            scores,
            probs,
        } = scratch;
        let rows = if self.reads_in_place() {
            KvRows::InPlace(self)
        } else {
            self.decode_rows(k, v);
            KvRows::Decoded { k, v, dim }
        };
        scores.clear();
        scores.resize(t, 0.0);
        probs.clear();
        probs.resize(t, 0.0);
        out.fill(0.0);
        for head in 0..n_heads {
            let off = head * dh;
            attend_head(
                q,
                rows,
                head,
                dh,
                scale,
                &mut out[off..off + dh],
                scores,
                probs,
            );
        }
    }

    /// [`LayerKv::attend_into`] with owned scratch and output
    /// (experiment/demo convenience).
    pub fn attend(&self, q: &[f32], n_heads: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        self.attend_into(q, n_heads, &mut out, &mut KvReadScratch::new());
        out
    }
}

/// Reusable buffers for reading compressed KV rows: flat decoded K/V
/// planes plus score/probability staging. One instance serves any number
/// of [`LayerKv::attend_into`] calls (or one decode stream) with no
/// steady-state allocation.
#[derive(Clone, Debug, Default)]
pub struct KvReadScratch {
    pub(crate) k: Vec<f32>,
    pub(crate) v: Vec<f32>,
    pub(crate) scores: Vec<f32>,
    pub(crate) probs: Vec<f32>,
}

impl KvReadScratch {
    /// Empty scratch; buffers grow to steady-state sizes on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves the decode buffers for contexts up to `max_len`
    /// positions of `dim`-wide rows.
    pub fn reserve(&mut self, max_len: usize, dim: usize) {
        self.k.reserve(max_len * dim);
        self.v.reserve(max_len * dim);
        self.scores.reserve(max_len);
        self.probs.reserve(max_len);
    }
}

/// One contiguous span of a layer's staged KV rows for a grouped attend:
/// the `rows` *logical* rows of one page, resolved either in place (a
/// float page, indexed into the layer's own table) or in the shared
/// decode arena (an Anda page, addressed by its float offset). Segments
/// are index-based on purpose — carrying no borrow lets a scheduler
/// stage every stream's segments serially and consume them later from
/// parallel attend jobs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct KvSegment {
    rows: usize,
    src: SegSrc,
}

#[derive(Clone, Copy, Debug)]
enum SegSrc {
    /// Page-table index of a float page read in place.
    Page(usize),
    /// Float offset of a decoded Anda page in the arena.
    Arena(usize),
}

/// Page-identity-keyed decode cache for grouped batched attention: one
/// per-layer arena of decoded K/V rows shared by every stream in the
/// batch, so each physical Anda page decodes **at most once per step**
/// no matter how many streams attend through it (the fix for the N×
/// redundant decode of shared prefix pages).
///
/// Usage per layer per step: [`PageDecodeCache::begin_layer`] once, then
/// the crate-internal `stage_layer` for every stream's [`LayerKv`]. A
/// page's identity is its stable address for the duration of the layer
/// epoch — the `Arc` pointer of a shared lease (the same physical prefix
/// page yields the same pointer in every forking stream) or the owned
/// page's own address. Staging decodes a page's full physical fill, not
/// one table's logical view of it: a truncated fork and its donor share
/// an identity but view different row counts, and per-row decode is
/// independent, so the union costs nothing in exactness. Float pages
/// never enter the arena — they stage as in-place segments.
///
/// The arena keeps its capacity across layers and steps (`begin_layer`
/// only clears the identity index), so steady-state grouped decode
/// allocates nothing once the deepest layer has been staged.
#[derive(Debug, Default)]
pub struct PageDecodeCache {
    /// Flat decoded key rows, bump-allocated per layer epoch.
    k: Vec<f32>,
    /// Flat decoded value rows, same offsets as `k`.
    v: Vec<f32>,
    /// Page identity → (float offset, decoded physical rows), valid for
    /// the current layer epoch only.
    index: std::collections::HashMap<usize, (usize, usize)>,
    /// Floats staged in the arena this layer epoch.
    used: usize,
    /// Pages staged this layer epoch whose arena ranges still hold
    /// zeros: staging only *reserves*; the decode itself is deferred so
    /// the caller can fan independent pages across a thread pool
    /// ([`PageDecodeCache::pending_split`]).
    pending: Vec<PendingDecode>,
    /// Anda pages decoded since construction (monotonic) — the exact,
    /// per-instance counter behind the scheduler's decode-once test.
    pages_decoded: u64,
}

/// One staged-but-not-yet-decoded page: which batch entry's table it
/// was first seen in, where, and the arena range reserved for it.
/// Offsets are bump-allocated in staging order, so consecutive pending
/// entries cover consecutive arena ranges — the decode executor splits
/// the arena into disjoint `&mut` chunks by walking them in order.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingDecode {
    /// Index into the batch whose page table first staged this page.
    pub(crate) entry: usize,
    /// Page index within that entry's layer table.
    pub(crate) page: usize,
    /// Arena float offset reserved for the decoded rows.
    pub(crate) off: usize,
    /// Physical rows to decode (the page's full fill).
    pub(crate) fill: usize,
}

impl PageDecodeCache {
    /// An empty decode cache; the arena grows to its steady-state size
    /// during the first step.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new layer epoch: forgets every staged identity while
    /// keeping the arena's capacity. Must be called before the first
    /// `stage_layer` of each layer — identities are
    /// only stable within one layer's stage-and-attend window (appending
    /// the *next* layer's rows may move or replace pages).
    pub fn begin_layer(&mut self) {
        self.index.clear();
        self.used = 0;
        self.pending.clear();
    }

    /// Total Anda pages decoded through this cache (monotonic across
    /// steps). Each shared page counts once per layer epoch it was
    /// staged in, regardless of how many streams attend through it.
    pub fn pages_decoded(&self) -> u64 {
        self.pages_decoded
    }

    /// Stages one stream's view of `layer` for a grouped attend,
    /// rewriting `segs` with one segment per page. Float pages stage in
    /// place; an Anda page *reserves* an arena range only if this layer
    /// epoch has not seen its identity yet (`entry_idx` records which
    /// batch entry's table to decode it from) — the decode itself runs
    /// in the [`PageDecodeCache::pending_split`] pass that follows
    /// staging, so independent pages can decode in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is empty (see [`LayerKv::assert_attendable`] —
    /// an empty layer staged here would otherwise become a silent
    /// zero-row walk of the segment table).
    pub(crate) fn stage_layer(
        &mut self,
        entry_idx: usize,
        layer: &LayerKv,
        segs: &mut Vec<KvSegment>,
    ) {
        layer.assert_attendable();
        segs.clear();
        let dim = layer.dim();
        let in_place = layer.reads_in_place();
        for (i, entry) in layer.pages.iter().enumerate() {
            let rows = layer.rows_in_page(i);
            if in_place {
                segs.push(KvSegment {
                    rows,
                    src: SegSrc::Page(i),
                });
                continue;
            }
            let identity = match entry {
                // All staged pages are simultaneously live, so addresses
                // are unique; shared leases of one physical page agree on
                // the `Arc` pointer across every stream that forked it.
                TablePage::Owned(page) => std::ptr::from_ref(page) as usize,
                TablePage::Shared(shared) => Arc::as_ptr(&shared.inner) as usize,
            };
            let (off, fill) = match self.index.get(&identity) {
                Some(&slot) => slot,
                None => {
                    let fill = entry.page().used();
                    let off = self.used;
                    self.used += fill * dim;
                    if self.k.len() < self.used {
                        self.k.resize(self.used, 0.0);
                        self.v.resize(self.used, 0.0);
                    }
                    // Reserve only: the decode runs once staging has
                    // walked the whole batch, so independent pages can
                    // be decoded in parallel (`pending_split`).
                    self.pending.push(PendingDecode {
                        entry: entry_idx,
                        page: i,
                        off,
                        fill,
                    });
                    self.pages_decoded += 1;
                    self.index.insert(identity, (off, fill));
                    (off, fill)
                }
            };
            debug_assert!(
                rows <= fill,
                "a staged view of layer {} exceeds its page's decoded fill ({rows} > {fill})",
                layer.idx
            );
            segs.push(KvSegment {
                rows,
                src: SegSrc::Arena(off),
            });
        }
    }

    /// The decoded (K, V) arenas the staged `SegSrc::Arena` offsets
    /// resolve into, for building [`KvRows::Grouped`] views.
    pub(crate) fn arenas(&self) -> (&[f32], &[f32]) {
        (&self.k, &self.v)
    }

    /// The pages staged but not yet decoded this layer epoch, plus the
    /// mutable arenas their reserved ranges live in. The caller decodes
    /// each pending page's rows into its range — in any order, even
    /// concurrently, since ranges are disjoint and per-row decode is
    /// independent — and clears the list when done. Attending through a
    /// segment table before its pending pages are decoded reads zeros.
    pub(crate) fn pending_split(&mut self) -> (&mut Vec<PendingDecode>, &mut [f32], &mut [f32]) {
        (&mut self.pending, &mut self.k, &mut self.v)
    }
}

/// A borrowed row-major view of one layer's cached K/V rows: the FP16
/// pages themselves (read in place), flat decoded scratch, or a grouped
/// segment view over the shared [`PageDecodeCache`] arena.
#[derive(Clone, Copy)]
pub(crate) enum KvRows<'a> {
    InPlace(&'a LayerKv),
    Decoded {
        k: &'a [f32],
        v: &'a [f32],
        dim: usize,
    },
    /// Grouped-attention view: per-page segments resolving into either
    /// the layer's own float pages (in place) or the decode arena a
    /// whole batch shares.
    Grouped {
        layer: &'a LayerKv,
        arena_k: &'a [f32],
        arena_v: &'a [f32],
        segs: &'a [KvSegment],
    },
}

impl<'a> KvRows<'a> {
    pub(crate) fn k_rows(self) -> RowIter<'a> {
        RowIter::new(self, false)
    }

    pub(crate) fn v_rows(self) -> RowIter<'a> {
        RowIter::new(self, true)
    }
}

/// Iterates a [`KvRows`] view as one `dim`-wide slice per position,
/// walking pages (or staged segments) directly — no per-row page-table
/// arithmetic. Yields exactly the layer's *logical* length: a shared
/// tail page's physical rows past the fork point are never surfaced,
/// whether read in place, from per-stream decode scratch, or from the
/// grouped arena (segments carry the logical row count explicitly).
pub(crate) struct RowIter<'a> {
    src: RowSource<'a>,
    cur: std::slice::ChunksExact<'a, f32>,
    want_v: bool,
    remaining: usize,
}

enum RowSource<'a> {
    /// Float pages walked in place; `remaining` truncates the shared
    /// tail's physical overhang.
    Pages(std::slice::Iter<'a, TablePage>),
    /// One flat pre-decoded buffer; `cur` already spans it all.
    Flat,
    /// Grouped segments over a layer's float pages + the shared arena.
    Segs {
        layer: &'a LayerKv,
        arena: &'a [f32],
        segs: std::slice::Iter<'a, KvSegment>,
    },
}

impl<'a> RowIter<'a> {
    fn new(rows: KvRows<'a>, want_v: bool) -> Self {
        match rows {
            KvRows::InPlace(layer) => RowIter {
                src: RowSource::Pages(layer.pages.iter()),
                cur: [].chunks_exact(1),
                want_v,
                remaining: layer.len,
            },
            KvRows::Decoded { k, v, dim } => {
                let buf = if want_v { v } else { k };
                RowIter {
                    src: RowSource::Flat,
                    cur: buf.chunks_exact(dim),
                    want_v,
                    remaining: buf.len() / dim,
                }
            }
            KvRows::Grouped {
                layer,
                arena_k,
                arena_v,
                segs,
            } => RowIter {
                src: RowSource::Segs {
                    layer,
                    arena: if want_v { arena_v } else { arena_k },
                    segs: segs.iter(),
                },
                cur: [].chunks_exact(1),
                want_v,
                remaining: layer.len,
            },
        }
    }
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [f32];

    fn next(&mut self) -> Option<&'a [f32]> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            if let Some(row) = self.cur.next() {
                self.remaining -= 1;
                return Some(row);
            }
            match &mut self.src {
                RowSource::Pages(pages) => {
                    let page = pages.next()?.page();
                    self.cur = page.rows_in_place(self.want_v).chunks_exact(page.dim);
                }
                RowSource::Flat => return None,
                RowSource::Segs { layer, arena, segs } => {
                    let layer: &'a LayerKv = layer;
                    let arena: &'a [f32] = arena;
                    let seg = segs.next()?;
                    let dim = layer.dim();
                    let span = match seg.src {
                        // Logical rows only: in-place pages may hold a
                        // donor's rows past this table's fork point, and
                        // arena spans may hold a sibling's longer view.
                        SegSrc::Page(i) => {
                            &layer.pages[i].page().rows_in_place(self.want_v)[..seg.rows * dim]
                        }
                        SegSrc::Arena(off) => &arena[off..off + seg.rows * dim],
                    };
                    self.cur = span.chunks_exact(dim);
                }
            }
        }
    }
}

/// One attention head of a KV-cached decode step: scores over the cached
/// positions, a log-softmax staged in `probs_h`, then the value mix into
/// `attn_h` (this head's `d_head`-wide output lane, accumulated with
/// `+=`; callers zero it). Exactly the serial per-head math, factored out
/// so heads can run on pool workers; the row iterators walk FP16 pages in
/// place and decoded Anda scratch identically.
///
/// The attended window is `scores_h.len()`, which may be *shorter* than
/// the KV table behind `rows`: every loop (scores, softmax, value mix)
/// zips against `scores_h`, so only that many leading rows are read and
/// later rows never enter the reduction. This truncation contract is
/// load-bearing for chunked prefill — a chunk's lane for position `p`
/// passes a `p + 1`-long score lane against a table that already holds
/// the whole chunk's rows, and gets causal masking (bit-identical to a
/// solo decode at `p`) without staging a per-lane table.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attend_head(
    q: &[f32],
    rows: KvRows<'_>,
    head: usize,
    dh: usize,
    scale: f32,
    attn_h: &mut [f32],
    scores_h: &mut [f32],
    probs_h: &mut [f32],
) {
    let off = head * dh;
    let qh = &q[off..off + dh];
    for (score, kj) in scores_h.iter_mut().zip(rows.k_rows()) {
        let kj = &kj[off..off + dh];
        *score = qh.iter().zip(kj).map(|(&a, &b)| a * b).sum::<f32>() * scale;
    }
    // Same max-shifted log-softmax as `ops::log_softmax_into`, on slices.
    let max = scores_h.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let log_sum: f32 = scores_h.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    for (p, &score) in probs_h.iter_mut().zip(scores_h.iter()) {
        *p = score - max - log_sum;
    }
    for (score, &l) in scores_h.iter_mut().zip(probs_h.iter()) {
        *score = l.exp();
    }
    for (&p, vj) in scores_h.iter().zip(rows.v_rows()) {
        let vj = &vj[off..off + dh];
        for (a, &vv) in attn_h.iter_mut().zip(vj) {
            *a += p * vv;
        }
    }
}

/// Per-layer paged KV cache for incremental decoding, owned by the caller
/// so a serving layer can keep one per request and multiplex many
/// requests over one model. Pages are leased from the cache's
/// [`PagePool`]; [`KvCache::reset`] recycles every page back to the pool
/// (a decode after `reset` is bit-identical to one on a fresh cache), and
/// dropping the cache does the same.
#[derive(Debug)]
pub struct KvCache {
    pool: PagePool,
    layers: Vec<LayerKv>,
}

impl KvCache {
    /// An empty cache over a private unbounded raw-`f32` pool with the
    /// default page size — the solo-decode exact-reference configuration
    /// (bit-compatible with the pre-paging cache).
    pub fn new(n_layers: usize) -> Self {
        Self::with_pool(n_layers, PagePool::new(KvPoolConfig::default()))
    }

    /// An empty cache leasing pages from `pool`.
    pub fn with_pool(n_layers: usize, pool: PagePool) -> Self {
        KvCache {
            pool,
            layers: (0..n_layers)
                .map(|idx| LayerKv {
                    idx,
                    ..LayerKv::default()
                })
                .collect(),
        }
    }

    /// Number of transformer layers the cache covers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of cached positions (every layer holds the same count on
    /// the decode path).
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, LayerKv::len)
    }

    /// `true` when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pool this cache leases pages from.
    pub fn pool(&self) -> &PagePool {
        &self.pool
    }

    /// The cache's storage policy.
    pub fn storage(&self) -> KvStorage {
        self.pool.config().storage
    }

    /// The per-layer store for block `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= n_layers`.
    pub fn layer(&self, layer: usize) -> &LayerKv {
        &self.layers[layer]
    }

    /// Appends one position's key/value rows to block `layer` (demo and
    /// test path; the decode engine appends through its own split
    /// borrow).
    ///
    /// # Panics
    ///
    /// Panics if `layer >= n_layers`, the widths mismatch, or the pool is
    /// exhausted.
    pub fn append_row(&mut self, layer: usize, key: &[f32], value: &[f32]) {
        self.layers[layer].push(&self.pool, key, value);
    }

    /// Split borrow for the decode loop: the pool handle plus every
    /// layer, mutably.
    pub(crate) fn split_mut(&mut self) -> (&PagePool, &mut [LayerKv]) {
        (&self.pool, &mut self.layers)
    }

    /// Recycles every page back to the pool while keeping the layer
    /// structure, so the cache can be handed to a new request. A decode
    /// after `reset` is bit-identical to one on a freshly built cache.
    /// Shared leases are dropped; their physical pages rejoin the free
    /// list only once the last co-owner releases them.
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            layer.release_into(&self.pool);
        }
    }

    /// [`KvCache::reset`], reporting how many physical pages actually
    /// rejoined the pool's free list — exclusive pages count fully,
    /// shared leases only when this cache was the last co-owner. This is
    /// the suspend half of a scheduler's preempt/resume cycle: the
    /// return value is what the pool demonstrably got back, which a
    /// caller can log or assert against its own reservation accounting.
    pub fn release_pages(&mut self) -> usize {
        let before = self.pool.pages_in_use();
        self.reset();
        before - self.pool.pages_in_use()
    }

    /// Forks the first `positions` cached positions into a new cache on
    /// the same pool that *shares* every covered page instead of copying
    /// it: only the page tables are cloned ([`PagePool::fork_page`]
    /// leases per page), so N forks of a P-position prefix pin
    /// `pages(P)` physical pages, not `N·pages(P)`. Takes `&mut self`
    /// because covered pages this cache still owns exclusively are first
    /// sealed into shared leases ([`PagePool::share`]) — a no-op on
    /// repeat forks.
    ///
    /// Shared pages are immutable. Decoding continues bit-exactly on
    /// both sides: the first append either cache makes into a shared
    /// partial tail page copies it out bitwise first (copy-on-write, see
    /// `LayerKv::push`'s guard and [`PagePool::privatize`]), while
    /// whole prefix pages stay deduplicated for the streams' lifetimes.
    ///
    /// # Panics
    ///
    /// Panics if `positions` exceeds the cached length.
    pub fn fork_prefix(&mut self, positions: usize) -> KvCache {
        let pool = self.pool.clone();
        let layers = self
            .layers
            .iter_mut()
            .map(|layer| layer.fork_prefix(&pool, positions))
            .collect();
        KvCache { pool, layers }
    }

    /// Forks the *entire* live cache — every currently cached position —
    /// sharing all covered pages copy-on-write: the mid-stream fork
    /// behind `anda-serve`'s parallel-sampling modes, which fork a
    /// stream's cache at its live decode position so `n` sibling
    /// completions share one physical prompt. Equivalent to
    /// `fork_prefix(self.len())`; see [`KvCache::fork_prefix`] for the
    /// sharing and copy-on-write semantics. A partial tail page is
    /// sealed shared too — whichever side appends next privatizes it
    /// bitwise, so both sides keep decoding bit-exactly.
    pub fn fork_full(&mut self) -> KvCache {
        let positions = self.len();
        self.fork_prefix(positions)
    }

    /// Pages across all layers held as shared (refcounted) leases.
    pub fn shared_pages(&self) -> usize {
        self.layers.iter().map(LayerKv::shared_page_count).sum()
    }

    /// Reserves page-table capacity for contexts up to `max_positions`,
    /// so growing into them never reallocates the tables (pair with
    /// [`PagePool::preallocate`] for fully allocation-free decoding).
    pub fn reserve(&mut self, max_positions: usize) {
        let pages = self.pool.pages_for(max_positions);
        for layer in &mut self.layers {
            layer.pages.reserve(pages);
        }
    }

    /// Bits occupied by the cached rows across all layers.
    pub fn storage_bits(&self) -> usize {
        self.layers.iter().map(LayerKv::storage_bits).sum()
    }

    /// Bits pinned by all leased pages (page-granular, what admission
    /// accounts for).
    pub fn resident_bits(&self) -> usize {
        self.layers.iter().map(LayerKv::resident_bits).sum()
    }

    /// Compression ratio of the cached rows versus an FP16 cache of the
    /// same shape (1.0 when empty).
    pub fn compression_vs_fp16(&self) -> f64 {
        let fp16: usize = self.layers.iter().map(|l| 2 * l.len() * l.dim() * 16).sum();
        let actual = self.storage_bits();
        if actual == 0 {
            1.0
        } else {
            fp16 as f64 / actual as f64
        }
    }
}

impl Drop for KvCache {
    fn drop(&mut self) {
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anda_format::bfp::saturate_to_f16;
    use anda_tensor::Rng;

    fn rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.normal_with(0.0, 1.0)).collect())
            .collect()
    }

    fn cache_with(storage: KvStorage, page_positions: usize) -> KvCache {
        PagePool::new(KvPoolConfig {
            storage,
            page_positions,
            max_pages: None,
        })
        .new_cache(1)
    }

    #[test]
    fn fp16_store_round_trips_to_fp16_precision() {
        let mut cache = cache_with(KvStorage::Fp16, 2);
        let k = rows(3, 64, 1);
        for r in &k {
            cache.append_row(0, r, r);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.layer(0).page_count(), 2);
        for (i, r) in k.iter().enumerate() {
            for (a, &b) in cache.layer(0).key(i).iter().zip(r) {
                assert!((a - b).abs() < 1e-3);
                assert_eq!(a.to_bits(), saturate_to_f16(b).to_f32().to_bits());
            }
        }
    }

    #[test]
    fn bf16_store_round_trips_to_bf16_precision() {
        use anda_fp::saturate_to_bf16;
        let mut cache = cache_with(KvStorage::Bf16, 2);
        let k = rows(3, 64, 1);
        for r in &k {
            cache.append_row(0, r, r);
        }
        assert_eq!(cache.len(), 3);
        // Same 16-bit row accounting as FP16.
        assert_eq!(KvStorage::Bf16.row_bits(64), KvStorage::Fp16.row_bits(64));
        for (i, r) in k.iter().enumerate() {
            for (a, &b) in cache.layer(0).key(i).iter().zip(r) {
                assert!((a - b).abs() < 1e-2 * b.abs().max(1.0));
                assert_eq!(a.to_bits(), saturate_to_bf16(b).to_f32().to_bits());
            }
        }
    }

    #[test]
    fn anda_store_error_bounded_and_decreasing_in_m() {
        let data = rows(4, 128, 2);
        let err_at = |m: u32| {
            let mut cache = cache_with(KvStorage::Anda { mantissa_bits: m }, 4);
            for r in &data {
                cache.append_row(0, r, r);
            }
            let mut err = 0.0f64;
            for (i, r) in data.iter().enumerate() {
                for (a, &b) in cache.layer(0).key(i).iter().zip(r) {
                    err += f64::from((a - b).abs());
                }
            }
            err
        };
        assert!(err_at(11) < err_at(6));
        assert!(err_at(6) < err_at(3));
    }

    #[test]
    fn compression_ratio_matches_format_accounting() {
        let mut cache = cache_with(KvStorage::Anda { mantissa_bits: 5 }, 8);
        let data = rows(8, 64, 3);
        for r in &data {
            cache.append_row(0, r, r);
        }
        // 5-bit mantissa: ≈ 6.08 bits/element vs 16.
        let expect = 16.0 / (5.0 + 1.0 + 5.0 / 64.0);
        assert!((cache.compression_vs_fp16() - expect).abs() < 1e-9);
        // One full page leased: resident == logical here.
        assert_eq!(cache.resident_bits(), cache.storage_bits());
    }

    #[test]
    fn attention_with_wide_mantissa_matches_fp16() {
        let dim = 64;
        let data = rows(10, dim, 4);
        let q = &rows(1, dim, 5)[0];
        let mut exact = cache_with(KvStorage::Fp16, 4);
        let mut anda = cache_with(KvStorage::Anda { mantissa_bits: 16 }, 4);
        for r in &data {
            exact.append_row(0, r, r);
            anda.append_row(0, r, r);
        }
        let a = exact.layer(0).attend(q, 4);
        let b = anda.layer(0).attend(q, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 2e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn attention_error_grows_as_m_shrinks() {
        let dim = 64;
        let data = rows(12, dim, 6);
        let q = &rows(1, dim, 7)[0];
        let mut exact = cache_with(KvStorage::Fp16, 4);
        for r in &data {
            exact.append_row(0, r, r);
        }
        let reference = exact.layer(0).attend(q, 4);
        let err_at = |m: u32| {
            let mut cache = cache_with(KvStorage::Anda { mantissa_bits: m }, 4);
            for r in &data {
                cache.append_row(0, r, r);
            }
            let out = cache.layer(0).attend(q, 4);
            reference
                .iter()
                .zip(&out)
                .map(|(a, b)| f64::from((a - b).abs()))
                .sum::<f64>()
        };
        assert!(err_at(12) < err_at(4));
    }

    #[test]
    fn attend_into_reuses_scratch_and_page_size_is_value_invariant() {
        let dim = 64;
        let data = rows(9, dim, 8);
        let q = &rows(1, dim, 9)[0];
        let mut scratch = KvReadScratch::new();
        let mut out = vec![0.0; dim];
        let mut reference: Option<Vec<u32>> = None;
        for pp in [1usize, 4, 16] {
            let mut cache = cache_with(KvStorage::Anda { mantissa_bits: 7 }, pp);
            for r in &data {
                cache.append_row(0, r, r);
            }
            cache.layer(0).attend_into(q, 4, &mut out, &mut scratch);
            let bits: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(&bits, r, "page size {pp} changed attention values"),
            }
        }
    }

    #[test]
    fn reset_recycles_pages_and_reuse_precedes_growth() {
        let pool = PagePool::new(KvPoolConfig {
            storage: KvStorage::Fp16,
            page_positions: 2,
            max_pages: Some(8),
        });
        let mut cache = pool.new_cache(2);
        let data = rows(5, 32, 10);
        for r in &data {
            cache.append_row(0, r, r);
            cache.append_row(1, r, r);
        }
        // 5 positions over 2-position pages → 3 pages per layer.
        assert_eq!(pool.pages_in_use(), 6);
        let created = pool.pages_created();
        cache.reset();
        assert_eq!(cache.len(), 0);
        assert_eq!(pool.pages_in_use(), 0);
        assert_eq!(pool.pages_free(), created);
        // Refill: the free list feeds every lease, creation stays flat.
        for r in &data {
            cache.append_row(0, r, r);
            cache.append_row(1, r, r);
        }
        assert_eq!(pool.pages_created(), created);
        drop(cache);
        assert_eq!(pool.pages_in_use(), 0);
    }

    #[test]
    fn bounded_pool_stops_at_capacity() {
        let pool = PagePool::new(KvPoolConfig {
            storage: KvStorage::Fp16,
            page_positions: 1,
            max_pages: Some(3),
        });
        let a = pool.try_alloc(16).unwrap();
        let b = pool.try_alloc(16).unwrap();
        let c = pool.try_alloc(16).unwrap();
        assert!(pool.try_alloc(16).is_none(), "capacity must bind");
        pool.release(b);
        assert!(pool.try_alloc(16).is_some(), "freed pages come back");
        drop((a, c));
        assert_eq!(pool.pages_created(), 3);
    }

    #[test]
    fn memory_budget_holds_more_anda_pages_than_fp16() {
        let dim = 128;
        let budget = 4 * 1024 * 1024; // bits
        let fp16 = KvPoolConfig::unbounded(KvStorage::Fp16).with_memory_budget(budget, dim);
        let anda = KvPoolConfig::unbounded(KvStorage::Anda { mantissa_bits: 5 })
            .with_memory_budget(budget, dim);
        let (f, a) = (fp16.max_pages.unwrap(), anda.max_pages.unwrap());
        assert!(
            a as f64 > f as f64 * 2.5,
            "anda pages {a} vs fp16 pages {f}"
        );
    }

    #[test]
    #[should_panic(expected = "layer 0 has no cached K/V positions")]
    fn empty_attend_panics() {
        let cache = cache_with(KvStorage::Fp16, 4);
        let _ = cache.layer(0).attend(&vec![0.0; 64], 4);
    }

    #[test]
    #[should_panic(expected = "layer 2 has no cached K/V positions")]
    fn empty_attend_names_the_layer() {
        let cache = PagePool::new(KvPoolConfig::default()).new_cache(3);
        let _ = cache.layer(2).attend(&vec![0.0; 64], 4);
    }

    #[test]
    #[should_panic(expected = "layer 1 has no cached K/V positions")]
    fn grouped_staging_of_empty_layer_panics() {
        let cache = PagePool::new(KvPoolConfig::unbounded(KvStorage::Anda {
            mantissa_bits: 6,
        }))
        .new_cache(2);
        let mut decode = PageDecodeCache::new();
        decode.begin_layer();
        decode.stage_layer(0, cache.layer(1), &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn invalid_mantissa_panics() {
        let _ = PagePool::new(KvPoolConfig::unbounded(KvStorage::Anda {
            mantissa_bits: 0,
        }));
    }

    #[test]
    #[should_panic(expected = "one row width")]
    fn mixed_row_widths_panic() {
        let pool = PagePool::new(KvPoolConfig::default());
        let _a = pool.try_alloc(64);
        let _b = pool.try_alloc(128);
    }

    fn key_bits(cache: &KvCache, upto: usize) -> Vec<u32> {
        let mut bits = Vec::new();
        for i in 0..upto {
            bits.extend(cache.layer(0).key(i).iter().map(|x| x.to_bits()));
        }
        for i in 0..upto {
            bits.extend(cache.layer(0).value(i).iter().map(|x| x.to_bits()));
        }
        bits
    }

    /// Forking a prefix clones page tables only: the pool's in-use count
    /// stays flat, the shared pages read back bit-identically from both
    /// sides, and resetting the fork keeps the donor's pages alive.
    #[test]
    fn fork_prefix_shares_pages_without_copying() {
        for storage in [
            KvStorage::Fp16,
            KvStorage::Bf16,
            KvStorage::Anda { mantissa_bits: 6 },
        ] {
            let pool = PagePool::new(KvPoolConfig {
                storage,
                page_positions: 4,
                max_pages: None,
            });
            let mut parent = pool.new_cache(1);
            let data = rows(10, 64, 21);
            for r in &data {
                parent.append_row(0, r, r);
            }
            let in_use = pool.pages_in_use();
            let parent_bits = key_bits(&parent, 8);

            let mut child = parent.fork_prefix(8);
            assert_eq!(child.len(), 8);
            assert_eq!(pool.pages_in_use(), in_use, "fork must not lease pages");
            assert_eq!(child.shared_pages(), 2, "both covered pages shared");
            assert_eq!(parent.shared_pages(), 2, "donor pages sealed in place");
            assert_eq!(key_bits(&child, 8), parent_bits, "shared reads are exact");

            child.reset();
            assert_eq!(
                pool.pages_in_use(),
                in_use,
                "donor leases keep the shared pages alive"
            );
            assert_eq!(key_bits(&parent, 8), parent_bits, "donor unaffected");
        }
    }

    /// Appending into a fork whose tail page is shared fires
    /// copy-on-write: the fork gets a private page whose prefix rows are
    /// a bitwise copy of the donor's, the donor's rows never change, and
    /// the two caches diverge only past the fork point.
    #[test]
    fn copy_on_write_preserves_bits_and_isolates_streams() {
        for storage in [
            KvStorage::Fp32,
            KvStorage::Fp16,
            KvStorage::Bf16,
            KvStorage::Anda { mantissa_bits: 6 },
        ] {
            let pool = PagePool::new(KvPoolConfig {
                storage,
                page_positions: 4,
                max_pages: None,
            });
            let mut parent = pool.new_cache(1);
            let data = rows(6, 64, 22); // 6 positions: page + partial tail
            for r in &data {
                parent.append_row(0, r, r);
            }
            let parent_bits = key_bits(&parent, 6);

            let mut child = parent.fork_prefix(6);
            let in_use = pool.pages_in_use();
            let fresh = rows(2, 64, 23);
            child.append_row(0, &fresh[0], &fresh[0]); // CoW: tail copies out
            assert_eq!(
                pool.pages_in_use(),
                in_use + 1,
                "CoW leases exactly one private page"
            );
            assert_eq!(
                key_bits(&child, 6),
                parent_bits,
                "{storage:?}: CoW page must be a bitwise copy of its parent at fork time"
            );
            parent.append_row(0, &fresh[1], &fresh[1]); // donor CoWs its side too
            assert_eq!(key_bits(&parent, 6), parent_bits, "donor prefix unchanged");
            assert_ne!(
                child.layer(0).key(6),
                parent.layer(0).key(6),
                "past the fork point the streams are private"
            );
        }
    }

    /// When the fork is the last lease standing, privatize reclaims the
    /// shared page in place: no copy, no new page, creation stays flat.
    #[test]
    fn sole_lease_privatize_reclaims_without_copying() {
        let pool = PagePool::new(KvPoolConfig {
            storage: KvStorage::Fp16,
            page_positions: 4,
            max_pages: None,
        });
        let mut parent = pool.new_cache(1);
        let data = rows(6, 32, 24);
        for r in &data {
            parent.append_row(0, r, r);
        }
        let mut child = parent.fork_prefix(6);
        let expect = key_bits(&parent, 6);
        parent.reset(); // child is now the sole lease of both pages
        let created = pool.pages_created();
        let extra = rows(1, 32, 25);
        child.append_row(0, &extra[0], &extra[0]);
        assert_eq!(
            pool.pages_created(),
            created,
            "sole-lease CoW must reclaim, not copy"
        );
        assert_eq!(key_bits(&child, 6), expect, "reclaimed rows read exactly");
    }

    /// A fork truncated mid-page views only its prefix of the shared
    /// tail: reads, attention row iteration and storage accounting all
    /// follow the logical length, not the page fill.
    #[test]
    fn truncated_fork_masks_the_shared_tail() {
        let pool = PagePool::new(KvPoolConfig {
            storage: KvStorage::Anda { mantissa_bits: 8 },
            page_positions: 4,
            max_pages: None,
        });
        let mut parent = pool.new_cache(1);
        let data = rows(7, 64, 26);
        for r in &data {
            parent.append_row(0, r, r);
        }
        let mut child = parent.fork_prefix(5); // page 1 shared, 1 logical row
        assert_eq!(child.len(), 5);
        assert_eq!(child.layer(0).storage_bits(), {
            let full = parent.layer(0).storage_bits();
            full / 7 * 5
        });
        // Attention over the fork must see exactly 5 positions.
        let q = &rows(1, 64, 27)[0];
        let mut private = pool.new_cache(1);
        for r in &data[..5] {
            private.append_row(0, r, r);
        }
        let a = child.layer(0).attend(q, 4);
        let b = private.layer(0).attend(q, 4);
        let (abits, bbits): (Vec<u32>, Vec<u32>) = (
            a.iter().map(|x| x.to_bits()).collect(),
            b.iter().map(|x| x.to_bits()).collect(),
        );
        assert_eq!(abits, bbits, "masked tail must not leak donor rows");
        // Appending at position 5 CoWs the tail and continues exactly.
        child.append_row(0, &data[5], &data[5]);
        private.append_row(0, &data[5], &data[5]);
        assert_eq!(key_bits(&child, 6), key_bits(&private, 6));
    }

    #[test]
    #[should_panic(expected = "fork of 9 positions")]
    fn fork_past_len_panics() {
        let mut cache = cache_with(KvStorage::Fp16, 4);
        let data = rows(3, 32, 28);
        for r in &data {
            cache.append_row(0, r, r);
        }
        let _ = cache.fork_prefix(9);
    }

    #[test]
    #[should_panic(expected = "foreign pool")]
    fn foreign_pool_fork_page_panics() {
        let pool_a = PagePool::new(KvPoolConfig::default());
        let pool_b = PagePool::new(KvPoolConfig::default());
        let page = pool_a.try_alloc(64).unwrap();
        let shared = pool_a.share(page);
        let _ = pool_b.fork_page(&shared);
    }
}
