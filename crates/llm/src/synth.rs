//! Deterministic synthetic weight generation with controllable activation
//! outlier structure.
//!
//! The paper's accuracy results hinge on *where* FP activations have wide
//! intra-group dynamic range: outlier channels force large shared exponents,
//! so small group members lose mantissa bits when truncated (Fig. 4). The
//! LLM literature locates these outliers in specific hidden channels,
//! amplified by LayerNorm gains. [`SensitivityProfile`] exposes exactly that
//! dial per module type: channels with boosted norm gains feed `A_qkv`/`A_u`,
//! boosted value-projection columns shape `A_o`, and boosted up-projection
//! columns shape `A_d`. Profiles are calibrated per simulated model so the
//! family-level orderings reported by the paper (OPT more tolerant than
//! LLaMA; `A_qkv` most sensitive) emerge from the same mechanism.

use anda_tensor::{Matrix, Rng};

/// Outlier-channel specification: `count` channels get their magnitude
/// multiplied by `gain`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutlierSpec {
    /// Number of boosted channels.
    pub count: usize,
    /// Multiplicative boost applied to those channels.
    pub gain: f32,
}

impl OutlierSpec {
    /// No outliers.
    pub const NONE: OutlierSpec = OutlierSpec {
        count: 0,
        gain: 1.0,
    };

    /// Convenience constructor.
    pub const fn new(count: usize, gain: f32) -> Self {
        OutlierSpec { count, gain }
    }
}

/// Per-model activation-outlier calibration (see module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensitivityProfile {
    /// Outliers in the attention-input norm gain (drives `A_qkv` range).
    pub qkv: OutlierSpec,
    /// Outliers in value-projection output channels (drives `A_o` range).
    pub o: OutlierSpec,
    /// Outliers in the FFN-input norm gain (drives `A_u` range).
    pub u: OutlierSpec,
    /// Outliers in up-projection output channels (drives `A_d` range).
    pub d: OutlierSpec,
    /// Scale applied to the embedding table; larger values sharpen the
    /// output distribution (lower reference perplexity, higher sensitivity
    /// of PPL to logit noise).
    pub logit_sharpness: f32,
    /// Base standard deviation of dense weights.
    pub weight_std: f32,
}

/// Boosts `spec.count` deterministic channels of `values` by `spec.gain`.
pub fn apply_outliers(values: &mut [f32], spec: OutlierSpec, rng: &mut Rng) {
    if spec.count == 0 || values.is_empty() {
        return;
    }
    for _ in 0..spec.count {
        let idx = rng.below(values.len());
        values[idx] *= spec.gain;
    }
}

/// Samples a norm gain vector around 1.0 with outlier channels.
pub fn norm_gain(dim: usize, spec: OutlierSpec, rng: &mut Rng) -> Vec<f32> {
    let mut gain: Vec<f32> = (0..dim).map(|_| 1.0 + rng.normal_with(0.0, 0.15)).collect();
    apply_outliers(&mut gain, spec, rng);
    gain
}

/// Samples a small bias vector.
pub fn norm_bias(dim: usize, rng: &mut Rng) -> Vec<f32> {
    (0..dim).map(|_| rng.normal_with(0.0, 0.02)).collect()
}

/// Samples a dense weight matrix with std `std / sqrt(rows)` (variance-
/// preserving fan-in scaling).
pub fn dense(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let scaled = std / (rows as f32).sqrt();
    rng.fill_normal(m.as_mut_slice(), scaled);
    m
}

/// Boosts `spec.count` output columns of a weight matrix by `spec.gain`
/// (creates outlier channels in that projection's *output* activation).
pub fn boost_columns(m: &mut Matrix, spec: OutlierSpec, rng: &mut Rng) {
    if spec.count == 0 {
        return;
    }
    let cols = m.cols();
    for _ in 0..spec.count {
        let c = rng.below(cols);
        for r in 0..m.rows() {
            m[(r, c)] *= spec.gain;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outliers_boost_selected_channels() {
        let mut rng = Rng::new(1);
        let mut v = vec![1.0f32; 100];
        apply_outliers(&mut v, OutlierSpec::new(3, 10.0), &mut rng);
        let boosted = v.iter().filter(|&&x| x > 5.0).count();
        assert!((1..=3).contains(&boosted));
    }

    #[test]
    fn none_spec_is_identity() {
        let mut rng = Rng::new(2);
        let mut v = vec![2.0f32; 10];
        apply_outliers(&mut v, OutlierSpec::NONE, &mut rng);
        assert_eq!(v, vec![2.0f32; 10]);
    }

    #[test]
    fn norm_gain_centers_near_one() {
        let mut rng = Rng::new(3);
        let g = norm_gain(1000, OutlierSpec::NONE, &mut rng);
        let mean = g.iter().sum::<f32>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn norm_gain_with_outliers_has_wide_range() {
        let mut rng = Rng::new(4);
        let g = norm_gain(256, OutlierSpec::new(4, 20.0), &mut rng);
        let max = g.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(max > 10.0);
    }

    #[test]
    fn dense_uses_fan_in_scaling() {
        let mut rng = Rng::new(5);
        let m = dense(400, 50, 1.0, &mut rng);
        let var = m.as_slice().iter().map(|x| x * x).sum::<f32>() / m.len() as f32;
        assert!((var - 1.0 / 400.0).abs() < 0.3 / 400.0 * 10.0, "var {var}");
    }

    #[test]
    fn boost_columns_scales_whole_columns() {
        let mut rng = Rng::new(6);
        let mut m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        boost_columns(&mut m, OutlierSpec::new(1, 5.0), &mut rng);
        // Exactly one column is 5.0s (or both if the same column drawn — not
        // possible with count 1).
        let c0 = m[(0, 0)];
        let c1 = m[(0, 1)];
        assert!(
            (c0 == 5.0 && c1 == 1.0) || (c0 == 1.0 && c1 == 5.0),
            "{c0} {c1}"
        );
        assert_eq!(m[(0, 0)], m[(1, 0)]);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = dense(10, 10, 1.0, &mut Rng::new(7));
        let b = dense(10, 10, 1.0, &mut Rng::new(7));
        assert_eq!(a, b);
    }
}
