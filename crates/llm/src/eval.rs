//! Perplexity evaluation and relative-accuracy metrics.

use anda_tensor::ops;

use crate::model::{ForwardScratch, Model};
use crate::modules::CodecAssignment;

/// Default evaluation window (the paper uses 2048 for real models; sim
/// models use their own scale).
pub const DEFAULT_WINDOW: usize = 256;

/// Perplexity of `model` on `tokens` under the given activation codecs.
///
/// The stream is split into non-overlapping windows of `window` tokens;
/// within each window every position predicts its successor (teacher
/// forcing with causal attention). Returns `exp(mean NLL)` in nats.
///
/// # Panics
///
/// Panics if `window < 2` or fewer than 2 tokens are supplied.
pub fn perplexity(model: &Model, codecs: &CodecAssignment, tokens: &[usize], window: usize) -> f64 {
    // One scratch serves every window; callers evaluating many
    // perplexities (calibration grids, search loops, surrogate sweeps)
    // should hold their own scratch and use [`perplexity_with_scratch`].
    perplexity_with_scratch(model, codecs, tokens, window, &mut ForwardScratch::new())
}

/// [`perplexity`] with a caller-provided [`ForwardScratch`]: across many
/// evaluations (a calibration grid, a precision search, a surrogate fit)
/// every per-layer forward buffer — including the `T × vocab` logits — is
/// allocated once and reused.
///
/// # Panics
///
/// Same conditions as [`perplexity`].
pub fn perplexity_with_scratch(
    model: &Model,
    codecs: &CodecAssignment,
    tokens: &[usize],
    window: usize,
    scratch: &mut ForwardScratch,
) -> f64 {
    assert!(window >= 2, "need a window of at least 2 tokens");
    assert!(tokens.len() >= 2, "need at least 2 tokens to evaluate");
    let mut total_nll = 0.0f64;
    let mut count = 0usize;
    let mut ls = Vec::new();
    for chunk in tokens.chunks(window) {
        if chunk.len() < 2 {
            continue;
        }
        let logits = model.forward_with_scratch(chunk, codecs, scratch);
        for i in 0..chunk.len() - 1 {
            ops::log_softmax_into(logits.row(i), &mut ls);
            total_nll -= f64::from(ls[chunk[i + 1]]);
            count += 1;
        }
    }
    (total_nll / count.max(1) as f64).exp()
}

/// Relative accuracy loss of a method versus a baseline, following the
/// paper's Table II convention: `(ppl - baseline) / baseline`, positive
/// when the method is worse. (Table II prints this with a negative sign.)
pub fn relative_accuracy_loss(baseline_ppl: f64, ppl: f64) -> f64 {
    (ppl - baseline_ppl) / baseline_ppl
}

/// Relative accuracy (Figs. 5–7 y-axis): `baseline/ppl` clamped to ≤ 1
/// is *not* what the paper plots; it plots `1 - loss`, which we mirror.
pub fn relative_accuracy(baseline_ppl: f64, ppl: f64) -> f64 {
    1.0 - relative_accuracy_loss(baseline_ppl, ppl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::zoo;
    use anda_quant::ActivationCodec;

    #[test]
    fn fp16_ppl_is_reasonable_and_reproducible() {
        let model = zoo::opt_125m_sim().build();
        let c = corpus::corpus("wikitext2-sim")
            .unwrap()
            .generate(&model, 0, 256);
        let p1 = perplexity(&model, &CodecAssignment::fp16(), &c.validation, 128);
        let p2 = perplexity(&model, &CodecAssignment::fp16(), &c.validation, 128);
        assert_eq!(p1, p2);
        // Far better than uniform (vocab 512), far worse than perfect.
        assert!(p1 > 1.1 && p1 < 256.0, "ppl {p1}");
    }

    #[test]
    fn aggressive_truncation_degrades_ppl() {
        let model = zoo::opt_125m_sim().build();
        let c = corpus::corpus("wikitext2-sim")
            .unwrap()
            .generate(&model, 0, 256);
        let base = perplexity(&model, &CodecAssignment::fp16(), &c.validation, 128);
        let narrow = perplexity(
            &model,
            &CodecAssignment::uniform(ActivationCodec::anda(2)),
            &c.validation,
            128,
        );
        assert!(
            narrow > base * 1.02,
            "2-bit mantissa must hurt: {narrow} vs {base}"
        );
    }

    #[test]
    fn wide_mantissa_is_nearly_lossless() {
        let model = zoo::opt_125m_sim().build();
        let c = corpus::corpus("c4-sim").unwrap().generate(&model, 0, 256);
        let base = perplexity(&model, &CodecAssignment::fp16(), &c.validation, 128);
        let wide = perplexity(
            &model,
            &CodecAssignment::uniform(ActivationCodec::anda(16)),
            &c.validation,
            128,
        );
        let loss = relative_accuracy_loss(base, wide).abs();
        assert!(loss < 0.005, "16-bit mantissa loss {loss}");
    }

    #[test]
    fn loss_metric_signs() {
        assert!(relative_accuracy_loss(10.0, 10.5) > 0.0);
        assert!(relative_accuracy_loss(10.0, 9.9) < 0.0);
        assert!((relative_accuracy(10.0, 10.1) - 0.99).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_panics() {
        let model = zoo::opt_125m_sim().build();
        let _ = perplexity(&model, &CodecAssignment::fp16(), &[1, 2, 3], 1);
    }
}
