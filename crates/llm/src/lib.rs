//! Transformer inference substrate for the Anda reproduction.
//!
//! The paper evaluates Anda on OPT/LLaMA/LLaMA-2 checkpoints via PyTorch.
//! Those weights are unavailable here, so this crate implements the
//! *structural* substitute documented in `DESIGN.md`:
//!
//! - [`config`] — model architecture descriptions for both families
//!   (OPT-style: LayerNorm + ReLU FFN + learned positions; LLaMA-style:
//!   RMSNorm + SwiGLU FFN + rotary embeddings).
//! - [`zoo`] — the model catalog: *real-dimension* configs (OPT-125M…30B,
//!   LLaMA/LLaMA-2 7B/13B) used for op counting and hardware workloads, and
//!   *sim* configs (scaled-down, synthesized weights) used for accuracy
//!   experiments, each with a calibrated activation-outlier profile.
//! - [`modules`] — the four FP-INT GeMM module types (`A_qkv`, `A_o`,
//!   `A_u`, `A_d`) and per-module codec assignments.
//! - [`synth`] — deterministic weight synthesis with controllable outlier
//!   channels (the mechanism behind the paper's observed sensitivities).
//! - [`model`] — the inference engine: full-sequence forward passes with
//!   per-module activation codecs, causal attention, and KV-cached
//!   generation.
//! - [`corpus`] — synthetic evaluation corpora generated *by the reference
//!   model itself* (three corpora standing in for WikiText-2/PTB/C4).
//! - [`eval`] — perplexity and relative-accuracy measurement.
//! - [`opcount`] — analytical operation counting (Fig. 2).
//! - [`kv`] — the §VI extension: the paged KV subsystem — a block-pool
//!   page allocator with FP16 or Anda-compressed pages, refcounted
//!   prefix sharing with copy-on-write, shared by solo decode and the
//!   serving layer.

pub mod config;
pub mod corpus;
pub mod eval;
pub mod kv;
pub mod model;
pub mod modules;
pub mod opcount;
pub mod synth;
pub mod zoo;

pub use config::{Family, ModelConfig};
pub use eval::{perplexity, perplexity_with_scratch, relative_accuracy_loss};
pub use kv::{
    KvCache, KvPoolConfig, KvReadScratch, KvStorage, LayerKv, PageDecodeCache, PagePool, SharedPage,
};
pub use model::{BatchEntry, BatchOutput, DecodeScratch, ForwardScratch, Model, WeightMode};
pub use modules::{CodecAssignment, ModuleKind, PrecisionCombo};
pub use zoo::SimModelSpec;
