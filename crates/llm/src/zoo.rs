//! The model catalog.
//!
//! Two parallel catalogs, per the substitution documented in `DESIGN.md`:
//!
//! - [`real_models`] — the *true* architecture dimensions of the paper's
//!   nine benchmark LLMs (plus OPT-125M used by Fig. 9). These parameterize
//!   op counting (Fig. 2) and the hardware simulator's GeMM workloads
//!   (Figs. 16–18); their weights are never materialized.
//! - [`sim_models`] — scaled-down simulated counterparts with synthesized
//!   weights, used for every accuracy experiment. Each carries a calibrated
//!   [`SensitivityProfile`] reproducing the paper's observed orderings:
//!   OPT models tolerate more mantissa truncation than LLaMA models, larger
//!   OPTs tolerate more than OPT-1.3B, and `A_qkv` is the most sensitive
//!   module while `A_d` is the least (for OPT).

use crate::config::{Family, ModelConfig};
use crate::model::Model;
use crate::synth::{OutlierSpec, SensitivityProfile};

/// A simulated model: scaled-down config + sensitivity profile + seed,
/// paired with the real-dimension config it stands in for.
#[derive(Clone, Debug)]
pub struct SimModelSpec {
    /// The simulated (small) architecture.
    pub sim: ModelConfig,
    /// The real model it substitutes (dimensions used for op counting and
    /// hardware workloads).
    pub real: ModelConfig,
    /// Activation-outlier calibration.
    pub profile: SensitivityProfile,
    /// Weight synthesis seed.
    pub seed: u64,
}

impl SimModelSpec {
    /// Synthesizes the FP16 model (deterministic).
    pub fn build(&self) -> Model {
        Model::synthesize(self.sim.clone(), &self.profile, self.seed)
    }
}

#[allow(clippy::too_many_arguments)]
fn cfg(
    name: &str,
    family: Family,
    d: usize,
    layers: usize,
    heads: usize,
    ffn: usize,
    vocab: usize,
    max_seq: usize,
) -> ModelConfig {
    ModelConfig {
        name: name.to_owned(),
        family,
        d_model: d,
        n_layers: layers,
        n_heads: heads,
        d_ffn: ffn,
        vocab,
        max_seq,
    }
}

/// Real architecture dimensions of the paper's benchmark models.
///
/// Order matches the paper's tables: OPT-1.3B, OPT-2.7B, OPT-6.7B,
/// LLaMA-7B, LLaMA2-7B, OPT-13B, LLaMA-13B, LLaMA2-13B, OPT-30B.
pub fn real_models() -> Vec<ModelConfig> {
    vec![
        cfg("OPT-1.3B", Family::Opt, 2048, 24, 32, 8192, 50272, 2048),
        cfg("OPT-2.7B", Family::Opt, 2560, 32, 32, 10240, 50272, 2048),
        cfg("OPT-6.7B", Family::Opt, 4096, 32, 32, 16384, 50272, 2048),
        cfg("LLaMA-7B", Family::Llama, 4096, 32, 32, 11008, 32000, 2048),
        cfg("LLaMA2-7B", Family::Llama, 4096, 32, 32, 11008, 32000, 4096),
        cfg("OPT-13B", Family::Opt, 5120, 40, 40, 20480, 50272, 2048),
        cfg("LLaMA-13B", Family::Llama, 5120, 40, 40, 13824, 32000, 2048),
        cfg(
            "LLaMA2-13B",
            Family::Llama,
            5120,
            40,
            40,
            13824,
            32000,
            4096,
        ),
        cfg("OPT-30B", Family::Opt, 7168, 48, 56, 28672, 50272, 2048),
    ]
}

/// The real OPT-125M config (used by the Fig. 9 search-trace experiment).
pub fn real_opt_125m() -> ModelConfig {
    cfg("OPT-125M", Family::Opt, 768, 12, 12, 3072, 50272, 2048)
}

/// Looks up a real model config by name.
pub fn real_model(name: &str) -> Option<ModelConfig> {
    if name == "OPT-125M" {
        return Some(real_opt_125m());
    }
    real_models().into_iter().find(|m| m.name == name)
}

const SIM_VOCAB: usize = 512;
const SIM_SEQ: usize = 640;

fn opt_profile(scale: f32, sharpness: f32) -> SensitivityProfile {
    SensitivityProfile {
        qkv: OutlierSpec::new(16, 5.0 * scale),
        o: OutlierSpec::new(10, 2.5 * scale),
        u: OutlierSpec::new(16, 3.2 * scale),
        d: OutlierSpec::new(10, 2.0 * scale),
        logit_sharpness: sharpness,
        weight_std: 1.0,
    }
}

fn llama_profile(scale: f32, sharpness: f32) -> SensitivityProfile {
    SensitivityProfile {
        qkv: OutlierSpec::new(16, 8.0 * scale),
        o: OutlierSpec::new(10, 3.5 * scale),
        u: OutlierSpec::new(16, 4.5 * scale),
        d: OutlierSpec::new(10, 4.0 * scale),
        logit_sharpness: sharpness,
        weight_std: 1.0,
    }
}

/// Simulated counterparts of the nine benchmark models (same order as
/// [`real_models`]).
pub fn sim_models() -> Vec<SimModelSpec> {
    let reals = real_models();
    let find = |name: &str| reals.iter().find(|m| m.name == name).unwrap().clone();

    let sim_of = |real: &ModelConfig, d: usize, layers: usize, ffn: usize| ModelConfig {
        name: format!("{}-sim", real.name),
        family: real.family,
        d_model: d,
        n_layers: layers,
        n_heads: 4,
        d_ffn: ffn,
        vocab: SIM_VOCAB,
        max_seq: SIM_SEQ,
    };

    let mut specs = Vec::new();
    // OPT family: larger models are *less* sensitive (paper Fig. 6) —
    // encode that as a decreasing outlier scale with model size.
    for (name, scale, sharp, seed) in [
        ("OPT-1.3B", 1.30, 1.7, 1001u64),
        ("OPT-2.7B", 0.85, 1.8, 1002),
        ("OPT-6.7B", 0.80, 1.8, 1003),
        ("OPT-13B", 0.72, 1.9, 1006),
        ("OPT-30B", 0.62, 1.9, 1009),
    ] {
        let real = find(name);
        let sim = sim_of(&real, 128, 2, 512);
        specs.push(SimModelSpec {
            sim,
            real,
            profile: opt_profile(scale, sharp),
            seed,
        });
    }
    // LLaMA family: more sensitive overall.
    for (name, scale, sharp, seed) in [
        ("LLaMA-7B", 1.00, 2.0, 1004u64),
        ("LLaMA2-7B", 1.35, 2.0, 1005),
        ("LLaMA-13B", 0.95, 2.1, 1007),
        ("LLaMA2-13B", 0.90, 2.1, 1008),
    ] {
        let real = find(name);
        let sim = sim_of(&real, 128, 2, 384);
        specs.push(SimModelSpec {
            sim,
            real,
            profile: llama_profile(scale, sharp),
            seed,
        });
    }
    // Restore paper ordering.
    let order = [
        "OPT-1.3B",
        "OPT-2.7B",
        "OPT-6.7B",
        "LLaMA-7B",
        "LLaMA2-7B",
        "OPT-13B",
        "LLaMA-13B",
        "LLaMA2-13B",
        "OPT-30B",
    ];
    specs.sort_by_key(|s| {
        order
            .iter()
            .position(|&n| s.real.name == n)
            .unwrap_or(usize::MAX)
    });
    specs.push(opt_125m_sim());
    specs
}

/// The simulated OPT-125M (Fig. 9 search-trace model).
pub fn opt_125m_sim() -> SimModelSpec {
    let real = real_opt_125m();
    SimModelSpec {
        sim: ModelConfig {
            name: "OPT-125M-sim".into(),
            family: Family::Opt,
            d_model: 128,
            n_layers: 2,
            n_heads: 4,
            d_ffn: 512,
            vocab: SIM_VOCAB,
            max_seq: SIM_SEQ,
        },
        real,
        profile: opt_profile(1.45, 1.9),
        seed: 1000,
    }
}

/// Looks up a simulated model spec by real-model name (e.g. `"OPT-6.7B"`).
pub fn sim_model(name: &str) -> Option<SimModelSpec> {
    sim_models().into_iter().find(|s| s.real.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_catalog_has_paper_order() {
        let names: Vec<String> = real_models().into_iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "OPT-1.3B",
                "OPT-2.7B",
                "OPT-6.7B",
                "LLaMA-7B",
                "LLaMA2-7B",
                "OPT-13B",
                "LLaMA-13B",
                "LLaMA2-13B",
                "OPT-30B"
            ]
        );
    }

    #[test]
    fn real_param_counts_match_nominal_sizes() {
        // Dense parameter count should land within ~25% of the nominal
        // billions (embeddings + blocks; biases/norms excluded).
        let expect = [
            ("OPT-1.3B", 1.3e9),
            ("OPT-2.7B", 2.7e9),
            ("OPT-6.7B", 6.7e9),
            ("LLaMA-7B", 6.7e9),
            ("OPT-13B", 13.0e9),
            ("LLaMA-13B", 13.0e9),
            ("OPT-30B", 30.0e9),
        ];
        for (name, nominal) in expect {
            let m = real_model(name).unwrap();
            let p = m.param_count() as f64;
            assert!(
                (p - nominal).abs() / nominal < 0.25,
                "{name}: {p:.3e} vs nominal {nominal:.1e}"
            );
        }
    }

    #[test]
    fn sim_catalog_mirrors_real_catalog() {
        let sims = sim_models();
        assert_eq!(sims.len(), 10); // 9 benchmarks + OPT-125M
        for s in &sims[..9] {
            assert_eq!(s.sim.family, s.real.family);
            assert!(s.sim.name.ends_with("-sim"));
            assert_eq!(s.sim.d_model % 64, 0);
            assert_eq!(s.sim.d_ffn % 64, 0);
        }
    }

    #[test]
    fn llama_profiles_are_more_sensitive_than_opt() {
        let opt = sim_model("OPT-6.7B").unwrap().profile;
        let llama = sim_model("LLaMA-7B").unwrap().profile;
        assert!(llama.qkv.gain > opt.qkv.gain);
        assert!(llama.d.gain > opt.d.gain);
    }

    #[test]
    fn qkv_is_most_sensitive_module_in_profiles() {
        for s in sim_models() {
            assert!(s.profile.qkv.gain >= s.profile.u.gain);
            assert!(s.profile.u.gain >= s.profile.d.gain || s.sim.family == Family::Llama);
        }
    }

    #[test]
    fn specs_build_deterministically() {
        let spec = sim_model("OPT-2.7B").unwrap();
        let a = spec.build();
        let b = spec.build();
        let ta = a.forward(&[1, 2, 3], &crate::modules::CodecAssignment::fp16());
        let tb = b.forward(&[1, 2, 3], &crate::modules::CodecAssignment::fp16());
        assert_eq!(ta, tb);
    }

    #[test]
    fn lookup_by_name() {
        assert!(sim_model("OPT-13B").is_some());
        assert!(sim_model("GPT-4").is_none());
        assert!(real_model("OPT-125M").is_some());
    }
}
