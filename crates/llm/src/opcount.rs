//! Analytical operation counting for text generation (paper Fig. 2).
//!
//! Counts total operations (1 MAC = 2 ops) for generating a sequence of
//! `context` tokens with a weight-only quantized LLM, split into:
//!
//! - **FP-INT GeMM** — the four quantized projection types (`A_qkv`, `A_o`,
//!   `A_u`, `A_d`), constant per token;
//! - **attention** — `QKᵀ` and `P·V` (activation-activation, FP16), growing
//!   linearly with the attended prefix;
//! - **other** — LM head (FP-FP GeMM over the tied embedding), norms,
//!   softmax and element-wise work.

use crate::config::ModelConfig;
use crate::modules::ModuleKind;

/// Operation totals for one generation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpBreakdown {
    /// FP-INT GeMM operations.
    pub fp_int_gemm: u64,
    /// Attention score/value operations (FP16).
    pub attention: u64,
    /// Everything else (LM head, norms, softmax, element-wise).
    pub other: u64,
}

impl OpBreakdown {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.fp_int_gemm + self.attention + self.other
    }

    /// Fraction of operations that are FP-INT GeMMs.
    pub fn fp_int_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.fp_int_gemm as f64 / self.total() as f64
        }
    }

    /// Total in tera-operations.
    pub fn total_tops(&self) -> f64 {
        self.total() as f64 / 1e12
    }
}

/// MACs of one token through one instance of the given module type.
pub fn module_macs_per_token(cfg: &ModelConfig, kind: ModuleKind) -> u64 {
    let d = cfg.d_model as u64;
    let ffn = cfg.d_ffn as u64;
    match kind {
        ModuleKind::Qkv => d * 3 * d,
        ModuleKind::OutProj => d * d,
        ModuleKind::Up => match cfg.family {
            crate::config::Family::Opt => d * ffn,
            // LLaMA's gate and up projections share the A_u activation.
            crate::config::Family::Llama => 2 * d * ffn,
        },
        ModuleKind::Down => ffn * d,
    }
}

/// MACs of one token through all layers of the given module type.
pub fn module_macs_all_layers(cfg: &ModelConfig, kind: ModuleKind) -> u64 {
    cfg.n_layers as u64 * module_macs_per_token(cfg, kind)
}

/// Op breakdown for *decoding* `n_new` tokens with a KV cache already
/// holding `context` tokens — the paper's Fig. 2 text-generation setting
/// (its TOPs magnitudes correspond to a ~128-token generation budget, with
/// "context length" naming the attended prefix).
pub fn decode_ops(cfg: &ModelConfig, context: u64, n_new: u64) -> OpBreakdown {
    let d = cfg.d_model as u64;
    let layers = cfg.n_layers as u64;
    let vocab = cfg.vocab as u64;

    // Per-token constants.
    let fp_int_macs: u64 = ModuleKind::ALL
        .iter()
        .map(|&k| module_macs_all_layers(cfg, k))
        .sum();
    let lm_head_macs = d * vocab;
    let elementwise = layers * 12 * d; // norms, residuals, activations

    // Attention per generated token attends over context + position.
    let mut attn_macs = 0u64;
    for i in 0..n_new {
        attn_macs += layers * 2 * d * (context + i);
    }

    OpBreakdown {
        fp_int_gemm: 2 * fp_int_macs * n_new,
        attention: 2 * attn_macs,
        other: 2 * (lm_head_macs + elementwise) * n_new,
    }
}

/// The Fig. 2 generation budget (tokens produced per run).
pub const FIG2_GENERATED_TOKENS: u64 = 128;

/// Op breakdown for generating `context`-prefix text with the Fig. 2
/// budget of [`FIG2_GENERATED_TOKENS`] new tokens.
pub fn generation_ops(cfg: &ModelConfig, context: u64) -> OpBreakdown {
    decode_ops(cfg, context, FIG2_GENERATED_TOKENS)
}

/// Op breakdown for a full prefill over `seq` tokens (used by the hardware
/// simulator's workload sanity checks).
pub fn prefill_ops(cfg: &ModelConfig, seq: u64) -> OpBreakdown {
    let d = cfg.d_model as u64;
    let layers = cfg.n_layers as u64;
    let vocab = cfg.vocab as u64;
    let fp_int_macs: u64 = ModuleKind::ALL
        .iter()
        .map(|&k| module_macs_all_layers(cfg, k))
        .sum();
    let attn_macs = layers * 2 * d * (seq * (seq + 1) / 2);
    OpBreakdown {
        fp_int_gemm: 2 * fp_int_macs * seq,
        attention: 2 * attn_macs,
        other: 2 * (d * vocab + layers * 12 * d) * seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn fp_int_dominates_at_short_context() {
        // Paper: >90% of ops for sub-4K sequences on average.
        for cfg in zoo::real_models() {
            let b = generation_ops(&cfg, 1024);
            assert!(
                b.fp_int_fraction() > 0.85,
                "{}: {:.3}",
                cfg.name,
                b.fp_int_fraction()
            );
        }
    }

    #[test]
    fn fp_int_fraction_decreases_with_context() {
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        let f1 = generation_ops(&cfg, 1024).fp_int_fraction();
        let f16 = generation_ops(&cfg, 16384).fp_int_fraction();
        assert!(f1 > f16);
        // Paper: remains substantial at 10K+ tokens.
        assert!(f16 > 0.35, "{f16}");
    }

    #[test]
    fn fig2_magnitudes_match_paper_axis() {
        // Paper Fig. 2 y-axis tops out near 14 TOPs (OPT-30B).
        let big = generation_ops(&zoo::real_model("OPT-30B").unwrap(), 16384);
        assert!(
            big.total_tops() > 8.0 && big.total_tops() < 25.0,
            "{}",
            big.total_tops()
        );
        let small = generation_ops(&zoo::real_model("OPT-1.3B").unwrap(), 1024);
        assert!(small.total_tops() < 2.0, "{}", small.total_tops());
    }

    #[test]
    fn prefill_ops_scale_quadratically_in_attention() {
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        let a = prefill_ops(&cfg, 1024).attention;
        let b = prefill_ops(&cfg, 2048).attention;
        assert!(b > 3 * a && b < 5 * a);
    }

    #[test]
    fn totals_scale_with_model_size() {
        let small = generation_ops(&zoo::real_model("OPT-1.3B").unwrap(), 2048);
        let large = generation_ops(&zoo::real_model("OPT-30B").unwrap(), 2048);
        assert!(large.total() > 10 * small.total());
    }

    #[test]
    fn module_macs_match_config_totals() {
        for cfg in zoo::real_models() {
            let per_modules: u64 = ModuleKind::ALL
                .iter()
                .map(|&k| module_macs_all_layers(&cfg, k))
                .sum();
            assert_eq!(per_modules, cfg.fp_int_macs_per_token(), "{}", cfg.name);
        }
    }

    #[test]
    fn qkv_is_largest_attention_module() {
        let cfg = zoo::real_model("LLaMA-7B").unwrap();
        assert!(
            module_macs_per_token(&cfg, ModuleKind::Qkv)
                > module_macs_per_token(&cfg, ModuleKind::OutProj)
        );
    }

    #[test]
    fn opt_6_7b_total_magnitude_plausible() {
        // Fig. 2 shows low-single-digit TOPs totals at 2K context for
        // mid-size models under the decode budget.
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        let b = generation_ops(&cfg, 2048);
        assert!(
            b.total_tops() > 0.5 && b.total_tops() < 10.0,
            "{}",
            b.total_tops()
        );
    }
}
