//! Synthetic evaluation corpora (the WikiText-2 / PTB / C4 substitutes).
//!
//! Each corpus is generated *by the FP16 reference model itself* via
//! temperature sampling. The reference model is therefore near-optimal on
//! its own corpus, and any activation-format degradation raises perplexity
//! smoothly — the same monotone response the paper measures on real
//! datasets (see `DESIGN.md`, substitutions). The three corpora differ in
//! sampling temperature and seed, giving each model three distinct
//! perplexity baselines, analogous to the dataset spread in Table II.

use anda_tensor::Rng;

use crate::model::Model;

/// A corpus recipe: name, sampling temperature, seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorpusSpec {
    /// Display name, e.g. `"wikitext2-sim"`.
    pub name: &'static str,
    /// Sampling temperature used at generation time.
    pub temperature: f32,
    /// Base RNG seed (combined with the model seed).
    pub seed: u64,
}

/// The three corpora standing in for WikiText-2, PTB and C4.
pub const CORPORA: [CorpusSpec; 3] = [
    CorpusSpec {
        name: "wikitext2-sim",
        temperature: 0.85,
        seed: 11,
    },
    CorpusSpec {
        name: "ptb-sim",
        temperature: 1.05,
        seed: 22,
    },
    CorpusSpec {
        name: "c4-sim",
        temperature: 0.95,
        seed: 33,
    },
];

/// Looks up a corpus spec by name.
pub fn corpus(name: &str) -> Option<CorpusSpec> {
    CORPORA.into_iter().find(|c| c.name == name)
}

/// Token streams produced for one (model, corpus) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneratedCorpus {
    /// Calibration split (reused by weight quantization *and* the precision
    /// search, per the paper's one-shot calibration methodology).
    pub calibration: Vec<usize>,
    /// Held-out validation split used to report perplexity.
    pub validation: Vec<usize>,
}

impl CorpusSpec {
    /// Generates calibration and validation splits with the given lengths.
    ///
    /// Generation happens in independent chunks of ≤ 256 tokens (fresh
    /// random prompt each) so corpora can exceed the model's `max_seq`.
    pub fn generate(
        &self,
        model: &Model,
        calibration_len: usize,
        validation_len: usize,
    ) -> GeneratedCorpus {
        let mut rng = Rng::new(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xA5A5));
        GeneratedCorpus {
            calibration: self.stream(model, calibration_len, &mut rng),
            validation: self.stream(model, validation_len, &mut rng),
        }
    }

    fn stream(&self, model: &Model, len: usize, rng: &mut Rng) -> Vec<usize> {
        const CHUNK: usize = 256;
        const PROMPT: usize = 8;
        let vocab = model.config().vocab;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let want = (len - out.len()).min(CHUNK);
            let prompt: Vec<usize> = (0..PROMPT.min(want)).map(|_| rng.below(vocab)).collect();
            let n_new = want.saturating_sub(prompt.len());
            let tokens = model.generate(&prompt, n_new, self.temperature, rng);
            out.extend(tokens);
        }
        out.truncate(len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn three_distinct_corpora() {
        assert_eq!(CORPORA.len(), 3);
        assert!(corpus("wikitext2-sim").is_some());
        assert!(corpus("ptb-sim").is_some());
        assert!(corpus("c4-sim").is_some());
        assert!(corpus("imagenet").is_none());
    }

    #[test]
    fn generation_produces_requested_lengths() {
        let model = zoo::opt_125m_sim().build();
        let c = corpus("wikitext2-sim").unwrap().generate(&model, 64, 100);
        assert_eq!(c.calibration.len(), 64);
        assert_eq!(c.validation.len(), 100);
        assert!(c.validation.iter().all(|&t| t < model.config().vocab));
    }

    #[test]
    fn corpora_are_deterministic() {
        let model = zoo::opt_125m_sim().build();
        let spec = corpus("c4-sim").unwrap();
        let a = spec.generate(&model, 32, 32);
        let b = spec.generate(&model, 32, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn different_corpora_differ() {
        let model = zoo::opt_125m_sim().build();
        let a = corpus("wikitext2-sim").unwrap().generate(&model, 0, 64);
        let b = corpus("ptb-sim").unwrap().generate(&model, 0, 64);
        assert_ne!(a.validation, b.validation);
    }

    #[test]
    fn calibration_differs_from_validation() {
        let model = zoo::opt_125m_sim().build();
        let c = corpus("ptb-sim").unwrap().generate(&model, 64, 64);
        assert_ne!(c.calibration, c.validation);
    }
}
