//! Property-based tests for the transformer substrate.

use anda_llm::modules::{CodecAssignment, ModuleKind, PrecisionCombo};
use anda_llm::zoo::opt_125m_sim;
use anda_quant::ActivationCodec;
use proptest::prelude::*;

// The model build is expensive; share one across cases.
fn model() -> &'static anda_llm::model::Model {
    use std::sync::OnceLock;
    static MODEL: OnceLock<anda_llm::model::Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn tokens(len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..512, 2..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Causality: logits at position i never depend on tokens after i.
    #[test]
    fn causal_masking(prefix in tokens(8), a in 0usize..512, b in 0usize..512) {
        let model = model();
        let mut seq_a = prefix.clone();
        seq_a.push(a);
        let mut seq_b = prefix.clone();
        seq_b.push(b);
        let codecs = CodecAssignment::fp16();
        let la = model.forward(&seq_a, &codecs);
        let lb = model.forward(&seq_b, &codecs);
        for i in 0..prefix.len() {
            for c in 0..512 {
                prop_assert!((la[(i, c)] - lb[(i, c)]).abs() < 1e-4,
                    "position {i} class {c} depends on future token");
            }
        }
    }

    /// Forward passes are deterministic.
    #[test]
    fn forward_deterministic(seq in tokens(12)) {
        let model = model();
        let codecs = CodecAssignment::from_combo(PrecisionCombo([7, 6, 5, 5]));
        let a = model.forward(&seq, &codecs);
        let b = model.forward(&seq, &codecs);
        prop_assert_eq!(a, b);
    }

    /// The Anda codec at M=16 behaves like FP16 (differences only from the
    /// lossless-range alignment), so logits stay close.
    #[test]
    fn wide_codec_close_to_fp16(seq in tokens(8)) {
        let model = model();
        let fp = model.forward(&seq, &CodecAssignment::fp16());
        let anda = model.forward(
            &seq,
            &CodecAssignment::uniform(ActivationCodec::anda(16)),
        );
        let mut err = 0.0f64;
        let mut norm = 0.0f64;
        for i in 0..seq.len() {
            for c in 0..512 {
                err += f64::from((fp[(i, c)] - anda[(i, c)]).powi(2));
                norm += f64::from(fp[(i, c)].powi(2));
            }
        }
        prop_assert!(err <= norm * 1e-4, "relative logit error {}", err / norm.max(1e-12));
    }

    /// Per-module codecs only affect downstream computation: replacing the
    /// codec of one module changes logits (no dead plumbing).
    #[test]
    fn module_codecs_are_live(kind_idx in 0usize..4) {
        let model = model();
        let kind = ModuleKind::ALL[kind_idx];
        let seq: Vec<usize> = (0..10).map(|i| (i * 37) % 512).collect();
        let base = model.forward(&seq, &CodecAssignment::fp16());
        let modified = model.forward(
            &seq,
            &CodecAssignment::fp16().with_module(kind, ActivationCodec::anda(2)),
        );
        prop_assert_ne!(base, modified, "module {:?} codec had no effect", kind);
    }
}
