//! Zero-allocation guarantee for the KV decode hot path, enforced with a
//! counting global allocator.
//!
//! After warm-up — `DecodeScratch::reserve`, `KvCache::reserve`, and
//! `PagePool::preallocate` — a decode step performs **no** heap
//! allocation at all: K/V rows are written straight into the tail page
//! (FP16-rounded or Anda bit-plane-encoded in place), page leases pop
//! the pool's free list, and compressed reads decode into the reserved
//! scratch. This file is its own test binary so the allocation counter
//! sees only this suite's traffic, and the one test runs the policies
//! sequentially on a single thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use anda_llm::kv::{KvPoolConfig, KvStorage, PagePool};
use anda_llm::zoo::opt_125m_sim;
use anda_llm::DecodeScratch;

/// Counts every allocation (fresh and growing) the *current thread*
/// passes to the system allocator. Per-thread counting keeps the
/// measured window honest: the global compute pool's worker threads
/// finish their lazy startup allocations at their own pace, and the
/// decode path under test runs entirely on this thread (serial kernels).
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

fn bump() {
    // `const`-initialized Cell TLS never allocates on first access, so
    // counting from inside the allocator cannot recurse.
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_decode_steps_allocate_zero_kv_path_heap() {
    let model = opt_125m_sim().build();
    let cfg = model.config().clone();
    // Deliberately NOT a multiple of the page size: the decode must stay
    // allocation-free through the last, partially filled page too.
    let max_len: usize = 33;
    let page_positions: usize = 4;

    for storage in [
        KvStorage::Fp32,
        KvStorage::Fp16,
        KvStorage::Bf16,
        KvStorage::Anda { mantissa_bits: 6 },
    ] {
        let pool = PagePool::new(KvPoolConfig {
            storage,
            page_positions,
            max_pages: None,
        });
        // Warm everything: pages for the whole context, page tables,
        // every scratch buffer.
        pool.preallocate(cfg.n_layers * max_len.div_ceil(page_positions), cfg.d_model);
        let mut cache = pool.new_cache(cfg.n_layers);
        cache.reserve(max_len);
        let mut scratch = DecodeScratch::new();
        scratch.reserve(&cfg, max_len);

        // Prefill a prompt; the first steps may still fault in lazily
        // sized buffers, which is exactly what the reservation plus this
        // warm-up is for.
        let prompt: Vec<usize> = (0..8).map(|i| (i * 37 + 3) % cfg.vocab).collect();
        model.prefill(&prompt, &mut cache, &mut scratch);

        // Measured region: decode to the reserved maximum, crossing
        // several page boundaries and ending inside a partial page
        // (serial kernels — the thread pool is not involved, so every
        // count below is KV-path or scratch traffic).
        let steps = max_len - prompt.len();
        let before = thread_allocs();
        for pos in prompt.len()..max_len {
            let token = (pos * 13 + 1) % cfg.vocab;
            model.decode_hidden(token, pos, &mut cache, &mut scratch);
        }
        let after = thread_allocs();
        assert_eq!(
            after - before,
            0,
            "{storage:?}: decode allocated {} times over {steps} warmed steps",
            after - before
        );
        assert!(cache.len() > page_positions, "steps crossed page bounds");
        assert!(
            !cache.len().is_multiple_of(page_positions),
            "the run must end inside a partial page"
        );
    }
}
