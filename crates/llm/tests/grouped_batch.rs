//! Bit-exactness and decode-once tests for grouped variable-length
//! batched attention ([`Model::decode_hidden_batch`]) against the
//! per-stream oracle ([`Model::decode_hidden`]).
//!
//! The serving layer's grouped decode path is only admissible if it is
//! a pure scheduling change: every stream's hidden state must be
//! `f32::to_bits`-identical to a solo per-stream step, under every KV
//! storage policy, page size, thread count and context stagger —
//! including a stream sitting exactly on a page boundary and streams
//! forked from a shared Anda-compressed prefix. On top of bit-identity,
//! the grouped path must deliver the fix it exists for: a physical Anda
//! page attended by N streams decodes **once** per step, not N times.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage, PagePool};
use anda_llm::model::BatchEntry;
use anda_llm::zoo::{opt_125m_sim, sim_model};
use anda_llm::{DecodeScratch, KvCache, Model, PageDecodeCache};
use proptest::prelude::*;
use rayon_lite::ThreadPool;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn llama() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| sim_model("LLaMA-7B").unwrap().build())
}

fn bits<V: AsRef<[f32]>>(v: V) -> Vec<u32> {
    v.as_ref().iter().map(|x| x.to_bits()).collect()
}

/// Every storage policy the pool supports, spanning in-place float
/// pages and decode-on-read Anda pages at two mantissa widths.
const POLICIES: [KvStorage; 5] = [
    KvStorage::Fp32,
    KvStorage::Fp16,
    KvStorage::Bf16,
    KvStorage::Anda { mantissa_bits: 6 },
    KvStorage::Anda { mantissa_bits: 11 },
];

/// Deterministic per-stream token pattern so streams differ from each
/// other but runs are reproducible.
fn tok(stream: usize, j: usize, vocab: usize) -> usize {
    (stream * 37 + j * 11 + 3) % vocab
}

/// Prefills `lens[i]` tokens per stream on one shared pool, then
/// advances every stream by one hidden-state step — grouped
/// (`decode_hidden_batch`) or per-stream (`decode_hidden`) — and
/// returns each stream's hidden-state bits.
fn step_hidden(
    model: &Model,
    storage: KvStorage,
    page_positions: usize,
    threads: usize,
    lens: &[usize],
    grouped: bool,
) -> Vec<Vec<u32>> {
    let vocab = model.config().vocab;
    let n_layers = model.config().n_layers;
    let pool = PagePool::new(KvPoolConfig {
        storage,
        page_positions,
        max_pages: None,
    });

    let mut caches: Vec<KvCache> = Vec::new();
    let mut scratches: Vec<DecodeScratch> = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        let mut cache = pool.new_cache(n_layers);
        let mut s = DecodeScratch::new();
        let tokens: Vec<usize> = (0..len).map(|j| tok(i, j, vocab)).collect();
        model.prefill(&tokens, &mut cache, &mut s);
        caches.push(cache);
        scratches.push(s);
    }

    let next: Vec<usize> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| tok(i, len, vocab))
        .collect();
    if grouped {
        let mut entries: Vec<BatchEntry<'_>> = caches
            .iter_mut()
            .zip(scratches.iter_mut())
            .zip(lens.iter().zip(&next))
            .map(|((cache, scratch), (&pos, token))| BatchEntry {
                tokens: std::slice::from_ref(token),
                pos,
                cache,
                scratch,
            })
            .collect();
        let mut decode_cache = PageDecodeCache::new();
        let workers = ThreadPool::new(threads);
        model.decode_hidden_batch(&mut entries, &mut decode_cache, &workers);
    } else {
        for ((cache, scratch), (&pos, &token)) in caches
            .iter_mut()
            .zip(scratches.iter_mut())
            .zip(lens.iter().zip(&next))
        {
            model.decode_hidden(token, pos, cache, scratch);
        }
    }
    scratches.iter().map(|s| bits(s.hidden_state())).collect()
}

/// Shared-prefix variant: one donor cache is prefilled with
/// `prefix_len` tokens, each stream forks it and prefills its own
/// suffix (possibly empty — that stream then decodes right at the fork
/// point), then one step runs. Returns the per-stream hidden bits and
/// the grouped step's `pages_decoded` count (0 for the oracle path).
fn step_hidden_forked(
    model: &Model,
    storage: KvStorage,
    page_positions: usize,
    threads: usize,
    prefix_len: usize,
    suffixes: &[usize],
    grouped: bool,
) -> (Vec<Vec<u32>>, u64) {
    let vocab = model.config().vocab;
    let n_layers = model.config().n_layers;
    let pool = PagePool::new(KvPoolConfig {
        storage,
        page_positions,
        max_pages: None,
    });

    let mut donor = pool.new_cache(n_layers);
    let mut donor_scratch = DecodeScratch::new();
    let prefix: Vec<usize> = (0..prefix_len).map(|j| tok(0, j, vocab)).collect();
    model.prefill(&prefix, &mut donor, &mut donor_scratch);

    let mut caches: Vec<KvCache> = Vec::new();
    let mut scratches: Vec<DecodeScratch> = Vec::new();
    for (i, &suffix) in suffixes.iter().enumerate() {
        let mut cache = donor.fork_prefix(prefix_len);
        let mut s = DecodeScratch::new();
        if suffix > 0 {
            let tokens: Vec<usize> = (0..suffix)
                .map(|j| tok(i + 1, prefix_len + j, vocab))
                .collect();
            model.prefill(&tokens, &mut cache, &mut s);
        }
        caches.push(cache);
        scratches.push(s);
    }

    let lens: Vec<usize> = suffixes.iter().map(|&s| prefix_len + s).collect();
    let next: Vec<usize> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| tok(i + 1, len, vocab))
        .collect();
    let mut decoded = 0;
    if grouped {
        let mut entries: Vec<BatchEntry<'_>> = caches
            .iter_mut()
            .zip(scratches.iter_mut())
            .zip(lens.iter().zip(&next))
            .map(|((cache, scratch), (&pos, token))| BatchEntry {
                tokens: std::slice::from_ref(token),
                pos,
                cache,
                scratch,
            })
            .collect();
        let mut decode_cache = PageDecodeCache::new();
        let workers = ThreadPool::new(threads);
        model.decode_hidden_batch(&mut entries, &mut decode_cache, &workers);
        decoded = decode_cache.pages_decoded();
    } else {
        for ((cache, scratch), (&pos, &token)) in caches
            .iter_mut()
            .zip(scratches.iter_mut())
            .zip(lens.iter().zip(&next))
        {
            model.decode_hidden(token, pos, cache, scratch);
        }
    }
    let out = scratches.iter().map(|s| bits(s.hidden_state())).collect();
    (out, decoded)
}

/// The full deterministic matrix: every policy × page sizes {1, 8} ×
/// pool sizes {1, 4}, with staggered context lengths including a stream
/// whose cache is exactly one full page at `page_positions = 8` (its
/// decode step opens a fresh page).
#[test]
fn grouped_step_is_bit_identical_across_the_matrix() {
    let lens = [5usize, 8, 13, 1];
    for &storage in &POLICIES {
        for &pp in &[1usize, 8] {
            let want = step_hidden(model(), storage, pp, 1, &lens, false);
            for &threads in &[1usize, 4] {
                let got = step_hidden(model(), storage, pp, threads, &lens, true);
                assert_eq!(
                    got, want,
                    "grouped != per-stream under {storage:?}, page_positions {pp}, {threads} threads"
                );
            }
        }
    }
}

/// Same check through the LLaMA family (RMSNorm + SwiGLU + rotary
/// embeddings), so the RoPE staging shared by both paths is covered.
#[test]
fn grouped_step_is_bit_identical_for_llama() {
    let lens = [7usize, 16, 3];
    let storage = KvStorage::Anda { mantissa_bits: 6 };
    let want = step_hidden(llama(), storage, 8, 1, &lens, false);
    let got = step_hidden(llama(), storage, 8, 4, &lens, true);
    assert_eq!(got, want);
}

/// A single-stream batch must degenerate to exactly the solo step.
#[test]
fn singleton_batch_matches_solo_decode() {
    for &storage in &POLICIES {
        let want = step_hidden(model(), storage, 4, 1, &[9], false);
        let got = step_hidden(model(), storage, 4, 4, &[9], true);
        assert_eq!(got, want, "singleton batch diverged under {storage:?}");
    }
}

/// Streams forked from one shared prefix — the workload the grouped
/// path exists for — stay bit-identical to per-stream decode, with one
/// stream decoding right at the fork point (zero-length suffix).
#[test]
fn grouped_step_matches_oracle_on_shared_prefixes() {
    let suffixes = [0usize, 3, 5, 8];
    for &storage in &[
        KvStorage::Fp16,
        KvStorage::Anda { mantissa_bits: 6 },
        KvStorage::Anda { mantissa_bits: 11 },
    ] {
        let (want, _) = step_hidden_forked(model(), storage, 8, 1, 16, &suffixes, false);
        for &threads in &[1usize, 4] {
            let (got, _) = step_hidden_forked(model(), storage, 8, threads, 16, &suffixes, true);
            assert_eq!(
                got, want,
                "forked-prefix grouped != per-stream under {storage:?}, {threads} threads"
            );
        }
    }
}

/// The decode-once guarantee, counted exactly: with a 16-position
/// prefix on 8-position pages, the two shared prefix pages decode once
/// per layer for the whole batch, plus each stream's private pages.
/// Suffixes {0, 3, 5, 8} give contexts {17, 20, 22, 25} after the
/// step's KV append → {3, 3, 3, 4} pages per stream, of which 2 are the
/// shared prefix: 2 + (1 + 1 + 1 + 2) = 7 distinct pages per layer. A
/// per-stream walk would decode 13 per layer.
#[test]
fn shared_prefix_pages_decode_once_per_step() {
    let n_layers = model().config().n_layers as u64;
    let (_, decoded) = step_hidden_forked(
        model(),
        KvStorage::Anda { mantissa_bits: 6 },
        8,
        4,
        16,
        &[0, 3, 5, 8],
        true,
    );
    assert_eq!(decoded, 7 * n_layers);
}

/// Multi-token batch entries (prefill chunks) are bit-identical to
/// monolithic [`Model::prefill`]: feeding a prompt as grouped chunk
/// spans — packed next to a live one-token decode stream — leaves the
/// same final hidden state as one prefill call, and the co-scheduled
/// decode stream stays bit-identical to its solo oracle.
#[test]
fn chunk_spans_match_monolithic_prefill() {
    let model = model();
    let vocab = model.config().vocab;
    let n_layers = model.config().n_layers;
    let prompt: Vec<usize> = (0..10).map(|j| tok(2, j, vocab)).collect();
    let co_prompt: Vec<usize> = (0..5).map(|j| tok(3, j, vocab)).collect();
    for &storage in &POLICIES {
        for &(pp, split) in &[(4usize, 1usize), (4, 5), (8, 3), (8, 9)] {
            let n_chunks = prompt.len().div_ceil(split);

            // Oracle: monolithic prefill; the co-stream decodes solo.
            let pool = PagePool::new(KvPoolConfig {
                storage,
                page_positions: pp,
                max_pages: None,
            });
            let mut oracle_cache = pool.new_cache(n_layers);
            let mut oracle_s = DecodeScratch::new();
            model.prefill(&prompt, &mut oracle_cache, &mut oracle_s);
            let want_hidden = bits(oracle_s.hidden_state());
            let mut co_cache = pool.new_cache(n_layers);
            let mut co_s = DecodeScratch::new();
            model.prefill(&co_prompt, &mut co_cache, &mut co_s);
            for step in 0..n_chunks {
                model.decode_hidden(tok(3, 5 + step, vocab), 5 + step, &mut co_cache, &mut co_s);
            }
            let want_co = bits(co_s.hidden_state());

            // Chunked: the prompt arrives `split` tokens per grouped
            // step, packed next to the co-stream's one-token decodes.
            let pool = PagePool::new(KvPoolConfig {
                storage,
                page_positions: pp,
                max_pages: None,
            });
            let mut chunk_cache = pool.new_cache(n_layers);
            let mut chunk_s = DecodeScratch::new();
            let mut co_cache = pool.new_cache(n_layers);
            let mut co_s = DecodeScratch::new();
            model.prefill(&co_prompt, &mut co_cache, &mut co_s);
            let co_next: Vec<usize> = (0..n_chunks).map(|step| tok(3, 5 + step, vocab)).collect();
            let mut decode_cache = PageDecodeCache::new();
            let workers = ThreadPool::new(4);
            for (step, chunk) in prompt.chunks(split).enumerate() {
                let mut entries = vec![
                    BatchEntry {
                        tokens: chunk,
                        pos: step * split,
                        cache: &mut chunk_cache,
                        scratch: &mut chunk_s,
                    },
                    BatchEntry {
                        tokens: std::slice::from_ref(&co_next[step]),
                        pos: 5 + step,
                        cache: &mut co_cache,
                        scratch: &mut co_s,
                    },
                ];
                model.decode_hidden_batch(&mut entries, &mut decode_cache, &workers);
            }
            assert_eq!(
                bits(chunk_s.hidden_state()),
                want_hidden,
                "chunked prefill diverged under {storage:?}, pp {pp}, split {split}"
            );
            assert_eq!(
                bits(co_s.hidden_state()),
                want_co,
                "co-decoded stream diverged under {storage:?}, pp {pp}, split {split}"
            );
        }
    }
}

/// Float-policy pages are read in place; the grouped path must not
/// decode (or arena-copy) anything for them.
#[test]
fn float_policies_never_touch_the_decode_arena() {
    for &storage in &[KvStorage::Fp32, KvStorage::Fp16, KvStorage::Bf16] {
        let (_, decoded) = step_hidden_forked(model(), storage, 8, 4, 16, &[0, 3, 5, 8], true);
        assert_eq!(decoded, 0, "{storage:?} pages must be read in place");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized stagger: any batch shape at any policy/page-size/pool
    /// combination is bit-identical to the per-stream oracle.
    #[test]
    fn grouped_step_is_bit_identical_prop(
        policy in 0usize..5,
        pp_idx in 0usize..3,
        threads_idx in 0usize..2,
        lens in prop::collection::vec(1usize..24, 1..5),
    ) {
        let storage = POLICIES[policy];
        let pp = [1usize, 3, 8][pp_idx];
        let threads = [1usize, 4][threads_idx];
        let want = step_hidden(model(), storage, pp, 1, &lens, false);
        let got = step_hidden(model(), storage, pp, threads, &lens, true);
        prop_assert_eq!(got, want);
    }
}
