//! API tests for the externally-owned paged KV cache and the split
//! decode entry points ([`Model::prefill`] / [`Model::decode_step`] /
//! [`Model::decode_hidden`] + [`Model::lm_head_batch`]).
//!
//! The serving layer's determinism guarantee reduces to these facts
//! checked here at the `f32::to_bits` level:
//!
//! 1. `decode_hidden` (serial kernels) leaves the same hidden state and
//!    KV rows as `decode_step` (auto-dispatching kernels), at any thread
//!    count, on both sides of the head-sharding work threshold, and
//!    under every KV storage policy (in-place float pages and
//!    decoded-on-read Anda pages alike);
//! 2. the batched LM head reproduces the solo LM head row by row, at any
//!    pool size;
//! 3. a `reset` cache behaves exactly like a fresh one, for every policy;
//! 4. page size is pure layout: decoding on pools of page size 1 or 4
//!    (or any other) never moves a bit.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage, PagePool};
use anda_llm::model::BatchOutput;
use anda_llm::zoo::{opt_125m_sim, sim_model};
use anda_llm::{DecodeScratch, KvCache, Model};
use anda_tensor::Rng;
use rayon_lite::ThreadPool;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn llama() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| sim_model("LLaMA-7B").unwrap().build())
}

fn bits<V: AsRef<[f32]>>(v: V) -> Vec<u32> {
    v.as_ref().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn cache_growth_and_per_layer_indexing() {
    let model = model();
    let d = model.config().d_model;
    let n_layers = model.config().n_layers;

    let mut cache = KvCache::new(n_layers);
    assert_eq!(cache.n_layers(), n_layers);
    assert_eq!(cache.len(), 0);
    assert!(cache.is_empty());

    let mut scratch = DecodeScratch::new();
    let tokens = [3usize, 141, 59, 26, 5];
    model.prefill(&tokens, &mut cache, &mut scratch);
    assert_eq!(cache.len(), tokens.len());
    assert!(!cache.is_empty());
    for l in 0..n_layers {
        let layer = cache.layer(l);
        assert_eq!(layer.len(), tokens.len());
        for pos in 0..tokens.len() {
            assert_eq!(layer.key(pos).len(), d);
            assert_eq!(layer.value(pos).len(), d);
        }
    }

    // Incremental growth: one decode step appends exactly one position.
    model.decode_step(7, cache.len(), &mut cache, &mut scratch);
    assert_eq!(cache.len(), tokens.len() + 1);
    assert_eq!(scratch.logits().len(), model.config().vocab);
    assert_eq!(scratch.hidden_state().len(), d);
}

#[test]
fn reset_cache_matches_fresh_cache_bit_for_bit() {
    let model = model();
    let n_layers = model.config().n_layers;

    // Fill the cache with one sequence, reset, decode another; a reused
    // scratch rides along to prove it carries no stale state either.
    let mut cache = KvCache::new(n_layers);
    let mut scratch = DecodeScratch::new();
    model.prefill(&[9, 8, 7, 6, 5, 4], &mut cache, &mut scratch);
    cache.reset();
    assert_eq!(cache.len(), 0);
    assert!(cache.is_empty());
    let second = [17usize, 400, 3, 77];
    model.prefill(&second, &mut cache, &mut scratch);

    let mut fresh_cache = KvCache::new(n_layers);
    let mut fresh_scratch = DecodeScratch::new();
    model.prefill(&second, &mut fresh_cache, &mut fresh_scratch);

    assert_eq!(bits(scratch.logits()), bits(fresh_scratch.logits()));
    assert_eq!(
        bits(scratch.hidden_state()),
        bits(fresh_scratch.hidden_state())
    );
    assert_eq!(cache.len(), fresh_cache.len());
    for l in 0..n_layers {
        for pos in 0..cache.len() {
            assert_eq!(
                bits(cache.layer(l).key(pos)),
                bits(fresh_cache.layer(l).key(pos))
            );
            assert_eq!(
                bits(cache.layer(l).value(pos)),
                bits(fresh_cache.layer(l).value(pos))
            );
        }
    }
}

#[test]
fn prefill_equals_manual_decode_step_loop() {
    let model = model();
    let tokens = [1usize, 2, 3, 4, 5, 6, 7];

    let mut c1 = KvCache::new(model.config().n_layers);
    let mut s1 = DecodeScratch::new();
    model.prefill(&tokens, &mut c1, &mut s1);

    let mut c2 = KvCache::new(model.config().n_layers);
    let mut s2 = DecodeScratch::new();
    for (pos, &tok) in tokens.iter().enumerate() {
        model.decode_step(tok, pos, &mut c2, &mut s2);
    }
    assert_eq!(bits(s1.logits()), bits(s2.logits()));
}

/// `decode_hidden` (serial kernels) + the batched LM head must reproduce
/// `decode_step`'s logits bit-for-bit for every stream in the batch, at
/// every pool size — the core serving-layer equivalence.
#[test]
fn batched_lm_head_is_bit_identical_to_solo_decode() {
    for model in [model(), llama()] {
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[400, 5], &[9, 9, 9, 12, 40]];
        let next = [11usize, 250, 77];

        // Solo reference: decode_step per stream.
        let mut solo_logits = Vec::new();
        let mut solo_caches = Vec::new();
        for (p, &tok) in prompts.iter().zip(&next) {
            let mut cache = KvCache::new(model.config().n_layers);
            let mut s = DecodeScratch::new();
            model.prefill(p, &mut cache, &mut s);
            model.decode_step(tok, cache.len(), &mut cache, &mut s);
            solo_logits.push(bits(s.logits()));
            solo_caches.push(cache);
        }

        // Batched path: decode_hidden per stream, one LM-head dispatch.
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let mut batch = BatchOutput::new();
            let mut caches = Vec::new();
            let mut scratches = Vec::new();
            for (p, &tok) in prompts.iter().zip(&next) {
                let mut cache = KvCache::new(model.config().n_layers);
                let mut s = DecodeScratch::new();
                model.prefill(p, &mut cache, &mut s);
                model.decode_hidden(tok, cache.len(), &mut cache, &mut s);
                batch.push_hidden(s.hidden_state());
                caches.push(cache);
                scratches.push(s);
            }
            assert_eq!(batch.len(), prompts.len());
            model.lm_head_batch_pool(&mut batch, &pool);
            for (i, solo) in solo_logits.iter().enumerate() {
                assert_eq!(
                    &bits(batch.logits_row(i)),
                    solo,
                    "stream {i} logits diverged at {threads} threads"
                );
            }
            // The caches the two paths grew must match too.
            for (a, b) in caches.iter().zip(&solo_caches) {
                for l in 0..model.config().n_layers {
                    for pos in 0..a.len() {
                        assert_eq!(bits(a.layer(l).key(pos)), bits(b.layer(l).key(pos)));
                        assert_eq!(bits(a.layer(l).value(pos)), bits(b.layer(l).value(pos)));
                    }
                }
            }
        }
    }
}

/// Serial vs auto-dispatch decode across a context long enough to cross
/// the attention head-sharding threshold (`2·heads·t·d_head ≥ 16K` means
/// `t ≥ 64` on the sim models). Under the CI `ANDA_THREADS=4` leg the
/// auto path shards heads on the pool; results must not move by a bit.
#[test]
fn head_sharded_attention_is_bit_identical_across_long_context() {
    for model in [model(), llama()] {
        let vocab = model.config().vocab;
        let tokens: Vec<usize> = (0..96).map(|i| (i * 31 + 7) % vocab).collect();

        let mut auto_cache = KvCache::new(model.config().n_layers);
        let mut auto_s = DecodeScratch::new();
        let mut serial_cache = KvCache::new(model.config().n_layers);
        let mut serial_s = DecodeScratch::new();
        for (pos, &tok) in tokens.iter().enumerate() {
            model.decode_step(tok, pos, &mut auto_cache, &mut auto_s);
            model.decode_hidden(tok, pos, &mut serial_cache, &mut serial_s);
            assert_eq!(
                bits(auto_s.hidden_state()),
                bits(serial_s.hidden_state()),
                "hidden state diverged at position {pos}"
            );
        }
        for l in 0..model.config().n_layers {
            for pos in 0..tokens.len() {
                assert_eq!(
                    bits(auto_cache.layer(l).key(pos)),
                    bits(serial_cache.layer(l).key(pos))
                );
                assert_eq!(
                    bits(auto_cache.layer(l).value(pos)),
                    bits(serial_cache.layer(l).value(pos))
                );
            }
        }
    }
}

#[test]
fn batch_output_reuse_across_iterations() {
    let model = model();
    let mut batch = BatchOutput::new();
    assert!(batch.is_empty());

    let mut cache = KvCache::new(model.config().n_layers);
    let mut s = DecodeScratch::new();
    model.prefill(&[5, 6, 7], &mut cache, &mut s);

    model.decode_hidden(8, cache.len(), &mut cache, &mut s);
    batch.push_hidden(s.hidden_state());
    model.lm_head_batch(&mut batch);
    let first = bits(batch.logits_row(0));

    // Clearing empties the batch but keeps it usable; a second identical
    // iteration reproduces the same logits.
    batch.clear();
    assert_eq!(batch.len(), 0);
    let mut cache2 = KvCache::new(model.config().n_layers);
    let mut s2 = DecodeScratch::new();
    model.prefill(&[5, 6, 7], &mut cache2, &mut s2);
    model.decode_hidden(8, cache2.len(), &mut cache2, &mut s2);
    batch.push_hidden(s2.hidden_state());
    model.lm_head_batch(&mut batch);
    assert_eq!(bits(batch.logits_row(0)), first);
}

/// A cache on a pool with the given policy and page size.
fn cache_for(model: &Model, storage: KvStorage, page_positions: usize) -> KvCache {
    PagePool::new(KvPoolConfig {
        storage,
        page_positions,
        max_pages: None,
    })
    .new_cache(model.config().n_layers)
}

/// Every storage policy the paged backend supports, exercised broadly.
const POLICIES: [KvStorage; 5] = [
    KvStorage::Fp32,
    KvStorage::Fp16,
    KvStorage::Bf16,
    KvStorage::Anda { mantissa_bits: 6 },
    KvStorage::Anda { mantissa_bits: 12 },
];

/// Page size is pure storage layout: decoding identical tokens on pools
/// of page size 1 and 4 (and the default 16) produces bit-identical
/// logits, hidden states, and cached rows, for every storage policy.
#[test]
fn page_size_never_changes_a_bit() {
    let model = model();
    let tokens = [3usize, 141, 59, 26, 5, 77, 8, 12, 400];
    for storage in POLICIES {
        let mut reference: Option<(Vec<u32>, Vec<Vec<u32>>)> = None;
        for pp in [1usize, 4, 16] {
            let mut cache = cache_for(model, storage, pp);
            let mut s = DecodeScratch::new();
            model.prefill(&tokens, &mut cache, &mut s);
            let rows: Vec<Vec<u32>> = (0..model.config().n_layers)
                .flat_map(|l| (0..cache.len()).map(move |p| (l, p)).collect::<Vec<_>>())
                .map(|(l, p)| bits(cache.layer(l).key(p)))
                .collect();
            let got = (bits(s.logits()), rows);
            match &reference {
                None => reference = Some(got),
                Some(r) => {
                    assert_eq!(&got.0, &r.0, "{storage:?} pp={pp} logits moved");
                    assert_eq!(&got.1, &r.1, "{storage:?} pp={pp} rows moved");
                }
            }
        }
    }
}

/// The FP16 policy at page size 1 reproduces the original `KvStore` row
/// semantics: what comes back is exactly `saturate_to_f16(row)` of the
/// raw row the exact-reference (Fp32) cache retains — checked on the
/// first decoded position, where both caches see identical inputs.
#[test]
fn fp16_policy_rows_are_f16_rounded_fp32_rows() {
    let model = model();
    let mut raw = cache_for(model, KvStorage::Fp32, 1);
    let mut rounded = cache_for(model, KvStorage::Fp16, 1);
    let mut s = DecodeScratch::new();
    model.decode_step(42, 0, &mut raw, &mut s);
    model.decode_step(42, 0, &mut rounded, &mut s);
    for l in 0..model.config().n_layers {
        for (pair, which) in [
            ((raw.layer(l).key(0), rounded.layer(l).key(0)), "key"),
            ((raw.layer(l).value(0), rounded.layer(l).value(0)), "value"),
        ] {
            let (raw_row, rounded_row) = pair;
            let expect: Vec<u32> = raw_row
                .iter()
                .map(|&x| anda_format::bfp::saturate_to_f16(x).to_f32().to_bits())
                .collect();
            assert_eq!(bits(rounded_row), expect, "layer {l} {which}");
        }
    }
}

/// `reset` == fresh, for every storage policy (the original suite pins
/// the default policy; this covers the compressed backends), with the
/// pool's pages recycled rather than recreated.
#[test]
fn reset_matches_fresh_under_every_policy() {
    let model = model();
    for storage in POLICIES {
        let pool = PagePool::new(KvPoolConfig {
            storage,
            page_positions: 4,
            max_pages: None,
        });
        let mut cache = pool.new_cache(model.config().n_layers);
        let mut s = DecodeScratch::new();
        model.prefill(&[9, 8, 7, 6, 5, 4], &mut cache, &mut s);
        let created = pool.pages_created();
        cache.reset();
        assert_eq!(pool.pages_in_use(), 0, "{storage:?} leaked pages");
        let second = [17usize, 400, 3, 77];
        model.prefill(&second, &mut cache, &mut s);
        assert_eq!(
            pool.pages_created(),
            created,
            "{storage:?} grew instead of recycling"
        );

        let mut fresh_cache = cache_for(model, storage, 4);
        let mut fresh_s = DecodeScratch::new();
        model.prefill(&second, &mut fresh_cache, &mut fresh_s);
        assert_eq!(bits(s.logits()), bits(fresh_s.logits()), "{storage:?}");
        for l in 0..model.config().n_layers {
            for pos in 0..cache.len() {
                assert_eq!(
                    bits(cache.layer(l).key(pos)),
                    bits(fresh_cache.layer(l).key(pos)),
                    "{storage:?} layer {l} pos {pos}"
                );
            }
        }
    }
}

/// The compressed (decode-on-read) attention path is bit-identical
/// between the serial kernels and the auto-dispatching head-sharded
/// kernels, across the sharding threshold and on both model families —
/// the same contract the float policies get, now over Anda pages.
#[test]
fn anda_policy_decode_is_thread_and_dispatch_invariant() {
    for model in [model(), llama()] {
        let vocab = model.config().vocab;
        let storage = KvStorage::Anda { mantissa_bits: 8 };
        let tokens: Vec<usize> = (0..96).map(|i| (i * 31 + 7) % vocab).collect();

        let mut auto_cache = cache_for(model, storage, 8);
        let mut auto_s = DecodeScratch::new();
        let mut serial_cache = cache_for(model, storage, 8);
        let mut serial_s = DecodeScratch::new();
        for (pos, &tok) in tokens.iter().enumerate() {
            model.decode_step(tok, pos, &mut auto_cache, &mut auto_s);
            model.decode_hidden(tok, pos, &mut serial_cache, &mut serial_s);
            assert_eq!(
                bits(auto_s.hidden_state()),
                bits(serial_s.hidden_state()),
                "hidden state diverged at position {pos}"
            );
        }
        for l in 0..model.config().n_layers {
            for pos in 0..tokens.len() {
                assert_eq!(
                    bits(auto_cache.layer(l).key(pos)),
                    bits(serial_cache.layer(l).key(pos))
                );
            }
        }
    }
}

/// `generate` delegates to `generate_with_cache` on the default pool:
/// handing it an equivalent external cache reproduces it token for
/// token, and a compressed cache generates a (deterministic) sequence of
/// its own.
#[test]
fn generate_with_cache_matches_generate_on_default_policy() {
    let model = model();
    let prompt = [5usize, 6, 7];
    let mut r1 = Rng::new(9);
    let mut r2 = Rng::new(9);
    let reference = model.generate(&prompt, 8, 0.9, &mut r1);
    let mut cache = KvCache::new(model.config().n_layers);
    let external = model.generate_with_cache(&prompt, 8, 0.9, &mut r2, &mut cache);
    assert_eq!(reference, external);
    assert_eq!(cache.len(), prompt.len() + 8);

    // Compressed generation is deterministic per policy.
    let gen_anda = |seed| {
        let mut rng = Rng::new(seed);
        let mut cache = cache_for(model, KvStorage::Anda { mantissa_bits: 7 }, 8);
        model.generate_with_cache(&prompt, 8, 0.9, &mut rng, &mut cache)
    };
    assert_eq!(gen_anda(9), gen_anda(9));
}

#[test]
#[should_panic(expected = "decode position must match")]
fn decode_at_wrong_position_panics() {
    let model = model();
    let mut cache = KvCache::new(model.config().n_layers);
    let mut s = DecodeScratch::new();
    model.decode_step(1, 3, &mut cache, &mut s);
}

#[test]
#[should_panic(expected = "hidden rows must share one width")]
fn mismatched_hidden_width_panics() {
    let mut batch = BatchOutput::new();
    batch.push_hidden(&[1.0, 2.0]);
    batch.push_hidden(&[1.0, 2.0, 3.0]);
}

/// The prefill-into-forked-cache entry point: prefilling a suffix into
/// a `fork_prefix` cache continues at the fork's positions and leaves
/// logits, hidden state and cached rows bit-identical to prefilling
/// `prefix ++ suffix` contiguously into a fresh same-policy cache —
/// for every storage policy, page sizes that land the fork mid-page
/// and on a boundary, and both model families.
#[test]
fn prefill_into_forked_cache_matches_contiguous_prefill() {
    let prefix = [3usize, 141, 59, 26, 5, 7, 19, 44, 2];
    let suffix = [17usize, 401, 8];
    for m in [model(), llama()] {
        for storage in POLICIES {
            for page_positions in [1usize, 4, 8] {
                // Donor: the prefix prefilled once.
                let mut donor = cache_for(m, storage, page_positions);
                let mut donor_scratch = DecodeScratch::new();
                m.prefill(&prefix, &mut donor, &mut donor_scratch);

                // Fork + suffix prefill.
                let mut fork = donor.fork_prefix(prefix.len());
                assert_eq!(fork.len(), prefix.len());
                let mut fork_scratch = DecodeScratch::new();
                m.prefill(&suffix, &mut fork, &mut fork_scratch);

                // Contiguous reference.
                let mut contiguous = cache_for(m, storage, page_positions);
                let mut ref_scratch = DecodeScratch::new();
                let full: Vec<usize> = prefix.iter().chain(&suffix).copied().collect();
                m.prefill(&full, &mut contiguous, &mut ref_scratch);

                assert_eq!(
                    bits(fork_scratch.logits()),
                    bits(ref_scratch.logits()),
                    "{storage:?} pp={page_positions}: forked prefill logits diverged"
                );
                assert_eq!(
                    bits(fork_scratch.hidden_state()),
                    bits(ref_scratch.hidden_state())
                );
                for l in 0..m.config().n_layers {
                    for pos in 0..full.len() {
                        assert_eq!(
                            bits(fork.layer(l).key(pos)),
                            bits(contiguous.layer(l).key(pos)),
                            "{storage:?} pp={page_positions}: K row {pos} layer {l}"
                        );
                        assert_eq!(
                            bits(fork.layer(l).value(pos)),
                            bits(contiguous.layer(l).value(pos))
                        );
                    }
                }
                // And the donor still reads its original prefix rows.
                for l in 0..m.config().n_layers {
                    for pos in 0..prefix.len() {
                        assert_eq!(
                            bits(donor.layer(l).key(pos)),
                            bits(contiguous.layer(l).key(pos)),
                            "donor rows must survive the fork's writes"
                        );
                    }
                }
            }
        }
    }
}
