//! Property suite for the KV page allocator: random alloc/free/recycle
//! sequences must respect the pool invariants.
//!
//! - **Capacity**: the pool never creates more pages than `max_pages`,
//!   and an allocation fails exactly when every created page is leased
//!   and the capacity is exhausted.
//! - **Conservation**: `created == in_use + free` at every step (pages
//!   move by value, so a double free cannot even be expressed — the
//!   ledger proves none is synthesized internally either).
//! - **Reuse before growth**: while the free list is non-empty, an
//!   allocation never creates a page.
//! - **Reset integrity**: a recycled page behaves exactly like a fresh
//!   one (rows written after recycling read back identically).
//! - **Refcount ledger**: sharing and forking pages never changes the
//!   in-use count (a page shared N ways is one page), a refcounted page
//!   never re-enters the free list before its last lease drops, and the
//!   copy-on-write page a fork privatizes is a bitwise copy of its
//!   parent at fork time.

use anda_llm::kv::{KvPoolConfig, KvStorage, Page, PagePool, SharedPage};
use anda_tensor::Rng;
use proptest::prelude::*;

/// One scripted action against the pool.
#[derive(Debug, Clone, Copy)]
enum Action {
    Alloc,
    /// Free the leased page at `index % leased.len()` (skipped when
    /// nothing is leased).
    Free(usize),
}

fn check_ledger(pool: &PagePool, leased: &[Page], cap: usize) {
    assert!(pool.pages_created() <= cap, "created past capacity");
    assert_eq!(
        pool.pages_created(),
        pool.pages_in_use() + pool.pages_free(),
        "page conservation violated"
    );
    assert_eq!(
        pool.pages_in_use(),
        leased.len(),
        "pool in-use count disagrees with the pages we actually hold"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alloc_free_recycle_sequences_respect_the_invariants(
        script in prop::collection::vec(
            (any::<bool>(), 0usize..16).prop_map(|(alloc, i)| {
                if alloc { Action::Alloc } else { Action::Free(i) }
            }),
            1..60,
        ),
        cap in 1usize..12,
        page_positions in 1usize..5,
        anda in any::<bool>(),
    ) {
        let storage = if anda {
            KvStorage::Anda { mantissa_bits: 5 }
        } else {
            KvStorage::Fp32
        };
        let pool = PagePool::new(KvPoolConfig {
            storage,
            page_positions,
            max_pages: Some(cap),
        });
        let dim = 64;
        let mut leased: Vec<Page> = Vec::new();
        for action in script {
            match action {
                Action::Alloc => {
                    let free_before = pool.pages_free();
                    let created_before = pool.pages_created();
                    match pool.try_alloc(dim) {
                        Some(page) => {
                            prop_assert_eq!(page.used(), 0, "leased page not clean");
                            prop_assert_eq!(page.capacity(), page_positions);
                            if free_before > 0 {
                                prop_assert_eq!(
                                    pool.pages_created(), created_before,
                                    "grew while the free list was non-empty"
                                );
                            }
                            leased.push(page);
                        }
                        None => {
                            // Refusal is only legal at hard exhaustion.
                            prop_assert_eq!(free_before, 0);
                            prop_assert_eq!(created_before, cap);
                            prop_assert_eq!(leased.len(), cap);
                        }
                    }
                }
                Action::Free(i) => {
                    if !leased.is_empty() {
                        let page = leased.swap_remove(i % leased.len());
                        pool.release(page);
                    }
                }
            }
            check_ledger(&pool, &leased, cap);
        }
        // Drain: everything we still hold goes back and the ledger zeroes.
        for page in leased.drain(..) {
            pool.release(page);
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
        prop_assert_eq!(pool.pages_free(), pool.pages_created());
    }
}

/// A recycled page is indistinguishable from a fresh one: rows written
/// after recycling read back bit-identically to the same rows written to
/// a never-used page.
#[test]
fn recycled_pages_read_like_fresh_pages() {
    let cfg = KvPoolConfig {
        storage: KvStorage::Anda { mantissa_bits: 6 },
        page_positions: 3,
        max_pages: Some(1),
    };
    let dim = 96;
    let row_a: Vec<f32> = (0..dim).map(|i| (i as f32 - 48.0) * 0.17).collect();
    let row_b: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();

    let read = |pool: &PagePool, dirty_first: bool| -> Vec<u32> {
        let mut cache = pool.new_cache(1);
        if dirty_first {
            // Fill with unrelated data, then recycle.
            for _ in 0..3 {
                cache.append_row(0, &row_b, &row_b);
            }
            cache.reset();
        }
        cache.append_row(0, &row_a, &row_b);
        let mut out = cache.layer(0).key(0);
        out.extend(cache.layer(0).value(0));
        out.iter().map(|x| x.to_bits()).collect()
    };

    let pool = PagePool::new(cfg);
    let fresh = read(&pool, false);
    let recycled = read(&pool, true);
    assert_eq!(pool.pages_created(), 1, "one page serves both passes");
    assert_eq!(fresh, recycled);
}

/// One scripted action against the pool's refcount ledger.
#[derive(Debug, Clone, Copy)]
enum ShareAction {
    /// Lease a fresh owned page.
    Alloc,
    /// Convert the owned page at `i % owned.len()` into a shared lease.
    Share(usize),
    /// Duplicate a lease of shared group `i % groups.len()`.
    Fork(usize),
    /// Drop one lease of shared group `i % groups.len()`.
    Release(usize),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random share/fork/release interleavings: forking never changes
    /// the in-use count (conservation), dropping a non-last lease never
    /// frees the page (no early re-entry to the free list), dropping
    /// the last lease frees exactly one page, and `ref_count` always
    /// equals the number of live leases we actually hold.
    #[test]
    fn fork_release_ledger_conserves_pages(
        script in prop::collection::vec(
            (0usize..4, 0usize..16).prop_map(|(op, i)| match op {
                0 => ShareAction::Alloc,
                1 => ShareAction::Share(i),
                2 => ShareAction::Fork(i),
                _ => ShareAction::Release(i),
            }),
            1..80,
        ),
        cap in 2usize..10,
        anda in any::<bool>(),
    ) {
        let storage = if anda {
            KvStorage::Anda { mantissa_bits: 7 }
        } else {
            KvStorage::Fp16
        };
        let pool = PagePool::new(KvPoolConfig {
            storage,
            page_positions: 2,
            max_pages: Some(cap),
        });
        let dim = 32;
        let mut owned: Vec<Page> = Vec::new();
        // One entry per physical shared page: every live lease of it.
        let mut groups: Vec<Vec<SharedPage>> = Vec::new();
        for action in script {
            match action {
                ShareAction::Alloc => {
                    if let Some(page) = pool.try_alloc(dim) {
                        owned.push(page);
                    }
                }
                ShareAction::Share(i) => {
                    if !owned.is_empty() {
                        let in_use = pool.pages_in_use();
                        let page = owned.swap_remove(i % owned.len());
                        groups.push(vec![pool.share(page)]);
                        prop_assert_eq!(
                            pool.pages_in_use(), in_use,
                            "sharing re-leases nothing"
                        );
                    }
                }
                ShareAction::Fork(i) => {
                    if !groups.is_empty() {
                        let (in_use, free) = (pool.pages_in_use(), pool.pages_free());
                        let g = i % groups.len();
                        let group = &mut groups[g];
                        let lease = pool.fork_page(&group[0]);
                        group.push(lease);
                        prop_assert_eq!(
                            pool.pages_in_use(), in_use,
                            "a forked page is still one page"
                        );
                        prop_assert_eq!(pool.pages_free(), free, "fork touches no free page");
                    }
                }
                ShareAction::Release(i) => {
                    if !groups.is_empty() {
                        let g = i % groups.len();
                        let free = pool.pages_free();
                        let lease = groups[g].pop().expect("groups hold >= 1 lease");
                        let was_last = groups[g].is_empty();
                        pool.release_page(lease);
                        if was_last {
                            groups.swap_remove(g);
                            prop_assert_eq!(
                                pool.pages_free(), free + 1,
                                "last lease frees exactly one page"
                            );
                        } else {
                            prop_assert_eq!(
                                pool.pages_free(), free,
                                "a refcounted page re-entered the free list early"
                            );
                        }
                    }
                }
            }
            // Conservation under sharing: every physical page is owned,
            // grouped, or free — leases alias, pages never do.
            prop_assert_eq!(
                pool.pages_in_use(),
                owned.len() + groups.len(),
                "ledger disagrees with the pages we hold"
            );
            prop_assert_eq!(
                pool.pages_created(),
                pool.pages_in_use() + pool.pages_free()
            );
            prop_assert!(pool.pages_created() <= cap);
            for group in &groups {
                prop_assert_eq!(group[0].ref_count(), group.len());
            }
        }
        for page in owned.drain(..) {
            pool.release(page);
        }
        for group in groups.drain(..) {
            for lease in group {
                pool.release_page(lease);
            }
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
        prop_assert_eq!(pool.pages_free(), pool.pages_created());
    }

    /// Copy-on-write through the cache API: whatever prefix length and
    /// page geometry a fork is taken at, the first append privatizes the
    /// shared tail into a bitwise copy of the parent's rows at fork
    /// time — under the float policies and Anda alike.
    #[test]
    fn cow_page_is_a_bitwise_copy_of_its_parent(
        page_positions in 1usize..6,
        fill in 1usize..12,
        fork_at in 1usize..12,
        storage_pick in 0usize..3,
        seed in 0u64..1000,
    ) {
        let fork_at = fork_at.min(fill);
        let storage = match storage_pick {
            0 => KvStorage::Fp32,
            1 => KvStorage::Fp16,
            _ => KvStorage::Anda { mantissa_bits: 6 },
        };
        let pool = PagePool::new(KvPoolConfig {
            storage,
            page_positions,
            max_pages: None,
        });
        let dim = 64;
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f32>> = (0..fill + 1)
            .map(|_| (0..dim).map(|_| rng.normal_with(0.0, 1.0)).collect())
            .collect();
        let mut parent = pool.new_cache(1);
        for r in &rows[..fill] {
            parent.append_row(0, r, r);
        }
        let bits = |c: &anda_llm::KvCache, upto: usize| -> Vec<u32> {
            (0..upto)
                .flat_map(|i| {
                    let mut row = c.layer(0).key(i);
                    row.extend(c.layer(0).value(i));
                    row.into_iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                })
                .collect()
        };
        let parent_bits = bits(&parent, fork_at);
        let mut child = parent.fork_prefix(fork_at);
        // The append that triggers CoW whenever the tail is shared.
        child.append_row(0, &rows[fill], &rows[fill]);
        prop_assert_eq!(
            bits(&child, fork_at), parent_bits.clone(),
            "CoW must preserve the parent's bits at fork time"
        );
        prop_assert_eq!(bits(&parent, fork_at), parent_bits, "parent untouched");
    }
}

/// `preallocate` fills the free list up to capacity and subsequent
/// allocations only pop it.
#[test]
fn preallocate_fills_and_binds_to_capacity() {
    let pool = PagePool::new(KvPoolConfig {
        storage: KvStorage::Fp16,
        page_positions: 2,
        max_pages: Some(4),
    });
    pool.preallocate(10, 32);
    assert_eq!(pool.pages_created(), 4, "preallocation respects capacity");
    assert_eq!(pool.pages_free(), 4);
    let pages: Vec<Page> = (0..4).map(|_| pool.try_alloc(32).unwrap()).collect();
    assert!(pool.try_alloc(32).is_none());
    assert_eq!(pool.pages_created(), 4, "allocs only popped the free list");
    for p in pages {
        pool.release(p);
    }
}
