//! Property suite for the KV page allocator: random alloc/free/recycle
//! sequences must respect the pool invariants.
//!
//! - **Capacity**: the pool never creates more pages than `max_pages`,
//!   and an allocation fails exactly when every created page is leased
//!   and the capacity is exhausted.
//! - **Conservation**: `created == in_use + free` at every step (pages
//!   move by value, so a double free cannot even be expressed — the
//!   ledger proves none is synthesized internally either).
//! - **Reuse before growth**: while the free list is non-empty, an
//!   allocation never creates a page.
//! - **Reset integrity**: a recycled page behaves exactly like a fresh
//!   one (rows written after recycling read back identically).

use anda_llm::kv::{KvPoolConfig, KvStorage, Page, PagePool};
use proptest::prelude::*;

/// One scripted action against the pool.
#[derive(Debug, Clone, Copy)]
enum Action {
    Alloc,
    /// Free the leased page at `index % leased.len()` (skipped when
    /// nothing is leased).
    Free(usize),
}

fn check_ledger(pool: &PagePool, leased: &[Page], cap: usize) {
    assert!(pool.pages_created() <= cap, "created past capacity");
    assert_eq!(
        pool.pages_created(),
        pool.pages_in_use() + pool.pages_free(),
        "page conservation violated"
    );
    assert_eq!(
        pool.pages_in_use(),
        leased.len(),
        "pool in-use count disagrees with the pages we actually hold"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alloc_free_recycle_sequences_respect_the_invariants(
        script in prop::collection::vec(
            (any::<bool>(), 0usize..16).prop_map(|(alloc, i)| {
                if alloc { Action::Alloc } else { Action::Free(i) }
            }),
            1..60,
        ),
        cap in 1usize..12,
        page_positions in 1usize..5,
        anda in any::<bool>(),
    ) {
        let storage = if anda {
            KvStorage::Anda { mantissa_bits: 5 }
        } else {
            KvStorage::Fp32
        };
        let pool = PagePool::new(KvPoolConfig {
            storage,
            page_positions,
            max_pages: Some(cap),
        });
        let dim = 64;
        let mut leased: Vec<Page> = Vec::new();
        for action in script {
            match action {
                Action::Alloc => {
                    let free_before = pool.pages_free();
                    let created_before = pool.pages_created();
                    match pool.try_alloc(dim) {
                        Some(page) => {
                            prop_assert_eq!(page.used(), 0, "leased page not clean");
                            prop_assert_eq!(page.capacity(), page_positions);
                            if free_before > 0 {
                                prop_assert_eq!(
                                    pool.pages_created(), created_before,
                                    "grew while the free list was non-empty"
                                );
                            }
                            leased.push(page);
                        }
                        None => {
                            // Refusal is only legal at hard exhaustion.
                            prop_assert_eq!(free_before, 0);
                            prop_assert_eq!(created_before, cap);
                            prop_assert_eq!(leased.len(), cap);
                        }
                    }
                }
                Action::Free(i) => {
                    if !leased.is_empty() {
                        let page = leased.swap_remove(i % leased.len());
                        pool.release(page);
                    }
                }
            }
            check_ledger(&pool, &leased, cap);
        }
        // Drain: everything we still hold goes back and the ledger zeroes.
        for page in leased.drain(..) {
            pool.release(page);
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
        prop_assert_eq!(pool.pages_free(), pool.pages_created());
    }
}

/// A recycled page is indistinguishable from a fresh one: rows written
/// after recycling read back bit-identically to the same rows written to
/// a never-used page.
#[test]
fn recycled_pages_read_like_fresh_pages() {
    let cfg = KvPoolConfig {
        storage: KvStorage::Anda { mantissa_bits: 6 },
        page_positions: 3,
        max_pages: Some(1),
    };
    let dim = 96;
    let row_a: Vec<f32> = (0..dim).map(|i| (i as f32 - 48.0) * 0.17).collect();
    let row_b: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();

    let read = |pool: &PagePool, dirty_first: bool| -> Vec<u32> {
        let mut cache = pool.new_cache(1);
        if dirty_first {
            // Fill with unrelated data, then recycle.
            for _ in 0..3 {
                cache.append_row(0, &row_b, &row_b);
            }
            cache.reset();
        }
        cache.append_row(0, &row_a, &row_b);
        let mut out = cache.layer(0).key(0);
        out.extend(cache.layer(0).value(0));
        out.iter().map(|x| x.to_bits()).collect()
    };

    let pool = PagePool::new(cfg);
    let fresh = read(&pool, false);
    let recycled = read(&pool, true);
    assert_eq!(pool.pages_created(), 1, "one page serves both passes");
    assert_eq!(fresh, recycled);
}

/// `preallocate` fills the free list up to capacity and subsequent
/// allocations only pop it.
#[test]
fn preallocate_fills_and_binds_to_capacity() {
    let pool = PagePool::new(KvPoolConfig {
        storage: KvStorage::Fp16,
        page_positions: 2,
        max_pages: Some(4),
    });
    pool.preallocate(10, 32);
    assert_eq!(pool.pages_created(), 4, "preallocation respects capacity");
    assert_eq!(pool.pages_free(), 4);
    let pages: Vec<Page> = (0..4).map(|_| pool.try_alloc(32).unwrap()).collect();
    assert!(pool.try_alloc(32).is_none());
    assert_eq!(pool.pages_created(), 4, "allocs only popped the free list");
    for p in pages {
        pool.release(p);
    }
}
