//! Surrogate accuracy model and brute-force frontier comparison.
//!
//! The paper contrasts its 10-iteration search with "conventional
//! brute-force approaches" over a >10,000-point space (Fig. 9). Exhaustive
//! evaluation with real forward passes is impractical by design — that is
//! the algorithm's selling point — so this module provides the comparison
//! the honest way:
//!
//! 1. Fit a cheap **surrogate** of the accuracy landscape from the
//!    per-module sensitivity sweeps (Fig. 7 data): per-module loss curves
//!    are measured once (4 modules × mantissa range forward passes) and
//!    combined additively — accurate to first order because module
//!    truncation errors are nearly independent perturbations.
//! 2. **Brute-force** the full 10⁴ combination space on the surrogate to
//!    find the true frontier, then measure the gap between the search's
//!    pick and the surrogate optimum.

use std::collections::HashMap;

use anda_llm::config::ModelConfig;
use anda_llm::eval::perplexity_with_scratch;
use anda_llm::model::{ForwardScratch, Model};
use anda_llm::modules::{CodecAssignment, ModuleKind, PrecisionCombo};
use anda_quant::ActivationCodec;

use crate::bops::bops_per_token;
use crate::search::AccuracyEvaluator;

/// A first-order additive model of `ppl(combo)` fitted from per-module
/// sweeps.
#[derive(Clone, Debug)]
pub struct SurrogateLandscape {
    baseline_ppl: f64,
    /// `module_loss[module][m - lo]` = PPL increase when only that module
    /// runs at mantissa length `m`.
    module_loss: [Vec<f64>; 4],
    /// Mantissa range covered, inclusive.
    range: (u32, u32),
    evals_spent: usize,
}

impl SurrogateLandscape {
    /// Fits the surrogate by sweeping each module independently (others at
    /// the top of `range`), costing `4 × |range|` forward passes.
    pub fn fit(model: &Model, calibration: &[usize], window: usize, range: (u32, u32)) -> Self {
        let (lo, hi) = range;
        assert!(lo >= 1 && hi <= 16 && lo <= hi, "invalid mantissa range");
        // One forward scratch serves the whole fit: `4 × |range| + 1`
        // perplexity sweeps reuse the same buffers.
        let mut scratch = ForwardScratch::new();
        let baseline_ppl = perplexity_with_scratch(
            model,
            &CodecAssignment::fp16(),
            calibration,
            window,
            &mut scratch,
        );
        let mut evals = 1usize;
        let reference = CodecAssignment::uniform(ActivationCodec::anda(hi));

        let mut module_loss: [Vec<f64>; 4] = Default::default();
        for kind in ModuleKind::ALL {
            let mut losses = Vec::with_capacity((hi - lo + 1) as usize);
            for m in lo..=hi {
                let codecs = reference.with_module(kind, ActivationCodec::anda(m));
                let ppl =
                    perplexity_with_scratch(model, &codecs, calibration, window, &mut scratch);
                evals += 1;
                losses.push((ppl - baseline_ppl).max(0.0));
            }
            module_loss[kind.index()] = losses;
        }
        SurrogateLandscape {
            baseline_ppl,
            module_loss,
            range,
            evals_spent: evals,
        }
    }

    /// The FP16 baseline perplexity.
    pub fn baseline_ppl(&self) -> f64 {
        self.baseline_ppl
    }

    /// Forward passes spent fitting.
    pub fn fit_cost(&self) -> usize {
        self.evals_spent
    }

    /// Surrogate perplexity of a combination (additive first-order model).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is outside the fitted range.
    pub fn predict(&self, combo: PrecisionCombo) -> f64 {
        let (lo, hi) = self.range;
        let mut ppl = self.baseline_ppl;
        for kind in ModuleKind::ALL {
            let m = combo.mantissa_for(kind);
            assert!(
                (lo..=hi).contains(&m),
                "mantissa {m} outside fitted range {lo}..={hi}"
            );
            ppl += self.module_loss[kind.index()][(m - lo) as usize];
        }
        ppl
    }

    /// Exhaustively enumerates the fitted space and returns the minimum-BOPs
    /// combination whose surrogate loss stays within `tolerance`, plus the
    /// number of points examined.
    pub fn brute_force_optimum(
        &self,
        cfg: &ModelConfig,
        tolerance: f64,
    ) -> (Option<PrecisionCombo>, usize) {
        let (lo, hi) = self.range;
        let threshold = self.baseline_ppl * (1.0 + tolerance);
        let mut best: Option<(u64, PrecisionCombo)> = None;
        let mut examined = 0usize;
        for a in lo..=hi {
            for b in lo..=hi {
                for c in lo..=hi {
                    for d in lo..=hi {
                        examined += 1;
                        let combo = PrecisionCombo([a, b, c, d]);
                        if self.predict(combo) > threshold {
                            continue;
                        }
                        let bops = bops_per_token(cfg, combo);
                        if best.is_none_or(|(bb, _)| bops < bb) {
                            best = Some((bops, combo));
                        }
                    }
                }
            }
        }
        (best.map(|(_, c)| c), examined)
    }
}

/// An [`AccuracyEvaluator`] backed by the surrogate, for running
/// Algorithm 1 on the fitted landscape (fast search-quality studies).
pub struct SurrogateEvaluator<'a> {
    landscape: &'a SurrogateLandscape,
    cache: HashMap<PrecisionCombo, f64>,
    evals: usize,
}

impl<'a> SurrogateEvaluator<'a> {
    /// Wraps a fitted landscape.
    pub fn new(landscape: &'a SurrogateLandscape) -> Self {
        SurrogateEvaluator {
            landscape,
            cache: HashMap::new(),
            evals: 0,
        }
    }
}

impl AccuracyEvaluator for SurrogateEvaluator<'_> {
    fn baseline(&mut self) -> f64 {
        self.landscape.baseline_ppl()
    }
    fn evaluate(&mut self, combo: PrecisionCombo) -> f64 {
        if let Some(&p) = self.cache.get(&combo) {
            return p;
        }
        self.evals += 1;
        // The search may relax below the fitted range; such combos are
        // outside the surrogate's domain and reported as infeasible.
        let (lo, hi) = self.landscape.range;
        let in_range = combo.0.iter().all(|m| (lo..=hi).contains(m));
        let p = if in_range {
            self.landscape.predict(combo)
        } else {
            f64::INFINITY
        };
        self.cache.insert(combo, p);
        p
    }
    fn evaluations(&self) -> usize {
        self.evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{adaptive_precision_search, SearchConfig};
    use anda_llm::zoo::real_model;

    /// A hand-built landscape with known per-module losses.
    fn synthetic() -> SurrogateLandscape {
        // Losses decrease with m; module 0 (qkv) is most sensitive.
        let curve = |scale: f64| -> Vec<f64> {
            (4..=13u32)
                .map(|m| scale * (2.0f64).powi(-(m as i32)) * 30.0)
                .collect()
        };
        SurrogateLandscape {
            baseline_ppl: 10.0,
            module_loss: [curve(8.0), curve(1.0), curve(2.0), curve(0.5)],
            range: (4, 13),
            evals_spent: 41,
        }
    }

    #[test]
    fn predict_is_additive_and_monotone() {
        let land = synthetic();
        let narrow = land.predict(PrecisionCombo::uniform(4));
        let wide = land.predict(PrecisionCombo::uniform(13));
        assert!(narrow > wide);
        assert!(wide >= land.baseline_ppl());
        // Additivity: changing one module changes exactly its term.
        let a = land.predict(PrecisionCombo([8, 8, 8, 8]));
        let b = land.predict(PrecisionCombo([9, 8, 8, 8]));
        let da = land.module_loss[0][4] - land.module_loss[0][5];
        assert!((a - b - da).abs() < 1e-12);
    }

    #[test]
    fn brute_force_examines_full_space() {
        let land = synthetic();
        let cfg = real_model("OPT-6.7B").unwrap();
        let (best, examined) = land.brute_force_optimum(&cfg, 0.01);
        assert_eq!(examined, 10_000);
        let best = best.expect("feasible");
        // The optimum must be feasible and at the constraint boundary-ish.
        assert!(land.predict(best) <= land.baseline_ppl() * 1.01);
    }

    #[test]
    fn search_on_surrogate_matches_brute_force_bops_closely() {
        let land = synthetic();
        let cfg = real_model("OPT-6.7B").unwrap();
        let (brute, _) = land.brute_force_optimum(&cfg, 0.01);
        let brute = brute.unwrap();

        let mut ev = SurrogateEvaluator::new(&land);
        let mut scfg = SearchConfig::with_tolerance(0.01);
        scfg.max_iterations = 32;
        let out = adaptive_precision_search(&cfg, &mut ev, &scfg);
        let searched = out.best.expect("search must find a combo");

        let gap = bops_per_token(&cfg, searched) as f64 / bops_per_token(&cfg, brute) as f64;
        // Paper: near-optimal within few iterations; allow ≤25% BOPs gap.
        assert!(
            (1.0..1.25).contains(&gap),
            "BOPs gap {gap} ({searched} vs {brute})"
        );
        assert!(out.trace.len() <= 32);
    }

    #[test]
    fn surrogate_evaluator_caches() {
        let land = synthetic();
        let mut ev = SurrogateEvaluator::new(&land);
        let c = PrecisionCombo::uniform(7);
        let a = ev.evaluate(c);
        let b = ev.evaluate(c);
        assert_eq!(a, b);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    #[should_panic(expected = "outside fitted range")]
    fn out_of_range_prediction_panics() {
        let land = synthetic();
        let _ = land.predict(PrecisionCombo::uniform(16));
    }
}
