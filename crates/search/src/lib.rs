//! BOPs model and the adaptive precision combination search (Algorithm 1).
//!
//! - [`bops`] — the bit-operations cost model the paper uses to rank
//!   precision combinations without running the model: one `FP16×INT4` MAC
//!   counts 64 BOPs, a BFP/Anda MAC with an M-bit mantissa counts `4·M`.
//!   This reproduces the paper's own numbers: FIGNA (M=13) saves 1.23×,
//!   VS-Quant (M=4) saves 4.00×.
//! - [`search`] — the training-free, one-shot calibration search over the
//!   4-tuple `[M_qkv, M_o, M_u, M_d]`: a priority queue ordered by BOPs,
//!   a visited set, and a relaxation step that decrements one module's
//!   mantissa at a time (paper §III-C, Fig. 9).
//! - [`surrogate`] — a first-order additive accuracy surrogate fitted from
//!   per-module sweeps, enabling the brute-force frontier comparison the
//!   paper references (Fig. 9's >10,000-point space).

pub mod bops;
pub mod search;
pub mod surrogate;

pub use bops::{bops_per_token, bops_saving, BOPS_PER_FP16_INT4_MAC};
pub use search::{
    adaptive_precision_search, AccuracyEvaluator, PplEvaluator, SearchConfig, SearchOutcome,
    SearchStep,
};
