//! The adaptive precision combination search (paper Algorithm 1, §III-C).
//!
//! A best-first search over 4-tuples `[M_qkv, M_o, M_u, M_d]`:
//!
//! 1. **Initialize** the priority queue with uniform combinations `[4,4,4,4]`
//!    … `[13,13,13,13]`.
//! 2. **Check** the queued combination with the lowest BOPs on the
//!    calibration set.
//! 3. **Update & relax**: if it beats the current best BOPs while staying
//!    within the accuracy tolerance, it becomes the best and its relaxations
//!    (each module decremented by one) are enqueued.
//!
//! The search is training-free and reuses the weight-quantization
//! calibration data; each iteration costs one forward pass over that data.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use anda_llm::config::ModelConfig;
use anda_llm::eval::perplexity_with_scratch;
use anda_llm::model::{ForwardScratch, Model};
use anda_llm::modules::{CodecAssignment, PrecisionCombo};

use crate::bops::bops_per_token;

/// Search hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchConfig {
    /// Relative accuracy-loss tolerance δ (e.g. `0.01` for 1%).
    pub tolerance: f64,
    /// Maximum iterations N (the paper limits deployment runs to 32).
    pub max_iterations: usize,
    /// Inclusive mantissa range of the uniform starting points.
    pub init_range: (u32, u32),
}

impl SearchConfig {
    /// The paper's deployment configuration at tolerance δ.
    pub fn with_tolerance(tolerance: f64) -> Self {
        SearchConfig {
            tolerance,
            max_iterations: 32,
            init_range: (4, 13),
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self::with_tolerance(0.01)
    }
}

/// One search iteration record (the Fig. 9 trace rows).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchStep {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Combination evaluated this iteration.
    pub combo: PrecisionCombo,
    /// Its BOPs per token.
    pub bops: u64,
    /// Measured calibration perplexity.
    pub ppl: f64,
    /// Whether it became the new best.
    pub accepted: bool,
    /// Best combination after this iteration (None until one is found).
    pub best_after: Option<PrecisionCombo>,
}

/// Search result: best combination plus the full trace.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The optimized combination (None if nothing met the tolerance).
    pub best: Option<PrecisionCombo>,
    /// BOPs per token of the best combination.
    pub best_bops: u64,
    /// Baseline (FP16-activation) perplexity used for the tolerance check.
    pub baseline_ppl: f64,
    /// Per-iteration records.
    pub trace: Vec<SearchStep>,
    /// Number of accuracy evaluations performed (cache misses).
    pub evaluations: usize,
}

impl SearchOutcome {
    /// BOPs saving of the best combination versus the FP16 baseline.
    pub fn bops_saving(&self, cfg: &ModelConfig) -> Option<f64> {
        self.best.map(|b| crate::bops::bops_saving(cfg, b))
    }
}

/// Anything that can score a precision combination on calibration data.
///
/// The production implementation is [`PplEvaluator`]; tests use synthetic
/// landscapes.
pub trait AccuracyEvaluator {
    /// Perplexity of the FP16-activation baseline (lower is better).
    fn baseline(&mut self) -> f64;
    /// Perplexity under the given combination.
    fn evaluate(&mut self, combo: PrecisionCombo) -> f64;
    /// Number of (uncached) evaluations performed so far.
    fn evaluations(&self) -> usize;
}

/// Calibration-perplexity evaluator over a quantized model, with caching.
pub struct PplEvaluator<'a> {
    model: &'a Model,
    calibration: &'a [usize],
    window: usize,
    cache: HashMap<PrecisionCombo, f64>,
    baseline: Option<f64>,
    evaluations: usize,
    /// One forward scratch reused across every evaluation of the search.
    scratch: ForwardScratch,
}

impl<'a> PplEvaluator<'a> {
    /// Creates an evaluator over `calibration` tokens with the given
    /// evaluation window.
    pub fn new(model: &'a Model, calibration: &'a [usize], window: usize) -> Self {
        PplEvaluator {
            model,
            calibration,
            window,
            cache: HashMap::new(),
            baseline: None,
            evaluations: 0,
            scratch: ForwardScratch::new(),
        }
    }
}

impl AccuracyEvaluator for PplEvaluator<'_> {
    fn baseline(&mut self) -> f64 {
        if let Some(b) = self.baseline {
            return b;
        }
        let b = perplexity_with_scratch(
            self.model,
            &CodecAssignment::fp16(),
            self.calibration,
            self.window,
            &mut self.scratch,
        );
        self.baseline = Some(b);
        b
    }

    fn evaluate(&mut self, combo: PrecisionCombo) -> f64 {
        if let Some(&p) = self.cache.get(&combo) {
            return p;
        }
        let p = perplexity_with_scratch(
            self.model,
            &CodecAssignment::from_combo(combo),
            self.calibration,
            self.window,
            &mut self.scratch,
        );
        self.cache.insert(combo, p);
        self.evaluations += 1;
        p
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// Runs Algorithm 1 and returns the optimized combination with its trace.
pub fn adaptive_precision_search(
    model_cfg: &ModelConfig,
    evaluator: &mut dyn AccuracyEvaluator,
    search_cfg: &SearchConfig,
) -> SearchOutcome {
    // S1: initialize uniform starting points.
    let mut queue: BinaryHeap<Reverse<(u64, PrecisionCombo)>> = BinaryHeap::new();
    let (lo, hi) = search_cfg.init_range;
    for m in lo..=hi {
        let combo = PrecisionCombo::uniform(m);
        queue.push(Reverse((bops_per_token(model_cfg, combo), combo)));
    }

    let baseline_ppl = evaluator.baseline();
    let threshold = baseline_ppl * (1.0 + search_cfg.tolerance);

    let mut visited: HashSet<PrecisionCombo> = HashSet::new();
    let mut best: Option<PrecisionCombo> = None;
    let mut best_bops = u64::MAX;
    let mut trace = Vec::new();
    let mut iterations = 0usize;

    while iterations < search_cfg.max_iterations {
        // S2: pop the promising (lowest-BOPs) combination.
        let Some(Reverse((bops, combo))) = queue.pop() else {
            break;
        };
        if !visited.insert(combo) {
            continue; // duplicate queue entry, does not consume an iteration
        }
        // The queue pops in BOPs order and relaxations of an accepted combo
        // are strictly cheaper, so once a popped combination cannot beat the
        // best BOPs nothing remaining can either: terminate early.
        if best.is_some() && bops >= best_bops {
            break;
        }
        iterations += 1;
        let ppl = evaluator.evaluate(combo);

        // S3: update and relax.
        let accepted = bops < best_bops && ppl <= threshold;
        if accepted {
            best = Some(combo);
            best_bops = bops;
            for n in combo.relaxations() {
                if !visited.contains(&n) {
                    queue.push(Reverse((bops_per_token(model_cfg, n), n)));
                }
            }
        }
        trace.push(SearchStep {
            iteration: iterations,
            combo,
            bops,
            ppl,
            accepted,
            best_after: best,
        });
    }

    SearchOutcome {
        best,
        best_bops,
        baseline_ppl,
        trace,
        evaluations: evaluator.evaluations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anda_llm::zoo;

    /// Synthetic landscape: a combo is "accurate enough" iff every module
    /// meets a per-module minimum mantissa.
    struct ThresholdLandscape {
        minima: [u32; 4],
        evals: usize,
    }

    impl AccuracyEvaluator for ThresholdLandscape {
        fn baseline(&mut self) -> f64 {
            10.0
        }
        fn evaluate(&mut self, combo: PrecisionCombo) -> f64 {
            self.evals += 1;
            let ok = combo.0.iter().zip(&self.minima).all(|(&m, &min)| m >= min);
            if ok {
                10.0
            } else {
                20.0
            }
        }
        fn evaluations(&self) -> usize {
            self.evals
        }
    }

    fn search_cfg() -> SearchConfig {
        SearchConfig::with_tolerance(0.01)
    }

    #[test]
    fn finds_exact_minima_on_threshold_landscape() {
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        let mut land = ThresholdLandscape {
            minima: [7, 7, 6, 5],
            evals: 0,
        };
        let mut scfg = search_cfg();
        scfg.max_iterations = 64;
        let out = adaptive_precision_search(&cfg, &mut land, &scfg);
        assert_eq!(out.best, Some(PrecisionCombo([7, 7, 6, 5])));
    }

    #[test]
    fn fig9_trace_shape_uniform_then_relaxed() {
        let cfg = zoo::real_opt_125m();
        let mut land = ThresholdLandscape {
            minima: [7, 7, 6, 5],
            evals: 0,
        };
        let out = adaptive_precision_search(&cfg, &mut land, &search_cfg());
        // First iterations walk the uniform ladder until [7,7,7,7] passes.
        assert_eq!(out.trace[0].combo, PrecisionCombo::uniform(4));
        assert!(!out.trace[0].accepted);
        let first_accept = out.trace.iter().find(|s| s.accepted).unwrap();
        assert_eq!(first_accept.combo, PrecisionCombo::uniform(7));
        // And the search refines below the uniform solution.
        let best = out.best.unwrap();
        assert!(best.total_bits() < 28, "best {best}");
    }

    #[test]
    fn respects_iteration_limit() {
        let cfg = zoo::real_model("LLaMA-7B").unwrap();
        let mut land = ThresholdLandscape {
            minima: [5, 5, 5, 5],
            evals: 0,
        };
        let mut scfg = search_cfg();
        scfg.max_iterations = 3;
        let out = adaptive_precision_search(&cfg, &mut land, &scfg);
        assert!(out.trace.len() <= 3);
    }

    #[test]
    fn infeasible_landscape_returns_none() {
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        let mut land = ThresholdLandscape {
            minima: [16, 16, 16, 16], // nothing in 4..=13 passes
            evals: 0,
        };
        let out = adaptive_precision_search(&cfg, &mut land, &search_cfg());
        assert_eq!(out.best, None);
        assert!(out.trace.iter().all(|s| !s.accepted));
    }

    #[test]
    fn never_evaluates_a_combo_twice() {
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        let mut land = ThresholdLandscape {
            minima: [6, 5, 5, 4],
            evals: 0,
        };
        let mut scfg = search_cfg();
        scfg.max_iterations = 64;
        let out = adaptive_precision_search(&cfg, &mut land, &scfg);
        let mut seen = std::collections::HashSet::new();
        for s in &out.trace {
            assert!(seen.insert(s.combo), "revisited {}", s.combo);
        }
    }

    #[test]
    fn accepted_steps_have_decreasing_bops() {
        let cfg = zoo::real_model("OPT-13B").unwrap();
        let mut land = ThresholdLandscape {
            minima: [6, 6, 5, 5],
            evals: 0,
        };
        let mut scfg = search_cfg();
        scfg.max_iterations = 64;
        let out = adaptive_precision_search(&cfg, &mut land, &scfg);
        let accepted: Vec<u64> = out
            .trace
            .iter()
            .filter(|s| s.accepted)
            .map(|s| s.bops)
            .collect();
        assert!(accepted.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn best_is_feasible_and_minimal_among_trace() {
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        let mut land = ThresholdLandscape {
            minima: [7, 6, 6, 5],
            evals: 0,
        };
        let mut scfg = search_cfg();
        scfg.max_iterations = 64;
        let out = adaptive_precision_search(&cfg, &mut land, &scfg);
        let best = out.best.unwrap();
        // Feasible:
        assert!(best.0.iter().zip(&[7, 6, 6, 5]).all(|(&m, &min)| m >= min));
        // Minimal among evaluated feasible combos:
        let min_feasible = out
            .trace
            .iter()
            .filter(|s| s.ppl <= 10.0 * 1.01)
            .map(|s| s.bops)
            .min()
            .unwrap();
        assert_eq!(out.best_bops, min_feasible);
    }

    #[test]
    fn ppl_evaluator_caches() {
        let spec = zoo::opt_125m_sim();
        let model = spec.build();
        let tokens: Vec<usize> = (0..96).map(|i| (i * 7) % 500).collect();
        let mut ev = PplEvaluator::new(&model, &tokens, 48);
        let c = PrecisionCombo::uniform(8);
        let a = ev.evaluate(c);
        let b = ev.evaluate(c);
        assert_eq!(a, b);
        assert_eq!(ev.evaluations(), 1);
    }
}
