//! The bit-operations (BOPs) cost model.
//!
//! BOPs estimate computational cost as the total number of single-bit
//! multiply operations: a MAC of an `a`-bit operand with a `b`-bit operand
//! costs `a·b` BOPs. The paper's convention (§V-A) prices one FP16×INT4 MAC
//! at 64 BOPs (a 16-bit effective datapath against 4-bit weights); an
//! Anda/BFP MAC with an M-bit mantissa costs `4·M`.

use anda_llm::config::ModelConfig;
use anda_llm::modules::{ModuleKind, PrecisionCombo};
use anda_llm::opcount::module_macs_all_layers;

/// BOPs of one FP16×INT4 MAC (the paper's normalization constant).
pub const BOPS_PER_FP16_INT4_MAC: u64 = 64;

/// Weight bit width assumed by the cost model (W4A16).
pub const WEIGHT_BITS: u64 = 4;

/// BOPs per MAC at a given activation mantissa length.
#[inline]
pub fn bops_per_mac(mantissa_bits: u32) -> u64 {
    WEIGHT_BITS * u64::from(mantissa_bits)
}

/// Total FP-INT GeMM BOPs for one token under a precision combination.
pub fn bops_per_token(cfg: &ModelConfig, combo: PrecisionCombo) -> u64 {
    ModuleKind::ALL
        .iter()
        .map(|&k| module_macs_all_layers(cfg, k) * bops_per_mac(combo.mantissa_for(k)))
        .sum()
}

/// Total FP-INT GeMM BOPs for one token with FP16 activations (the
/// Omniquant/GPU baseline).
pub fn bops_per_token_fp16(cfg: &ModelConfig) -> u64 {
    ModuleKind::ALL
        .iter()
        .map(|&k| module_macs_all_layers(cfg, k) * BOPS_PER_FP16_INT4_MAC)
        .sum()
}

/// BOPs saving factor versus the FP16-activation baseline (Table II green
/// numbers): `baseline / combo`.
pub fn bops_saving(cfg: &ModelConfig, combo: PrecisionCombo) -> f64 {
    bops_per_token_fp16(cfg) as f64 / bops_per_token(cfg, combo) as f64
}

/// BOPs saving of a *uniform* mantissa length (the FIGNA/VS-Quant rows).
pub fn uniform_bops_saving(m: u32) -> f64 {
    BOPS_PER_FP16_INT4_MAC as f64 / bops_per_mac(m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use anda_llm::zoo;

    #[test]
    fn paper_normalization_constants() {
        // FIGNA: M=13 → 1.23×; VS-Quant: M=4 → 4.00×.
        assert!((uniform_bops_saving(13) - 1.2308).abs() < 1e-3);
        assert!((uniform_bops_saving(4) - 4.0).abs() < 1e-12);
        assert!((uniform_bops_saving(16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_combo_matches_uniform_saving() {
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        for m in [4u32, 8, 13] {
            let via_combo = bops_saving(&cfg, PrecisionCombo::uniform(m));
            assert!((via_combo - uniform_bops_saving(m)).abs() < 1e-9);
        }
    }

    #[test]
    fn mixed_combo_weights_modules_by_macs() {
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        // Lowering only A_d (a big module: ffn·d) must save more than
        // lowering only A_o (d·d).
        let base = PrecisionCombo::uniform(8);
        let low_d = PrecisionCombo([8, 8, 8, 4]);
        let low_o = PrecisionCombo([8, 4, 8, 8]);
        assert!(bops_per_token(&cfg, low_d) < bops_per_token(&cfg, low_o));
        assert!(bops_per_token(&cfg, low_d) < bops_per_token(&cfg, base));
    }

    #[test]
    fn savings_in_paper_range_for_typical_combos() {
        // Fig. 14 WikiText2 1% combos average ~5–6 bits → savings ~2.4–3.3×.
        let cfg = zoo::real_model("OPT-6.7B").unwrap();
        let s = bops_saving(&cfg, PrecisionCombo([6, 4, 5, 4]));
        assert!(s > 2.4 && s < 4.0, "saving {s}");
    }

    #[test]
    fn bops_strictly_monotone_in_each_coordinate() {
        let cfg = zoo::real_model("LLaMA-7B").unwrap();
        let base = PrecisionCombo([7, 7, 7, 7]);
        for relaxed in base.relaxations() {
            assert!(bops_per_token(&cfg, relaxed) < bops_per_token(&cfg, base));
        }
    }
}
