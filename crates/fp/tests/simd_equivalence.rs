//! Property-based scalar↔SIMD equivalence for the batch conversion
//! kernels: on every dispatch leg available on this host, every batch
//! kernel must produce `to_bits`-identical output to its scalar twin —
//! the oracle contract behind the runtime dispatch layer.
//!
//! Lengths are drawn adversarially (empty, sub-lane, lane-exact,
//! lane+1, long) so the vector bodies and their scalar tails are both
//! exercised, and values include the hard cases: NaN, infinities,
//! subnormals, signed zero, and the FP16 saturation boundary.

use anda_fp::batch::{
    f16_to_f32_scalar, f16_to_f32_slice_with_leg, f32_to_f16_scalar, f32_to_f16_slice_with_leg,
    saturate_bf16_widen_scalar, saturate_bf16_widen_slice_with_leg, saturate_f16_widen_scalar,
    saturate_f16_widen_slice_with_leg,
};
use anda_fp::{available_legs, F16};
use proptest::prelude::*;

/// Strategy: arbitrary f32 bit patterns (covers NaN payloads, infs,
/// subnormals and signed zero). The full length range 0..=67 crosses
/// every 4/8-lane boundary many times per run, so the vector bodies and
/// their scalar tails are both exercised.
fn any_bits_vec() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..=67)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `f32 -> F16` narrowing matches the scalar oracle bit-for-bit on
    /// every available leg.
    #[test]
    fn f32_to_f16_matches_scalar_on_all_legs(bits in any_bits_vec()) {
        let src: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut oracle = vec![F16::ZERO; src.len()];
        f32_to_f16_scalar(&src, &mut oracle);
        for leg in available_legs() {
            let mut got = vec![F16::ONE; src.len()];
            f32_to_f16_slice_with_leg(leg, &src, &mut got);
            for (i, (a, b)) in got.iter().zip(&oracle).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "leg={} i={i} src={:#010x}", leg.name(), bits[i]);
            }
        }
    }

    /// `F16 -> f32` widening matches the scalar oracle bit-for-bit on
    /// every available leg, for every possible f16 bit pattern.
    #[test]
    fn f16_to_f32_matches_scalar_on_all_legs(
        hbits in prop::collection::vec(any::<u16>(), 0..40),
    ) {
        let src: Vec<F16> = hbits.iter().map(|&b| F16::from_bits(b)).collect();
        let mut oracle = vec![0.0f32; src.len()];
        f16_to_f32_scalar(&src, &mut oracle);
        for leg in available_legs() {
            let mut got = vec![1.0f32; src.len()];
            f16_to_f32_slice_with_leg(leg, &src, &mut got);
            for (i, (a, b)) in got.iter().zip(&oracle).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "leg={} i={i} src={:#06x}", leg.name(), hbits[i]);
            }
        }
    }

    /// The saturating FP16 round-trip (the KV `Fp16` policy's append
    /// kernel) matches its scalar twin on every leg.
    #[test]
    fn saturate_f16_widen_matches_scalar_on_all_legs(bits in any_bits_vec()) {
        let src: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut oracle = vec![0.0f32; src.len()];
        saturate_f16_widen_scalar(&src, &mut oracle);
        for leg in available_legs() {
            let mut got = vec![1.0f32; src.len()];
            saturate_f16_widen_slice_with_leg(leg, &src, &mut got);
            for (i, (a, b)) in got.iter().zip(&oracle).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "leg={} i={i} src={:#010x}", leg.name(), bits[i]);
            }
        }
    }

    /// The saturating BF16 round-trip (the KV `Bf16` policy's append
    /// kernel) matches its scalar twin on every leg.
    #[test]
    fn saturate_bf16_widen_matches_scalar_on_all_legs(bits in any_bits_vec()) {
        let src: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut oracle = vec![0.0f32; src.len()];
        saturate_bf16_widen_scalar(&src, &mut oracle);
        for leg in available_legs() {
            let mut got = vec![1.0f32; src.len()];
            saturate_bf16_widen_slice_with_leg(leg, &src, &mut got);
            for (i, (a, b)) in got.iter().zip(&oracle).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "leg={} i={i} src={:#010x}", leg.name(), bits[i]);
            }
        }
    }
}
