//! Cross-checks of F16 arithmetic against an f64 reference model.

use anda_fp::F16;
use proptest::prelude::*;

/// Round an exact f64 result to the nearest representable f16 via f32
/// (double rounding is safe here because inputs are f16-representable and
/// products/sums of f16 values round identically through f32).
fn reference(op: impl Fn(f64, f64) -> f64, a: F16, b: F16) -> F16 {
    F16::from_f32(op(a.to_f64(), b.to_f64()) as f32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Addition matches the f64-reference rounding for finite operands.
    #[test]
    fn add_matches_reference(a in any::<u16>(), b in any::<u16>()) {
        let (x, y) = (F16::from_bits(a), F16::from_bits(b));
        prop_assume!(x.is_finite() && y.is_finite());
        let got = x + y;
        let want = reference(|p, q| p + q, x, y);
        if want.is_nan() {
            prop_assert!(got.is_nan());
        } else {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// Multiplication matches the f64-reference rounding.
    #[test]
    fn mul_matches_reference(a in any::<u16>(), b in any::<u16>()) {
        let (x, y) = (F16::from_bits(a), F16::from_bits(b));
        prop_assume!(x.is_finite() && y.is_finite());
        let got = x * y;
        let want = reference(|p, q| p * q, x, y);
        if want.is_nan() {
            prop_assert!(got.is_nan());
        } else {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// Subtraction of a value from itself is exactly zero.
    #[test]
    fn self_subtraction_is_zero(a in any::<u16>()) {
        let x = F16::from_bits(a);
        prop_assume!(x.is_finite());
        prop_assert!((x - x).is_zero());
    }

    /// abs() clears exactly the sign bit.
    #[test]
    fn abs_clears_sign(a in any::<u16>()) {
        let x = F16::from_bits(a);
        prop_assert_eq!(x.abs().to_bits(), a & 0x7FFF);
    }

    /// Ordering agrees with f32 ordering on numbers.
    #[test]
    fn ordering_matches_f32(a in any::<u16>(), b in any::<u16>()) {
        let (x, y) = (F16::from_bits(a), F16::from_bits(b));
        prop_assume!(!x.is_nan() && !y.is_nan());
        prop_assert_eq!(
            x.partial_cmp(&y),
            x.to_f32().partial_cmp(&y.to_f32())
        );
    }
}

#[test]
fn addition_hits_overflow_and_subnormal_boundaries() {
    assert!((F16::MAX + F16::MAX).is_infinite());
    assert!((F16::MIN + F16::MIN).is_infinite());
    let sub = F16::MIN_POSITIVE_SUBNORMAL;
    assert_eq!((sub + sub).to_bits(), 0x0002);
    // Crossing from subnormal into normal range.
    let near = F16::from_bits(0x03FF); // largest subnormal
    assert_eq!((near + sub).to_bits(), 0x0400); // smallest normal
}

#[test]
fn multiplication_flushes_to_signed_zero() {
    let tiny = F16::MIN_POSITIVE_SUBNORMAL;
    let r = tiny * tiny;
    assert!(r.is_zero());
    let rn = (-tiny) * tiny;
    assert!(rn.is_zero() && rn.is_sign_negative());
}

#[test]
fn division_specials() {
    assert!((F16::ONE / F16::ZERO).is_infinite());
    assert!((F16::ZERO / F16::ZERO).is_nan());
    assert_eq!(F16::ONE / F16::INFINITY, F16::ZERO);
}
