//! Property-based tests for the software FP16 implementation.

use anda_fp::{shift_right_round, RoundingMode, F16};
use proptest::prelude::*;

proptest! {
    /// f32 -> f16 -> f32 must be the identity whenever the f32 is exactly
    /// representable in binary16 (construct such values from f16 bits).
    #[test]
    fn representable_f32_round_trips(bits in any::<u16>()) {
        let x = F16::from_bits(bits);
        prop_assume!(!x.is_nan());
        let via = F16::from_f32(x.to_f32());
        prop_assert_eq!(via.to_bits(), bits);
    }

    /// Conversion error from f32 is at most half a ULP of the f16 result
    /// (round-to-nearest), for values inside the finite f16 range.
    #[test]
    fn conversion_error_is_half_ulp(v in -60000.0f32..60000.0) {
        let h = F16::from_f32(v);
        prop_assert!(h.is_finite());
        let back = h.to_f32();
        // ULP at the magnitude of the result.
        let exp = if h.is_zero() || h.is_subnormal() {
            -24
        } else {
            i32::from(h.biased_exponent()) - 15 - 10
        };
        let ulp = (2.0f32).powi(exp);
        prop_assert!((back - v).abs() <= ulp / 2.0 + f32::EPSILON,
            "v={v} back={back} ulp={ulp}");
    }

    /// The significand decomposition reconstructs the value exactly.
    #[test]
    fn significand_is_lossless(bits in any::<u16>()) {
        let x = F16::from_bits(bits);
        prop_assume!(x.is_finite());
        let s = x.significand();
        prop_assert_eq!(s.to_f32(), x.to_f32());
        prop_assert!(s.magnitude < 2048);
        prop_assert!((1..=30).contains(&s.biased_exp));
    }

    /// Negation only toggles the sign bit.
    #[test]
    fn neg_toggles_sign(bits in any::<u16>()) {
        let x = F16::from_bits(bits);
        prop_assert_eq!((-x).to_bits(), bits ^ 0x8000);
        prop_assert_eq!((-(-x)).to_bits(), bits);
    }

    /// total_cmp is a total order consistent with partial_cmp on numbers.
    #[test]
    fn total_cmp_consistent(a in any::<u16>(), b in any::<u16>()) {
        let (x, y) = (F16::from_bits(a), F16::from_bits(b));
        if let Some(ord) = x.partial_cmp(&y) {
            if x.to_f32() != 0.0 || y.to_f32() != 0.0 {
                prop_assert_eq!(ord, x.total_cmp(&y));
            }
        }
        // Antisymmetry always holds.
        prop_assert_eq!(x.total_cmp(&y), y.total_cmp(&x).reverse());
    }

    /// Truncating shift never exceeds RNE shift, and both are within 1.
    #[test]
    fn rounding_modes_bracket(value in any::<u32>(), shift in 0u32..40) {
        let t = shift_right_round(u64::from(value), shift, RoundingMode::Truncate);
        let r = shift_right_round(u64::from(value), shift, RoundingMode::NearestEven);
        prop_assert!(t <= r);
        prop_assert!(r - t <= 1);
    }

    /// Arithmetic through f32 is commutative for add/mul on finite values.
    #[test]
    fn add_mul_commute(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (x, y) = (F16::from_f32(a), F16::from_f32(b));
        prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
        prop_assert_eq!((x * y).to_bits(), (y * x).to_bits());
    }
}
