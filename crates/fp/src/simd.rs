//! Runtime SIMD dispatch for the workspace's vector kernels.
//!
//! Every hot-path kernel in the workspace (the `anda-format` row codec,
//! the batch FP16/BF16 conversions in this crate, the GeMM inner loops in
//! `anda-tensor`/`anda-quant`) exists in two or three *legs*: a scalar
//! reference implementation and `std::arch` vector implementations for
//! AVX2 (x86-64) and NEON (aarch64). This module is the single place that
//! decides which leg runs:
//!
//! - CPU features are detected once per process (`is_x86_feature_detected!`
//!   / `is_aarch64_feature_detected!`).
//! - The `ANDA_SIMD` environment variable overrides the choice:
//!   `auto` (default), `avx2`, `neon` or `scalar`. Requesting a leg the
//!   host cannot run falls back to `scalar` with a warning — it never
//!   silently runs the wrong instructions. The variable is read once;
//!   set it before the first kernel call.
//!
//! The scalar leg is not a degraded mode: it is the *oracle*. Every
//! vector kernel is required to produce `f32::to_bits`-identical results
//! to its scalar twin on every input (the property suites enforce this),
//! because bit-exact decode under every KV policy is the invariant the
//! serving stack's copy-on-write sharing and batched-vs-sequential
//! equality are built on.

use std::sync::OnceLock;

/// One dispatchable kernel implementation family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLeg {
    /// Portable scalar Rust — the bit-exactness oracle, always available.
    Scalar,
    /// 256-bit AVX2 integer/float vectors (x86-64).
    Avx2,
    /// 128-bit NEON vectors (aarch64).
    Neon,
}

impl SimdLeg {
    /// The name used by `ANDA_SIMD` and printed by benches/CI logs.
    pub fn name(self) -> &'static str {
        match self {
            SimdLeg::Scalar => "scalar",
            SimdLeg::Avx2 => "avx2",
            SimdLeg::Neon => "neon",
        }
    }

    /// `true` when the current host can execute this leg.
    pub fn is_available(self) -> bool {
        match self {
            SimdLeg::Scalar => true,
            SimdLeg::Avx2 => avx2_available(),
            SimdLeg::Neon => neon_available(),
        }
    }
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn neon_available() -> bool {
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("neon")
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        false
    }
}

/// The fastest leg the host supports (what `ANDA_SIMD=auto` picks).
pub fn best_available_leg() -> SimdLeg {
    if avx2_available() {
        SimdLeg::Avx2
    } else if neon_available() {
        SimdLeg::Neon
    } else {
        SimdLeg::Scalar
    }
}

/// Every leg the host can execute, scalar first. Property suites iterate
/// this list so the vector legs are exercised wherever they exist.
pub fn available_legs() -> Vec<SimdLeg> {
    let mut legs = vec![SimdLeg::Scalar];
    if avx2_available() {
        legs.push(SimdLeg::Avx2);
    }
    if neon_available() {
        legs.push(SimdLeg::Neon);
    }
    legs
}

/// The leg every dispatched kernel runs, decided once per process from
/// CPU feature detection and the `ANDA_SIMD` override (see the module
/// docs for the override grammar and fallback rules).
pub fn active_leg() -> SimdLeg {
    static ACTIVE: OnceLock<SimdLeg> = OnceLock::new();
    *ACTIVE.get_or_init(choose_leg)
}

fn choose_leg() -> SimdLeg {
    let requested = std::env::var("ANDA_SIMD").ok();
    match requested.as_deref() {
        None | Some("") | Some("auto") => best_available_leg(),
        Some("scalar") => SimdLeg::Scalar,
        Some("avx2") => {
            if avx2_available() {
                SimdLeg::Avx2
            } else {
                eprintln!("ANDA_SIMD=avx2 requested but AVX2 is unavailable; using scalar");
                SimdLeg::Scalar
            }
        }
        Some("neon") => {
            if neon_available() {
                SimdLeg::Neon
            } else {
                eprintln!("ANDA_SIMD=neon requested but NEON is unavailable; using scalar");
                SimdLeg::Scalar
            }
        }
        Some(other) => {
            eprintln!("unrecognized ANDA_SIMD={other:?} (want auto|avx2|neon|scalar); using auto");
            best_available_leg()
        }
    }
}

/// One-line description of the host's detected vector features, for
/// bench smokes and CI logs (so logs show which kernels actually ran).
pub fn cpu_features() -> String {
    fn yn(b: bool) -> &'static str {
        if b {
            "yes"
        } else {
            "no"
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        format!(
            "x86_64 (avx2={} fma={} f16c={} avx512f={})",
            yn(std::arch::is_x86_feature_detected!("avx2")),
            yn(std::arch::is_x86_feature_detected!("fma")),
            yn(std::arch::is_x86_feature_detected!("f16c")),
            yn(std::arch::is_x86_feature_detected!("avx512f")),
        )
    }
    #[cfg(target_arch = "aarch64")]
    {
        format!(
            "aarch64 (neon={})",
            yn(std::arch::is_aarch64_feature_detected!("neon"))
        )
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = yn;
        "unknown architecture (scalar only)".to_string()
    }
}

/// AVX2 lane primitives shared by this crate's batch conversions and the
/// `anda-format` row codec. All functions here compile with the `avx2`
/// target feature and must only be called after runtime detection.
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use core::arch::x86_64::*;

    /// Converts 8 `f32` lanes to binary16 bit patterns (in the low 16 bits
    /// of each `i32` lane), bit-identical to [`crate::F16::from_f32`] for
    /// every input including subnormals, infinities and NaN payloads.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn f32x8_to_f16_bits(v: __m256) -> __m256i {
        let bits = _mm256_castps_si256(v);
        let zero = _mm256_setzero_si256();
        let sign = _mm256_and_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(0x8000));
        let exp = _mm256_and_si256(_mm256_srli_epi32(bits, 23), _mm256_set1_epi32(0xFF));
        let frac = _mm256_and_si256(bits, _mm256_set1_epi32(0x007F_FFFF));
        // Target binary16 biased exponent: e16 = exp - 127 + 15.
        let e16 = _mm256_sub_epi32(exp, _mm256_set1_epi32(112));

        // Normal path (1 <= e16 <= 30): round the adjacent exponent|fraction
        // word right by 13 with nearest-even, exactly `round_shift_rne`:
        // (joined + 0xFFF + lsb) >> 13. A fraction carry bumps the exponent
        // (possibly to infinity) because the fields are adjacent.
        let joined = _mm256_or_si256(_mm256_slli_epi32(e16, 23), frac);
        let lsb = _mm256_and_si256(_mm256_srli_epi32(joined, 13), _mm256_set1_epi32(1));
        let normal = _mm256_srli_epi32(
            _mm256_add_epi32(joined, _mm256_add_epi32(_mm256_set1_epi32(0xFFF), lsb)),
            13,
        );

        // Subnormal path (-10 <= e16 <= 0): shift the 24-bit significand
        // (hidden bit explicit for normals) right by 14 - e16 with RNE.
        let hidden = _mm256_andnot_si256(
            _mm256_cmpeq_epi32(exp, zero),
            _mm256_set1_epi32(0x0080_0000),
        );
        let sig = _mm256_or_si256(frac, hidden);
        let shift = _mm256_sub_epi32(_mm256_set1_epi32(14), e16); // 14..=24 where selected
        let half_m1 = _mm256_sub_epi32(
            _mm256_sllv_epi32(
                _mm256_set1_epi32(1),
                _mm256_sub_epi32(shift, _mm256_set1_epi32(1)),
            ),
            _mm256_set1_epi32(1),
        );
        let sub_lsb = _mm256_and_si256(_mm256_srlv_epi32(sig, shift), _mm256_set1_epi32(1));
        let subnormal = _mm256_srlv_epi32(
            _mm256_add_epi32(sig, _mm256_add_epi32(half_m1, sub_lsb)),
            shift,
        );

        // Special path (exp == 0xFF): infinity keeps a zero fraction, NaN
        // keeps its payload's top bits and a set quiet bit.
        let frac_nz = _mm256_xor_si256(_mm256_cmpeq_epi32(frac, zero), _mm256_set1_epi32(-1));
        let nan_bits = _mm256_and_si256(
            frac_nz,
            _mm256_or_si256(
                _mm256_set1_epi32(0x0200),
                _mm256_and_si256(_mm256_srli_epi32(frac, 13), _mm256_set1_epi32(0x03FF)),
            ),
        );
        let special = _mm256_or_si256(_mm256_set1_epi32(0x7C00), nan_bits);

        // Select: underflow-to-zero default, then subnormal, normal,
        // overflow-to-infinity, and specials (exp == 0xFF also satisfies
        // e16 > 30, so the special blend must come last).
        let ge1 = _mm256_cmpgt_epi32(e16, zero);
        let ge_m10 = _mm256_cmpgt_epi32(e16, _mm256_set1_epi32(-11));
        let gt30 = _mm256_cmpgt_epi32(e16, _mm256_set1_epi32(30));
        let mut h = zero;
        h = _mm256_blendv_epi8(h, subnormal, _mm256_andnot_si256(ge1, ge_m10));
        h = _mm256_blendv_epi8(h, normal, _mm256_andnot_si256(gt30, ge1));
        h = _mm256_blendv_epi8(h, _mm256_set1_epi32(0x7C00), gt30);
        h = _mm256_blendv_epi8(h, special, _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(0xFF)));
        _mm256_or_si256(h, sign)
    }

    /// Converts 8 binary16 bit patterns (low 16 bits of each `i32` lane)
    /// to `f32` lanes, bit-identical to [`crate::F16::to_f32`].
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn f16_bits_to_f32x8(h: __m256i) -> __m256 {
        let zero = _mm256_setzero_si256();
        let sign = _mm256_slli_epi32(_mm256_and_si256(h, _mm256_set1_epi32(0x8000)), 16);
        let exp = _mm256_and_si256(_mm256_srli_epi32(h, 10), _mm256_set1_epi32(0x1F));
        let frac = _mm256_and_si256(h, _mm256_set1_epi32(0x03FF));
        let frac13 = _mm256_slli_epi32(frac, 13);

        // Normal: rebase the exponent. Special: force exponent 0xFF.
        let normal = _mm256_or_si256(
            _mm256_slli_epi32(_mm256_add_epi32(exp, _mm256_set1_epi32(112)), 23),
            frac13,
        );
        let special = _mm256_or_si256(_mm256_set1_epi32(0x7F80_0000), frac13);
        // Subnormal (or zero): the value is exactly frac · 2^-24, and both
        // the i32→f32 convert and the power-of-two multiply are exact.
        let subnormal = _mm256_castps_si256(_mm256_mul_ps(
            _mm256_cvtepi32_ps(frac),
            _mm256_set1_ps(f32::from_bits((127 - 24) << 23)),
        ));

        let mut out = normal;
        out = _mm256_blendv_epi8(out, subnormal, _mm256_cmpeq_epi32(exp, zero));
        out = _mm256_blendv_epi8(
            out,
            special,
            _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(0x1F)),
        );
        _mm256_castsi256_ps(_mm256_or_si256(out, sign))
    }
}

/// NEON lane primitives, mirroring [`x86`] at 128-bit width.
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use core::arch::aarch64::*;

    /// Converts 4 `f32` lanes to binary16 bit patterns (low 16 bits of
    /// each `u32` lane), bit-identical to [`crate::F16::from_f32`].
    ///
    /// # Safety
    ///
    /// The caller must have verified NEON support at runtime.
    #[target_feature(enable = "neon")]
    pub unsafe fn f32x4_to_f16_bits(v: float32x4_t) -> uint32x4_t {
        let bits = vreinterpretq_u32_f32(v);
        let sign = vandq_u32(vshrq_n_u32(bits, 16), vdupq_n_u32(0x8000));
        let exp = vandq_u32(vshrq_n_u32(bits, 23), vdupq_n_u32(0xFF));
        let frac = vandq_u32(bits, vdupq_n_u32(0x007F_FFFF));
        let e16 = vsubq_s32(vreinterpretq_s32_u32(exp), vdupq_n_s32(112));

        // Normal path: (joined + 0xFFF + lsb) >> 13, nearest-even.
        let joined = vorrq_u32(vreinterpretq_u32_s32(vshlq_n_s32(e16, 23)), frac);
        let lsb = vandq_u32(vshrq_n_u32(joined, 13), vdupq_n_u32(1));
        let normal = vshrq_n_u32(vaddq_u32(joined, vaddq_u32(vdupq_n_u32(0xFFF), lsb)), 13);

        // Subnormal path: RNE right shift of the explicit significand by
        // 14 - e16 (clamped to the lane width for the unselected lanes).
        let hidden = vbicq_u32(vdupq_n_u32(0x0080_0000), vceqzq_u32(exp));
        let sig = vorrq_u32(frac, hidden);
        let shift = vminq_s32(
            vmaxq_s32(vsubq_s32(vdupq_n_s32(14), e16), vdupq_n_s32(0)),
            vdupq_n_s32(31),
        );
        let neg_shift = vnegq_s32(shift);
        let half_m1 = vsubq_u32(
            vshlq_u32(vdupq_n_u32(1), vsubq_s32(shift, vdupq_n_s32(1))),
            vdupq_n_u32(1),
        );
        let sub_lsb = vandq_u32(vshlq_u32(sig, neg_shift), vdupq_n_u32(1));
        let subnormal = vshlq_u32(vaddq_u32(sig, vaddq_u32(half_m1, sub_lsb)), neg_shift);

        // Specials (exp == 0xFF).
        let frac_nz = vmvnq_u32(vceqzq_u32(frac));
        let nan_bits = vandq_u32(
            frac_nz,
            vorrq_u32(
                vdupq_n_u32(0x0200),
                vandq_u32(vshrq_n_u32(frac, 13), vdupq_n_u32(0x03FF)),
            ),
        );
        let special = vorrq_u32(vdupq_n_u32(0x7C00), nan_bits);

        let ge1 = vcgtq_s32(e16, vdupq_n_s32(0));
        let ge_m10 = vcgtq_s32(e16, vdupq_n_s32(-11));
        let gt30 = vcgtq_s32(e16, vdupq_n_s32(30));
        let mut h = vdupq_n_u32(0);
        h = vbslq_u32(vbicq_u32(ge_m10, ge1), subnormal, h);
        h = vbslq_u32(vbicq_u32(ge1, gt30), normal, h);
        h = vbslq_u32(gt30, vdupq_n_u32(0x7C00), h);
        h = vbslq_u32(vceqq_u32(exp, vdupq_n_u32(0xFF)), special, h);
        vorrq_u32(h, sign)
    }

    /// Converts 4 binary16 bit patterns (low 16 bits of each `u32` lane)
    /// to `f32` lanes, bit-identical to [`crate::F16::to_f32`].
    ///
    /// # Safety
    ///
    /// The caller must have verified NEON support at runtime.
    #[target_feature(enable = "neon")]
    pub unsafe fn f16_bits_to_f32x4(h: uint32x4_t) -> float32x4_t {
        let sign = vshlq_n_u32(vandq_u32(h, vdupq_n_u32(0x8000)), 16);
        let exp = vandq_u32(vshrq_n_u32(h, 10), vdupq_n_u32(0x1F));
        let frac = vandq_u32(h, vdupq_n_u32(0x03FF));
        let frac13 = vshlq_n_u32(frac, 13);

        let normal = vorrq_u32(vshlq_n_u32(vaddq_u32(exp, vdupq_n_u32(112)), 23), frac13);
        let special = vorrq_u32(vdupq_n_u32(0x7F80_0000), frac13);
        let subnormal = vreinterpretq_u32_f32(vmulq_f32(
            vcvtq_f32_u32(frac),
            vdupq_n_f32(f32::from_bits((127 - 24) << 23)),
        ));

        let mut out = normal;
        out = vbslq_u32(vceqzq_u32(exp), subnormal, out);
        out = vbslq_u32(vceqq_u32(exp, vdupq_n_u32(0x1F)), special, out);
        vreinterpretq_f32_u32(vorrq_u32(out, sign))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(SimdLeg::Scalar.is_available());
        assert_eq!(available_legs()[0], SimdLeg::Scalar);
    }

    #[test]
    fn active_leg_is_available() {
        assert!(active_leg().is_available());
    }

    #[test]
    fn names_round_trip() {
        for leg in [SimdLeg::Scalar, SimdLeg::Avx2, SimdLeg::Neon] {
            assert!(!leg.name().is_empty());
        }
    }

    #[test]
    fn cpu_features_mentions_the_architecture() {
        let s = cpu_features();
        assert!(!s.is_empty());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_f16_conversion_lanes_match_scalar() {
        if !SimdLeg::Avx2.is_available() {
            return;
        }
        use core::arch::x86_64::*;
        // Every binary16 bit pattern widens identically, and converting
        // the widened value back reproduces the scalar round trip.
        for base in (0..=u16::MAX).step_by(8) {
            let mut h = [0u32; 8];
            for (i, hi) in h.iter_mut().enumerate() {
                *hi = u32::from(base.wrapping_add(i as u16));
            }
            unsafe {
                let hv = _mm256_loadu_si256(h.as_ptr().cast());
                let wide = x86::f16_bits_to_f32x8(hv);
                let mut w = [0f32; 8];
                _mm256_storeu_ps(w.as_mut_ptr(), wide);
                let back = x86::f32x8_to_f16_bits(wide);
                let mut b = [0u32; 8];
                _mm256_storeu_si256(b.as_mut_ptr().cast(), back);
                for i in 0..8 {
                    let bits = h[i] as u16;
                    let scalar_wide = crate::F16::from_bits(bits).to_f32();
                    assert_eq!(w[i].to_bits(), scalar_wide.to_bits(), "widen {bits:#06x}");
                    let scalar_back = crate::F16::from_f32(scalar_wide).to_bits();
                    assert_eq!(b[i] as u16, scalar_back, "narrow {bits:#06x}");
                }
            }
        }
    }
}
