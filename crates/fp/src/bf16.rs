//! The [`BF16`] type: a bit-exact software bfloat16 value.
//!
//! bfloat16 is the top 16 bits of an IEEE 754 binary32 value: 1 sign bit,
//! the full 8-bit binary32 exponent, and 7 fraction bits. Because the
//! exponent field matches `f32` exactly, conversion is a pure mantissa
//! rounding — no subnormal rebiasing is needed — which makes the
//! round-to-nearest-even conversion naturally branchless (one add and a
//! shift, plus a NaN select). That is why `Bf16` is the cheapest rounded
//! KV-row policy in `anda-llm`.

use core::fmt;

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7F80;
const FRAC_MASK: u16 = 0x007F;

/// A bfloat16 value: the high half of an IEEE 754 binary32 encoding.
///
/// Conversions to `f32` are exact (append 16 zero bits); conversions from
/// `f32` round to nearest-even. NaNs are quieted but keep their sign and
/// payload top bits.
///
/// # Example
///
/// ```
/// use anda_fp::BF16;
///
/// let x = BF16::from_f32(1.0 + 1.0 / 256.0);
/// assert_eq!(x.to_f32(), 1.0); // 9th mantissa bit rounds away, ties-to-even
/// assert_eq!(BF16::from_f32(3.0).to_f32(), 3.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct BF16(u16);

impl BF16 {
    /// Positive zero.
    pub const ZERO: BF16 = BF16(0x0000);
    /// One.
    pub const ONE: BF16 = BF16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: BF16 = BF16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: BF16 = BF16(0xFF80);
    /// A quiet NaN.
    pub const NAN: BF16 = BF16(0x7FC0);
    /// Largest finite value (≈ 3.39e38).
    pub const MAX: BF16 = BF16(0x7F7F);
    /// Smallest finite value (≈ -3.39e38).
    pub const MIN: BF16 = BF16(0xFF7F);

    /// Creates a `BF16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        BF16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `BF16` with round-to-nearest-even.
    #[inline]
    pub fn from_f32(value: f32) -> Self {
        BF16(f32_to_bf16_bits(value))
    }

    /// Converts this value to `f32` exactly (bfloat16 ⊂ binary32).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// Returns the sign bit (`true` for negative, including `-0.0`).
    #[inline]
    pub const fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// Returns `true` for NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & FRAC_MASK != 0
    }

    /// Returns `true` for ±∞.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & FRAC_MASK == 0
    }

    /// Returns `true` for any finite value.
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.0 & EXP_MASK != EXP_MASK
    }
}

/// Rounds an `f32` to bfloat16 bits: one branchless nearest-even add for
/// every non-NaN input (subnormals, zeros and infinities all fall out of
/// the same expression), plus a quieting select for NaN.
#[inline]
pub fn f32_to_bf16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    if value.is_nan() {
        // Quiet the NaN, keep sign and payload top bits.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let lsb = (bits >> 16) & 1;
    ((bits + 0x7FFF + lsb) >> 16) as u16
}

/// Rounds an `f32` through bfloat16 with saturation: NaN becomes `+0`,
/// values beyond the finite range (including ±∞) clamp to
/// [`BF16::MAX`]/[`BF16::MIN`] — the same convention as the FP16
/// saturation used by the KV row policies.
#[inline]
pub fn saturate_to_bf16(v: f32) -> BF16 {
    if v.is_nan() {
        return BF16::ZERO;
    }
    let b = BF16::from_f32(v);
    if b.is_infinite() {
        if b.is_sign_negative() {
            BF16::MIN
        } else {
            BF16::MAX
        }
    } else {
        b
    }
}

impl From<f32> for BF16 {
    fn from(value: f32) -> Self {
        BF16::from_f32(value)
    }
}

impl From<BF16> for f32 {
    fn from(value: BF16) -> Self {
        value.to_f32()
    }
}

impl fmt::Debug for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BF16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(BF16::ONE.to_f32(), 1.0);
        assert_eq!(BF16::MAX.to_f32(), f32::from_bits(0x7F7F_0000));
        assert!(BF16::INFINITY.is_infinite());
        assert!(BF16::NAN.is_nan());
    }

    #[test]
    fn every_bf16_bit_pattern_round_trips_through_f32() {
        for bits in 0..=u16::MAX {
            let x = BF16::from_bits(bits);
            let back = BF16::from_f32(x.to_f32());
            if x.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7; even is 1.0.
        assert_eq!(BF16::from_f32(1.0 + 2.0f32.powi(-8)).to_f32(), 1.0);
        // 1 + 3·2^-8 is halfway between 1+2^-7 and 1+2^-6; even is 1+2^-6.
        assert_eq!(
            BF16::from_f32(1.0 + 3.0 * 2.0f32.powi(-8)).to_f32(),
            1.0 + 2.0f32.powi(-6)
        );
        // Just above halfway rounds up.
        assert_eq!(
            BF16::from_f32(1.0 + 2.0f32.powi(-8) + 2.0f32.powi(-20)).to_f32(),
            1.0 + 2.0f32.powi(-7)
        );
    }

    #[test]
    fn overflow_and_signs() {
        assert!(BF16::from_f32(f32::MAX).is_infinite());
        assert!(BF16::from_f32(-f32::MAX).is_sign_negative());
        assert_eq!(BF16::from_f32(-0.0).to_bits(), 0x8000);
        // f32 subnormals round through the same expression.
        assert_eq!(BF16::from_f32(f32::from_bits(1)).to_bits(), 0x0000);
    }

    #[test]
    fn saturation_convention() {
        assert_eq!(saturate_to_bf16(f32::NAN).to_bits(), BF16::ZERO.to_bits());
        assert_eq!(saturate_to_bf16(f32::INFINITY), BF16::MAX);
        assert_eq!(saturate_to_bf16(f32::NEG_INFINITY), BF16::MIN);
        assert_eq!(saturate_to_bf16(f32::MAX), BF16::MAX);
        assert_eq!(saturate_to_bf16(1.5), BF16::from_f32(1.5));
    }
}
