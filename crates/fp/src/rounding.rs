//! Shift-right-with-rounding primitives shared by the format kernels.

/// How to dispose of bits shifted out of a fixed-point value.
///
/// Block-floating-point conversion in the paper truncates ("bits exceeding
/// the specified mantissa length are truncated", §II-B); the FP16 codec uses
/// round-to-nearest-even. Both are exposed so ablations can compare them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RoundingMode {
    /// Drop the shifted-out bits (round toward zero on magnitudes). This is
    /// the mode the Anda paper specifies for BFP conversion.
    #[default]
    Truncate,
    /// Round to nearest, ties to even — IEEE default rounding.
    NearestEven,
}

/// Shifts `value` right by `shift` bits under the given rounding mode.
///
/// `shift >= 64` yields 0 for [`RoundingMode::Truncate`]; for
/// [`RoundingMode::NearestEven`] it also yields 0 (any `u64` magnitude is
/// below half of `2^64`... except exactly-half cases which cannot round up to
/// a representable value anyway at that distance for our ≤16-bit operands).
///
/// # Examples
///
/// ```
/// use anda_fp::{shift_right_round, RoundingMode};
///
/// assert_eq!(shift_right_round(0b1011, 2, RoundingMode::Truncate), 0b10);
/// assert_eq!(shift_right_round(0b1011, 2, RoundingMode::NearestEven), 0b11);
/// assert_eq!(shift_right_round(0b1010, 2, RoundingMode::NearestEven), 0b10);
/// ```
#[inline]
pub fn shift_right_round(value: u64, shift: u32, mode: RoundingMode) -> u64 {
    if shift == 0 {
        return value;
    }
    if shift >= 64 {
        return 0;
    }
    let truncated = value >> shift;
    match mode {
        RoundingMode::Truncate => truncated,
        RoundingMode::NearestEven => {
            let rem = value & ((1u64 << shift) - 1);
            let half = 1u64 << (shift - 1);
            if rem > half || (rem == half && truncated & 1 == 1) {
                truncated + 1
            } else {
                truncated
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shift_is_identity() {
        for mode in [RoundingMode::Truncate, RoundingMode::NearestEven] {
            assert_eq!(shift_right_round(12345, 0, mode), 12345);
        }
    }

    #[test]
    fn truncate_drops_low_bits() {
        assert_eq!(shift_right_round(0xFF, 4, RoundingMode::Truncate), 0xF);
        assert_eq!(shift_right_round(1, 1, RoundingMode::Truncate), 0);
    }

    #[test]
    fn nearest_even_ties() {
        // 0b110 >> 1: remainder 0 tie? value=6 shift=1: rem=0 -> 3.
        assert_eq!(shift_right_round(6, 1, RoundingMode::NearestEven), 3);
        // value=5 shift=1: rem=1=half, truncated=2 even -> stays 2.
        assert_eq!(shift_right_round(5, 1, RoundingMode::NearestEven), 2);
        // value=7 shift=1: rem=1=half, truncated=3 odd -> 4.
        assert_eq!(shift_right_round(7, 1, RoundingMode::NearestEven), 4);
    }

    #[test]
    fn huge_shift_yields_zero() {
        assert_eq!(shift_right_round(u64::MAX, 64, RoundingMode::Truncate), 0);
        assert_eq!(
            shift_right_round(u64::MAX, 80, RoundingMode::NearestEven),
            0
        );
    }

    #[test]
    fn nearest_even_matches_manual_reference() {
        for value in 0u64..256 {
            for shift in 1..10u32 {
                let exact = value as f64 / f64::from(1u32 << shift);
                let expect = {
                    // round-half-even reference via f64 (exact in this range)
                    let floor = exact.floor();
                    let frac = exact - floor;
                    let f = floor as u64;
                    if frac > 0.5 || (frac == 0.5 && f % 2 == 1) {
                        f + 1
                    } else {
                        f
                    }
                };
                assert_eq!(
                    shift_right_round(value, shift, RoundingMode::NearestEven),
                    expect,
                    "value {value} shift {shift}"
                );
            }
        }
    }
}
