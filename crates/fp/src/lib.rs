//! Software IEEE 754 binary16 (half precision) arithmetic and bit utilities.
//!
//! The Anda reproduction cannot rely on hardware half-precision support (and
//! the external `half` crate is outside the allowed dependency set), so this
//! crate implements the FP16 data type from scratch:
//!
//! - [`F16`] — a bit-exact IEEE 754 binary16 value with round-to-nearest-even
//!   conversions from/to `f32`, full subnormal and special-value handling.
//! - [`BF16`] — a bit-exact bfloat16 value (the high half of binary32) with a
//!   branchless round-to-nearest-even conversion.
//! - [`Significand`] — the fixed-point view (hidden bit made explicit) used by
//!   block-floating-point conversion in the `anda-format` crate.
//! - [`rounding`] — shift-right-with-rounding primitives shared by the format
//!   kernels.
//! - [`simd`] — the runtime SIMD dispatch layer ([`SimdLeg`], feature
//!   detection, the `ANDA_SIMD` override) plus the AVX2/NEON f16↔f32 lane
//!   conversion primitives shared by every vector kernel in the workspace.
//! - [`batch`] — dispatched whole-slice f32↔f16/bf16 conversions used by the
//!   KV row policies, each with a scalar twin as its bit-exactness oracle.
//!
//! # Example
//!
//! ```
//! use anda_fp::F16;
//!
//! let x = F16::from_f32(1.5);
//! assert_eq!(x.to_f32(), 1.5);
//! assert_eq!(x.to_bits(), 0x3E00);
//! ```

pub mod batch;
pub mod bf16;
pub mod bits;
pub mod f16;
pub mod rounding;
pub mod simd;

pub use bf16::{f32_to_bf16_bits, saturate_to_bf16, BF16};
pub use f16::{saturate_to_f16, Significand, F16};
pub use rounding::{shift_right_round, RoundingMode};
pub use simd::{active_leg, available_legs, cpu_features, SimdLeg};
