//! Software IEEE 754 binary16 (half precision) arithmetic and bit utilities.
//!
//! The Anda reproduction cannot rely on hardware half-precision support (and
//! the external `half` crate is outside the allowed dependency set), so this
//! crate implements the FP16 data type from scratch:
//!
//! - [`F16`] — a bit-exact IEEE 754 binary16 value with round-to-nearest-even
//!   conversions from/to `f32`, full subnormal and special-value handling.
//! - [`Significand`] — the fixed-point view (hidden bit made explicit) used by
//!   block-floating-point conversion in the `anda-format` crate.
//! - [`rounding`] — shift-right-with-rounding primitives shared by the format
//!   kernels.
//!
//! # Example
//!
//! ```
//! use anda_fp::F16;
//!
//! let x = F16::from_f32(1.5);
//! assert_eq!(x.to_f32(), 1.5);
//! assert_eq!(x.to_bits(), 0x3E00);
//! ```

pub mod bits;
pub mod f16;
pub mod rounding;

pub use f16::{Significand, F16};
pub use rounding::{shift_right_round, RoundingMode};
