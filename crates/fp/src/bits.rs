//! Small bit-manipulation helpers used across the Anda kernels.

/// Extracts bit `index` (0 = LSB) of `value` as 0 or 1.
#[inline]
pub fn bit(value: u64, index: u32) -> u64 {
    (value >> index) & 1
}

/// Packs one bit per element of `bits` (LSB of each entry) into a `u64`,
/// element `i` landing in bit `i`. At most 64 elements.
///
/// This is the "bit-plane" packing primitive of the transposed data layout
/// (paper Fig. 10): bits of equal significance across a 64-element group are
/// stored contiguously in one memory word.
///
/// # Panics
///
/// Panics if `bits.len() > 64`.
pub fn pack_plane(bits: &[u8]) -> u64 {
    assert!(bits.len() <= 64, "a bit plane holds at most 64 lanes");
    let mut word = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        word |= u64::from(b & 1) << i;
    }
    word
}

/// Unpacks a 64-bit plane word into `len` single-bit elements.
///
/// # Panics
///
/// Panics if `len > 64`.
pub fn unpack_plane(word: u64, len: usize) -> Vec<u8> {
    assert!(len <= 64, "a bit plane holds at most 64 lanes");
    (0..len).map(|i| ((word >> i) & 1) as u8).collect()
}

/// Number of bits needed to represent `value` (0 needs 0 bits).
#[inline]
pub fn bit_width(value: u64) -> u32 {
    64 - value.leading_zeros()
}

/// Sign-magnitude to two's-complement: applies `negative` to `magnitude`.
#[inline]
pub fn apply_sign(magnitude: i64, negative: bool) -> i64 {
    if negative {
        -magnitude
    } else {
        magnitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let bits: Vec<u8> = (0..64).map(|i| (i % 3 == 0) as u8).collect();
        let word = pack_plane(&bits);
        assert_eq!(unpack_plane(word, 64), bits);
    }

    #[test]
    fn pack_partial_group() {
        let word = pack_plane(&[1, 0, 1]);
        assert_eq!(word, 0b101);
        assert_eq!(unpack_plane(word, 3), vec![1, 0, 1]);
    }

    #[test]
    fn pack_ignores_upper_bits_of_entries() {
        assert_eq!(pack_plane(&[0xFF, 0x02]), 0b01);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn pack_too_many_lanes_panics() {
        let bits = vec![0u8; 65];
        let _ = pack_plane(&bits);
    }

    #[test]
    fn bit_and_width_helpers() {
        assert_eq!(bit(0b100, 2), 1);
        assert_eq!(bit(0b100, 1), 0);
        assert_eq!(bit_width(0), 0);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(0x400), 11);
    }

    #[test]
    fn apply_sign_flips() {
        assert_eq!(apply_sign(5, false), 5);
        assert_eq!(apply_sign(5, true), -5);
        assert_eq!(apply_sign(0, true), 0);
    }
}
