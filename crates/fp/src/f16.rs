//! The [`F16`] type: a bit-exact software IEEE 754 binary16 value.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// Number of explicit fraction (mantissa-field) bits in binary16.
pub const FRAC_BITS: u32 = 10;
/// Number of significand bits including the hidden bit.
pub const SIG_BITS: u32 = FRAC_BITS + 1;
/// Exponent bias of binary16.
pub const EXP_BIAS: i32 = 15;
/// Maximum biased exponent of a finite binary16 value.
pub const EXP_MAX: u16 = 30;

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const FRAC_MASK: u16 = 0x03FF;
const HIDDEN_BIT: u16 = 0x0400;

/// An IEEE 754 binary16 (half precision) floating-point number.
///
/// `F16` stores the raw 16-bit encoding and converts to/from `f32` with
/// round-to-nearest-even semantics, including subnormals, infinities and NaN.
/// All arithmetic operators are implemented by computing in `f32` and rounding
/// the result back to binary16, which matches the behaviour of a scalar FP16
/// FMA-free datapath.
///
/// # Example
///
/// ```
/// use anda_fp::F16;
///
/// let a = F16::from_f32(0.1);
/// let b = F16::from_f32(0.2);
/// let c = a + b;
/// assert!((c.to_f32() - 0.3).abs() < 1e-3);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value (-65504).
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2^-24).
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates an `F16` from its raw IEEE 754 binary16 bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw IEEE 754 binary16 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `F16` with round-to-nearest-even.
    ///
    /// Values overflowing binary16 become infinities; tiny values round to
    /// subnormals or (signed) zero; NaNs stay NaN.
    pub fn from_f32(value: f32) -> Self {
        F16(f32_to_f16_bits(value))
    }

    /// Converts this value to `f32` exactly (binary16 ⊂ binary32).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Converts an `f64` to `F16` (through `f32`, both steps RNE).
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Converts this value to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Returns the sign bit (`true` for negative, including `-0.0`).
    #[inline]
    pub const fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// Returns `true` if the sign bit is clear.
    #[inline]
    pub const fn is_sign_positive(self) -> bool {
        !self.is_sign_negative()
    }

    /// Returns the biased exponent field (0..=31).
    #[inline]
    pub const fn biased_exponent(self) -> u16 {
        (self.0 & EXP_MASK) >> FRAC_BITS
    }

    /// Returns the raw 10-bit fraction field.
    #[inline]
    pub const fn fraction(self) -> u16 {
        self.0 & FRAC_MASK
    }

    /// Returns `true` for NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & FRAC_MASK != 0
    }

    /// Returns `true` for ±∞.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & FRAC_MASK == 0
    }

    /// Returns `true` for any finite value (normal, subnormal or zero).
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.0 & EXP_MASK != EXP_MASK
    }

    /// Returns `true` for subnormal values (biased exponent 0, fraction ≠ 0).
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        self.0 & EXP_MASK == 0 && self.0 & FRAC_MASK != 0
    }

    /// Returns `true` for ±0.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 & !SIGN_MASK == 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub const fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// Decomposes a finite value into its [`Significand`] fixed-point view.
    ///
    /// The hidden bit is made explicit: normals yield an 11-bit significand
    /// `1024 | fraction` with their biased exponent, subnormals (and zero)
    /// yield `fraction` with an *effective* biased exponent of 1, so that
    /// every finite value satisfies
    /// `value = (-1)^sign · sig · 2^(exp_eff - 25)`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is NaN or infinite; block floating point has no
    /// representation for specials and `anda-format` rejects them upstream.
    pub fn significand(self) -> Significand {
        assert!(
            self.is_finite(),
            "cannot decompose a non-finite F16 ({self:?}) into a significand"
        );
        let e = self.biased_exponent();
        let (sig, exp_eff) = if e == 0 {
            (self.fraction(), 1)
        } else {
            (HIDDEN_BIT | self.fraction(), e)
        };
        Significand {
            negative: self.is_sign_negative(),
            magnitude: sig,
            biased_exp: exp_eff,
        }
    }

    /// Reconstructs an `F16` from a significand view produced by
    /// [`F16::significand`]. Lossless for all finite values.
    pub fn from_significand(sig: Significand) -> Self {
        let value = sig.to_f32();
        Self::from_f32(value)
    }

    /// IEEE 754 `totalOrder`-style comparison usable for sorting.
    ///
    /// Orders `-NaN < -∞ < … < -0 < +0 < … < +∞ < +NaN`.
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        let key = |b: u16| -> i32 {
            let v = i32::from(b);
            if b & SIGN_MASK != 0 {
                !v & 0xFFFF
            } else {
                v | 0x1_0000
            }
        };
        key(self.0).cmp(&key(other.0))
    }
}

/// Fixed-point decomposition of a finite [`F16`]: explicit-hidden-bit
/// significand plus effective biased exponent.
///
/// Satisfies `value = (-1)^negative · magnitude · 2^(biased_exp - 25)` where
/// `magnitude` occupies at most 11 bits. This is the representation that
/// block-floating-point alignment operates on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Significand {
    /// Sign: `true` when the value is negative.
    pub negative: bool,
    /// 11-bit magnitude with the hidden bit explicit (0..=2047).
    pub magnitude: u16,
    /// Effective biased exponent (1..=30); subnormals report 1.
    pub biased_exp: u16,
}

impl Significand {
    /// The power-of-two weight of the least-significant magnitude bit:
    /// `2^(biased_exp - 25)`.
    pub fn ulp(&self) -> f32 {
        exp2i(i32::from(self.biased_exp) - 25)
    }

    /// Reconstructs the exact `f32` value of this decomposition.
    pub fn to_f32(&self) -> f32 {
        let mag = f32::from(self.magnitude) * self.ulp();
        if self.negative {
            -mag
        } else {
            mag
        }
    }
}

/// Computes `2^e` for small integer `e` without `powi` (exact for the binary16
/// exponent range).
#[inline]
pub fn exp2i(e: i32) -> f32 {
    debug_assert!((-126..=127).contains(&e));
    f32::from_bits(((e + 127) as u32) << 23)
}

/// Rounds an `f32` to FP16, clamping overflow to ±65504 (finite) and mapping
/// NaN to `+0` — the saturation convention shared by the block-floating-point
/// compressors in `anda-format` and the rounded KV row policies in `anda-llm`.
pub fn saturate_to_f16(v: f32) -> F16 {
    if v.is_nan() {
        return F16::ZERO;
    }
    let clamped = v.clamp(-65504.0, 65504.0);
    let h = F16::from_f32(clamped);
    if h.is_infinite() {
        // RNE can still round 65504 < |v| ≤ 65504+ε to ∞; force the max.
        if h.is_sign_negative() {
            F16::MIN
        } else {
            F16::MAX
        }
    } else {
        h
    }
}

fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN. Preserve a NaN payload bit so NaN stays NaN.
        return if frac == 0 {
            sign | EXP_MASK
        } else {
            sign | EXP_MASK | 0x0200 | ((frac >> 13) as u16 & FRAC_MASK)
        };
    }

    // Unbiased exponent of the f32 value.
    let unbiased = exp - 127;
    // Target biased exponent in binary16.
    let e16 = unbiased + EXP_BIAS;

    if e16 >= 31 {
        // Overflow to infinity.
        return sign | EXP_MASK;
    }

    if e16 <= 0 {
        // Subnormal or zero in binary16.
        if e16 < -10 {
            // Rounds to zero even with RNE (magnitude < 2^-25, or exactly
            // 2^-25 which ties to even zero).
            return sign;
        }
        // Build the 24-bit significand (hidden bit explicit) and shift it so
        // that bit 0 has weight 2^-24.
        let sig = if exp == 0 { frac } else { frac | 0x0080_0000 };
        let shift = (14 - e16) as u32; // 14..=24
        let rounded = round_shift_rne(u64::from(sig), shift);
        return sign | (rounded as u16);
    }

    // Normal case: round 23-bit fraction to 10 bits with RNE; a fraction
    // carry-out bumps the exponent (possibly to infinity) correctly because
    // the exponent and fraction fields are adjacent.
    let base = (u32::from(sign) << 16) as u64;
    let joined = ((e16 as u64) << 23) | u64::from(frac);
    let rounded = round_shift_rne(joined, 13);
    (base >> 16) as u16 | (rounded as u16)
}

fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & SIGN_MASK) << 16;
    let exp = (bits & EXP_MASK) >> FRAC_BITS;
    let frac = u32::from(bits & FRAC_MASK);

    if exp == 0x1F {
        // Inf / NaN.
        return f32::from_bits(sign | 0x7F80_0000 | (frac << 13));
    }
    if exp == 0 {
        if frac == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: value = frac · 2^-24. Normalize into an f32 normal whose
        // unbiased exponent is the position of frac's MSB minus 24.
        let msb = 31 - frac.leading_zeros(); // 0..=9
        let e32 = 103 + msb; // (msb - 24) + 127
        let mant = ((frac << (10 - msb)) & 0x03FF) << 13;
        return f32::from_bits(sign | (e32 << 23) | mant);
    }
    let e32 = u32::from(exp) + 127 - 15;
    f32::from_bits(sign | (e32 << 23) | (frac << 13))
}

/// Shifts `value` right by `shift` bits, rounding to nearest-even.
#[inline]
fn round_shift_rne(value: u64, shift: u32) -> u64 {
    if shift == 0 {
        return value;
    }
    if shift >= 64 {
        return 0;
    }
    let truncated = value >> shift;
    let rem = value & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    match rem.cmp(&half) {
        Ordering::Less => truncated,
        Ordering::Greater => truncated + 1,
        Ordering::Equal => truncated + (truncated & 1),
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(value: F16) -> Self {
        value.to_f64()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

macro_rules! impl_f16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

impl_f16_binop!(Add, add, +);
impl_f16_binop!(Sub, sub, -);
impl_f16_binop!(Mul, mul, *);
impl_f16_binop!(Div, div, /);

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
    }

    #[test]
    fn simple_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1.5, 100.0, -0.375, 65504.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn every_f16_bit_pattern_round_trips_through_f32() {
        for bits in 0..=u16::MAX {
            let x = F16::from_bits(bits);
            let back = F16::from_f32(x.to_f32());
            if x.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10; even is 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
        // Just above halfway rounds up.
        assert_eq!(
            F16::from_f32(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20)).to_f32(),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_sign_negative());
        // 65520 is the rounding boundary: ties to even = infinity.
        assert!(F16::from_f32(65520.0).is_infinite());
        assert_eq!(F16::from_f32(65519.0).to_f32(), 65504.0);
    }

    #[test]
    fn underflow_produces_subnormals_then_zero() {
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        assert!(F16::from_f32(tiny).is_subnormal());
        // Half the smallest subnormal ties to even zero.
        assert_eq!(F16::from_f32(tiny / 2.0).to_bits(), 0x0000);
        // Slightly above half rounds to the smallest subnormal.
        assert_eq!(F16::from_f32(tiny * 0.6).to_bits(), 0x0001);
        // Sign is preserved on underflow-to-zero.
        assert_eq!(F16::from_f32(-tiny / 4.0).to_bits(), 0x8000);
    }

    #[test]
    fn specials_are_classified() {
        assert!(F16::NAN.is_nan());
        assert!(!F16::NAN.is_finite());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::INFINITY).is_infinite());
        assert!(F16::ZERO.is_zero() && F16::NEG_ZERO.is_zero());
    }

    #[test]
    fn significand_decomposition_is_exact_for_all_finite_values() {
        for bits in 0..=u16::MAX {
            let x = F16::from_bits(bits);
            if !x.is_finite() {
                continue;
            }
            let s = x.significand();
            assert!(s.magnitude <= 2047);
            assert_eq!(s.to_f32(), x.to_f32(), "bits {bits:#06x}");
            let back = F16::from_significand(s);
            assert_eq!(back.to_f32(), x.to_f32());
        }
    }

    #[test]
    fn significand_of_one() {
        let s = F16::ONE.significand();
        assert_eq!(s.magnitude, 1024);
        assert_eq!(s.biased_exp, 15);
        assert!(!s.negative);
    }

    #[test]
    fn significand_of_subnormal_uses_effective_exponent_one() {
        let s = F16::MIN_POSITIVE_SUBNORMAL.significand();
        assert_eq!(s.magnitude, 1);
        assert_eq!(s.biased_exp, 1);
        assert_eq!(s.to_f32(), 2.0f32.powi(-24));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn significand_of_nan_panics() {
        let _ = F16::NAN.significand();
    }

    #[test]
    fn arithmetic_matches_f32_with_rounding() {
        let a = F16::from_f32(1.0 / 3.0);
        let b = F16::from_f32(2.0 / 3.0);
        let sum = a + b;
        assert_eq!(sum, F16::from_f32(a.to_f32() + b.to_f32()));
        assert_eq!(-F16::ONE, F16::NEG_ONE);
        assert_eq!(F16::ONE * F16::from_f32(2.0), F16::from_f32(2.0));
        assert_eq!(F16::ONE / F16::from_f32(2.0), F16::from_f32(0.5));
        assert_eq!(F16::ONE - F16::ONE, F16::ZERO);
    }

    #[test]
    fn total_cmp_orders_signed_zeros_and_nans() {
        let mut v = [
            F16::NAN,
            F16::INFINITY,
            F16::ONE,
            F16::ZERO,
            F16::NEG_ZERO,
            F16::NEG_ONE,
            F16::NEG_INFINITY,
        ];
        v.sort_by(F16::total_cmp);
        assert_eq!(v[0], F16::NEG_INFINITY);
        assert_eq!(v[1], F16::NEG_ONE);
        assert_eq!(v[2].to_bits(), F16::NEG_ZERO.to_bits());
        assert_eq!(v[3].to_bits(), F16::ZERO.to_bits());
        assert_eq!(v[4], F16::ONE);
        assert_eq!(v[5], F16::INFINITY);
        assert!(v[6].is_nan());
    }

    #[test]
    fn exp2i_is_exact() {
        assert_eq!(exp2i(0), 1.0);
        assert_eq!(exp2i(-24), 2.0f32.powi(-24));
        assert_eq!(exp2i(15), 32768.0);
    }
}
