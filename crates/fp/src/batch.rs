//! Batched FP16/BF16 row conversions with runtime SIMD dispatch.
//!
//! The KV cache's rounded row policies (`Fp16`, `Bf16` in `anda-llm`)
//! convert whole `d_model`-wide rows per cached position, and the Anda
//! row codec stages every group through FP16 — per-element calls into
//! the branchy scalar converters dominate those paths. The slice kernels
//! here process 8 (AVX2) or 4 (NEON) lanes per step using branchless
//! bit manipulation (masked selects instead of per-element branches on
//! subnormals/NaN), and every kernel is `to_bits`-identical to its
//! scalar twin — the twin *is* the oracle, enforced by the property
//! suites on every available [`SimdLeg`].

use crate::bf16::{saturate_to_bf16, BF16};
use crate::f16::{saturate_to_f16, F16};
use crate::simd::{active_leg, SimdLeg};

/// Converts `src` to binary16 with round-to-nearest-even, element-wise
/// identical to [`F16::from_f32`], on the active dispatch leg.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn f32_to_f16_slice(src: &[f32], dst: &mut [F16]) {
    f32_to_f16_slice_with_leg(active_leg(), src, dst);
}

/// [`f32_to_f16_slice`] on an explicit leg (oracle tests and benches).
///
/// # Panics
///
/// Panics if the slice lengths differ or the leg is unavailable on this
/// host.
pub fn f32_to_f16_slice_with_leg(leg: SimdLeg, src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    match leg {
        SimdLeg::Scalar => f32_to_f16_scalar(src, dst),
        #[cfg(target_arch = "x86_64")]
        SimdLeg::Avx2 => unsafe { f32_to_f16_avx2(src, dst) },
        #[cfg(target_arch = "aarch64")]
        SimdLeg::Neon => unsafe { f32_to_f16_neon(src, dst) },
        #[allow(unreachable_patterns)]
        other => panic!("SIMD leg {} unavailable on this host", other.name()),
    }
}

/// The scalar oracle of [`f32_to_f16_slice`].
pub fn f32_to_f16_scalar(src: &[f32], dst: &mut [F16]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = F16::from_f32(s);
    }
}

/// Widens binary16 values to `f32` exactly, element-wise identical to
/// [`F16::to_f32`], on the active dispatch leg.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn f16_to_f32_slice(src: &[F16], dst: &mut [f32]) {
    f16_to_f32_slice_with_leg(active_leg(), src, dst);
}

/// [`f16_to_f32_slice`] on an explicit leg (oracle tests and benches).
///
/// # Panics
///
/// Panics if the slice lengths differ or the leg is unavailable on this
/// host.
pub fn f16_to_f32_slice_with_leg(leg: SimdLeg, src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    match leg {
        SimdLeg::Scalar => f16_to_f32_scalar(src, dst),
        #[cfg(target_arch = "x86_64")]
        SimdLeg::Avx2 => unsafe { f16_to_f32_avx2(src, dst) },
        #[cfg(target_arch = "aarch64")]
        SimdLeg::Neon => unsafe { f16_to_f32_neon(src, dst) },
        #[allow(unreachable_patterns)]
        other => panic!("SIMD leg {} unavailable on this host", other.name()),
    }
}

/// The scalar oracle of [`f16_to_f32_slice`].
pub fn f16_to_f32_scalar(src: &[F16], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Rounds every element through saturating binary16 and widens it back:
/// `dst[i] = saturate_to_f16(src[i]).to_f32()` — the `Fp16` KV row
/// policy's push-path kernel — on the active dispatch leg.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn saturate_f16_widen_slice(src: &[f32], dst: &mut [f32]) {
    saturate_f16_widen_slice_with_leg(active_leg(), src, dst);
}

/// [`saturate_f16_widen_slice`] on an explicit leg.
///
/// # Panics
///
/// Panics if the slice lengths differ or the leg is unavailable on this
/// host.
pub fn saturate_f16_widen_slice_with_leg(leg: SimdLeg, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    match leg {
        SimdLeg::Scalar => saturate_f16_widen_scalar(src, dst),
        #[cfg(target_arch = "x86_64")]
        SimdLeg::Avx2 => unsafe { saturate_f16_widen_avx2(src, dst) },
        #[cfg(target_arch = "aarch64")]
        SimdLeg::Neon => unsafe { saturate_f16_widen_neon(src, dst) },
        #[allow(unreachable_patterns)]
        other => panic!("SIMD leg {} unavailable on this host", other.name()),
    }
}

/// The scalar oracle of [`saturate_f16_widen_slice`].
pub fn saturate_f16_widen_scalar(src: &[f32], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = saturate_to_f16(s).to_f32();
    }
}

/// Rounds every element through saturating bfloat16 and widens it back:
/// `dst[i] = saturate_to_bf16(src[i]).to_f32()` — the `Bf16` KV row
/// policy's push-path kernel — on the active dispatch leg.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn saturate_bf16_widen_slice(src: &[f32], dst: &mut [f32]) {
    saturate_bf16_widen_slice_with_leg(active_leg(), src, dst);
}

/// [`saturate_bf16_widen_slice`] on an explicit leg.
///
/// # Panics
///
/// Panics if the slice lengths differ or the leg is unavailable on this
/// host.
pub fn saturate_bf16_widen_slice_with_leg(leg: SimdLeg, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    match leg {
        SimdLeg::Scalar => saturate_bf16_widen_scalar(src, dst),
        #[cfg(target_arch = "x86_64")]
        SimdLeg::Avx2 => unsafe { saturate_bf16_widen_avx2(src, dst) },
        #[cfg(target_arch = "aarch64")]
        SimdLeg::Neon => unsafe { saturate_bf16_widen_neon(src, dst) },
        #[allow(unreachable_patterns)]
        other => panic!("SIMD leg {} unavailable on this host", other.name()),
    }
}

/// The scalar oracle of [`saturate_bf16_widen_slice`].
pub fn saturate_bf16_widen_scalar(src: &[f32], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = saturate_to_bf16(s).to_f32();
    }
}

/// Converts `src` to bfloat16 with round-to-nearest-even, element-wise
/// identical to [`BF16::from_f32`]. The scalar conversion is already
/// branchless (see [`crate::bf16::f32_to_bf16_bits`]), so this has no
/// vector legs — it exists for API symmetry with [`f32_to_f16_slice`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn f32_to_bf16_slice(src: &[f32], dst: &mut [BF16]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = BF16::from_f32(s);
    }
}

/// Widens bfloat16 values to `f32` exactly (a 16-bit shift per element).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn bf16_to_f32_slice(src: &[BF16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn f32_to_f16_avx2(src: &[f32], dst: &mut [F16]) {
    use core::arch::x86_64::*;
    let chunks = src.len() / 8;
    for c in 0..chunks {
        let v = _mm256_loadu_ps(src.as_ptr().add(c * 8));
        let h = crate::simd::x86::f32x8_to_f16_bits(v);
        let mut lanes = [0u32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), h);
        for (i, &lane) in lanes.iter().enumerate() {
            dst[c * 8 + i] = F16::from_bits(lane as u16);
        }
    }
    f32_to_f16_scalar(&src[chunks * 8..], &mut dst[chunks * 8..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn f16_to_f32_avx2(src: &[F16], dst: &mut [f32]) {
    use core::arch::x86_64::*;
    let chunks = src.len() / 8;
    for c in 0..chunks {
        let mut lanes = [0u32; 8];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u32::from(src[c * 8 + i].to_bits());
        }
        let h = _mm256_loadu_si256(lanes.as_ptr().cast());
        let w = crate::simd::x86::f16_bits_to_f32x8(h);
        _mm256_storeu_ps(dst.as_mut_ptr().add(c * 8), w);
    }
    f16_to_f32_scalar(&src[chunks * 8..], &mut dst[chunks * 8..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn saturate_f16_widen_avx2(src: &[f32], dst: &mut [f32]) {
    use core::arch::x86_64::*;
    let max = _mm256_set1_ps(65504.0);
    let neg_max = _mm256_set1_ps(-65504.0);
    let chunks = src.len() / 8;
    for c in 0..chunks {
        let v = _mm256_loadu_ps(src.as_ptr().add(c * 8));
        // NaN lanes become +0 (the saturation convention); the clamp
        // keeps every remaining lane finite so the f16 conversion can
        // never produce an infinity.
        let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(v, v);
        let clamped = _mm256_andnot_ps(nan, _mm256_max_ps(_mm256_min_ps(v, max), neg_max));
        let h = crate::simd::x86::f32x8_to_f16_bits(clamped);
        let w = crate::simd::x86::f16_bits_to_f32x8(h);
        _mm256_storeu_ps(dst.as_mut_ptr().add(c * 8), w);
    }
    saturate_f16_widen_scalar(&src[chunks * 8..], &mut dst[chunks * 8..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn saturate_bf16_widen_avx2(src: &[f32], dst: &mut [f32]) {
    use core::arch::x86_64::*;
    let chunks = src.len() / 8;
    for c in 0..chunks {
        let v = _mm256_loadu_ps(src.as_ptr().add(c * 8));
        let bits = _mm256_castps_si256(v);
        // Branchless RNE to the upper half-word, then zero the low half:
        // the widened bfloat16 bit pattern in place.
        let lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(1));
        let rounded = _mm256_add_epi32(bits, _mm256_add_epi32(_mm256_set1_epi32(0x7FFF), lsb));
        // -65536 == 0xFFFF_0000: keep the upper half-word.
        let mut res = _mm256_and_si256(rounded, _mm256_set1_epi32(-65536));
        // NaN → +0.
        let nan = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_UNORD_Q>(v, v));
        res = _mm256_andnot_si256(nan, res);
        // Post-round infinities clamp to ±MAX (widened 0x7F7F_0000).
        let exp_mask = _mm256_set1_epi32(0x7F80_0000u32 as i32);
        let inf = _mm256_cmpeq_epi32(_mm256_and_si256(res, exp_mask), exp_mask);
        let sat = _mm256_or_si256(
            _mm256_and_si256(res, _mm256_set1_epi32(i32::MIN)),
            _mm256_set1_epi32(0x7F7F_0000),
        );
        res = _mm256_blendv_epi8(res, sat, inf);
        _mm256_storeu_ps(dst.as_mut_ptr().add(c * 8), _mm256_castsi256_ps(res));
    }
    saturate_bf16_widen_scalar(&src[chunks * 8..], &mut dst[chunks * 8..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn f32_to_f16_neon(src: &[f32], dst: &mut [F16]) {
    use core::arch::aarch64::*;
    let chunks = src.len() / 4;
    for c in 0..chunks {
        let v = vld1q_f32(src.as_ptr().add(c * 4));
        let h = crate::simd::neon::f32x4_to_f16_bits(v);
        let mut lanes = [0u32; 4];
        vst1q_u32(lanes.as_mut_ptr(), h);
        for (i, &lane) in lanes.iter().enumerate() {
            dst[c * 4 + i] = F16::from_bits(lane as u16);
        }
    }
    f32_to_f16_scalar(&src[chunks * 4..], &mut dst[chunks * 4..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn f16_to_f32_neon(src: &[F16], dst: &mut [f32]) {
    use core::arch::aarch64::*;
    let chunks = src.len() / 4;
    for c in 0..chunks {
        let mut lanes = [0u32; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u32::from(src[c * 4 + i].to_bits());
        }
        let h = vld1q_u32(lanes.as_ptr());
        let w = crate::simd::neon::f16_bits_to_f32x4(h);
        vst1q_f32(dst.as_mut_ptr().add(c * 4), w);
    }
    f16_to_f32_scalar(&src[chunks * 4..], &mut dst[chunks * 4..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn saturate_f16_widen_neon(src: &[f32], dst: &mut [f32]) {
    use core::arch::aarch64::*;
    let max = vdupq_n_f32(65504.0);
    let neg_max = vdupq_n_f32(-65504.0);
    let chunks = src.len() / 4;
    for c in 0..chunks {
        let v = vld1q_f32(src.as_ptr().add(c * 4));
        let nan = vmvnq_u32(vceqq_f32(v, v));
        let clamped = vreinterpretq_f32_u32(vbicq_u32(
            vreinterpretq_u32_f32(vmaxq_f32(vminq_f32(v, max), neg_max)),
            nan,
        ));
        let h = crate::simd::neon::f32x4_to_f16_bits(clamped);
        let w = crate::simd::neon::f16_bits_to_f32x4(h);
        vst1q_f32(dst.as_mut_ptr().add(c * 4), w);
    }
    saturate_f16_widen_scalar(&src[chunks * 4..], &mut dst[chunks * 4..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn saturate_bf16_widen_neon(src: &[f32], dst: &mut [f32]) {
    use core::arch::aarch64::*;
    let chunks = src.len() / 4;
    for c in 0..chunks {
        let v = vld1q_f32(src.as_ptr().add(c * 4));
        let bits = vreinterpretq_u32_f32(v);
        let lsb = vandq_u32(vshrq_n_u32(bits, 16), vdupq_n_u32(1));
        let rounded = vaddq_u32(bits, vaddq_u32(vdupq_n_u32(0x7FFF), lsb));
        let mut res = vandq_u32(rounded, vdupq_n_u32(0xFFFF_0000));
        let nan = vmvnq_u32(vceqq_f32(v, v));
        res = vbicq_u32(res, nan);
        let exp_mask = vdupq_n_u32(0x7F80_0000);
        let inf = vceqq_u32(vandq_u32(res, exp_mask), exp_mask);
        let sat = vorrq_u32(
            vandq_u32(res, vdupq_n_u32(0x8000_0000)),
            vdupq_n_u32(0x7F7F_0000),
        );
        res = vbslq_u32(inf, sat, res);
        vst1q_f32(dst.as_mut_ptr().add(c * 4), vreinterpretq_f32_u32(res));
    }
    saturate_bf16_widen_scalar(&src[chunks * 4..], &mut dst[chunks * 4..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::available_legs;

    fn adversarial_values() -> Vec<f32> {
        let mut v: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.5,
            65504.0,
            -65504.0,
            65520.0,
            1e-8,
            -2.0f32.powi(-25),
            2.0f32.powi(-24),
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
        ];
        // Deterministic pseudo-random bit patterns (all classes).
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..300 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v.push(f32::from_bits(state as u32));
        }
        v
    }

    #[test]
    fn all_legs_match_scalar_on_adversarial_lengths() {
        let vals = adversarial_values();
        for leg in available_legs() {
            // Lengths below one vector width, exactly one, and ragged tails.
            for len in [0usize, 1, 3, 4, 7, 8, 9, 16, 31, 300] {
                let src = &vals[..len.min(vals.len())];
                let mut a = vec![0.0f32; src.len()];
                let mut b = vec![0.0f32; src.len()];
                saturate_f16_widen_scalar(src, &mut a);
                saturate_f16_widen_slice_with_leg(leg, src, &mut b);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "f16 widen leg {}", leg.name());
                }
                saturate_bf16_widen_scalar(src, &mut a);
                saturate_bf16_widen_slice_with_leg(leg, src, &mut b);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bf16 widen leg {}", leg.name());
                }

                let mut ha = vec![F16::ZERO; src.len()];
                let mut hb = vec![F16::ZERO; src.len()];
                f32_to_f16_scalar(src, &mut ha);
                f32_to_f16_slice_with_leg(leg, src, &mut hb);
                for (x, y) in ha.iter().zip(&hb) {
                    if x.is_nan() {
                        assert!(y.is_nan());
                    } else {
                        assert_eq!(x.to_bits(), y.to_bits(), "narrow leg {}", leg.name());
                    }
                }
                f16_to_f32_scalar(&ha, &mut a);
                f16_to_f32_slice_with_leg(leg, &ha, &mut b);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "widen leg {}", leg.name());
                }
            }
        }
    }

    #[test]
    fn dispatched_entry_points_run() {
        let src = [1.0f32, -2.5, f32::NAN, 1e9];
        let mut out = [0.0f32; 4];
        saturate_f16_widen_slice(&src, &mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[2], 0.0);
        saturate_bf16_widen_slice(&src, &mut out);
        assert_eq!(out[1], -2.5);
        let mut h = [F16::ZERO; 4];
        f32_to_f16_slice(&src, &mut h);
        let mut back = [0.0f32; 4];
        f16_to_f32_slice(&h, &mut back);
        assert_eq!(back[0], 1.0);
        let mut bh = [BF16::ZERO; 4];
        f32_to_bf16_slice(&src, &mut bh);
        let mut bb = [0.0f32; 4];
        bf16_to_f32_slice(&bh, &mut bb);
        assert_eq!(bb[1], -2.5);
    }
}
