//! FP-INT GeMM operators (paper Fig. 8).
//!
//! All operators compute `x(m×k) · W(k×n)` where `W` is an
//! [`IntWeightMatrix`]. They differ in how the FP activations are treated:
//!
//! - [`gemm_reference`] — exact `f32` activations against dequantized
//!   weights: the accuracy ceiling of the W4A16 model (Omniquant baseline).
//! - [`gemm_f16`] — activations rounded to FP16 element-wise, then `f32`
//!   math: the GPU FP-FP path of Fig. 8(a).
//! - [`gemm_anda`] — the Anda path of Fig. 8(d): activations converted to
//!   64-lane Anda groups along k, integer group dots (bit-serial schedule),
//!   rescale by shared exponent × weight scale, FP32 accumulation across
//!   groups.
//! - [`gemm_fake_quant`] — activations passed through any codec
//!   (quantize→dequantize), then `f32` math; numerically equivalent to the
//!   integer path for the Anda codec and used by the accuracy sweeps.

use anda_format::anda::AndaConfig;
use anda_format::dot::{dot_group_int_flat_with_leg, rescale_int_dot};
use anda_format::rowcodec::{encode_row_into, groups_per_row, plane_words_per_row};
use anda_tensor::Matrix;
use rayon_lite::ThreadPool;

use crate::codec::ActivationCodec;
use crate::weights::IntWeightMatrix;

/// Below this many output-element group-dots the Anda GeMM runs serially
/// even when the global pool has threads. The bit-serial dot is far more
/// expensive per element than an FP mul-add, so the bar is much lower
/// than the dense-matmul threshold in `anda-tensor`.
const ANDA_PAR_MIN_WORK: usize = 16 * 1024;

/// Reusable buffers for the FP-INT GeMM operators.
///
/// One scratch serves any sequence of GeMM calls of any shape: buffers are
/// resized (allocation reused) per call. A per-token transformer forward
/// pass holds one scratch and stops reallocating per layer.
#[derive(Clone, Debug, Default)]
pub struct GemmScratch {
    /// Codec-processed (or FP16-rounded) activations.
    act: Matrix,
    /// Dequantized weight panel.
    dequant: Matrix,
}

impl GemmScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Exact-activation reference GeMM (the W4A16 accuracy ceiling).
///
/// # Panics
///
/// Panics if `x.cols() != w.k()`.
pub fn gemm_reference(x: &Matrix, w: &IntWeightMatrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), w.n());
    gemm_reference_into(x, w, &mut GemmScratch::new(), &mut out);
    out
}

/// [`gemm_reference`] writing into a preallocated output via `scratch`.
///
/// # Panics
///
/// Panics if `x.cols() != w.k()` or `out` is not `x.rows() × w.n()`.
pub fn gemm_reference_into(
    x: &Matrix,
    w: &IntWeightMatrix,
    scratch: &mut GemmScratch,
    out: &mut Matrix,
) {
    assert_eq!(x.cols(), w.k(), "gemm shape mismatch");
    w.dequantize_into(&mut scratch.dequant);
    x.matmul_into(&scratch.dequant, out);
}

/// FP16-activation GeMM: the GPU FP-FP path.
pub fn gemm_f16(x: &Matrix, w: &IntWeightMatrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), w.n());
    gemm_f16_into(x, w, &mut GemmScratch::new(), &mut out);
    out
}

/// [`gemm_f16`] writing into a preallocated output via `scratch`. The FP16
/// path is the fake-quant path with the FP16 codec — one definition of the
/// element-wise rounding lives in [`ActivationCodec`].
pub fn gemm_f16_into(x: &Matrix, w: &IntWeightMatrix, scratch: &mut GemmScratch, out: &mut Matrix) {
    gemm_fake_quant_into(x, w, &ActivationCodec::Fp16, scratch, out);
}

/// Fake-quantized GeMM: activations pass through `codec`, then `f32` math.
pub fn gemm_fake_quant(x: &Matrix, w: &IntWeightMatrix, codec: &ActivationCodec) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), w.n());
    gemm_fake_quant_into(x, w, codec, &mut GemmScratch::new(), &mut out);
    out
}

/// [`gemm_fake_quant`] writing into a preallocated output via `scratch`.
pub fn gemm_fake_quant_into(
    x: &Matrix,
    w: &IntWeightMatrix,
    codec: &ActivationCodec,
    scratch: &mut GemmScratch,
    out: &mut Matrix,
) {
    assert_eq!(x.cols(), w.k(), "gemm shape mismatch");
    codec.apply_matrix_into(x, &mut scratch.act);
    w.dequantize_into(&mut scratch.dequant);
    scratch.act.matmul_into(&scratch.dequant, out);
}

/// The Anda integer GeMM: bit-serial group dot products with FP32
/// cross-group accumulation, exactly as the APU array executes it.
///
/// Requirements checked at runtime:
/// - `x.cols() == w.k()`
/// - the weight group size is a multiple of the 64-lane activation group
///   (so one weight scale covers each Anda group), unless a group is the
///   trailing remainder.
///
/// # Panics
///
/// Panics when the shape or group-compatibility requirements are violated.
pub fn gemm_anda(x: &Matrix, w: &IntWeightMatrix, mantissa_bits: u32) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), w.n());
    gemm_anda_into(x, w, mantissa_bits, &mut out);
    out
}

/// [`gemm_anda`] writing into a preallocated output.
///
/// Large GeMMs are sharded by output rows across the global
/// [`rayon_lite`] pool (sized by `ANDA_THREADS`); each thread converts
/// and accumulates its own rows with private buffers. Because every
/// output element is produced by the identical per-row group-dot walk,
/// results are bit-identical to the serial path at every thread count.
///
/// # Panics
///
/// Panics on shape/group-compatibility violations (see [`gemm_anda`]) or
/// if `out` is not `x.rows() × w.n()`.
pub fn gemm_anda_into(x: &Matrix, w: &IntWeightMatrix, mantissa_bits: u32, out: &mut Matrix) {
    let pool = rayon_lite::global();
    let work = x.rows() * x.cols() * w.n();
    if pool.threads() > 1 && x.rows() > 1 && work >= ANDA_PAR_MIN_WORK {
        gemm_anda_into_pool(x, w, mantissa_bits, out, pool);
    } else {
        anda_check_shapes(x, w, out);
        let cfg = AndaConfig::new(ANDA_LANES, mantissa_bits).expect("valid mantissa bits");
        anda_rows(x, w, &cfg, out.as_mut_slice(), 0);
    }
}

/// [`gemm_anda_into`] on an explicit pool, always sharding the output
/// rows across its threads (used by the cross-thread-count bit-exactness
/// tests; production code calls [`gemm_anda_into`], which picks the
/// global pool).
///
/// # Panics
///
/// Same conditions as [`gemm_anda_into`].
pub fn gemm_anda_into_pool(
    x: &Matrix,
    w: &IntWeightMatrix,
    mantissa_bits: u32,
    out: &mut Matrix,
    pool: &ThreadPool,
) {
    anda_check_shapes(x, w, out);
    let cfg = AndaConfig::new(ANDA_LANES, mantissa_bits).expect("valid mantissa bits");
    let n = w.n();
    if n == 0 {
        return;
    }
    let rows_per_chunk = x.rows().div_ceil(pool.threads()).max(1);
    pool.par_chunks_mut(out.as_mut_slice(), rows_per_chunk * n, |idx, chunk| {
        anda_rows(x, w, &cfg, chunk, idx * rows_per_chunk);
    });
}

/// The 64-lane Anda activation group width.
const ANDA_LANES: usize = 64;

fn anda_check_shapes(x: &Matrix, w: &IntWeightMatrix, out: &Matrix) {
    assert_eq!(x.cols(), w.k(), "gemm shape mismatch");
    assert_eq!(out.shape(), (x.rows(), w.n()), "gemm output shape mismatch");
    assert!(
        w.config().group_size.is_multiple_of(ANDA_LANES),
        "weight group size {} must be a multiple of the {ANDA_LANES}-lane Anda group",
        w.config().group_size
    );
}

/// The Anda GeMM kernel over output rows `[row0, row0 + rows_here)`,
/// where `rows_here = out_rows.len() / w.n()`. Each activation row is
/// encoded once into flat, reused sign/exponent/plane buffers through
/// the SIMD-dispatched row codec (no per-group allocation), and every
/// group dot runs through the allocation-free dispatched integer kernel.
/// Buffers are private to the call, so concurrent shards never share
/// state; the per-element accumulation (FP32 across groups, groups in
/// ascending k order) is independent of the sharding, which keeps the
/// parallel result bit-identical to the serial one. The flat codec is
/// pinned bit-identical to the owning `align_group`/`BitPlaneGroup`
/// construction and the integer dot is exact, so this kernel reproduces
/// the bit-serial reference path bit for bit (the unit test below pins
/// it).
fn anda_rows(x: &Matrix, w: &IntWeightMatrix, cfg: &AndaConfig, out_rows: &mut [f32], row0: usize) {
    let lanes = ANDA_LANES;
    let k = x.cols();
    let n = w.n();
    if n == 0 {
        return;
    }
    let rows_here = out_rows.len() / n;
    if k == 0 {
        // Empty-k product: every dot is empty (and the row codec rejects
        // empty rows).
        out_rows.fill(0.0);
        return;
    }

    // Flat encode buffers hoisted out of the row loop: one allocation set
    // serves the whole shard.
    let m = cfg.mantissa_bits() as usize;
    let g = groups_per_row(k, *cfg);
    let mut signs = vec![0u64; g];
    let mut exps = vec![0u16; g];
    let mut planes = vec![0u64; plane_words_per_row(k, *cfg)];
    let mut weights: Vec<i8> = Vec::with_capacity(lanes);
    let leg = anda_fp::simd::active_leg();

    for li in 0..rows_here {
        let row = row0 + li;
        encode_row_into(x.row(row), *cfg, &mut signs, &mut exps, &mut planes);
        let out_row = &mut out_rows[li * n..(li + 1) * n];
        for (col, out_val) in out_row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for gi in 0..g {
                let k_start = gi * lanes;
                let k_end = (k_start + lanes).min(k);
                weights.clear();
                weights.extend((k_start..k_end).map(|r| w.value(r, col)));
                let int_dot = dot_group_int_flat_with_leg(
                    leg,
                    signs[gi],
                    &planes[gi * m..(gi + 1) * m],
                    &weights,
                );
                let scale = w.scale_at(k_start, col);
                acc += rescale_int_dot(int_dot, exps[gi], cfg.mantissa_bits(), scale);
            }
            *out_val = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightQuantConfig;
    use anda_tensor::Rng;

    fn random_case(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, IntWeightMatrix) {
        let mut rng = Rng::new(seed);
        let mut x = Matrix::zeros(m, k);
        rng.fill_normal(x.as_mut_slice(), 1.0);
        let mut w = Matrix::zeros(k, n);
        rng.fill_normal(w.as_mut_slice(), 0.05);
        let wq = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 128));
        (x, wq)
    }

    #[test]
    fn anda_gemm_matches_fake_quant_path() {
        let (x, w) = random_case(3, 256, 5, 10);
        for m_bits in [4u32, 7, 11, 16] {
            let codec = ActivationCodec::anda(m_bits);
            let fake = gemm_fake_quant(&x, &w, &codec);
            let int = gemm_anda(&x, &w, m_bits);
            for i in 0..3 {
                for j in 0..5 {
                    let (a, b) = (fake[(i, j)], int[(i, j)]);
                    assert!(
                        (a - b).abs() <= a.abs().max(1.0) * 2e-5,
                        "m={m_bits} ({i},{j}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_mantissa_approaches_f16_reference() {
        let (x, w) = random_case(2, 128, 4, 11);
        let f16_ref = gemm_f16(&x, &w);
        let anda = gemm_anda(&x, &w, 16);
        for i in 0..2 {
            for j in 0..4 {
                let (a, b) = (f16_ref[(i, j)], anda[(i, j)]);
                assert!(
                    (a - b).abs() <= a.abs().max(1.0) * 1e-2,
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn narrow_mantissa_increases_output_error() {
        let (x, w) = random_case(4, 256, 8, 12);
        let reference = gemm_reference(&x, &w);
        let err = |m_bits: u32| {
            let out = gemm_anda(&x, &w, m_bits);
            let mut total = 0.0f64;
            for i in 0..4 {
                for j in 0..8 {
                    total += f64::from((out[(i, j)] - reference[(i, j)]).abs());
                }
            }
            total
        };
        // Aggregate output error at M=3 must dominate M=11 clearly.
        assert!(err(3) > 4.0 * err(11), "{} vs {}", err(3), err(11));
    }

    #[test]
    fn partial_trailing_group_supported() {
        let (x, w) = random_case(2, 96, 3, 13); // 96 = 64 + 32 remainder
        let codec = ActivationCodec::anda(8);
        let fake = gemm_fake_quant(&x, &w, &codec);
        let int = gemm_anda(&x, &w, 8);
        for i in 0..2 {
            for j in 0..3 {
                assert!((fake[(i, j)] - int[(i, j)]).abs() < 1e-3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the 64-lane")]
    fn incompatible_weight_groups_panic() {
        let (x, w) = {
            let mut rng = Rng::new(14);
            let mut x = Matrix::zeros(1, 96);
            rng.fill_normal(x.as_mut_slice(), 1.0);
            let mut wm = Matrix::zeros(96, 2);
            rng.fill_normal(wm.as_mut_slice(), 0.05);
            (
                x,
                IntWeightMatrix::quantize(&wm, WeightQuantConfig::rtn(4, 96)),
            )
        };
        let _ = gemm_anda(&x, &w, 8);
    }

    #[test]
    fn into_variants_are_bit_identical_across_reused_scratch() {
        // One scratch drives GeMMs of different shapes back-to-back, the
        // way a layer loop does; every result must equal the allocating
        // path bit-for-bit.
        let mut scratch = GemmScratch::new();
        let codec = ActivationCodec::anda(8);
        for (shape_seed, (m, k, n)) in
            [(20u64, (3, 256, 5)), (21, (2, 128, 9)), (22, (5, 64, 2))].into_iter()
        {
            let (x, w) = random_case(m, k, n, shape_seed);
            let mut out = Matrix::zeros(m, n);

            gemm_reference_into(&x, &w, &mut scratch, &mut out);
            assert_eq!(out, gemm_reference(&x, &w));

            gemm_f16_into(&x, &w, &mut scratch, &mut out);
            assert_eq!(out, gemm_f16(&x, &w));

            gemm_fake_quant_into(&x, &w, &codec, &mut scratch, &mut out);
            assert_eq!(out, gemm_fake_quant(&x, &w, &codec));
        }
    }

    #[test]
    fn flat_codec_kernel_is_bit_identical_to_bit_serial_reference() {
        // `anda_rows` runs on the flat SIMD-dispatched row codec and the
        // allocation-free integer dot. Pin it bit-for-bit against an
        // inline reference built the original way: saturate to FP16,
        // align each 64-lane group, build owning bit planes, bit-serial
        // dot, identical rescale/accumulation.
        use anda_format::align::align_group;
        use anda_format::bitplane::BitPlaneGroup;
        use anda_format::dot::dot_group_bit_serial;
        use anda_fp::{saturate_to_f16, RoundingMode};

        for (seed, (rows, k, n)) in [
            (30u64, (1, 64, 1)),
            (31, (3, 96, 5)), // partial trailing group
            (32, (2, 256, 7)),
            (33, (4, 129, 3)), // lone-element trailing group
        ] {
            let (x, w) = random_case(rows, k, n, seed);
            for m_bits in [1u32, 4, 8, 11, 16] {
                let fast = gemm_anda(&x, &w, m_bits);

                let mut reference = Matrix::zeros(rows, n);
                for i in 0..rows {
                    let acts: Vec<_> = x.row(i).iter().map(|&v| saturate_to_f16(v)).collect();
                    let groups: Vec<BitPlaneGroup> = acts
                        .chunks(ANDA_LANES)
                        .map(|chunk| {
                            let aligned =
                                align_group(chunk, m_bits, RoundingMode::Truncate).expect("finite");
                            BitPlaneGroup::from_aligned(&aligned)
                        })
                        .collect();
                    for j in 0..n {
                        let mut acc = 0.0f32;
                        for (g, group) in groups.iter().enumerate() {
                            let k_start = g * ANDA_LANES;
                            let k_end = (k_start + group.len()).min(k);
                            let weights: Vec<i8> =
                                (k_start..k_end).map(|r| w.value(r, j)).collect();
                            let (int_dot, _) = dot_group_bit_serial(group, &weights);
                            acc += rescale_int_dot(
                                int_dot,
                                group.shared_exp(),
                                group.mantissa_bits(),
                                w.scale_at(k_start, j),
                            );
                        }
                        reference[(i, j)] = acc;
                    }
                }

                for i in 0..rows {
                    for j in 0..n {
                        assert_eq!(
                            fast[(i, j)].to_bits(),
                            reference[(i, j)].to_bits(),
                            "m={m_bits} ({i},{j}): {} vs {}",
                            fast[(i, j)],
                            reference[(i, j)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn f16_path_differs_from_reference_only_by_rounding() {
        let (x, w) = random_case(2, 128, 2, 15);
        let a = gemm_reference(&x, &w);
        let b = gemm_f16(&x, &w);
        for i in 0..2 {
            for j in 0..2 {
                assert!((a[(i, j)] - b[(i, j)]).abs() < a[(i, j)].abs() * 0.01 + 0.05);
            }
        }
    }
}
