//! Activation codecs: the comparison baselines of Table II.
//!
//! An [`ActivationCodec`] describes how FP activations are represented on
//! their way into an FP-INT GeMM. `apply` performs quantize→dequantize
//! ("fake quantization"), which is numerically what the corresponding
//! hardware datapath computes.

use anda_format::anda::AndaConfig;
use anda_format::bfp::{fake_quantize_f32, fake_quantize_f32_into, saturate_to_f16, BfpConfig};
use anda_tensor::Matrix;

/// Hardware group size shared by all grouped codecs (paper §V-A sets the
/// BFP group size uniformly to 64).
pub const GROUP_SIZE: usize = 64;

/// Mantissa length used by the FIGNA baseline: wide enough to be
/// near-lossless after alignment (Table I lists 14 bits of compute
/// mantissa; 13 preserved magnitude bits + sign matches its BOPs budget).
pub const FIGNA_MANTISSA_BITS: u32 = 13;

/// Mantissa length of the VS-Quant baseline (4-bit per-vector format).
pub const VSQUANT_MANTISSA_BITS: u32 = 4;

/// How activations are encoded on the way into an FP-INT GeMM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivationCodec {
    /// Exact `f32` passthrough: the accuracy ceiling (used to measure the
    /// full-precision model; not a deployable activation path).
    Exact,
    /// FP16 storage and FP16 math — the GPU FP-FP baseline (Fig. 8a/b) and
    /// the Omniquant W4A16 accuracy reference.
    Fp16,
    /// Group-shared exponent with the given mantissa length — the Anda
    /// format (and, at fixed lengths, the FIGNA/VS-Quant baselines).
    Grouped {
        /// Mantissa length in bits (1..=16).
        mantissa_bits: u32,
        /// Shared-exponent group size.
        group_size: usize,
    },
}

impl ActivationCodec {
    /// The Anda codec at mantissa length `m` with the 64-lane hardware group.
    pub fn anda(m: u32) -> Self {
        ActivationCodec::Grouped {
            mantissa_bits: m,
            group_size: GROUP_SIZE,
        }
    }

    /// The FIGNA baseline: wide-mantissa BFP conversion at compute time.
    pub fn figna() -> Self {
        Self::anda(FIGNA_MANTISSA_BITS)
    }

    /// The VS-Quant baseline: aggressive 4-bit mantissa BFP without
    /// retraining.
    pub fn vs_quant() -> Self {
        Self::anda(VSQUANT_MANTISSA_BITS)
    }

    /// Mantissa bits carried through the GeMM datapath, used by the BOPs
    /// model: FP16 counts as 16 (11-bit significand padded to the FP16
    /// datapath; one FP16×INT4 MAC ≈ 64 BOPs per the paper's convention).
    pub fn compute_mantissa_bits(&self) -> u32 {
        match self {
            ActivationCodec::Exact | ActivationCodec::Fp16 => 16,
            ActivationCodec::Grouped { mantissa_bits, .. } => *mantissa_bits,
        }
    }

    /// Storage bits per activation element in memory.
    pub fn storage_bits_per_element(&self) -> f64 {
        match self {
            ActivationCodec::Exact => 32.0,
            ActivationCodec::Fp16 => 16.0,
            ActivationCodec::Grouped {
                mantissa_bits,
                group_size,
            } => f64::from(*mantissa_bits) + 1.0 + 5.0 / *group_size as f64,
        }
    }

    /// Applies the codec to a flat slice (quantize → dequantize).
    pub fn apply(&self, values: &[f32]) -> Vec<f32> {
        match self {
            ActivationCodec::Exact => values.to_vec(),
            ActivationCodec::Fp16 => values
                .iter()
                .map(|&v| saturate_to_f16(v).to_f32())
                .collect(),
            ActivationCodec::Grouped {
                mantissa_bits,
                group_size,
            } => {
                let cfg = BfpConfig::new(*group_size, *mantissa_bits)
                    .expect("codec parameters validated at construction");
                fake_quantize_f32(values, cfg)
            }
        }
    }

    /// [`ActivationCodec::apply`] into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != values.len()`.
    pub fn apply_into(&self, values: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), values.len(), "apply_into length mismatch");
        match self {
            ActivationCodec::Exact => out.copy_from_slice(values),
            ActivationCodec::Fp16 => {
                for (slot, &v) in out.iter_mut().zip(values) {
                    *slot = saturate_to_f16(v).to_f32();
                }
            }
            ActivationCodec::Grouped {
                mantissa_bits,
                group_size,
            } => {
                let cfg = BfpConfig::new(*group_size, *mantissa_bits)
                    .expect("codec parameters validated at construction");
                fake_quantize_f32_into(values, cfg, out);
            }
        }
    }

    /// Applies the codec independently to every row of a matrix (groups
    /// never straddle rows: activation rows are separate dot-product
    /// operands).
    pub fn apply_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        self.apply_matrix_into(x, &mut out);
        out
    }

    /// [`ActivationCodec::apply_matrix`] into a caller-provided matrix,
    /// resizing it to `x`'s shape while reusing its allocation.
    pub fn apply_matrix_into(&self, x: &Matrix, out: &mut Matrix) {
        out.resize(x.rows(), x.cols());
        match self {
            // Elementwise codecs are row-agnostic: one flat pass.
            ActivationCodec::Exact | ActivationCodec::Fp16 => {
                self.apply_into(x.as_slice(), out.as_mut_slice());
            }
            // Grouped codecs quantize per row so shared exponents never
            // straddle activation rows.
            ActivationCodec::Grouped { .. } => {
                for r in 0..x.rows() {
                    self.apply_into(x.row(r), out.row_mut(r));
                }
            }
        }
    }

    /// The equivalent `AndaConfig` when the codec is hardware-realizable
    /// (grouped with ≤ 64 lanes).
    pub fn anda_config(&self) -> Option<AndaConfig> {
        match self {
            ActivationCodec::Grouped {
                mantissa_bits,
                group_size,
            } if *group_size <= 64 => AndaConfig::new(*group_size, *mantissa_bits).ok(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_identity() {
        let vals = [1.234f32, -0.001, 7.7];
        assert_eq!(ActivationCodec::Exact.apply(&vals), vals);
    }

    #[test]
    fn fp16_rounds_elements() {
        let vals = [1.0f32 + 1e-5];
        let out = ActivationCodec::Fp16.apply(&vals);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn grouped_matches_bfp() {
        let vals: Vec<f32> = (0..130).map(|i| (i as f32 - 65.0) * 0.07).collect();
        let codec = ActivationCodec::anda(6);
        let direct = fake_quantize_f32(&vals, BfpConfig::new(64, 6).unwrap());
        assert_eq!(codec.apply(&vals), direct);
    }

    #[test]
    fn baseline_parameters() {
        assert_eq!(ActivationCodec::figna().compute_mantissa_bits(), 13);
        assert_eq!(ActivationCodec::vs_quant().compute_mantissa_bits(), 4);
        assert_eq!(ActivationCodec::Fp16.compute_mantissa_bits(), 16);
    }

    #[test]
    fn storage_bits_ordering() {
        let anda5 = ActivationCodec::anda(5).storage_bits_per_element();
        let figna = ActivationCodec::figna().storage_bits_per_element();
        let fp16 = ActivationCodec::Fp16.storage_bits_per_element();
        assert!(anda5 < figna && figna < fp16);
        assert!((anda5 - (6.0 + 5.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn apply_matrix_rows_are_independent() {
        // A row of big values must not influence another row's exponents.
        let x = Matrix::from_rows(&[&[1000.0; 64], &[0.001; 64]]);
        let codec = ActivationCodec::anda(4);
        let out = codec.apply_matrix(&x);
        // Small row survives because it has its own group.
        assert!((out[(1, 0)] - 0.001).abs() < 1e-4);
    }

    #[test]
    fn anda_config_only_for_hardware_groups() {
        assert!(ActivationCodec::anda(8).anda_config().is_some());
        let big = ActivationCodec::Grouped {
            mantissa_bits: 8,
            group_size: 128,
        };
        assert!(big.anda_config().is_none());
        assert!(ActivationCodec::Fp16.anda_config().is_none());
    }
}
