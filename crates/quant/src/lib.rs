//! Weight-only integer quantization and FP-INT GeMM operators.
//!
//! Weight-only quantized LLMs (W4A16) store weights as low-bit integers with
//! per-group scale factors while activations stay in FP16 (paper §II-A).
//! This crate provides:
//!
//! - [`weights`] — the [`IntWeightMatrix`] container plus round-to-nearest
//!   and clip-search ("omniquant-lite") group-wise quantizers.
//! - [`gemm`] — the FP-INT GeMM operators of Fig. 8: the FP-FP reference
//!   path, the Anda integer path (bit-serial group dots + FP32 cross-group
//!   accumulation), and fake-quantization paths for accuracy sweeps.
//! - [`codec`] — activation codecs implementing the comparison baselines of
//!   Table II: FP16 passthrough, FIGNA-style wide-mantissa BFP, VS-Quant
//!   4-bit BFP, and the Anda format at any mantissa length.
//!
//! The numerical contract tying it together: for any activation matrix the
//! integer Anda GeMM equals (to FP rounding) the f32 GeMM over
//! fake-quantized activations — validated by tests — so accuracy experiments
//! may use the fast fake-quant path while the hardware simulator accounts
//! for the true integer schedule.

pub mod codec;
pub mod gemm;
pub mod weights;

pub use codec::ActivationCodec;
pub use gemm::{
    gemm_anda, gemm_anda_into, gemm_anda_into_pool, gemm_f16, gemm_f16_into, gemm_fake_quant,
    gemm_fake_quant_into, gemm_reference, gemm_reference_into, GemmScratch,
};
pub use weights::{IntWeightMatrix, WeightQuantConfig};
