//! Group-wise weight-only integer quantization.
//!
//! Implements the W4A16g128 scheme the paper uses as its starting point
//! (Omniquant \[66\] in the paper's Table II): weights are quantized to
//! signed 4-bit integers with one scale per group of 128 input channels.
//! The scale search is a small grid over clip ratios minimizing group MSE —
//! a cheap stand-in for Omniquant's learned clipping that serves the same
//! role (a strong PTQ baseline all activation formats start from).

use anda_tensor::Matrix;

/// Configuration for weight quantization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightQuantConfig {
    /// Integer bit width (2..=8). The paper's deployments use 4.
    pub bits: u32,
    /// Group size along the input-channel (k) dimension.
    pub group_size: usize,
    /// Clip ratios searched when fitting each group's scale; `&[1.0]`
    /// degenerates to plain round-to-nearest (RTN).
    pub clip_ratios: &'static [f32],
}

/// Clip grid used by the omniquant-lite search.
pub const CLIP_GRID: &[f32] = &[1.0, 0.95, 0.9, 0.85, 0.8];

impl WeightQuantConfig {
    /// The paper's W4A16g128 configuration with clip search.
    pub fn w4_g128() -> Self {
        WeightQuantConfig {
            bits: 4,
            group_size: 128,
            clip_ratios: CLIP_GRID,
        }
    }

    /// W4 with 64-wide groups: the proportional scaling of W4A16g128 for
    /// the small simulated models (their hidden dims are 16-32x smaller than
    /// the real checkpoints, so a 64-wide group matches the real models'
    /// group-to-width ratio far better than 128 would).
    pub fn w4_sim() -> Self {
        WeightQuantConfig {
            bits: 4,
            group_size: 64,
            clip_ratios: CLIP_GRID,
        }
    }

    /// Plain round-to-nearest at the given bits/group size (no clip search).
    pub fn rtn(bits: u32, group_size: usize) -> Self {
        WeightQuantConfig {
            bits,
            group_size,
            clip_ratios: &[1.0],
        }
    }

    /// Largest representable magnitude: `2^(bits-1) - 1` (symmetric).
    pub fn q_max(&self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }
}

impl Default for WeightQuantConfig {
    fn default() -> Self {
        Self::w4_g128()
    }
}

/// A weight matrix quantized to signed integers with per-(group, column)
/// scales, stored `k × n` (input-major) to match `x(m×k) · W(k×n)` GeMMs.
#[derive(Clone, Debug, PartialEq)]
pub struct IntWeightMatrix {
    k: usize,
    n: usize,
    config: WeightQuantConfig,
    /// Quantized values, row-major `k × n`.
    values: Vec<i8>,
    /// Scales indexed `[group * n + col]`, `group = k_index / group_size`.
    scales: Vec<f32>,
}

impl IntWeightMatrix {
    /// Quantizes an `f32` weight matrix (`k × n`) group-wise.
    ///
    /// Each (group, column) gets a symmetric scale chosen from
    /// `config.clip_ratios` to minimize the group's squared reconstruction
    /// error (omniquant-lite).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or `config` has unsupported bits.
    pub fn quantize(weights: &Matrix, config: WeightQuantConfig) -> Self {
        assert!(
            (2..=8).contains(&config.bits),
            "supported weight bits are 2..=8, got {}",
            config.bits
        );
        assert!(config.group_size > 0, "group size must be positive");
        let (k, n) = weights.shape();
        assert!(k > 0 && n > 0, "cannot quantize an empty weight matrix");

        let n_groups = k.div_ceil(config.group_size);
        let q_max = config.q_max() as f32;
        let mut values = vec![0i8; k * n];
        let mut scales = vec![0.0f32; n_groups * n];

        for col in 0..n {
            for g in 0..n_groups {
                let k_start = g * config.group_size;
                let k_end = (k_start + config.group_size).min(k);

                let max_abs = (k_start..k_end)
                    .map(|r| weights[(r, col)].abs())
                    .fold(0.0f32, f32::max);

                // Degenerate all-zero group.
                if max_abs == 0.0 {
                    scales[g * n + col] = 1.0;
                    continue;
                }

                // Clip-ratio grid search minimizing squared error.
                let mut best = (f32::INFINITY, max_abs / q_max);
                for &ratio in config.clip_ratios {
                    let scale = (max_abs * ratio) / q_max;
                    let mut err = 0.0f32;
                    for r in k_start..k_end {
                        let w = weights[(r, col)];
                        let q = (w / scale).round().clamp(-q_max - 1.0, q_max);
                        let d = w - q * scale;
                        err += d * d;
                    }
                    if err < best.0 {
                        best = (err, scale);
                    }
                }
                let scale = best.1;
                scales[g * n + col] = scale;
                for r in k_start..k_end {
                    let q = (weights[(r, col)] / scale)
                        .round()
                        .clamp(-q_max - 1.0, q_max);
                    values[r * n + col] = q as i8;
                }
            }
        }

        IntWeightMatrix {
            k,
            n,
            config,
            values,
            scales,
        }
    }

    /// Input dimension (rows).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (columns).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The quantization configuration.
    pub fn config(&self) -> &WeightQuantConfig {
        &self.config
    }

    /// Quantized integer at `(row, col)`.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> i8 {
        self.values[row * self.n + col]
    }

    /// Row `r` of quantized integers.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.values[r * self.n..(r + 1) * self.n]
    }

    /// Scale of the group containing `k_index` for `col`.
    #[inline]
    pub fn scale_at(&self, k_index: usize, col: usize) -> f32 {
        self.scales[(k_index / self.config.group_size) * self.n + col]
    }

    /// Number of k-direction groups.
    pub fn k_groups(&self) -> usize {
        self.k.div_ceil(self.config.group_size)
    }

    /// Dequantizes back to a dense `f32` matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut m = Matrix::zeros(self.k, self.n);
        self.dequantize_into(&mut m);
        m
    }

    /// Dequantizes into a caller-provided matrix, resizing it to `k × n`
    /// while reusing its allocation. Hot GeMM paths use this to avoid a
    /// fresh `k × n` buffer per call.
    pub fn dequantize_into(&self, out: &mut Matrix) {
        out.resize(self.k, self.n);
        let group_size = self.config.group_size;
        for r in 0..self.k {
            let scales = &self.scales[(r / group_size) * self.n..(r / group_size + 1) * self.n];
            let values = &self.values[r * self.n..(r + 1) * self.n];
            for ((slot, &v), &s) in out.row_mut(r).iter_mut().zip(values).zip(scales) {
                *slot = f32::from(v) * s;
            }
        }
    }

    /// Storage footprint in bits: values at `bits` each plus FP16 scales.
    pub fn storage_bits(&self) -> usize {
        self.values.len() * self.config.bits as usize + self.scales.len() * 16
    }

    /// Extracts a column of quantized weights (one output neuron).
    pub fn col_values(&self, col: usize) -> Vec<i8> {
        (0..self.k).map(|r| self.value(r, col)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anda_tensor::Rng;

    fn random_weights(k: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let mut m = Matrix::zeros(k, n);
        rng.fill_normal(m.as_mut_slice(), 0.05);
        m
    }

    #[test]
    fn q_max_per_bits() {
        assert_eq!(WeightQuantConfig::rtn(4, 128).q_max(), 7);
        assert_eq!(WeightQuantConfig::rtn(8, 128).q_max(), 127);
        assert_eq!(WeightQuantConfig::rtn(2, 128).q_max(), 1);
    }

    #[test]
    fn rtn_error_bounded_by_half_scale() {
        let w = random_weights(256, 16, 1);
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 128));
        let wq = q.dequantize();
        for r in 0..256 {
            for c in 0..16 {
                let err = (w[(r, c)] - wq[(r, c)]).abs();
                assert!(
                    err <= q.scale_at(r, c) * 0.5 + 1e-7,
                    "r={r} c={c} err={err}"
                );
            }
        }
    }

    #[test]
    fn values_fit_bit_range() {
        let w = random_weights(128, 8, 2);
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::w4_g128());
        for r in 0..128 {
            for c in 0..8 {
                let v = q.value(r, c);
                assert!((-8..=7).contains(&v), "v={v}");
            }
        }
    }

    #[test]
    fn clip_search_never_worse_than_rtn() {
        let mut w = random_weights(128, 4, 3);
        // Inject outliers so clipping helps.
        w[(5, 0)] = 2.0;
        w[(77, 2)] = -3.0;
        let rtn = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 128));
        let lite = IntWeightMatrix::quantize(&w, WeightQuantConfig::w4_g128());
        let err = |q: &IntWeightMatrix| {
            let d = q.dequantize();
            w.as_slice()
                .iter()
                .zip(d.as_slice())
                .map(|(&a, &b)| f64::from((a - b) * (a - b)))
                .sum::<f64>()
        };
        assert!(err(&lite) <= err(&rtn) + 1e-9);
    }

    #[test]
    fn group_scales_are_local() {
        // Two groups with very different magnitudes get different scales.
        let mut w = Matrix::zeros(256, 1);
        for r in 0..128 {
            w[(r, 0)] = 1.0;
        }
        for r in 128..256 {
            w[(r, 0)] = 0.001;
        }
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 128));
        assert!(q.scale_at(0, 0) > 100.0 * q.scale_at(128, 0));
        // Small group survives quantization thanks to its own scale.
        let d = q.dequantize();
        assert!((d[(200, 0)] - 0.001).abs() < 0.0005);
    }

    #[test]
    fn partial_last_group_handled() {
        let w = random_weights(100, 4, 4); // 100 = 128·0 + remainder
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 64));
        assert_eq!(q.k_groups(), 2);
        let d = q.dequantize();
        assert_eq!(d.shape(), (100, 4));
    }

    #[test]
    fn all_zero_group_round_trips() {
        let w = Matrix::zeros(128, 2);
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::w4_g128());
        assert_eq!(q.dequantize(), w);
    }

    #[test]
    fn storage_accounting() {
        let w = random_weights(128, 4, 5);
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::w4_g128());
        assert_eq!(q.storage_bits(), 128 * 4 * 4 + 4 * 16);
    }

    #[test]
    fn col_values_matches_value() {
        let w = random_weights(64, 3, 6);
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 64));
        let col = q.col_values(1);
        for (r, &cv) in col.iter().enumerate() {
            assert_eq!(cv, q.value(r, 1));
        }
    }
}
