//! Cross-thread-count bit-exactness suite for the parallel FP-INT GeMMs.
//!
//! `gemm_anda` shards output rows across the pool with per-shard
//! conversion buffers; `gemm_*_into` ride on the parallel `matmul_into`.
//! In both cases every output element must be bit-identical
//! (`f32::to_bits`) to the serial kernel at every thread count.

use anda_quant::gemm::{
    gemm_anda, gemm_anda_into, gemm_anda_into_pool, gemm_fake_quant, gemm_fake_quant_into,
    gemm_reference, gemm_reference_into, GemmScratch,
};
use anda_quant::{ActivationCodec, IntWeightMatrix, WeightQuantConfig};
use anda_tensor::{Matrix, Rng};
use proptest::prelude::*;
use rayon_lite::ThreadPool;

const THREADS: [usize; 4] = [1, 2, 3, 7];

/// Adversarial shapes `(m, k, n)`: single row, single column, a trailing
/// 32-lane remainder group (k = 96), k at the weight-group boundary, and
/// row counts not divisible by any tested thread count.
const SHAPES: [(usize, usize, usize); 6] = [
    (1, 64, 5),
    (5, 128, 1),
    (2, 96, 3),
    (7, 256, 4),
    (13, 64, 2),
    (3, 320, 9),
];

fn random_case(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, IntWeightMatrix) {
    let mut rng = Rng::new(seed);
    let mut x = Matrix::zeros(m, k);
    rng.fill_normal(x.as_mut_slice(), 1.0);
    // Sprinkle exact zeros: the dense kernels skip a == 0 terms.
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        if i % 13 == 0 {
            *v = 0.0;
        }
    }
    let mut w = Matrix::zeros(k, n);
    rng.fill_normal(w.as_mut_slice(), 0.05);
    let wq = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 64));
    (x, wq)
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: element {i} differs: {x} vs {y}"
        );
    }
}

#[test]
fn gemm_anda_pool_is_bit_identical_to_serial_on_adversarial_shapes() {
    for (m, k, n) in SHAPES {
        let (x, w) = random_case(m, k, n, 100 + (m * k * n) as u64);
        for m_bits in [4u32, 8, 16] {
            // gemm_anda on a 1×N input never parallelizes, so this is the
            // serial reference whatever ANDA_THREADS says; for m > 1 the
            // auto path must match it too (checked below via pool(1)).
            let serial = {
                let mut out = Matrix::zeros(m, n);
                gemm_anda_into_pool(&x, &w, m_bits, &mut out, &ThreadPool::new(1));
                out
            };
            assert_bits_eq(
                &gemm_anda(&x, &w, m_bits),
                &serial,
                &format!("gemm_anda auto {m}x{k}x{n} M{m_bits}"),
            );
            for threads in THREADS {
                let pool = ThreadPool::new(threads);
                let mut par = Matrix::zeros(m, n);
                par.as_mut_slice().fill(f32::NAN);
                gemm_anda_into_pool(&x, &w, m_bits, &mut par, &pool);
                assert_bits_eq(
                    &par,
                    &serial,
                    &format!("gemm_anda {m}x{k}x{n} M{m_bits} @ {threads}t"),
                );
            }
        }
    }
}

#[test]
fn gemm_into_variants_match_allocating_paths_at_every_thread_count() {
    // The fake-quant/reference/f16 paths parallelize through matmul_into;
    // their results must stay bit-identical to the allocating wrappers
    // regardless of scratch reuse.
    let codec = ActivationCodec::anda(8);
    for (m, k, n) in SHAPES {
        let (x, w) = random_case(m, k, n, 200 + (m + k + n) as u64);
        let mut scratch = GemmScratch::new();
        let mut out = Matrix::zeros(m, n);

        gemm_reference_into(&x, &w, &mut scratch, &mut out);
        assert_bits_eq(&out, &gemm_reference(&x, &w), &format!("ref {m}x{k}x{n}"));

        gemm_fake_quant_into(&x, &w, &codec, &mut scratch, &mut out);
        assert_bits_eq(
            &out,
            &gemm_fake_quant(&x, &w, &codec),
            &format!("fake {m}x{k}x{n}"),
        );
    }
}

#[test]
fn gemm_anda_into_matches_gemm_anda() {
    let (x, w) = random_case(5, 256, 6, 300);
    let mut out = Matrix::zeros(5, 6);
    out.as_mut_slice().fill(f32::NAN);
    gemm_anda_into(&x, &w, 8, &mut out);
    assert_bits_eq(&out, &gemm_anda(&x, &w, 8), "gemm_anda_into 5x256x6");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random shapes (k snapped to the 64-lane group), random mantissa
    /// lengths: parallel gemm_anda is bit-identical to serial.
    #[test]
    fn random_gemm_anda_bit_identical(
        m in 1usize..10,
        k64 in 1usize..6,
        n in 1usize..8,
        m_bits in 3u32..=16,
        seed in any::<u64>(),
    ) {
        let (x, w) = random_case(m, k64 * 64, n, seed);
        let mut serial = Matrix::zeros(m, n);
        gemm_anda_into_pool(&x, &w, m_bits, &mut serial, &ThreadPool::new(1));
        for threads in [2usize, 3, 7] {
            let pool = ThreadPool::new(threads);
            let mut par = Matrix::zeros(m, n);
            gemm_anda_into_pool(&x, &w, m_bits, &mut par, &pool);
            assert_bits_eq(&par, &serial, &format!("random anda {m}x{}x{n} M{m_bits} @ {threads}t", k64 * 64));
        }
    }
}
