//! Property-based tests for weight quantization and FP-INT GeMM operators.

use anda_quant::gemm::{gemm_anda, gemm_fake_quant, gemm_reference};
use anda_quant::{ActivationCodec, IntWeightMatrix, WeightQuantConfig};
use anda_tensor::Matrix;
use proptest::prelude::*;

/// Strategy: a k×n weight matrix with values in a realistic range.
fn weights(k: usize, n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-0.5f32..0.5, k * n).prop_map(move |v| Matrix::from_vec(k, n, v))
}

fn acts(m: usize, k: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-20.0f32..20.0, m * k).prop_map(move |v| Matrix::from_vec(m, k, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RTN reconstruction error is bounded by half the group scale.
    #[test]
    fn rtn_error_bounded(w in weights(128, 4)) {
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 64));
        let d = q.dequantize();
        for r in 0..128 {
            for c in 0..4 {
                let err = (w[(r, c)] - d[(r, c)]).abs();
                prop_assert!(err <= q.scale_at(r, c) * 0.5 + 1e-6);
            }
        }
    }

    /// Quantized values always fit the signed bit range.
    #[test]
    fn values_in_range(w in weights(64, 3), bits in 2u32..=8) {
        let q = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(bits, 64));
        let q_max = (1i16 << (bits - 1)) - 1;
        for r in 0..64 {
            for c in 0..3 {
                let v = i16::from(q.value(r, c));
                prop_assert!((-q_max - 1..=q_max).contains(&v), "{v} at bits {bits}");
            }
        }
    }

    /// Quantization is idempotent: re-quantizing the dequantized weights
    /// reproduces the same integers (same scales found).
    #[test]
    fn quantization_idempotent(w in weights(64, 2)) {
        let cfg = WeightQuantConfig::rtn(4, 64);
        let q1 = IntWeightMatrix::quantize(&w, cfg);
        let q2 = IntWeightMatrix::quantize(&q1.dequantize(), cfg);
        prop_assert_eq!(q2.dequantize(), q1.dequantize());
    }

    /// The clip grid never increases squared reconstruction error versus
    /// plain RTN.
    #[test]
    fn clip_search_helps(w in weights(128, 2)) {
        let rtn = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 128));
        let lite = IntWeightMatrix::quantize(&w, WeightQuantConfig::w4_g128());
        let sq_err = |q: &IntWeightMatrix| {
            let d = q.dequantize();
            w.as_slice()
                .iter()
                .zip(d.as_slice())
                .map(|(&a, &b)| f64::from((a - b) * (a - b)))
                .sum::<f64>()
        };
        prop_assert!(sq_err(&lite) <= sq_err(&rtn) + 1e-9);
    }

    /// The integer Anda GeMM matches the fake-quantized f32 GeMM.
    #[test]
    fn hardware_software_gemm_agree(
        x in acts(2, 128),
        w in weights(128, 3),
        m_bits in 2u32..=16,
    ) {
        let wq = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 128));
        let hw = gemm_anda(&x, &wq, m_bits);
        let sw = gemm_fake_quant(&x, &wq, &ActivationCodec::anda(m_bits));
        for i in 0..2 {
            for j in 0..3 {
                let (a, b) = (hw[(i, j)], sw[(i, j)]);
                prop_assert!((a - b).abs() <= a.abs().max(1.0) * 1e-4,
                    "m={m_bits} ({i},{j}): {a} vs {b}");
            }
        }
    }

    /// Exact codec leaves the GeMM unchanged.
    #[test]
    fn exact_codec_is_identity(x in acts(2, 64), w in weights(64, 2)) {
        let wq = IntWeightMatrix::quantize(&w, WeightQuantConfig::rtn(4, 64));
        let a = gemm_reference(&x, &wq);
        let b = gemm_fake_quant(&x, &wq, &ActivationCodec::Exact);
        prop_assert_eq!(a, b);
    }

    /// Codec storage accounting is monotone in mantissa length.
    #[test]
    fn storage_monotone(m in 1u32..16) {
        let a = ActivationCodec::anda(m).storage_bits_per_element();
        let b = ActivationCodec::anda(m + 1).storage_bits_per_element();
        prop_assert!(b > a);
        prop_assert!(a < 32.0);
    }
}
