//! Deterministic arrival processes for serving experiments.
//!
//! Latency under load is a property of the *arrival process*, not just
//! the batch: TTFT percentiles only mean something against a stated
//! traffic shape. This module generates those shapes deterministically
//! — seeded Poisson traffic ([`ArrivalSchedule::poisson`]) or an
//! explicit trace ([`ArrivalSchedule::trace`]) — over **virtual step
//! time**: arrivals are indexed by scheduler iteration
//! ([`Engine::steps`](crate::Engine::steps)), never by wall clock, so a
//! workload replays bit-identically on any machine at any speed and
//! latency assertions ("high-priority TTFT ≤ k steps") are noise-free.
//!
//! The intended loop pairs a schedule with a [`Replay`] cursor:
//!
//! ```
//! use anda_serve::workload::{ArrivalSchedule, Replay};
//!
//! let schedule = ArrivalSchedule::poisson(42, 3.0, 8);
//! let mut replay = Replay::new(schedule);
//! let mut seen = 0;
//! for step in 0.. {
//!     for idx in replay.due(step) {
//!         // submit request `idx` to the engine here
//!         seen += 1;
//!     }
//!     if replay.exhausted() {
//!         break;
//!     }
//!     // engine.step() here
//! }
//! assert_eq!(seen, 8);
//! ```

use anda_tensor::Rng;

/// When each request of a workload arrives, in virtual step time.
/// Arrival `i` is due at the start of step `steps[i]`; the sequence is
/// non-decreasing (several arrivals may share a step — a burst).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalSchedule {
    steps: Vec<u64>,
}

impl ArrivalSchedule {
    /// A seeded Poisson process: `n` arrivals whose inter-arrival gaps
    /// are exponential with mean `mean_gap` steps (so the arrival rate
    /// is `1 / mean_gap` requests per step). Deterministic in `seed` —
    /// the same schedule on every machine, every run.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap` is not finite and positive.
    pub fn poisson(seed: u64, mean_gap: f64, n: usize) -> Self {
        assert!(
            mean_gap.is_finite() && mean_gap > 0.0,
            "mean_gap must be finite and positive, got {mean_gap}"
        );
        let mut rng = Rng::new(seed);
        let mut clock = 0.0f64;
        let steps = (0..n)
            .map(|_| {
                // Inverse-CDF exponential draw; `uniform` is in [0, 1)
                // so the argument of `ln` stays in (0, 1].
                clock += -mean_gap * (1.0 - rng.uniform()).ln();
                clock as u64
            })
            .collect();
        ArrivalSchedule { steps }
    }

    /// Replays an explicit trace of arrival steps (e.g. measured
    /// production inter-arrivals, or a hand-built burst pattern).
    ///
    /// # Panics
    ///
    /// Panics if the steps are not non-decreasing.
    pub fn trace(steps: impl Into<Vec<u64>>) -> Self {
        let steps = steps.into();
        assert!(
            steps.windows(2).all(|w| w[0] <= w[1]),
            "trace arrival steps must be non-decreasing"
        );
        ArrivalSchedule { steps }
    }

    /// Every arrival at a fixed `gap` (first at step 0): the
    /// closed-form traffic shape for capacity math and tests.
    pub fn uniform(gap: u64, n: usize) -> Self {
        ArrivalSchedule {
            steps: (0..n as u64).map(|i| i * gap).collect(),
        }
    }

    /// The arrival step of each request, in order.
    pub fn steps(&self) -> &[u64] {
        &self.steps
    }

    /// Number of arrivals in the schedule.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the schedule holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// A forward-only cursor over an [`ArrivalSchedule`]: each call to
/// [`Replay::due`] yields the indices that became due, exactly once.
#[derive(Clone, Debug)]
pub struct Replay {
    schedule: ArrivalSchedule,
    next: usize,
}

impl Replay {
    /// A cursor at the start of `schedule`.
    pub fn new(schedule: ArrivalSchedule) -> Self {
        Replay { schedule, next: 0 }
    }

    /// The indices of every arrival due at or before virtual step
    /// `now` that has not been yielded yet. Calling with a smaller
    /// `now` than before yields nothing (the cursor never rewinds).
    pub fn due(&mut self, now: u64) -> std::ops::Range<usize> {
        let start = self.next;
        while self.next < self.schedule.steps.len() && self.schedule.steps[self.next] <= now {
            self.next += 1;
        }
        start..self.next
    }

    /// `true` once every arrival has been yielded.
    pub fn exhausted(&self) -> bool {
        self.next == self.schedule.steps.len()
    }

    /// The schedule this cursor replays.
    pub fn schedule(&self) -> &ArrivalSchedule {
        &self.schedule
    }
}
