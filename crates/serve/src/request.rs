//! Request and response types for the serving layer.

/// Identifier assigned to a request at submission, unique per
/// [`Scheduler`](crate::Scheduler).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Per-request sampling configuration.
///
/// Each stream owns an RNG seeded by `seed`, so a request's token sequence
/// is a pure function of (model, prompt, sampling) — independent of what
/// else is in the batch, when the request arrived, or how many threads the
/// pool has. `temperature <= 0` is greedy argmax and draws nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingParams {
    /// Softmax temperature; `<= 0` selects greedy decoding.
    pub temperature: f32,
    /// Seed for the stream-private RNG.
    pub seed: u64,
}

impl SamplingParams {
    /// Greedy decoding (temperature 0; the seed is never used).
    pub fn greedy() -> Self {
        SamplingParams {
            temperature: 0.0,
            seed: 0,
        }
    }
}

impl Default for SamplingParams {
    fn default() -> Self {
        Self::greedy()
    }
}

/// How many completions a request produces, and how they are reported.
///
/// Multi-sample modes are served by *mid-stream cache forking*: the
/// prompt is prefilled once, then the live cache is forked at its decode
/// position (`KvCache::fork_full`) into `n` sibling streams sharing every
/// prompt page copy-on-write — the same refcount ledger behind prefix
/// sharing, so the prompt's KV is charged once, not `n` times. Sibling
/// `i` seeds its RNG with `seed.wrapping_add(i)` (sample 0 uses `seed`
/// verbatim), making each sample bit-identical to a standalone request
/// with that derived seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingMode {
    /// One completion (the default; greedy or sampled per
    /// [`SamplingParams`]).
    #[default]
    Single,
    /// `n` independent completions, every one reported as its own
    /// [`FinishedRequest`] (distinguished by
    /// [`FinishedRequest::sample_index`]).
    Parallel {
        /// Number of samples (`>= 1`; validated at submit).
        n: usize,
    },
    /// `n` independent completions, but only the one with the highest
    /// cumulative log-probability is reported (ties break toward the
    /// lowest sample index).
    BestOf {
        /// Number of candidates (`>= 1`; validated at submit).
        n: usize,
    },
}

impl SamplingMode {
    /// Streams this mode decodes concurrently.
    pub fn samples(&self) -> usize {
        match *self {
            SamplingMode::Single => 1,
            SamplingMode::Parallel { n } | SamplingMode::BestOf { n } => n,
        }
    }
}

/// A generation request: prompt, generation budget, sampling policy,
/// and optionally the key of a shared prefix registered with the
/// scheduler.
#[derive(Clone, Debug)]
pub struct Request {
    /// Prompt token ids (must be non-empty and in-vocab). With a
    /// `prefix`, this is only the request-private suffix: the effective
    /// prompt is `prefix tokens ++ prompt`.
    pub prompt: Vec<usize>,
    /// Key of a shared prefix previously registered via
    /// [`Scheduler::register_prefix`](crate::Scheduler::register_prefix).
    /// The prefix's KV pages are prefilled once and *shared* into this
    /// stream's cache at admission (copy-on-write page tables), so the
    /// stream is charged only its unshared pages and the prefix tokens
    /// are never re-prefilled. Unknown keys are rejected at submit.
    pub prefix: Option<String>,
    /// Maximum number of new tokens to generate.
    pub max_new: usize,
    /// Optional end-of-sequence token: generation stops once it is
    /// sampled (the EOS token is included in the output).
    pub eos: Option<usize>,
    /// Sampling policy.
    pub sampling: SamplingParams,
    /// Completion multiplicity: one stream, `n` parallel samples, or
    /// best-of-`n` (see [`SamplingMode`]).
    pub mode: SamplingMode,
}

impl Request {
    /// A greedy request with no EOS and no shared prefix.
    pub fn greedy(prompt: Vec<usize>, max_new: usize) -> Self {
        Request {
            prompt,
            prefix: None,
            max_new,
            eos: None,
            sampling: SamplingParams::greedy(),
            mode: SamplingMode::Single,
        }
    }

    /// This request routed through the shared prefix registered under
    /// `key` (builder style).
    pub fn with_prefix(mut self, key: impl Into<String>) -> Self {
        self.prefix = Some(key.into());
        self
    }

    /// This request as `n` parallel samples over one shared prompt
    /// cache (builder style); sample `i` decodes with seed
    /// `sampling.seed + i`.
    pub fn parallel(mut self, n: usize) -> Self {
        self.mode = SamplingMode::Parallel { n };
        self
    }

    /// This request as best-of-`n`: `n` candidates decode over one
    /// shared prompt cache and only the highest cumulative-logprob
    /// completion is reported (builder style).
    pub fn best_of(mut self, n: usize) -> Self {
        self.mode = SamplingMode::BestOf { n };
        self
    }

    /// KV positions the scheduler's page accounting covers for this
    /// request *beyond its shared prefix*: the private prompt plus the
    /// worst-case generation length (the scheduler adds the prefix
    /// length and discounts fully shared pages, both in one place —
    /// `pages_needed`). Saturating, so an absurd `max_new` fails the
    /// submit-time `max_seq`/capacity checks instead of wrapping past
    /// them.
    pub fn reserve_tokens(&self) -> usize {
        self.prompt.len().saturating_add(self.max_new)
    }
}

/// Why a stream stopped decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishReason {
    /// `max_new` tokens were generated.
    Length,
    /// The EOS token was sampled (it is the last generated token).
    Eos,
}

/// A completed request: the full token sequence (prompt included) plus
/// bookkeeping. A finished request generated exactly
/// `min(max_new, position of the first EOS + 1)` new tokens.
#[derive(Clone, Debug)]
pub struct FinishedRequest {
    /// The id [`Scheduler::submit`](crate::Scheduler::submit) returned.
    pub id: RequestId,
    /// Prompt followed by every generated token. For a request routed
    /// through a shared prefix, the prompt part is the *effective*
    /// prompt: the prefix tokens followed by the request's private ones
    /// — identical to what an unshared submission of the full prompt
    /// would return.
    pub tokens: Vec<usize>,
    /// Length of the (effective) prompt prefix of `tokens`.
    pub prompt_len: usize,
    /// Why decoding stopped.
    pub reason: FinishReason,
    /// Which sample of a multi-sample request this is: `0..n` for
    /// [`SamplingMode::Parallel`], the winning candidate's index for
    /// [`SamplingMode::BestOf`], always `0` for
    /// [`SamplingMode::Single`]. Sample `i` decoded with seed
    /// `sampling.seed + i`.
    pub sample_index: usize,
    /// Sum over the generated tokens of `ln softmax(logits)[token]`
    /// (temperature-independent, accumulated in `f64`), the best-of
    /// selection score. `None` for [`SamplingMode::Single`] requests,
    /// which skip the extra log-softmax work.
    pub cumulative_logprob: Option<f64>,
}

impl FinishedRequest {
    /// The generated suffix (everything after the prompt).
    pub fn generated(&self) -> &[usize] {
        &self.tokens[self.prompt_len..]
    }
}
