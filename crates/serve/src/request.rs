//! Request and response types for the serving layer.
//!
//! Requests are built with the validating [`RequestBuilder`]
//! ([`Request::builder`]): nonsense configurations — an empty prompt,
//! `parallel(0)`, `best_of(1)` — are rejected at *build* time with a
//! [`RequestError`], instead of surfacing later at submit. The old
//! mutating constructors ([`Request::greedy`] and friends) remain as
//! deprecated shims for one release.

/// Identifier assigned to a request at submission, unique per
/// [`Scheduler`](crate::Scheduler).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Admission priority class of a request.
///
/// The scheduler admits by *weighted round-robin* between classes (see
/// [`Priority::weight`]) rather than strict priority, so low classes
/// are starvation-bounded, and — with preemption enabled — a blocked
/// high-class arrival may *suspend* a lower-class victim stream to
/// reclaim its KV pages ([`SchedulerStats::preemptions`]).
///
/// Ordering: `High < Normal < Low`, i.e. the [`Ord`] minimum is the
/// most urgent class ([`Priority::outranks`] reads better at call
/// sites).
///
/// [`SchedulerStats::preemptions`]: crate::SchedulerStats::preemptions
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic: largest admission share, may preempt.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Throughput/batch traffic: smallest admission share, first choice
    /// as a preemption victim.
    Low,
}

impl Priority {
    /// Every class, most urgent first (also the queue index order).
    pub const CLASSES: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Dense index of this class (`High = 0`, `Normal = 1`, `Low = 2`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Weighted-round-robin admission share of this class: out of every
    /// 7 admission grants under contention, `High` gets 4, `Normal` 2,
    /// `Low` 1 — the starvation bound the scheduler property tests pin.
    pub fn weight(self) -> usize {
        match self {
            Priority::High => 4,
            Priority::Normal => 2,
            Priority::Low => 1,
        }
    }

    /// `true` when `self` is a strictly more urgent class than `other`
    /// (only strictly-outranked streams may be preempted).
    pub fn outranks(self, other: Priority) -> bool {
        self < other
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        })
    }
}

/// Why [`RequestBuilder::build`] rejected a request configuration.
/// Catching nonsense at build time keeps [`Scheduler::submit`] errors
/// about the *model and pool* (vocab, `max_seq`, capacity), not about
/// malformed requests.
///
/// [`Scheduler::submit`]: crate::Scheduler::submit
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RequestError {
    /// The prompt was empty.
    EmptyPrompt,
    /// `parallel(0)` or `best_of(0)`: a multi-sample mode with zero
    /// samples.
    ZeroSamples,
    /// `best_of(1)`: selecting the best of one candidate is
    /// [`SamplingMode::Single`] spelled confusingly — use that instead.
    DegenerateBestOf,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::EmptyPrompt => write!(f, "prompt must not be empty"),
            RequestError::ZeroSamples => {
                write!(f, "sampling mode must request at least one sample")
            }
            RequestError::DegenerateBestOf => {
                write!(
                    f,
                    "best_of(1) is Single spelled confusingly; use mode Single"
                )
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Per-request sampling configuration.
///
/// Each stream owns an RNG seeded by `seed`, so a request's token sequence
/// is a pure function of (model, prompt, sampling) — independent of what
/// else is in the batch, when the request arrived, or how many threads the
/// pool has. `temperature <= 0` is greedy argmax and draws nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingParams {
    /// Softmax temperature; `<= 0` selects greedy decoding.
    pub temperature: f32,
    /// Seed for the stream-private RNG.
    pub seed: u64,
}

impl SamplingParams {
    /// Greedy decoding (temperature 0; the seed is never used).
    pub fn greedy() -> Self {
        SamplingParams {
            temperature: 0.0,
            seed: 0,
        }
    }
}

impl Default for SamplingParams {
    fn default() -> Self {
        Self::greedy()
    }
}

/// How many completions a request produces, and how they are reported.
///
/// Multi-sample modes are served by *mid-stream cache forking*: the
/// prompt is prefilled once, then the live cache is forked at its decode
/// position (`KvCache::fork_full`) into `n` sibling streams sharing every
/// prompt page copy-on-write — the same refcount ledger behind prefix
/// sharing, so the prompt's KV is charged once, not `n` times. Sibling
/// `i` seeds its RNG with `seed.wrapping_add(i)` (sample 0 uses `seed`
/// verbatim), making each sample bit-identical to a standalone request
/// with that derived seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingMode {
    /// One completion (the default; greedy or sampled per
    /// [`SamplingParams`]).
    #[default]
    Single,
    /// `n` independent completions, every one reported as its own
    /// [`FinishedRequest`] (distinguished by
    /// [`FinishedRequest::sample_index`]).
    Parallel {
        /// Number of samples (`>= 1`; validated at submit).
        n: usize,
    },
    /// `n` independent completions, but only the one with the highest
    /// cumulative log-probability is reported (ties break toward the
    /// lowest sample index).
    BestOf {
        /// Number of candidates (`>= 1`; validated at submit).
        n: usize,
    },
}

impl SamplingMode {
    /// Streams this mode decodes concurrently.
    pub fn samples(&self) -> usize {
        match *self {
            SamplingMode::Single => 1,
            SamplingMode::Parallel { n } | SamplingMode::BestOf { n } => n,
        }
    }
}

/// A generation request: prompt, generation budget, sampling policy,
/// and optionally the key of a shared prefix registered with the
/// scheduler.
#[derive(Clone, Debug)]
pub struct Request {
    /// Prompt token ids (must be non-empty and in-vocab). With a
    /// `prefix`, this is only the request-private suffix: the effective
    /// prompt is `prefix tokens ++ prompt`.
    pub prompt: Vec<usize>,
    /// Key of a shared prefix previously registered via
    /// [`Scheduler::register_prefix`](crate::Scheduler::register_prefix).
    /// The prefix's KV pages are prefilled once and *shared* into this
    /// stream's cache at admission (copy-on-write page tables), so the
    /// stream is charged only its unshared pages and the prefix tokens
    /// are never re-prefilled. Unknown keys are rejected at submit.
    pub prefix: Option<String>,
    /// Maximum number of new tokens to generate.
    pub max_new: usize,
    /// Optional end-of-sequence token: generation stops once it is
    /// sampled (the EOS token is included in the output).
    pub eos: Option<usize>,
    /// Sampling policy.
    pub sampling: SamplingParams,
    /// Completion multiplicity: one stream, `n` parallel samples, or
    /// best-of-`n` (see [`SamplingMode`]).
    pub mode: SamplingMode,
    /// Admission class (see [`Priority`]): weighted-round-robin share
    /// and preemption rank. Defaults to [`Priority::Normal`].
    pub priority: Priority,
}

impl Request {
    /// Starts building a request around `prompt`. The builder validates
    /// at [`RequestBuilder::build`]; every knob defaults to the benign
    /// choice (greedy single completion, no EOS, no prefix,
    /// [`Priority::Normal`], `max_new = 0`).
    pub fn builder(prompt: impl Into<Vec<usize>>) -> RequestBuilder {
        RequestBuilder {
            prompt: prompt.into(),
            prefix: None,
            max_new: 0,
            eos: None,
            sampling: SamplingParams::greedy(),
            mode: SamplingMode::Single,
            priority: Priority::Normal,
        }
    }

    /// A greedy request with no EOS and no shared prefix.
    #[deprecated(note = "use `Request::builder(prompt).max_new(n).build()`")]
    pub fn greedy(prompt: Vec<usize>, max_new: usize) -> Self {
        Request {
            prompt,
            prefix: None,
            max_new,
            eos: None,
            sampling: SamplingParams::greedy(),
            mode: SamplingMode::Single,
            priority: Priority::Normal,
        }
    }

    /// This request routed through the shared prefix registered under
    /// `key` (builder style).
    #[deprecated(note = "use `RequestBuilder::prefix`")]
    pub fn with_prefix(mut self, key: impl Into<String>) -> Self {
        self.prefix = Some(key.into());
        self
    }

    /// This request as `n` parallel samples over one shared prompt
    /// cache (builder style); sample `i` decodes with seed
    /// `sampling.seed + i`.
    #[deprecated(note = "use `RequestBuilder::parallel`, which rejects `n = 0` at build time")]
    pub fn parallel(mut self, n: usize) -> Self {
        self.mode = SamplingMode::Parallel { n };
        self
    }

    /// This request as best-of-`n`: `n` candidates decode over one
    /// shared prompt cache and only the highest cumulative-logprob
    /// completion is reported (builder style).
    #[deprecated(note = "use `RequestBuilder::best_of`, which rejects `n <= 1` at build time")]
    pub fn best_of(mut self, n: usize) -> Self {
        self.mode = SamplingMode::BestOf { n };
        self
    }

    /// KV positions the scheduler's page accounting covers for this
    /// request *beyond its shared prefix*: the private prompt plus the
    /// worst-case generation length (the scheduler adds the prefix
    /// length and discounts fully shared pages, both in one place —
    /// `pages_needed`). Saturating, so an absurd `max_new` fails the
    /// submit-time `max_seq`/capacity checks instead of wrapping past
    /// them.
    pub fn reserve_tokens(&self) -> usize {
        self.prompt.len().saturating_add(self.max_new)
    }
}

/// Validating builder for [`Request`] ([`Request::builder`]).
///
/// Setters never fail; [`RequestBuilder::build`] performs all the
/// *request-shape* validation (the scheduler still checks model- and
/// pool-dependent facts — vocab, `max_seq`, pool capacity — at
/// submit).
///
/// # Example
///
/// ```
/// use anda_serve::{Priority, Request, RequestError, SamplingMode};
///
/// let req = Request::builder(vec![1, 2, 3])
///     .max_new(16)
///     .temperature(0.8)
///     .seed(42)
///     .priority(Priority::High)
///     .best_of(4)
///     .build()
///     .unwrap();
/// assert_eq!(req.mode, SamplingMode::BestOf { n: 4 });
///
/// // Nonsense is rejected at build time, not at submit:
/// assert_eq!(
///     Request::builder(vec![1]).best_of(1).build().unwrap_err(),
///     RequestError::DegenerateBestOf,
/// );
/// assert_eq!(
///     Request::builder(vec![]).build().unwrap_err(),
///     RequestError::EmptyPrompt,
/// );
/// ```
#[derive(Clone, Debug)]
pub struct RequestBuilder {
    prompt: Vec<usize>,
    prefix: Option<String>,
    max_new: usize,
    eos: Option<usize>,
    sampling: SamplingParams,
    mode: SamplingMode,
    priority: Priority,
}

impl RequestBuilder {
    /// Maximum number of new tokens to generate (default 0).
    pub fn max_new(mut self, n: usize) -> Self {
        self.max_new = n;
        self
    }

    /// Stop generation once `token` is sampled.
    pub fn eos(mut self, token: usize) -> Self {
        self.eos = Some(token);
        self
    }

    /// Full sampling configuration in one call.
    pub fn sampling(mut self, sampling: SamplingParams) -> Self {
        self.sampling = sampling;
        self
    }

    /// Softmax temperature (`<= 0` is greedy, the default).
    pub fn temperature(mut self, temperature: f32) -> Self {
        self.sampling.temperature = temperature;
        self
    }

    /// Seed of the stream-private RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sampling.seed = seed;
        self
    }

    /// Route through the shared prefix registered under `key`
    /// ([`Scheduler::register_prefix`]).
    ///
    /// [`Scheduler::register_prefix`]: crate::Scheduler::register_prefix
    pub fn prefix(mut self, key: impl Into<String>) -> Self {
        self.prefix = Some(key.into());
        self
    }

    /// Completion multiplicity (validated at build).
    pub fn mode(mut self, mode: SamplingMode) -> Self {
        self.mode = mode;
        self
    }

    /// `n` parallel samples over one shared prompt cache; sample `i`
    /// decodes with seed `seed + i`.
    pub fn parallel(self, n: usize) -> Self {
        self.mode(SamplingMode::Parallel { n })
    }

    /// Best-of-`n`: `n` candidates decode over one shared prompt cache,
    /// only the highest cumulative-logprob completion is reported.
    pub fn best_of(self, n: usize) -> Self {
        self.mode(SamplingMode::BestOf { n })
    }

    /// Admission class (default [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Validates the configuration and produces the [`Request`].
    ///
    /// # Errors
    ///
    /// [`RequestError::EmptyPrompt`] for an empty prompt,
    /// [`RequestError::ZeroSamples`] for `parallel(0)` / `best_of(0)`,
    /// [`RequestError::DegenerateBestOf`] for `best_of(1)`.
    pub fn build(self) -> Result<Request, RequestError> {
        if self.prompt.is_empty() {
            return Err(RequestError::EmptyPrompt);
        }
        match self.mode {
            SamplingMode::Parallel { n: 0 } | SamplingMode::BestOf { n: 0 } => {
                return Err(RequestError::ZeroSamples)
            }
            SamplingMode::BestOf { n: 1 } => return Err(RequestError::DegenerateBestOf),
            _ => {}
        }
        Ok(Request {
            prompt: self.prompt,
            prefix: self.prefix,
            max_new: self.max_new,
            eos: self.eos,
            sampling: self.sampling,
            mode: self.mode,
            priority: self.priority,
        })
    }
}

/// Why a stream stopped decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishReason {
    /// `max_new` tokens were generated.
    Length,
    /// The EOS token was sampled (it is the last generated token).
    Eos,
}

/// A completed request: the full token sequence (prompt included) plus
/// bookkeeping. A finished request generated exactly
/// `min(max_new, position of the first EOS + 1)` new tokens.
#[derive(Clone, Debug)]
pub struct FinishedRequest {
    /// The id [`Scheduler::submit`](crate::Scheduler::submit) returned.
    pub id: RequestId,
    /// Prompt followed by every generated token. For a request routed
    /// through a shared prefix, the prompt part is the *effective*
    /// prompt: the prefix tokens followed by the request's private ones
    /// — identical to what an unshared submission of the full prompt
    /// would return.
    pub tokens: Vec<usize>,
    /// Length of the (effective) prompt prefix of `tokens`.
    pub prompt_len: usize,
    /// Why decoding stopped.
    pub reason: FinishReason,
    /// Which sample of a multi-sample request this is: `0..n` for
    /// [`SamplingMode::Parallel`], the winning candidate's index for
    /// [`SamplingMode::BestOf`], always `0` for
    /// [`SamplingMode::Single`]. Sample `i` decoded with seed
    /// `sampling.seed + i`.
    pub sample_index: usize,
    /// Sum over the generated tokens of `ln softmax(logits)[token]`
    /// (temperature-independent, accumulated in `f64`), the best-of
    /// selection score. `None` for [`SamplingMode::Single`] requests,
    /// which skip the extra log-softmax work.
    pub cumulative_logprob: Option<f64>,
}

impl FinishedRequest {
    /// The generated suffix (everything after the prompt).
    pub fn generated(&self) -> &[usize] {
        &self.tokens[self.prompt_len..]
    }
}
