//! Request and response types for the serving layer.

/// Identifier assigned to a request at submission, unique per
/// [`Scheduler`](crate::Scheduler).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Per-request sampling configuration.
///
/// Each stream owns an RNG seeded by `seed`, so a request's token sequence
/// is a pure function of (model, prompt, sampling) — independent of what
/// else is in the batch, when the request arrived, or how many threads the
/// pool has. `temperature <= 0` is greedy argmax and draws nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingParams {
    /// Softmax temperature; `<= 0` selects greedy decoding.
    pub temperature: f32,
    /// Seed for the stream-private RNG.
    pub seed: u64,
}

impl SamplingParams {
    /// Greedy decoding (temperature 0; the seed is never used).
    pub fn greedy() -> Self {
        SamplingParams {
            temperature: 0.0,
            seed: 0,
        }
    }
}

impl Default for SamplingParams {
    fn default() -> Self {
        Self::greedy()
    }
}

/// A generation request: prompt, generation budget, sampling policy.
#[derive(Clone, Debug)]
pub struct Request {
    /// Prompt token ids (must be non-empty and in-vocab).
    pub prompt: Vec<usize>,
    /// Maximum number of new tokens to generate.
    pub max_new: usize,
    /// Optional end-of-sequence token: generation stops once it is
    /// sampled (the EOS token is included in the output).
    pub eos: Option<usize>,
    /// Sampling policy.
    pub sampling: SamplingParams,
}

impl Request {
    /// A greedy request with no EOS.
    pub fn greedy(prompt: Vec<usize>, max_new: usize) -> Self {
        Request {
            prompt,
            max_new,
            eos: None,
            sampling: SamplingParams::greedy(),
        }
    }

    /// KV positions the scheduler's page accounting covers for this
    /// request: the whole prompt plus the worst-case generation length
    /// (rounded up to whole pages per layer at admission). Saturating,
    /// so an absurd `max_new` fails the submit-time `max_seq`/capacity
    /// checks instead of wrapping past them.
    pub fn reserve_tokens(&self) -> usize {
        self.prompt.len().saturating_add(self.max_new)
    }
}

/// Why a stream stopped decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishReason {
    /// `max_new` tokens were generated.
    Length,
    /// The EOS token was sampled (it is the last generated token).
    Eos,
}

/// A completed request: the full token sequence (prompt included) plus
/// bookkeeping. A finished request generated exactly
/// `min(max_new, position of the first EOS + 1)` new tokens.
#[derive(Clone, Debug)]
pub struct FinishedRequest {
    /// The id [`Scheduler::submit`](crate::Scheduler::submit) returned.
    pub id: RequestId,
    /// Prompt followed by every generated token.
    pub tokens: Vec<usize>,
    /// Length of the prompt prefix of `tokens`.
    pub prompt_len: usize,
    /// Why decoding stopped.
    pub reason: FinishReason,
}

impl FinishedRequest {
    /// The generated suffix (everything after the prompt).
    pub fn generated(&self) -> &[usize] {
        &self.tokens[self.prompt_len..]
    }
}
