//! The continuous-batching scheduler.
//!
//! One [`Scheduler`] owns a queue of pending requests, a KV [`PagePool`]
//! and up to `max_batch` active decode streams, each with its own
//! pool-leased [`KvCache`], [`DecodeScratch`] and RNG. Every
//! [`Scheduler::step`] is one engine iteration in the Orca style: admit
//! what fits under the pool's free-page watermark, prefill new arrivals,
//! then advance **every** active stream by one token — per-stream
//! hidden-state work sharded across one `rayon-lite` scope for the whole
//! batch, followed by a single batched LM-head GEMM.
//!
//! Admission is *page-accounted*: each admitted request reserves its
//! worst-case page demand (`n_layers · ceil((prompt + max_new) /
//! page_positions)`), so the pool can never be exhausted mid-flight, and
//! a retired stream's pages go straight back to the free list for the
//! next admission. With an Anda storage policy the same memory budget
//! holds `16 / (M + 1 + 5/64)` times more pages, so batches whose FP16
//! KV would not fit are admitted — the long-context headroom of §VI.

use std::collections::VecDeque;

use anda_llm::kv::{KvPoolConfig, PagePool};
use anda_llm::model::BatchOutput;
use anda_llm::{DecodeScratch, KvCache, Model};
use anda_tensor::Rng;
use rayon_lite::ThreadPool;

use crate::request::{FinishReason, FinishedRequest, Request, RequestId, SamplingParams};

/// Admission policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Maximum number of concurrently active decode streams (slots).
    pub max_batch: usize,
    /// Geometry and storage policy of the KV page pool every stream
    /// leases from. `kv.max_pages` is the admission resource: each
    /// admitted request reserves its worst-case page demand
    /// ([`Request::reserve_tokens`] rounded up to pages, per layer), so
    /// the cache footprint can never outgrow the pool mid-flight.
    /// `None` admits on slots alone.
    pub kv: KvPoolConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 8,
            kv: KvPoolConfig::default(),
        }
    }
}

/// Why [`Scheduler::submit`] rejected a request up front. Rejecting
/// unservable requests at submission (rather than queuing them) is what
/// makes FIFO admission starvation-free: an admitted queue head always
/// fits once enough earlier streams finish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The prompt was empty.
    EmptyPrompt,
    /// A prompt (or EOS) token id is outside the model's vocabulary.
    TokenOutOfVocab {
        /// The offending token.
        token: usize,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// `prompt + max_new` exceeds the model's `max_seq`.
    ExceedsMaxSeq {
        /// Requested worst-case length.
        total: usize,
        /// The model's maximum sequence length.
        max_seq: usize,
    },
    /// The request's worst-case KV page demand exceeds the whole pool,
    /// so it could never be admitted.
    ExceedsPoolCapacity {
        /// Worst-case page demand across all layers.
        pages: usize,
        /// The pool's capacity in pages.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SubmitError::EmptyPrompt => write!(f, "prompt must not be empty"),
            SubmitError::TokenOutOfVocab { token, vocab } => {
                write!(f, "token {token} out of vocab {vocab}")
            }
            SubmitError::ExceedsMaxSeq { total, max_seq } => {
                write!(f, "prompt + max_new = {total} exceeds max_seq {max_seq}")
            }
            SubmitError::ExceedsPoolCapacity { pages, capacity } => {
                write!(
                    f,
                    "worst-case KV demand of {pages} pages exceeds the pool's {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Aggregate counters, mostly for benches and capacity tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedulerStats {
    /// Engine iterations run.
    pub steps: u64,
    /// Tokens sampled across all streams (the serving throughput
    /// numerator).
    pub sampled_tokens: u64,
    /// Prompt tokens prefilled.
    pub prefill_tokens: u64,
    /// Most streams ever active in one iteration.
    pub peak_active: usize,
    /// Most KV positions ever cached at once across active streams.
    pub peak_cached_tokens: usize,
    /// Most KV pages ever leased from the pool at once.
    pub peak_pages_in_use: usize,
}

/// One active decode stream.
struct Stream {
    id: RequestId,
    /// Prompt followed by the tokens generated so far.
    tokens: Vec<usize>,
    prompt_len: usize,
    max_new: usize,
    eos: Option<usize>,
    sampling: SamplingParams,
    rng: Rng,
    cache: KvCache,
    scratch: DecodeScratch,
    /// KV pages reserved against the pool for this stream (worst case).
    reserved_pages: usize,
    /// Admitted this iteration: its first token comes from the prefill
    /// logits, so it skips the decode phase once.
    fresh: bool,
    done: Option<FinishReason>,
}

struct Pending {
    id: RequestId,
    request: Request,
}

/// Continuous-batching request scheduler over [`Model::decode_step`]-style
/// incremental inference with pool-paged KV storage.
///
/// Admission is FIFO with completed-stream slot and page reuse: only the
/// queue head is ever admitted (no overtaking, hence no starvation), into
/// the first free slot, reusing a retired stream's
/// `KvCache`/`DecodeScratch` allocations and recycled pages. Decode is
/// iteration-level: every active stream advances one token per
/// [`Scheduler::step`].
///
/// # Determinism
///
/// Each stream's output is bit-identical to running its request alone
/// through [`Model::generate_with_cache`] on a same-policy cache, with an
/// RNG seeded by its [`SamplingParams::seed`] — regardless of batch
/// composition, arrival order, page size, or thread count. See
/// `tests/batched_exact.rs` and `tests/paged_kv.rs`.
pub struct Scheduler<'a> {
    model: &'a Model,
    pool: &'a ThreadPool,
    cfg: SchedulerConfig,
    /// The KV page pool every stream's cache leases from.
    kv_pool: PagePool,
    pending: VecDeque<Pending>,
    slots: Vec<Option<Stream>>,
    /// Retired caches/scratches awaiting reuse by future admissions
    /// (their pages are already back on the pool's free list).
    spares: Vec<(KvCache, DecodeScratch)>,
    batch: BatchOutput,
    finished: Vec<FinishedRequest>,
    next_id: u64,
    /// Sum of active streams' page reservations (`<= kv.max_pages`).
    reserved_pages: usize,
    stats: SchedulerStats,
}

impl<'a> Scheduler<'a> {
    /// A scheduler over `model` using the global thread pool.
    pub fn new(model: &'a Model, cfg: SchedulerConfig) -> Self {
        Self::with_pool(model, cfg, rayon_lite::global())
    }

    /// A scheduler batching on an explicit pool (tests pin thread counts
    /// this way; production uses [`Scheduler::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero, the page size is zero, or an Anda
    /// policy has invalid mantissa bits.
    pub fn with_pool(model: &'a Model, cfg: SchedulerConfig, pool: &'a ThreadPool) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        Scheduler {
            model,
            pool,
            cfg,
            kv_pool: PagePool::new(cfg.kv),
            pending: VecDeque::new(),
            slots: Vec::new(),
            spares: Vec::new(),
            batch: BatchOutput::new(),
            finished: Vec::new(),
            next_id: 0,
            reserved_pages: 0,
            stats: SchedulerStats::default(),
        }
    }

    /// Worst-case KV page demand of a request across all layers.
    fn page_demand(&self, request: &Request) -> usize {
        self.model.config().n_layers * self.kv_pool.pages_for(request.reserve_tokens())
    }

    /// Queues a request, validating it is servable under this model and
    /// pool. Accepted requests are guaranteed to terminate with exactly
    /// `min(max_new, first EOS position + 1)` generated tokens.
    pub fn submit(&mut self, request: Request) -> Result<RequestId, SubmitError> {
        if request.prompt.is_empty() {
            return Err(SubmitError::EmptyPrompt);
        }
        let vocab = self.model.config().vocab;
        if let Some(&token) = request.prompt.iter().find(|&&t| t >= vocab) {
            return Err(SubmitError::TokenOutOfVocab { token, vocab });
        }
        if let Some(eos) = request.eos {
            if eos >= vocab {
                return Err(SubmitError::TokenOutOfVocab { token: eos, vocab });
            }
        }
        let total = request.reserve_tokens();
        let max_seq = self.model.config().max_seq;
        if total > max_seq {
            return Err(SubmitError::ExceedsMaxSeq { total, max_seq });
        }
        let pages = self.page_demand(&request);
        if let Some(capacity) = self.kv_pool.capacity() {
            if pages > capacity {
                return Err(SubmitError::ExceedsPoolCapacity { pages, capacity });
            }
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(Pending { id, request });
        Ok(id)
    }

    /// Runs one engine iteration: admit + prefill whatever fits, then
    /// advance every active stream by one token (one batch-level pool
    /// scope for the hidden-state work, one batched LM-head dispatch).
    /// Returns the number of tokens sampled this iteration.
    pub fn step(&mut self) -> usize {
        if self.is_idle() {
            return 0;
        }
        self.stats.steps += 1;
        self.admit();

        // Decode phase: every non-fresh stream computes its next hidden
        // state as one job inside a single scope for the whole batch —
        // kernels inside the jobs run serially (`Model::decode_hidden`),
        // so pool dispatch happens once per iteration, not per kernel.
        // Streams lease KV pages from the shared pool concurrently; the
        // pool lock is taken only at page boundaries.
        let model = self.model;
        self.pool.scope(|sc| {
            for stream in self.slots.iter_mut().flatten() {
                if stream.fresh {
                    continue;
                }
                let token = *stream.tokens.last().expect("stream holds its prompt");
                let pos = stream.tokens.len() - 1;
                sc.spawn(move || {
                    model.decode_hidden(token, pos, &mut stream.cache, &mut stream.scratch);
                });
            }
        });

        // Batched LM head: one GEMM-shaped dispatch over all hidden rows.
        self.batch.clear();
        for stream in self.slots.iter().flatten() {
            if !stream.fresh {
                self.batch.push_hidden(stream.scratch.hidden_state());
            }
        }
        self.model.lm_head_batch_pool(&mut self.batch, self.pool);

        // Sampling: fresh streams draw from their prefill logits, batched
        // streams from their LM-head row. Either way the draw (and the
        // stream-private RNG advance) matches a solo `Model::generate`.
        let mut row = 0;
        let mut sampled = 0;
        for stream in self.slots.iter_mut().flatten() {
            let temperature = stream.sampling.temperature;
            let next = if stream.fresh {
                stream.fresh = false;
                stream.scratch.sample_last(temperature, &mut stream.rng)
            } else {
                let logits = self.batch.logits_row(row);
                row += 1;
                stream.scratch.sample(logits, temperature, &mut stream.rng)
            };
            stream.tokens.push(next);
            sampled += 1;
            let generated = stream.tokens.len() - stream.prompt_len;
            if stream.eos == Some(next) {
                stream.done = Some(FinishReason::Eos);
            } else if generated >= stream.max_new {
                stream.done = Some(FinishReason::Length);
            }
        }
        self.stats.sampled_tokens += sampled as u64;
        self.stats.peak_active = self.stats.peak_active.max(self.active_len());
        self.stats.peak_cached_tokens = self.stats.peak_cached_tokens.max(self.cached_tokens());
        self.stats.peak_pages_in_use = self
            .stats
            .peak_pages_in_use
            .max(self.kv_pool.pages_in_use());

        self.retire();
        assert!(
            sampled > 0 || self.is_idle(),
            "scheduler iteration made no progress"
        );
        sampled
    }

    /// Drives [`Scheduler::step`] until idle and drains the finished
    /// requests (completion order).
    pub fn run_to_completion(&mut self) -> Vec<FinishedRequest> {
        while !self.is_idle() {
            self.step();
        }
        self.take_finished()
    }

    /// Removes and returns the finished requests accumulated so far
    /// (completion order).
    pub fn take_finished(&mut self) -> Vec<FinishedRequest> {
        std::mem::take(&mut self.finished)
    }

    /// `true` when no request is pending or active.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.slots.iter().all(Option::is_none)
    }

    /// Requests queued but not yet admitted.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Streams currently holding a slot.
    pub fn active_len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// KV pages reserved by active streams (never exceeds the pool
    /// capacity).
    pub fn reserved_pages(&self) -> usize {
        self.reserved_pages
    }

    /// KV positions actually cached right now across active streams.
    pub fn cached_tokens(&self) -> usize {
        self.slots.iter().flatten().map(|s| s.cache.len()).sum()
    }

    /// The KV page pool streams lease from (page accounting lives here).
    pub fn kv_pool(&self) -> &PagePool {
        &self.kv_pool
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// The admission configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.cfg
    }

    /// FIFO admission: only the queue head may be admitted, into the
    /// first free slot, while both a slot and free-page headroom exist
    /// (`reserved + demand <= capacity`, the free-page watermark).
    /// Prefill runs immediately so the stream can sample its first token
    /// this iteration.
    fn admit(&mut self) {
        while let Some(front) = self.pending.front() {
            let demand = self.page_demand(&front.request);
            let over_watermark = self
                .kv_pool
                .capacity()
                .is_some_and(|cap| self.reserved_pages + demand > cap);
            if self.active_len() >= self.cfg.max_batch || over_watermark {
                break;
            }
            let Pending { id, request } = self.pending.pop_front().expect("front exists");
            let (mut cache, mut scratch) = self.spares.pop().unwrap_or_else(|| {
                (
                    self.kv_pool.new_cache(self.model.config().n_layers),
                    DecodeScratch::new(),
                )
            });
            debug_assert!(cache.is_empty(), "spare caches are reset at retirement");
            self.model
                .prefill(&request.prompt, &mut cache, &mut scratch);
            self.stats.prefill_tokens += request.prompt.len() as u64;
            self.reserved_pages += demand;
            let prompt_len = request.prompt.len();
            let stream = Stream {
                id,
                tokens: request.prompt,
                prompt_len,
                max_new: request.max_new,
                eos: request.eos,
                sampling: request.sampling,
                rng: Rng::new(request.sampling.seed),
                cache,
                scratch,
                reserved_pages: demand,
                fresh: true,
                done: if request.max_new == 0 {
                    // Nothing to generate: finished before the first sample.
                    Some(FinishReason::Length)
                } else {
                    None
                },
            };
            if let Some(reason) = stream.done {
                self.finish(stream, reason);
            } else {
                self.place(stream);
            }
        }
    }

    /// Puts `stream` in the first free slot (growing up to `max_batch`).
    fn place(&mut self, stream: Stream) {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.is_none()) {
            *slot = Some(stream);
        } else {
            debug_assert!(self.slots.len() < self.cfg.max_batch);
            self.slots.push(Some(stream));
        }
    }

    /// Moves every done stream out of its slot, releasing its page
    /// reservation and recycling its pages and cache/scratch allocations.
    fn retire(&mut self) {
        for i in 0..self.slots.len() {
            if self.slots[i].as_ref().is_some_and(|s| s.done.is_some()) {
                let stream = self.slots[i].take().expect("checked above");
                let reason = stream.done.expect("checked above");
                self.finish(stream, reason);
            }
        }
    }

    fn finish(&mut self, mut stream: Stream, reason: FinishReason) {
        self.reserved_pages -= stream.reserved_pages;
        // Reset returns every leased page to the pool's free list, where
        // the next admission's prefill picks them up.
        stream.cache.reset();
        self.spares.push((stream.cache, stream.scratch));
        self.finished.push(FinishedRequest {
            id: stream.id,
            tokens: stream.tokens,
            prompt_len: stream.prompt_len,
            reason,
        });
    }
}
