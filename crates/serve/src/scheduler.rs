//! The continuous-batching scheduler.
//!
//! One [`Scheduler`] owns a queue of pending requests, a KV [`PagePool`]
//! and up to `max_batch` active decode streams, each with its own
//! pool-leased [`KvCache`], [`DecodeScratch`] and RNG. Every
//! [`Scheduler::step`] is one engine iteration in the Orca style: admit
//! what fits under the pool's free-page watermark, prefill new arrivals,
//! then advance **every** active stream by one token — by default via
//! grouped variable-length batched attention
//! ([`Model::decode_hidden_batch`]: one KV-page walk per layer for the
//! whole batch, each Anda page decoded at most once per step, attend
//! work fanned by (stream, head)), followed by a single batched LM-head
//! GEMM. `SchedulerConfig::grouped_attention = false` selects the
//! bit-identical per-stream fallback (one `decode_hidden` job per
//! stream in one scope).
//!
//! Admission is *page-accounted*: each admitted request reserves its
//! worst-case page demand (`n_layers · ceil((prompt + max_new) /
//! page_positions)`), so the pool can never be exhausted mid-flight, and
//! a retired stream's pages go straight back to the free list for the
//! next admission. With an Anda storage policy the same memory budget
//! holds `16 / (M + 1 + 5/64)` times more pages, so batches whose FP16
//! KV would not fit are admitted — the long-context headroom of §VI.
//!
//! Shared prompt prefixes compose with both: a prefix registered via
//! [`Scheduler::register_prefix`] is prefilled **once** into a pinned
//! cache, every admitted request referencing it gets a
//! [`KvCache::fork_prefix`] of that cache (refcounted page-table clone,
//! copy-on-write on the partial tail), and the watermark charges the
//! stream only its *unshared* worst-case pages — so N streams over a
//! P-position prefix cost `pages(P) + N·pages(private)`, not
//! `N·pages(P + private)`, in compressed pages when the policy is
//! `Anda{m}`.
//!
//! With [`SchedulerConfig::auto_prefix`] the same sharing is *discovered*
//! instead of declared: every admitted prompt is inserted into a
//! [`RadixTree`] at page granularity, later prompts fork their longest
//! cached whole-page prefix automatically and prefill only the uncovered
//! suffix ([`SchedulerStats::cache_hit_tokens`] counts the skipped
//! positions), and under page pressure the admission loop evicts
//! least-recently-used unreferenced tree leaves before giving up
//! ([`SchedulerStats::radix_evictions`]). The watermark then reads
//! `pinned + reserved + radix_resident + demand <= capacity`.
//!
//! The third consumer of the same fork mechanism is mid-stream:
//! [`SamplingMode::Parallel`] / [`SamplingMode::BestOf`] requests
//! prefill their prompt once, then fork the live cache at its decode
//! position ([`KvCache::fork_full`]) into `n` sibling streams whose
//! divergent tails isolate copy-on-write — the prompt's KV is charged
//! once, and each sample is bit-identical to a standalone request
//! seeded with `seed + sample_index`.
//!
//! Prefill itself is schedulable work, not an admission-time stall:
//! with [`SchedulerConfig::prefill_chunk_tokens`] set, a new prompt is
//! admitted instantly (slot + page reservation only) and worked off as
//! multi-token chunks — each step packs up to the budget's worth of
//! prompt tokens from still-prefilling streams into the *same* grouped
//! batch as every active stream's one-token decode, so chunk attention
//! shares the per-step page-decode cache and no decode stream ever
//! waits on a long prompt. A chunked stream samples nothing until its
//! final chunk lands (same step: the last prompt position's hidden
//! state flows straight into the batched LM head), and the tokens it
//! then produces are bit-identical to monolithic admission.
//!
//! # Priority, fairness and preemption
//!
//! Every request carries a [`Priority`] class. Pending work is queued
//! per class and admitted by *weighted round-robin* (`High:Normal:Low =
//! 4:2:1`, a fixed interleaved schedule), so high-class traffic gets
//! the lion's share of admission grants under contention while low
//! classes are starvation-bounded: a non-empty class's head is offered
//! admission within at most 6 grants to the other classes. Within a
//! class, admission stays FIFO with no overtaking — a blocked class
//! head blocks the admission loop, exactly like the old single-queue
//! FIFO, so an accepted request is still guaranteed to be served.
//!
//! When a blocked arrival *strictly outranks* an active stream and
//! [`SchedulerConfig::preemption`] is on, the scheduler **suspends a
//! victim** instead of waiting: the lowest-priority (then
//! most-page-holding) single-sample stream is unscheduled, its KV pages
//! are released back to the pool ([`KvCache::release_pages`]), and its
//! tokens-so-far plus its live RNG are parked as a resumable work item
//! at the *front* of its class queue. Resume re-prefills the full
//! generated-so-far sequence into a fresh cache — bit-exact because
//! prefill and decode write identical KV rows (the chunked-prefill
//! contract), and the saved RNG continues where it left off, so a
//! suspended-and-resumed stream emits exactly the tokens of a
//! never-preempted twin. Multi-sample groups are never preempted
//! (their shared-page ledger is not suspendable), and a victim is only
//! chosen if its resume demand fits the pool, so every suspended
//! stream eventually finishes.

use std::collections::{HashMap, HashSet, VecDeque};

use anda_llm::kv::{KvPoolConfig, PageDecodeCache, PagePool};
use anda_llm::model::{BatchEntry, BatchOutput};
use anda_llm::{DecodeScratch, KvCache, Model};
use anda_tensor::Rng;
use rayon_lite::ThreadPool;

use crate::radix::{NodeId, RadixTree};
use crate::request::{
    FinishReason, FinishedRequest, Priority, Request, RequestId, SamplingMode, SamplingParams,
};

/// The weighted-round-robin admission schedule: one entry per grant,
/// interleaved so no class waits longer than it must. `High` appears
/// [`Priority::weight`]` = 4` times, `Normal` 2, `Low` 1 — the 4:2:1
/// share (and the ≤ 6-grant starvation bound) the scheduler property
/// tests pin.
const WRR_SCHEDULE: [Priority; 7] = [
    Priority::High,
    Priority::Normal,
    Priority::High,
    Priority::Low,
    Priority::High,
    Priority::Normal,
    Priority::High,
];

/// Admission policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Maximum number of concurrently active decode streams (slots).
    pub max_batch: usize,
    /// Geometry and storage policy of the KV page pool every stream
    /// leases from. `kv.max_pages` is the admission resource: each
    /// admitted request reserves its worst-case page demand
    /// ([`Request::reserve_tokens`] rounded up to pages, per layer), so
    /// the cache footprint can never outgrow the pool mid-flight.
    /// `None` admits on slots alone.
    pub kv: KvPoolConfig,
    /// Advance the batch with grouped variable-length batched attention
    /// ([`Model::decode_hidden_batch`]): one KV-page walk per layer per
    /// step, each Anda page decoded at most once no matter how many
    /// streams attend through it. `false` falls back to one
    /// [`Model::decode_hidden`] job per stream (the bit-identical
    /// oracle path, kept for A/B tests and benches). Default `true`.
    pub grouped_attention: bool,
    /// Automatic prefix caching: insert every admitted prompt into a
    /// page-granular radix tree and admit later prompts by forking
    /// their longest cached whole-page prefix — no
    /// [`Scheduler::register_prefix`] call needed (explicit-prefix
    /// requests bypass the tree; the registry stays the pinned fast
    /// path). Cold tree leaves are evicted LRU under page pressure.
    /// Default `false`: retained prefixes outlive their source streams,
    /// so a drained pool intentionally keeps cache-resident pages —
    /// opt-in for workloads with prompt reuse.
    pub auto_prefix: bool,
    /// Per-step prompt-token budget for *chunked prefill*. `None` (the
    /// default) prefills each prompt whole at admission — every active
    /// decode stream stalls for the full prompt. `Some(budget)` admits
    /// single-sample requests without prefilling: each step packs up to
    /// `budget` prompt tokens from admitted-but-unprefilled streams
    /// (slot order, at least one token per step so admission always
    /// progresses) *alongside* the one-token decode of every active
    /// stream, all through the same grouped batched step — so a long
    /// prompt arrival costs co-scheduled streams at most the marginal
    /// chunk compute per step, never a monolithic stall. A prefilling
    /// stream occupies its full reserved pages but samples nothing
    /// until its last chunk lands (that step it joins the batched LM
    /// head like any decoding stream, and enters the radix tree under
    /// `auto_prefix`). Multi-sample requests and `max_new == 0`
    /// requests keep the monolithic path: siblings fork the primary's
    /// *completed* prefill. Token streams are bit-exact either way; the
    /// knob only reorders when prompt compute happens.
    pub prefill_chunk_tokens: Option<usize>,
    /// Preemption under pressure: when an arrival that *strictly
    /// outranks* an active single-sample stream cannot be admitted (no
    /// free slot, or the page watermark is exceeded even after radix
    /// eviction), suspend the lowest-priority, most-page-holding victim
    /// — release its KV pages, park its tokens-so-far and RNG — and
    /// resume it later by re-prefilling its full generated-so-far
    /// sequence (bit-exact; see the module docs). `false` makes a
    /// blocked arrival wait instead, whatever its class. Default
    /// `true`; with single-class (all-[`Priority::Normal`]) traffic
    /// preemption never triggers, so uniform workloads behave exactly
    /// as before either way.
    pub preemption: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 8,
            kv: KvPoolConfig::default(),
            grouped_attention: true,
            auto_prefix: false,
            prefill_chunk_tokens: None,
            preemption: true,
        }
    }
}

/// Why [`Scheduler::submit`] rejected a request up front. Rejecting
/// unservable requests at submission (rather than queuing them) is what
/// makes FIFO admission starvation-free: an admitted queue head always
/// fits once enough earlier streams finish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The prompt was empty.
    EmptyPrompt,
    /// A prompt (or EOS) token id is outside the model's vocabulary.
    TokenOutOfVocab {
        /// The offending token.
        token: usize,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// `prompt + max_new` exceeds the model's `max_seq`.
    ExceedsMaxSeq {
        /// Requested worst-case length.
        total: usize,
        /// The model's maximum sequence length.
        max_seq: usize,
    },
    /// The request's worst-case KV page demand exceeds the pool's raw
    /// capacity: it could **never** be admitted, no matter what else
    /// drains or is released. Permanent — resubmitting is pointless.
    ExceedsPoolCapacity {
        /// Worst-case unshared page demand across all layers.
        pages: usize,
        /// The pool's total capacity in pages.
        capacity: usize,
    },
    /// The request would fit an empty pool, but not the pool as
    /// currently *pinned* (registered prefix caches hold pages for as
    /// long as they stay registered). Transient — resubmitting after a
    /// [`Scheduler::release_prefix`] can succeed. Distinct from
    /// [`SubmitError::ExceedsPoolCapacity`], which the old single
    /// variant conflated with this case.
    PoolSaturated {
        /// Worst-case unshared page demand across all layers.
        pages: usize,
        /// Capacity currently available to streams (total minus pinned
        /// prefix pages).
        available: usize,
    },
    /// The request names a prefix key that is not (or no longer) in the
    /// scheduler's registry.
    UnknownPrefix,
    /// [`Scheduler::register_prefix`] was called with a key that is
    /// already registered (release it first; prefix contents are
    /// immutable while registered).
    PrefixAlreadyRegistered,
    /// A multi-sample mode requested zero samples.
    InvalidSampleCount,
    /// A multi-sample request wants more concurrent sibling streams than
    /// the scheduler has slots, so its group could never be admitted
    /// whole (sibling forks must all decode concurrently to share the
    /// prompt cache).
    SamplesExceedBatch {
        /// Requested sample count.
        n: usize,
        /// The scheduler's slot count.
        max_batch: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SubmitError::EmptyPrompt => write!(f, "prompt must not be empty"),
            SubmitError::TokenOutOfVocab { token, vocab } => {
                write!(f, "token {token} out of vocab {vocab}")
            }
            SubmitError::ExceedsMaxSeq { total, max_seq } => {
                write!(f, "prompt + max_new = {total} exceeds max_seq {max_seq}")
            }
            SubmitError::ExceedsPoolCapacity { pages, capacity } => {
                write!(
                    f,
                    "worst-case KV demand of {pages} pages exceeds the pool's total {capacity} \
                     (can never fit)"
                )
            }
            SubmitError::PoolSaturated { pages, available } => {
                write!(
                    f,
                    "worst-case KV demand of {pages} pages exceeds the {available} currently \
                     unpinned (retry after releasing a prefix)"
                )
            }
            SubmitError::UnknownPrefix => {
                write!(f, "request names a prefix key that is not registered")
            }
            SubmitError::PrefixAlreadyRegistered => {
                write!(f, "a prefix is already registered under this key")
            }
            SubmitError::InvalidSampleCount => {
                write!(f, "sampling mode must request at least one sample")
            }
            SubmitError::SamplesExceedBatch { n, max_batch } => {
                write!(
                    f,
                    "{n} parallel samples exceed the scheduler's {max_batch} slots"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`Scheduler::release_prefix`] refused, naming exactly what blocks
/// the release so the caller can tell "retry later" from "wrong key"
/// (the old `bool` return conflated the two).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReleasePrefixError {
    /// No prefix is registered under the given key (perhaps it was
    /// already released) — retrying cannot succeed.
    UnknownKey,
    /// The prefix is still referenced; releasing now would strand the
    /// dependents. Retry once they drain.
    InUse {
        /// Active streams currently decoding on a fork of this prefix.
        active_forks: usize,
        /// Queued requests that name this prefix and are entitled to be
        /// admitted against it.
        pending: Vec<RequestId>,
    },
}

impl std::fmt::Display for ReleasePrefixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReleasePrefixError::UnknownKey => {
                write!(f, "no prefix is registered under this key")
            }
            ReleasePrefixError::InUse {
                active_forks,
                pending,
            } => {
                write!(f, "prefix still in use: {active_forks} active fork(s)")?;
                if !pending.is_empty() {
                    write!(f, ", pending request(s)")?;
                    for id in pending {
                        write!(f, " {id}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ReleasePrefixError {}

/// Why [`Scheduler::cancel`] (or a handle operation on a cancelled
/// request) failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CancelError {
    /// The id was never issued by this scheduler, or its result has
    /// already been drained.
    Unknown(RequestId),
    /// The request already finished; its results are (or were)
    /// available.
    AlreadyFinished(RequestId),
    /// The request was already cancelled.
    Cancelled(RequestId),
}

impl std::fmt::Display for CancelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelError::Unknown(id) => write!(f, "{id} is not live on this scheduler"),
            CancelError::AlreadyFinished(id) => write!(f, "{id} already finished"),
            CancelError::Cancelled(id) => write!(f, "{id} was already cancelled"),
        }
    }
}

impl std::error::Error for CancelError {}

/// What a successful [`Scheduler::cancel`] tore down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cancelled {
    /// The request was still queued; its queue slot was freed.
    Pending,
    /// The request was actively decoding; all its streams (the whole
    /// sibling group for multi-sample requests) were retired and their
    /// pages released this very step.
    Active {
        /// Streams retired (the group size for multi-sample requests).
        streams: usize,
    },
    /// The request was suspended by preemption; its parked resume item
    /// was dropped.
    Suspended,
}

/// Where a live request currently is in the engine lifecycle
/// (`Pending → Prefilling → Decoding ⇄ Suspended → Finished`); see
/// [`Scheduler::status`]. `Finished`/`Cancelled` are not *live* states
/// — the scheduler reports `None` for them, and the [`Engine`] layers
/// its own bookkeeping on top.
///
/// [`Engine`]: crate::Engine
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamStatus {
    /// Queued, not yet admitted.
    Pending,
    /// Admitted and working off its prompt (chunked prefill, or a
    /// resumed stream re-prefilling its generated-so-far sequence).
    Prefilling,
    /// Actively decoding one token per step.
    Decoding,
    /// Preempted: pages released, parked for resume.
    Suspended,
}

/// One coherent view of the scheduler's page accounting
/// ([`Scheduler::pool_snapshot`]) — replaces the old getter sprawl
/// (`pinned_pages()`, `reserved_pages()`, `radix_resident_pages()`, …)
/// with a single struct read at one instant. The admission watermark
/// invariant reads `pinned_pages + reserved_pages +
/// radix_resident_pages <= capacity` and physical usage satisfies
/// `pages_in_use <= pinned_pages + reserved_pages +
/// radix_resident_pages` (reservations are worst-case).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Pool capacity in pages (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Physical pages ever created by the pool.
    pub pages_created: usize,
    /// Physical pages currently leased out.
    pub pages_in_use: usize,
    /// Pages on the free list awaiting reuse.
    pub pages_free: usize,
    /// Pages pinned by registered prefix caches.
    pub pinned_pages: usize,
    /// Worst-case pages reserved by active streams and live sampling
    /// groups (unshared demand).
    pub reserved_pages: usize,
    /// Pages held resident by the automatic prefix cache's radix tree.
    pub radix_resident_pages: usize,
    /// KV positions actually cached right now across active streams.
    pub cached_tokens: usize,
}

/// One coherent view of the automatic prefix cache
/// ([`Scheduler::prefix_cache_snapshot`]): radix-tree shape plus the
/// hit/eviction counters that used to be scattered across getters and
/// stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixCacheSnapshot {
    /// Nodes currently in the radix tree.
    pub nodes: usize,
    /// Pages the tree holds resident (counted by the admission
    /// watermark).
    pub resident_pages: usize,
    /// Nodes evicted under page pressure, cumulative.
    pub evictions: u64,
    /// Prompt positions served from the tree instead of prefilled,
    /// cumulative.
    pub hit_tokens: u64,
}

/// Aggregate counters, mostly for benches and capacity tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedulerStats {
    /// Engine iterations run.
    pub steps: u64,
    /// Tokens sampled across all streams (the serving throughput
    /// numerator).
    pub sampled_tokens: u64,
    /// Prompt tokens prefilled.
    pub prefill_tokens: u64,
    /// Most streams ever active in one iteration.
    pub peak_active: usize,
    /// Most KV positions ever cached at once across active streams.
    pub peak_cached_tokens: usize,
    /// Most KV pages ever leased from the pool at once. Physical,
    /// deduplicated pages: a prefix page shared by N streams counts
    /// once, which is exactly the memory win prefix sharing buys.
    pub peak_pages_in_use: usize,
    /// Streams admitted by forking a registered prefix cache (each one
    /// skipped re-prefilling its prefix tokens).
    pub prefix_forks: u64,
    /// Compressed (Anda) KV pages decoded by the grouped batched-attention
    /// read path, cumulative across steps. Each physical page counts at
    /// most once per layer per step regardless of how many streams attend
    /// through it — the decode-once guarantee the `grouped_attention`
    /// tests pin. Stays 0 under float policies (pages read in place) and
    /// on the per-stream fallback path (which has no shared accounting).
    pub pages_decoded: u64,
    /// Prompt positions automatic prefix caching served from the radix
    /// tree instead of prefilling (`auto_prefix` only; explicit-registry
    /// hits are visible as `prefix_forks` instead). The hit-rate
    /// numerator: `cache_hit_tokens / (cache_hit_tokens +
    /// prefill_tokens)` is the fraction of prompt work the tree
    /// absorbed.
    pub cache_hit_tokens: u64,
    /// Radix-tree nodes evicted under page pressure (LRU leaves with no
    /// live forks and no pinned ancestor), cumulative.
    pub radix_evictions: u64,
    /// Sibling streams admitted by forking a live cache at its decode
    /// position for [`SamplingMode::Parallel`] / [`SamplingMode::BestOf`]
    /// (the primary stream of a group is not counted — it prefilled).
    pub sample_forks: u64,
    /// Prefill chunks packed into decode steps (one per stream per step
    /// granted budget), cumulative. Stays 0 without
    /// [`SchedulerConfig::prefill_chunk_tokens`].
    pub prefill_chunks: u64,
    /// Prompt tokens prefilled monolithically inside admission while at
    /// least one other stream was active — each one a token's worth of
    /// stall imposed on every co-scheduled decode stream. The number
    /// chunked prefill exists to drive to 0: with
    /// [`SchedulerConfig::prefill_chunk_tokens`] set, single-sample
    /// admissions never prefill inline, so only multi-sample groups can
    /// still add here.
    pub stalled_prefill_tokens: u64,
    /// Streams suspended by preemption (pages released, parked for
    /// resume), cumulative.
    pub preemptions: u64,
    /// Suspended streams re-admitted (each re-prefilled its full
    /// generated-so-far sequence), cumulative. At drain this equals
    /// [`SchedulerStats::preemptions`] minus cancelled suspensions.
    pub resumes: u64,
    /// Tokens re-prefilled by resumes — the compute cost preemption
    /// paid for its memory reclamation (these positions had already
    /// been prefilled or decoded once before the suspend).
    pub resumed_prefill_tokens: u64,
    /// Requests cancelled via [`Scheduler::cancel`] (each one counted
    /// once, whether it was pending, active, or suspended).
    pub cancelled: u64,
}

/// One active decode stream.
struct Stream {
    id: RequestId,
    /// Prompt followed by the tokens generated so far.
    tokens: Vec<usize>,
    prompt_len: usize,
    max_new: usize,
    eos: Option<usize>,
    sampling: SamplingParams,
    /// Admission class; decides preemption rank (only strictly
    /// lower-priority streams may be suspended for an arrival).
    priority: Priority,
    rng: Rng,
    cache: KvCache,
    scratch: DecodeScratch,
    /// KV pages reserved against the pool for this stream (worst-case
    /// *unshared* pages — fully shared prefix pages are pinned by the
    /// registry, not charged here).
    reserved_pages: usize,
    /// The registry key this stream's cache was forked from, if any
    /// (holds the registration alive until the stream retires).
    prefix: Option<String>,
    /// The radix-tree node this stream's cache was forked from (or, for
    /// sampling siblings, that its group's primary forked from); holds
    /// an acquire on the node so eviction cannot drop it mid-decode.
    radix_node: Option<NodeId>,
    /// The sampling group this stream belongs to (keyed by the shared
    /// request id), when it was admitted as one of `n > 1` samples.
    group: Option<u64>,
    /// Which sample of its group this stream is (`0` for singles and
    /// group primaries); its RNG was seeded with `seed + sample_index`.
    sample_index: usize,
    /// Σ `ln softmax(logits)[token]` over generated tokens, accumulated
    /// in `f64` — the best-of selection score. Only maintained for
    /// grouped streams (singles skip the log-softmax work).
    cum_logprob: f64,
    /// Admitted this iteration: its first token comes from the prefill
    /// logits, so it skips the decode phase once. Never set for
    /// chunked-prefill streams, whose first token comes from the batched
    /// LM head of their final chunk's step.
    fresh: bool,
    /// Chunked-prefill cursor: prompt positions `[0, cursor)` are cached
    /// (the fork depth at admission, then advanced by each granted
    /// chunk); `None` once the whole prompt is prefilled — or always,
    /// for monolithic admissions. A `Some` stream decodes nothing and
    /// samples nothing; it only consumes granted chunk budget.
    prefill_cursor: Option<usize>,
    /// Positions the chunked cursor must reach before this stream
    /// samples: `prompt_len` for a normal admission, `tokens.len()` at
    /// resume for a preemption-suspended stream (whose generated-so-far
    /// suffix re-prefills too, and which must never re-enter the radix
    /// tree — its "prompt" isn't one).
    prefill_target: usize,
    /// Prompt tokens granted to this stream by the current step's budget
    /// packing (chunk start is the cursor); 0 outside a step or when
    /// budget-starved.
    step_chunk: usize,
    done: Option<FinishReason>,
}

struct Pending {
    id: RequestId,
    request: Request,
}

/// A preempted stream parked for resume: everything needed to continue
/// bit-exactly except its KV pages, which went back to the pool. The
/// token prefix (prompt + generated-so-far) is re-prefilled at resume —
/// prefill writes the identical KV rows decode did — and the live RNG
/// continues, so the resumed stream's remaining tokens match a
/// never-preempted twin's exactly. Only single-sample streams are ever
/// suspended, so no group/logprob state is parked.
struct SuspendedStream {
    id: RequestId,
    /// Prompt followed by every token generated before the suspend
    /// (the last one's KV row was not yet appended — exactly the state
    /// a decode step resumes from).
    tokens: Vec<usize>,
    prompt_len: usize,
    max_new: usize,
    eos: Option<usize>,
    sampling: SamplingParams,
    priority: Priority,
    /// The live RNG, mid-stream: resume must draw the same samples the
    /// uninterrupted stream would have.
    rng: Rng,
}

/// One unit of admissible work in a class queue: a not-yet-admitted
/// request, or a suspended stream awaiting resume (parked at the front
/// of its class so it is that class's next grant).
enum WorkItem {
    New(Pending),
    Resume(SuspendedStream),
}

impl WorkItem {
    fn id(&self) -> RequestId {
        match self {
            WorkItem::New(p) => p.id,
            WorkItem::Resume(s) => s.id,
        }
    }
}

/// Shared bookkeeping of one multi-sample request's sibling streams.
struct GroupState {
    /// Page reservation for the prompt's whole pages, charged once for
    /// the group (each member additionally reserves its private tail
    /// pages) and released only when the **last** member retires — the
    /// physical prompt pages stay leased as long as any sibling shares
    /// them, regardless of retirement order.
    shared_pages: usize,
    /// Members still decoding.
    remaining: usize,
    /// Report only the best completion (vs every completion).
    best_of: bool,
    /// Finished candidates awaiting best-of selection (unused for
    /// parallel mode, which reports each sample as it finishes).
    collected: Vec<FinishedRequest>,
}

/// One registered shared prefix: its tokens, the pinned cache holding
/// the prefilled pages every admitted stream forks, and bookkeeping.
struct PrefixEntry {
    tokens: Vec<usize>,
    cache: KvCache,
    /// Pages the pinned cache pins across all layers (charged to the
    /// registry, not to any stream).
    pinned_pages: usize,
    /// Active streams currently forked from this prefix (blocks
    /// release).
    active: usize,
}

/// Continuous-batching request scheduler over [`Model::decode_step`]-style
/// incremental inference with pool-paged KV storage.
///
/// Admission is FIFO with completed-stream slot and page reuse: only the
/// queue head is ever admitted (no overtaking, hence no starvation), into
/// the first free slot, reusing a retired stream's
/// `KvCache`/`DecodeScratch` allocations and recycled pages. Decode is
/// iteration-level: every active stream advances one token per
/// [`Scheduler::step`].
///
/// # Determinism
///
/// Each stream's output is bit-identical to running its request alone
/// through [`Model::generate_with_cache`] on a same-policy cache, with an
/// RNG seeded by its [`SamplingParams::seed`] — regardless of batch
/// composition, arrival order, page size, or thread count. See
/// `tests/batched_exact.rs` and `tests/paged_kv.rs`.
pub struct Scheduler<'a> {
    model: &'a Model,
    pool: &'a ThreadPool,
    cfg: SchedulerConfig,
    /// The KV page pool every stream's cache leases from.
    kv_pool: PagePool,
    /// Pending work per priority class ([`Priority::index`]-indexed):
    /// FIFO within a class, weighted round-robin between classes.
    /// Suspended streams re-enter at the front of their class.
    pending: [VecDeque<WorkItem>; 3],
    /// Cursor into [`WRR_SCHEDULE`]; advances one entry per admission
    /// grant, parks on the blocked entry otherwise (no overtaking).
    wrr_cursor: usize,
    slots: Vec<Option<Stream>>,
    /// Retired caches awaiting reuse by future non-prefix admissions
    /// (their pages are already back on the pool's free list; prefix
    /// admissions build their cache by forking the registry's).
    spare_caches: Vec<KvCache>,
    /// Retired scratches awaiting reuse by any future admission.
    spare_scratches: Vec<DecodeScratch>,
    /// Registered shared prefixes by key.
    prefixes: HashMap<String, PrefixEntry>,
    /// The automatic prefix cache (`auto_prefix`): page-granular radix
    /// tree over admitted prompts. Stays empty when the knob is off.
    radix: RadixTree,
    /// Live multi-sample groups by request id.
    groups: HashMap<u64, GroupState>,
    /// Pages pinned by all registered prefix caches (counted against
    /// the pool capacity alongside stream reservations).
    pinned_pages: usize,
    batch: BatchOutput,
    /// Shared per-layer decode arena for grouped batched attention
    /// (identity-keyed, so shared prefix pages decode once per step).
    decode_cache: PageDecodeCache,
    finished: Vec<FinishedRequest>,
    /// Ids torn down by [`Scheduler::cancel`]: a repeated cancel
    /// reports [`CancelError::Cancelled`] instead of `Unknown`.
    cancelled: HashSet<RequestId>,
    next_id: u64,
    /// Sum of active streams' unshared page reservations
    /// (`pinned + reserved <= kv.max_pages`).
    reserved_pages: usize,
    stats: SchedulerStats,
}

impl<'a> Scheduler<'a> {
    /// A scheduler over `model` using the global thread pool.
    pub fn new(model: &'a Model, cfg: SchedulerConfig) -> Self {
        Self::with_pool(model, cfg, rayon_lite::global())
    }

    /// A scheduler batching on an explicit pool (tests pin thread counts
    /// this way; production uses [`Scheduler::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero, the page size is zero, or an Anda
    /// policy has invalid mantissa bits.
    pub fn with_pool(model: &'a Model, cfg: SchedulerConfig, pool: &'a ThreadPool) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        Scheduler {
            model,
            pool,
            cfg,
            kv_pool: PagePool::new(cfg.kv),
            pending: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            wrr_cursor: 0,
            slots: Vec::new(),
            spare_caches: Vec::new(),
            spare_scratches: Vec::new(),
            prefixes: HashMap::new(),
            radix: RadixTree::new(cfg.kv.page_positions, model.config().n_layers),
            groups: HashMap::new(),
            pinned_pages: 0,
            batch: BatchOutput::new(),
            decode_cache: PageDecodeCache::new(),
            finished: Vec::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            reserved_pages: 0,
            stats: SchedulerStats::default(),
        }
    }

    /// Worst-case KV page demand `request` is charged across all layers
    /// — the *single* place the page math lives, used by both the
    /// submit-time capacity rejection and the admission watermark so the
    /// two can never drift. Equals `demand_with_hit(request, 0)`: the
    /// submit-time bound assumes no automatic cache hit, so admission
    /// (which may discount a radix match) only ever needs *less*.
    ///
    /// # Panics
    ///
    /// Panics if the request names an unregistered prefix (submit
    /// validates the key first).
    pub fn pages_needed(&self, request: &Request) -> usize {
        self.demand_with_hit(request, 0)
    }

    /// [`Scheduler::pages_needed`] with `radix_depth` prompt positions
    /// already served by the automatic prefix cache.
    ///
    /// Per stream the demand is `n_layers · pages(prefix + prompt +
    /// max_new)` minus every page *fully* covered by a shared source —
    /// an explicit registry prefix (pinned pages, forked refcounted) or
    /// the radix match (tree-resident pages, ditto; the two are mutually
    /// exclusive since explicit-prefix requests bypass the tree). A
    /// partial tail page stays charged: copy-on-write privatizes it on
    /// the stream's first append. All subtractions saturate — the
    /// discounts are derived quantities, and an accounting bound must
    /// clamp rather than underflow-panic at boundary geometries (e.g. a
    /// page-aligned prefix with a zero-length tail).
    ///
    /// A multi-sample request ([`SamplingMode::samples`]` = n > 1`)
    /// additionally charges `n - 1` sibling tails: each sibling forks
    /// the primary's live cache after prefill, sharing every whole
    /// prompt page, so only its pages *beyond* the prompt's whole pages
    /// (private partial tail + generation) multiply.
    fn demand_with_hit(&self, request: &Request, radix_depth: usize) -> usize {
        let pp = self.cfg.kv.page_positions;
        let n_layers = self.model.config().n_layers;
        let prefix_len = request
            .prefix
            .as_deref()
            .map_or(0, |key| self.prefixes[key].tokens.len());
        let total = prefix_len.saturating_add(request.reserve_tokens());
        let pages_total = self.cfg.kv.pages_for(total);
        let shared_whole = if prefix_len > 0 {
            prefix_len / pp
        } else {
            radix_depth / pp
        };
        let primary = n_layers * pages_total.saturating_sub(shared_whole);
        let n = request.mode.samples();
        if n <= 1 {
            return primary;
        }
        primary + (n - 1) * self.member_tail_pages(request, prefix_len)
    }

    /// Worst-case KV page demand of resuming suspended stream `s`: its
    /// full sequence so far plus its remaining generation budget, with
    /// no sharing discounts (resume re-prefills privately). The sum
    /// `tokens.len() + (max_new - generated)` telescopes to
    /// `prompt_len + max_new`, so the demand is fixed at suspend time —
    /// victim selection checks it against the pool capacity up front,
    /// guaranteeing every suspended stream can eventually resume.
    fn resume_demand(&self, s: &SuspendedStream) -> usize {
        self.model.config().n_layers * self.cfg.kv.pages_for(s.prompt_len + s.max_new)
    }

    /// Pages one member of a multi-sample group reserves privately: its
    /// worst-case pages beyond the prompt's whole (group-shared) pages.
    fn member_tail_pages(&self, request: &Request, prefix_len: usize) -> usize {
        let total = prefix_len.saturating_add(request.reserve_tokens());
        let prompt_whole =
            prefix_len.saturating_add(request.prompt.len()) / self.cfg.kv.page_positions;
        self.model.config().n_layers * self.cfg.kv.pages_for(total).saturating_sub(prompt_whole)
    }

    /// Queues a request, validating it is servable under this model,
    /// pool and prefix registry. Accepted requests are guaranteed to
    /// terminate with exactly `min(max_new, first EOS position + 1)`
    /// generated tokens.
    pub fn submit(&mut self, request: Request) -> Result<RequestId, SubmitError> {
        if request.prompt.is_empty() {
            return Err(SubmitError::EmptyPrompt);
        }
        let vocab = self.model.config().vocab;
        if let Some(&token) = request.prompt.iter().find(|&&t| t >= vocab) {
            return Err(SubmitError::TokenOutOfVocab { token, vocab });
        }
        if let Some(eos) = request.eos {
            if eos >= vocab {
                return Err(SubmitError::TokenOutOfVocab { token: eos, vocab });
            }
        }
        let prefix_len = match request.prefix.as_deref() {
            None => 0,
            Some(key) => match self.prefixes.get(key) {
                Some(entry) => entry.tokens.len(),
                None => return Err(SubmitError::UnknownPrefix),
            },
        };
        let total = prefix_len.saturating_add(request.reserve_tokens());
        let max_seq = self.model.config().max_seq;
        if total > max_seq {
            return Err(SubmitError::ExceedsMaxSeq { total, max_seq });
        }
        let n = request.mode.samples();
        if n == 0 {
            return Err(SubmitError::InvalidSampleCount);
        }
        if n > self.cfg.max_batch {
            return Err(SubmitError::SamplesExceedBatch {
                n,
                max_batch: self.cfg.max_batch,
            });
        }
        let pages = self.pages_needed(&request);
        if let Some(capacity) = self.kv_pool.capacity() {
            // Two distinct refusals: a demand beyond the *raw* capacity
            // can never be served (permanent), while one beyond the
            // currently unpinned capacity could fit after a
            // `release_prefix` (transient). Saturating: registration
            // keeps `pinned <= capacity`, but a capacity check must
            // degrade to "zero headroom", never underflow, if that
            // invariant is ever perturbed.
            if pages > capacity {
                return Err(SubmitError::ExceedsPoolCapacity { pages, capacity });
            }
            let available = capacity.saturating_sub(self.pinned_pages);
            if pages > available {
                return Err(SubmitError::PoolSaturated { pages, available });
            }
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let class = request.priority.index();
        self.pending[class].push_back(WorkItem::New(Pending { id, request }));
        Ok(id)
    }

    /// Registers a shared prefix under `key`: validates it, prefills it
    /// **once** into a pinned cache leased from the scheduler's pool,
    /// and from then on admits `key`-referencing requests by *forking*
    /// that cache — page-table clones over refcounted pages, no row
    /// copies, no re-prefill. Returns the page count the pinned cache
    /// pins (charged against the pool capacity until release).
    ///
    /// The pin is counted like a permanent reservation, so registration
    /// is rejected (`ExceedsPoolCapacity`) unless the prefix fits
    /// alongside every currently reserved stream page — guaranteeing
    /// the immediate prefill cannot exhaust the pool mid-flight — *and*
    /// alongside the worst pending request's demand, so the pin can
    /// never strand a request that submit already accepted (accepted
    /// requests stay guaranteed to terminate).
    pub fn register_prefix(
        &mut self,
        key: impl Into<String>,
        tokens: Vec<usize>,
    ) -> Result<usize, SubmitError> {
        let key = key.into();
        if self.prefixes.contains_key(&key) {
            return Err(SubmitError::PrefixAlreadyRegistered);
        }
        if tokens.is_empty() {
            return Err(SubmitError::EmptyPrompt);
        }
        let vocab = self.model.config().vocab;
        if let Some(&token) = tokens.iter().find(|&&t| t >= vocab) {
            return Err(SubmitError::TokenOutOfVocab { token, vocab });
        }
        let max_seq = self.model.config().max_seq;
        if tokens.len() > max_seq {
            return Err(SubmitError::ExceedsMaxSeq {
                total: tokens.len(),
                max_seq,
            });
        }
        let pages = self.model.config().n_layers * self.kv_pool.pages_for(tokens.len());
        if let Some(cap) = self.kv_pool.capacity() {
            if pages > cap {
                return Err(SubmitError::ExceedsPoolCapacity {
                    pages,
                    capacity: cap,
                });
            }
            // The pin must leave room for the immediate prefill next to
            // every active reservation, and for the largest already-
            // accepted work item once the pool drains — pending request
            // or suspended stream — otherwise this registration would
            // strand work submit already promised to serve.
            let worst_pending = self
                .pending
                .iter()
                .flatten()
                .map(|item| match item {
                    WorkItem::New(p) => self.pages_needed(&p.request),
                    WorkItem::Resume(s) => self.resume_demand(s),
                })
                .max()
                .unwrap_or(0);
            let available = cap
                .saturating_sub(self.pinned_pages)
                .saturating_sub(self.reserved_pages.max(worst_pending));
            if pages > available {
                return Err(SubmitError::PoolSaturated { pages, available });
            }
        }
        let mut cache = self.kv_pool.new_cache(self.model.config().n_layers);
        let mut scratch = self.spare_scratches.pop().unwrap_or_default();
        self.model.prefill(&tokens, &mut cache, &mut scratch);
        self.spare_scratches.push(scratch);
        self.stats.prefill_tokens += tokens.len() as u64;
        self.stats.peak_pages_in_use = self
            .stats
            .peak_pages_in_use
            .max(self.kv_pool.pages_in_use());
        self.pinned_pages += pages;
        self.prefixes.insert(
            key,
            PrefixEntry {
                tokens,
                cache,
                pinned_pages: pages,
                active: 0,
            },
        );
        Ok(pages)
    }

    /// Releases the prefix registered under `key`, recycling the pinned
    /// pages no live stream still shares, and returns the page count
    /// unpinned. Refuses while any active stream was forked from it or
    /// any pending request references it — so a successful release means
    /// the pinned accounting and the physical pages really are reclaimed
    /// together. The error distinguishes the two failure causes the old
    /// `bool` return conflated: [`ReleasePrefixError::UnknownKey`] (the
    /// key is not registered; retrying is pointless) vs
    /// [`ReleasePrefixError::InUse`], which names the blockers — the
    /// live fork count and the ids of pending requests that reference
    /// the key — so callers can wait for exactly those to drain.
    pub fn release_prefix(&mut self, key: &str) -> Result<usize, ReleasePrefixError> {
        let Some(entry) = self.prefixes.get(key) else {
            return Err(ReleasePrefixError::UnknownKey);
        };
        let mut pending: Vec<RequestId> = self
            .pending
            .iter()
            .flatten()
            .filter_map(|item| match item {
                WorkItem::New(p) if p.request.prefix.as_deref() == Some(key) => Some(p.id),
                // Suspended streams re-prefill their full sequence
                // privately at resume — they no longer depend on the
                // pinned cache.
                _ => None,
            })
            .collect();
        pending.sort();
        if entry.active > 0 || !pending.is_empty() {
            return Err(ReleasePrefixError::InUse {
                active_forks: entry.active,
                pending,
            });
        }
        let entry = self.prefixes.remove(key).expect("checked above");
        self.pinned_pages -= entry.pinned_pages;
        // Dropping the pinned cache releases its leases; every page no
        // longer co-owned rejoins the pool's free list.
        drop(entry.cache);
        Ok(entry.pinned_pages)
    }

    /// The token length of the prefix registered under `key`.
    pub fn prefix_len(&self, key: &str) -> Option<usize> {
        self.prefixes.get(key).map(|e| e.tokens.len())
    }

    /// Runs one engine iteration: admit whatever fits, then advance
    /// every active stream by one token (a grouped batched decode — or
    /// the per-stream fallback — for the hidden-state work, then one
    /// batched LM-head dispatch). With
    /// [`SchedulerConfig::prefill_chunk_tokens`] set, admitted-but-
    /// unprefilled streams also advance: up to the budget's worth of
    /// their prompt tokens ride in the same batch as everyone else's
    /// decode, so a long prompt never stalls active streams. Returns
    /// the number of tokens sampled this iteration.
    pub fn step(&mut self) -> usize {
        if self.is_idle() {
            return 0;
        }
        self.stats.steps += 1;
        self.admit();

        // Chunk-budget packing: grant this step's prompt-token budget
        // to still-prefilling streams in slot order. The budget is
        // clamped to at least 1 so the head of the prefill line always
        // advances; decode streams are untouched — their one-token
        // entries share the batch (and the page-decode cache) with the
        // chunks below.
        let mut chunk_budget = match self.cfg.prefill_chunk_tokens {
            Some(b) => b.max(1),
            None => 0,
        };
        let mut chunk_tokens = 0usize;
        for stream in self.slots.iter_mut().flatten() {
            stream.step_chunk = 0;
            if chunk_budget == 0 {
                continue;
            }
            let Some(cursor) = stream.prefill_cursor else {
                continue;
            };
            let take = (stream.prefill_target - cursor).min(chunk_budget);
            stream.step_chunk = take;
            chunk_budget -= take;
            chunk_tokens += take;
        }

        // Decode phase. Grouped (default): one KV-page walk per layer
        // for the whole batch via `Model::decode_hidden_batch` — each
        // Anda page decodes at most once per step into the scheduler's
        // shared arena no matter how many streams attend through it,
        // with attend work fanned by (stream, head). Fallback: every
        // non-fresh stream computes its next hidden state as one job
        // inside a single scope for the whole batch — kernels inside
        // the jobs run serially (`Model::decode_hidden`), so pool
        // dispatch happens once per iteration, not per kernel. Both
        // paths are bit-identical; streams lease KV pages from the
        // shared pool concurrently either way, with the pool lock taken
        // only at page boundaries.
        let model = self.model;
        if self.cfg.grouped_attention {
            let mut entries: Vec<BatchEntry<'_>> = self
                .slots
                .iter_mut()
                .flatten()
                .filter_map(|stream| {
                    let Stream {
                        tokens,
                        cache,
                        scratch,
                        prefill_cursor,
                        step_chunk,
                        fresh,
                        ..
                    } = stream;
                    if let Some(cursor) = *prefill_cursor {
                        // Still prefilling: the granted chunk is one
                        // multi-token entry (span = chunk length).
                        if *step_chunk == 0 {
                            return None;
                        }
                        return Some(BatchEntry {
                            tokens: &tokens[cursor..cursor + *step_chunk],
                            pos: cursor,
                            cache,
                            scratch,
                        });
                    }
                    if *fresh {
                        return None;
                    }
                    Some(BatchEntry {
                        tokens: &tokens[tokens.len() - 1..],
                        pos: tokens.len() - 1,
                        cache,
                        scratch,
                    })
                })
                .collect();
            model.decode_hidden_batch(&mut entries, &mut self.decode_cache, self.pool);
            self.stats.pages_decoded = self.decode_cache.pages_decoded();
        } else {
            self.pool.scope(|sc| {
                for stream in self.slots.iter_mut().flatten() {
                    let Stream {
                        tokens,
                        cache,
                        scratch,
                        prefill_cursor,
                        step_chunk,
                        fresh,
                        ..
                    } = stream;
                    if let Some(cursor) = *prefill_cursor {
                        if *step_chunk == 0 {
                            continue;
                        }
                        let chunk = &tokens[cursor..cursor + *step_chunk];
                        sc.spawn(move || {
                            model.prefill_chunk(chunk, cache, scratch);
                        });
                        continue;
                    }
                    if *fresh {
                        continue;
                    }
                    let token = *tokens.last().expect("stream holds its prompt");
                    let pos = tokens.len() - 1;
                    sc.spawn(move || {
                        model.decode_hidden(token, pos, cache, scratch);
                    });
                }
            });
        }

        // Advance the cursors for the chunks just landed. A stream
        // whose final chunk completed flips to decode mode *this step*:
        // its last prompt position's hidden state is already in
        // scratch, so it flows into the batched LM head below and
        // samples its first token now — once its turn in the budget
        // comes, chunked admission costs no extra steps versus
        // monolithic.
        for stream in self.slots.iter_mut().flatten() {
            if stream.step_chunk == 0 {
                continue;
            }
            let take = stream.step_chunk;
            stream.step_chunk = 0;
            let cursor = stream
                .prefill_cursor
                .expect("granted budget implies a cursor")
                + take;
            self.stats.prefill_tokens += take as u64;
            self.stats.prefill_chunks += 1;
            if cursor == stream.prefill_target {
                stream.prefill_cursor = None;
                // The completed prompt enters the prefix cache only now
                // — insert-on-completion mirrors the monolithic path's
                // insert-after-prefill, so the tree never serves a
                // partially prefilled prefix. Resumed streams
                // (`prefill_target > prompt_len`) stay out: their
                // re-prefilled sequence includes generated tokens,
                // which are not a prompt.
                if self.cfg.auto_prefix
                    && stream.prefix.is_none()
                    && stream.prefill_target == stream.prompt_len
                {
                    self.radix
                        .insert(&stream.tokens[..stream.prompt_len], &mut stream.cache);
                }
            } else {
                stream.prefill_cursor = Some(cursor);
            }
        }

        // Batched LM head: one GEMM-shaped dispatch over all hidden
        // rows. Still-prefilling streams have no row — their scratch
        // holds a mid-prompt hidden state that never reaches sampling.
        self.batch.clear();
        for stream in self.slots.iter().flatten() {
            if !stream.fresh && stream.prefill_cursor.is_none() {
                self.batch.push_hidden(stream.scratch.hidden_state());
            }
        }
        self.model.lm_head_batch_pool(&mut self.batch, self.pool);

        // Sampling: fresh streams draw from their prefill logits, batched
        // streams from their LM-head row. Either way the draw (and the
        // stream-private RNG advance) matches a solo `Model::generate`.
        let mut row = 0;
        let mut sampled = 0;
        for stream in self.slots.iter_mut().flatten() {
            if stream.prefill_cursor.is_some() {
                continue;
            }
            let temperature = stream.sampling.temperature;
            let was_fresh = stream.fresh;
            let next = if was_fresh {
                stream.fresh = false;
                stream.scratch.sample_last(temperature, &mut stream.rng)
            } else {
                let logits = self.batch.logits_row(row);
                row += 1;
                stream.scratch.sample(logits, temperature, &mut stream.rng)
            };
            if stream.group.is_some() {
                // Best-of scoring: the log-softmax of the drawn token,
                // off the same logits the draw used. Grouped streams
                // only — singles skip the extra vocab pass.
                let logits = if was_fresh {
                    stream.scratch.logits()
                } else {
                    self.batch.logits_row(row - 1)
                };
                stream.cum_logprob += logprob_of(logits, next);
            }
            stream.tokens.push(next);
            sampled += 1;
            let generated = stream.tokens.len() - stream.prompt_len;
            if stream.eos == Some(next) {
                stream.done = Some(FinishReason::Eos);
            } else if generated >= stream.max_new {
                stream.done = Some(FinishReason::Length);
            }
        }
        self.stats.sampled_tokens += sampled as u64;
        self.stats.peak_active = self.stats.peak_active.max(self.active_len());
        self.stats.peak_cached_tokens = self.stats.peak_cached_tokens.max(self.cached_tokens());
        self.stats.peak_pages_in_use = self
            .stats
            .peak_pages_in_use
            .max(self.kv_pool.pages_in_use());

        self.retire();
        assert!(
            sampled > 0 || chunk_tokens > 0 || self.is_idle(),
            "scheduler iteration made no progress"
        );
        sampled
    }

    /// Drives [`Scheduler::step`] until idle and drains the finished
    /// requests (completion order).
    pub fn run_to_completion(&mut self) -> Vec<FinishedRequest> {
        while !self.is_idle() {
            self.step();
        }
        self.take_finished()
    }

    /// Removes and returns the finished requests accumulated so far
    /// (completion order).
    pub fn take_finished(&mut self) -> Vec<FinishedRequest> {
        std::mem::take(&mut self.finished)
    }

    /// `true` when no request is pending, suspended, or active.
    pub fn is_idle(&self) -> bool {
        self.pending.iter().all(VecDeque::is_empty) && self.slots.iter().all(Option::is_none)
    }

    /// Work items queued but not holding a slot: unadmitted requests
    /// plus preemption-suspended streams awaiting resume.
    pub fn pending_len(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    /// Preemption-suspended streams currently parked for resume.
    pub fn suspended_len(&self) -> usize {
        self.pending
            .iter()
            .flatten()
            .filter(|item| matches!(item, WorkItem::Resume(_)))
            .count()
    }

    /// Streams currently holding a slot.
    pub fn active_len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Tokens generated so far by the primary (sample 0) stream of
    /// `id`, or `None` while it is neither active nor suspended
    /// (pending, or already finished). A still-prefilling chunked
    /// stream reports `Some(0)` — the probe a latency harness needs to
    /// measure time-to-first-token step by step. A suspended stream
    /// reports its generated-so-far count.
    pub fn generated_len(&self, id: RequestId) -> Option<usize> {
        self.stream_tokens(id)
            .zip(self.prompt_len_of(id))
            .map(|(tokens, prompt)| tokens.len().saturating_sub(prompt))
    }

    /// The token sequence (effective prompt + generated so far) of the
    /// primary stream of `id`, while it is live (active or suspended) —
    /// the poll surface [`Engine`](crate::Engine) handles stream
    /// incremental tokens from.
    pub fn stream_tokens(&self, id: RequestId) -> Option<&[usize]> {
        self.slots
            .iter()
            .flatten()
            .find(|s| s.id == id && s.sample_index == 0)
            .map(|s| s.tokens.as_slice())
            .or_else(|| {
                self.pending.iter().flatten().find_map(|item| match item {
                    WorkItem::Resume(s) if s.id == id => Some(s.tokens.as_slice()),
                    _ => None,
                })
            })
    }

    /// Effective prompt length of the live request `id` (prefix tokens
    /// included), if it is active or suspended.
    fn prompt_len_of(&self, id: RequestId) -> Option<usize> {
        self.slots
            .iter()
            .flatten()
            .find(|s| s.id == id && s.sample_index == 0)
            .map(|s| s.prompt_len)
            .or_else(|| {
                self.pending.iter().flatten().find_map(|item| match item {
                    WorkItem::Resume(s) if s.id == id => Some(s.prompt_len),
                    _ => None,
                })
            })
    }

    /// Lifecycle position of the live request `id`: `Pending`,
    /// `Prefilling`, `Decoding` or `Suspended` — `None` once it has
    /// finished or was cancelled (the [`Engine`](crate::Engine) keeps
    /// that bookkeeping).
    pub fn status(&self, id: RequestId) -> Option<StreamStatus> {
        if let Some(s) = self
            .slots
            .iter()
            .flatten()
            .find(|s| s.id == id && s.sample_index == 0)
        {
            return Some(if s.prefill_cursor.is_some() {
                StreamStatus::Prefilling
            } else {
                StreamStatus::Decoding
            });
        }
        self.pending.iter().flatten().find_map(|item| match item {
            WorkItem::New(p) if p.id == id => Some(StreamStatus::Pending),
            WorkItem::Resume(s) if s.id == id => Some(StreamStatus::Suspended),
            _ => None,
        })
    }

    /// Whether `id` was torn down by [`Scheduler::cancel`].
    pub fn is_cancelled(&self, id: RequestId) -> bool {
        self.cancelled.contains(&id)
    }

    /// Evicts every evictable automatic-prefix-cache node (all nodes no
    /// live stream holds), returning the pages freed. The tree keeps
    /// serving correctly afterwards — subsequent prompts simply miss and
    /// re-prefill.
    pub fn flush_prefix_cache(&mut self) -> usize {
        let freed = self.radix.evict_all();
        self.stats.radix_evictions = self.radix.evictions();
        freed
    }

    /// KV positions actually cached right now across active streams.
    fn cached_tokens(&self) -> usize {
        self.slots.iter().flatten().map(|s| s.cache.len()).sum()
    }

    /// One coherent view of the page accounting: pool occupancy, pinned
    /// prefix pages, stream reservations and radix residency, read at
    /// one instant — the replacement for the old per-quantity getters.
    pub fn pool_snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            capacity: self.kv_pool.capacity(),
            pages_created: self.kv_pool.pages_created(),
            pages_in_use: self.kv_pool.pages_in_use(),
            pages_free: self.kv_pool.pages_free(),
            pinned_pages: self.pinned_pages,
            reserved_pages: self.reserved_pages,
            radix_resident_pages: self.radix.resident_pages(),
            cached_tokens: self.cached_tokens(),
        }
    }

    /// One coherent view of the automatic prefix cache: tree shape,
    /// residency, eviction and hit counters.
    pub fn prefix_cache_snapshot(&self) -> PrefixCacheSnapshot {
        PrefixCacheSnapshot {
            nodes: self.radix.node_count(),
            resident_pages: self.radix.resident_pages(),
            evictions: self.radix.evictions(),
            hit_tokens: self.stats.cache_hit_tokens,
        }
    }

    /// The KV page pool streams lease from (page accounting lives here).
    pub fn kv_pool(&self) -> &PagePool {
        &self.kv_pool
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// The admission configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.cfg
    }

    /// Weighted-round-robin admission over the per-class queues: the
    /// schedule entry under the cursor names a class; that class's head
    /// work item (new request, or suspended resume — resumes park at
    /// the front) is offered admission. A grant advances the cursor; a
    /// blocked head parks the cursor and stops admission entirely —
    /// within a class there is no overtaking, so class order is exactly
    /// submission order and accepted work is never starved by later,
    /// smaller requests. With single-class traffic this degenerates to
    /// the old FIFO admission.
    ///
    /// Blocked means: not enough free slots for the whole sample group
    /// (the arrival parks — slots turn over every few steps, so waiting
    /// is cheap and keeps the WRR bound intact), or the page watermark
    /// (`pinned + reserved + radix_resident + demand <= capacity`, over
    /// *unshared* demand) fails even after LRU eviction of cold radix
    /// leaves. Page pressure is the expensive kind of blocked — a big
    /// incumbent can hold pages for its whole generation — so there,
    /// with [`SchedulerConfig::preemption`] on, victims the arrival
    /// strictly outranks are suspended ([`Scheduler::suspend`]) and the
    /// watermark retried before giving up.
    fn admit(&mut self) {
        while let Some(class) = self.next_wrr_class() {
            let item = self.pending[class]
                .pop_front()
                .expect("WRR picked a non-empty class");
            let admitted = match item {
                WorkItem::New(pending) => self.admit_new(class, pending),
                WorkItem::Resume(suspended) => self.admit_resume(class, suspended),
            };
            if !admitted {
                break;
            }
            self.wrr_cursor = (self.wrr_cursor + 1) % WRR_SCHEDULE.len();
        }
    }

    /// The class the WRR cursor selects: the first schedule entry at or
    /// after the cursor whose class has pending work (the cursor parks
    /// on that entry). `None` when every queue is empty.
    fn next_wrr_class(&mut self) -> Option<usize> {
        for i in 0..WRR_SCHEDULE.len() {
            let pos = (self.wrr_cursor + i) % WRR_SCHEDULE.len();
            let class = WRR_SCHEDULE[pos].index();
            if !self.pending[class].is_empty() {
                self.wrr_cursor = pos;
                return Some(class);
            }
        }
        None
    }

    /// Suspends the best preemption victim for a blocked arrival of
    /// class `rank`: an active, not-yet-done, single-sample stream of a
    /// strictly lower class whose (undiscounted) resume demand fits the
    /// pool — lowest class first, most reserved pages among equals,
    /// highest slot as the final deterministic tie-break. Returns
    /// `false` (suspending nothing) when preemption is off or no such
    /// victim exists. Multi-sample groups are never victims: their
    /// shared-page ledger and lockstep sibling decode are not
    /// suspendable.
    fn preempt_for(&mut self, rank: usize) -> bool {
        if !self.cfg.preemption {
            return false;
        }
        let n_layers = self.model.config().n_layers;
        let victim = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
            .filter(|(_, s)| s.done.is_none() && s.group.is_none())
            .filter(|(_, s)| s.priority.index() > rank)
            .filter(|(_, s)| match self.kv_pool.capacity() {
                // A victim must stay resumable: its re-prefill demand
                // has to fit next to the pinned pages, or suspending it
                // would strand it forever.
                Some(cap) => {
                    n_layers * self.cfg.kv.pages_for(s.prompt_len + s.max_new)
                        <= cap.saturating_sub(self.pinned_pages)
                }
                None => true,
            })
            .max_by_key(|&(i, s)| (s.priority.index(), s.reserved_pages, i))
            .map(|(i, _)| i);
        let Some(slot) = victim else { return false };
        self.suspend(slot);
        true
    }

    /// Unschedules the stream in `slot`: releases its worst-case page
    /// reservation and its physical KV pages back to the pool
    /// ([`KvCache::release_pages`]), detaches it from the prefix
    /// registry and the radix tree (resume re-prefills privately, so it
    /// no longer blocks a `release_prefix` or an eviction), and parks
    /// its tokens-so-far plus its *live* RNG at the front of its class
    /// queue as a resume item — the class's very next grant.
    fn suspend(&mut self, slot: usize) {
        let mut stream = self.slots[slot].take().expect("victim slot is occupied");
        self.reserved_pages -= stream.reserved_pages;
        if let Some(key) = stream.prefix.take() {
            self.prefixes
                .get_mut(&key)
                .expect("registrations outlive their streams")
                .active -= 1;
        }
        if let Some(node) = stream.radix_node.take() {
            self.radix.release(node);
        }
        stream.cache.release_pages();
        if self.spare_caches.len() < self.cfg.max_batch {
            self.spare_caches.push(stream.cache);
        }
        self.spare_scratches.push(stream.scratch);
        self.stats.preemptions += 1;
        let class = stream.priority.index();
        self.pending[class].push_front(WorkItem::Resume(SuspendedStream {
            id: stream.id,
            tokens: stream.tokens,
            prompt_len: stream.prompt_len,
            max_new: stream.max_new,
            eos: stream.eos,
            sampling: stream.sampling,
            priority: stream.priority,
            rng: stream.rng,
        }));
    }

    /// Makes `demand` pages admissible under the watermark for an
    /// arrival of class `class`: LRU-evicts cold radix leaves first,
    /// then suspends strictly-outranked victims until the demand fits.
    /// `false` when it cannot (the caller pushes its work item back).
    fn ensure_headroom(&mut self, class: usize, demand: usize) -> bool {
        let Some(cap) = self.kv_pool.capacity() else {
            return true;
        };
        loop {
            let claimed = self.pinned_pages + self.reserved_pages + self.radix.resident_pages();
            if claimed + demand <= cap {
                return true;
            }
            // Page pressure: reclaim cold cached prefixes before
            // preempting or refusing. Eviction only drops unreferenced
            // leaves, so acquired hits (and every active stream's
            // match) are safe.
            self.radix.evict_lru(claimed + demand - cap);
            self.stats.radix_evictions = self.radix.evictions();
            let claimed = self.pinned_pages + self.reserved_pages + self.radix.resident_pages();
            if claimed + demand <= cap {
                return true;
            }
            if !self.preempt_for(class) {
                return false;
            }
        }
    }

    /// Re-admits a suspended stream: one slot, undiscounted page
    /// demand, then a re-prefill of its full token sequence so far —
    /// monolithic (the stream then samples from the prefill's
    /// last-position logits like a fresh admission), or chunked when
    /// the config prefers it (the re-prefill rides the per-step budget
    /// and the first resumed token comes off the batched LM head).
    /// Either way the parked RNG continues, so the remaining tokens are
    /// bit-identical to a twin that was never suspended. Returns
    /// `false` (work item pushed back) when blocked.
    fn admit_resume(&mut self, class: usize, suspended: SuspendedStream) -> bool {
        if self.active_len() + 1 > self.cfg.max_batch {
            self.pending[class].push_front(WorkItem::Resume(suspended));
            return false;
        }
        let demand = self.resume_demand(&suspended);
        if !self.ensure_headroom(class, demand) {
            self.pending[class].push_front(WorkItem::Resume(suspended));
            return false;
        }
        let SuspendedStream {
            id,
            tokens,
            prompt_len,
            max_new,
            eos,
            sampling,
            priority,
            rng,
        } = suspended;
        let mut scratch = self.spare_scratches.pop().unwrap_or_default();
        let mut cache = self
            .spare_caches
            .pop()
            .unwrap_or_else(|| self.kv_pool.new_cache(self.model.config().n_layers));
        debug_assert!(cache.is_empty(), "spare caches are reset at retirement");
        let chunked = self.cfg.prefill_chunk_tokens.is_some();
        if !chunked {
            if self.active_len() > 0 {
                self.stats.stalled_prefill_tokens += tokens.len() as u64;
            }
            self.model.prefill(&tokens, &mut cache, &mut scratch);
            self.stats.prefill_tokens += tokens.len() as u64;
        }
        self.stats.resumes += 1;
        self.stats.resumed_prefill_tokens += tokens.len() as u64;
        self.reserved_pages += demand;
        let prefill_target = tokens.len();
        let stream = Stream {
            id,
            tokens,
            prompt_len,
            max_new,
            eos,
            sampling,
            priority,
            rng,
            cache,
            scratch,
            reserved_pages: demand,
            prefix: None,
            radix_node: None,
            group: None,
            sample_index: 0,
            cum_logprob: 0.0,
            // The next token draws from the re-prefill's last-position
            // logits — exactly the logits the never-suspended twin
            // sampled its next token from.
            fresh: !chunked,
            prefill_cursor: chunked.then_some(0),
            prefill_target,
            step_chunk: 0,
            done: None,
        };
        self.stats.peak_pages_in_use = self
            .stats
            .peak_pages_in_use
            .max(self.kv_pool.pages_in_use());
        self.place(stream);
        true
    }

    /// Admits one new request — the per-item body of the old FIFO
    /// admission. A prefix request's cache is forked from the
    /// registry's pinned cache — the prefix positions arrive as
    /// refcounted shared pages, already prefilled — and only the
    /// private prompt suffix is prefilled, so the stream can still
    /// sample its first token this iteration. With `auto_prefix`, a
    /// plain request is first matched against the radix tree (forking
    /// its longest cached whole-page prefix the same way) and its full
    /// prompt is inserted back after prefill. Multi-sample requests
    /// fork `n - 1` siblings off the primary's just-prefilled cache at
    /// its live position. Returns `false` (work item pushed back) when
    /// blocked on slots or pages.
    fn admit_new(&mut self, class: usize, pending: Pending) -> bool {
        let n = pending.request.mode.samples();
        if self.active_len() + n > self.cfg.max_batch {
            self.pending[class].push_front(WorkItem::New(pending));
            return false;
        }
        {
            let Pending { id, request } = pending;
            // Match the prompt against the automatic prefix cache. The
            // lookup is capped one short of the prompt: a fresh stream
            // samples its first token from the prefill logits of its
            // last prompt position, so at least that position must be
            // prefilled. A hit is `acquire`d immediately — the node must
            // survive the eviction pass below and the stream's decode.
            let hit = if self.cfg.auto_prefix && request.prefix.is_none() {
                let hit = self.radix.lookup(&request.prompt, request.prompt.len() - 1);
                if let Some(m) = hit {
                    self.radix.acquire(m.node);
                }
                hit
            } else {
                None
            };
            let demand = self.demand_with_hit(&request, hit.map_or(0, |m| m.depth));
            if !self.ensure_headroom(class, demand) {
                if let Some(m) = hit {
                    self.radix.release(m.node);
                }
                self.pending[class].push_front(WorkItem::New(Pending { id, request }));
                return false;
            }
            let mut scratch = self.spare_scratches.pop().unwrap_or_default();
            let (mut cache, mut tokens) = match request.prefix.as_deref() {
                Some(key) => {
                    let entry = self
                        .prefixes
                        .get_mut(key)
                        .expect("prefix validated at submit, releases refuse while pending");
                    entry.active += 1;
                    self.stats.prefix_forks += 1;
                    (
                        entry.cache.fork_prefix(entry.tokens.len()),
                        entry.tokens.clone(),
                    )
                }
                None => match hit {
                    Some(m) => {
                        self.stats.prefix_forks += 1;
                        self.stats.cache_hit_tokens += m.depth as u64;
                        (self.radix.fork(m.node, m.depth), Vec::new())
                    }
                    None => {
                        let cache = self.spare_caches.pop().unwrap_or_else(|| {
                            self.kv_pool.new_cache(self.model.config().n_layers)
                        });
                        debug_assert!(cache.is_empty(), "spare caches are reset at retirement");
                        (cache, Vec::new())
                    }
                },
            };
            // A radix hit covers a *prompt prefix* (not extra tokens the
            // way a registry prefix is), so the cached depth counts
            // toward the prompt itself.
            let cached = cache.len();
            let prefix_len = tokens.len();
            tokens.extend_from_slice(&request.prompt);
            debug_assert!(
                cached >= prefix_len && cached < tokens.len(),
                "fork covers the shared prefix and leaves prompt to prefill"
            );
            // Chunked admission (`prefill_chunk_tokens` set, single
            // sample, something to generate) defers the prefill to
            // `step`'s per-step budget: the stream takes its slot and
            // page reservation now but its prompt is worked off as
            // grouped-batch chunks, so admission never stalls active
            // decodes. Sampling groups keep the monolithic path —
            // siblings fork the fully prefilled cache and adopt its
            // logits — as do `max_new == 0` requests, which finish
            // before any step could grant them budget.
            let chunked = self.cfg.prefill_chunk_tokens.is_some() && n == 1 && request.max_new > 0;
            if !chunked {
                // Prefill only what is not already cached — with a
                // shared (explicit or automatic) prefix that is the
                // uncovered suffix alone, the latency and compute win
                // that rides along with the memory one.
                if self.active_len() > 0 {
                    // Every prompt token prefilled here ran while the
                    // active streams sat the step out — the stall
                    // chunked admission exists to remove.
                    self.stats.stalled_prefill_tokens += (tokens.len() - cached) as u64;
                }
                self.model
                    .prefill(&tokens[cached..], &mut cache, &mut scratch);
                self.stats.prefill_tokens += (tokens.len() - cached) as u64;
                // Feed the full prompt back into the tree (its whole-page
                // prefix, forked from this stream's pages) so the *next*
                // prompt can hit deeper.
                if self.cfg.auto_prefix && request.prefix.is_none() {
                    self.radix.insert(&tokens, &mut cache);
                }
            }
            self.reserved_pages += demand;
            let prompt_len = tokens.len();
            let group_prefix_len = prefix_len;
            let member_tail = self.member_tail_pages(&request, group_prefix_len);
            let group = if n > 1 {
                // The prompt's whole pages are charged once, to the
                // group, released when the last sibling retires; each
                // member's own reservation is only its private tail.
                self.groups.insert(
                    id.0,
                    GroupState {
                        shared_pages: demand - n * member_tail,
                        remaining: n,
                        best_of: matches!(request.mode, SamplingMode::BestOf { .. }),
                        collected: Vec::new(),
                    },
                );
                Some(id.0)
            } else {
                None
            };
            let member_reserved = if n > 1 { member_tail } else { demand };
            let done = if request.max_new == 0 {
                // Nothing to generate: finished before the first sample.
                Some(FinishReason::Length)
            } else {
                None
            };
            // Sibling samples fork the primary's live cache at its
            // decode position (`fork_full`: every whole prompt page
            // shared, the partial tail copy-on-write) and adopt its
            // prefill logits, so each decodes exactly like a standalone
            // request seeded `seed + i`.
            let mut members = Vec::with_capacity(n);
            for i in 1..n {
                let mut sib_scratch = self.spare_scratches.pop().unwrap_or_default();
                sib_scratch.adopt_logits(&scratch);
                let sib_cache = cache.fork_full();
                self.stats.sample_forks += 1;
                if let Some(key) = request.prefix.as_deref() {
                    self.prefixes
                        .get_mut(key)
                        .expect("prefix held by the primary")
                        .active += 1;
                }
                if let Some(m) = hit {
                    self.radix.acquire(m.node);
                }
                members.push(Stream {
                    id,
                    tokens: tokens.clone(),
                    prompt_len,
                    max_new: request.max_new,
                    eos: request.eos,
                    sampling: request.sampling,
                    priority: request.priority,
                    rng: Rng::new(request.sampling.seed.wrapping_add(i as u64)),
                    cache: sib_cache,
                    scratch: sib_scratch,
                    reserved_pages: member_reserved,
                    prefix: request.prefix.clone(),
                    radix_node: hit.map(|m| m.node),
                    group,
                    sample_index: i,
                    cum_logprob: 0.0,
                    fresh: true,
                    prefill_cursor: None,
                    prefill_target: prompt_len,
                    step_chunk: 0,
                    done,
                });
            }
            members.push(Stream {
                id,
                tokens,
                prompt_len,
                max_new: request.max_new,
                eos: request.eos,
                sampling: request.sampling,
                priority: request.priority,
                rng: Rng::new(request.sampling.seed),
                cache,
                scratch,
                reserved_pages: member_reserved,
                prefix: request.prefix,
                radix_node: hit.map(|m| m.node),
                group,
                sample_index: 0,
                cum_logprob: 0.0,
                // A chunked stream's first token comes from the batched
                // LM head of its final chunk's step, not from admission
                // logits — it is never `fresh`.
                fresh: !chunked,
                prefill_cursor: chunked.then_some(cached),
                prefill_target: prompt_len,
                step_chunk: 0,
                done,
            });
            // Mid-admission peak: the prefill and sibling forks above
            // are the allocation high-water mark of this admission, and
            // a `max_new == 0` group retires inside this very loop —
            // sample before that happens so transient peaks are never
            // unrecorded.
            self.stats.peak_pages_in_use = self
                .stats
                .peak_pages_in_use
                .max(self.kv_pool.pages_in_use());
            for stream in members {
                if let Some(reason) = stream.done {
                    self.finish(stream, reason);
                } else {
                    self.place(stream);
                }
            }
        }
        true
    }

    /// Cancels the request `id` wherever it currently lives, freeing
    /// its resources this step:
    ///
    /// - still queued (new or suspended): removed from its class queue
    ///   — [`Cancelled::Pending`] / [`Cancelled::Suspended`];
    /// - active: every sibling stream is discarded this step — pages
    ///   released, prefix/radix references dropped, group ledger (and
    ///   its shared-page charge) retired with no result recorded —
    ///   [`Cancelled::Active`] with the number of streams torn down.
    ///
    /// A finished-but-undrained request reports
    /// [`CancelError::AlreadyFinished`] (its result stays collectable);
    /// an unknown or already-drained id reports
    /// [`CancelError::Unknown`]; a repeated cancel reports
    /// [`CancelError::Cancelled`]. Co-batched survivors are untouched —
    /// their pages, positions and RNGs never observe the cancel, so
    /// their tokens stay bit-identical to a run where the cancelled
    /// request was never submitted.
    pub fn cancel(&mut self, id: RequestId) -> Result<Cancelled, CancelError> {
        if self.cancelled.contains(&id) {
            return Err(CancelError::Cancelled(id));
        }
        for queue in &mut self.pending {
            if let Some(pos) = queue.iter().position(|item| item.id() == id) {
                let item = queue.remove(pos).expect("position just found");
                self.stats.cancelled += 1;
                self.cancelled.insert(id);
                return Ok(match item {
                    WorkItem::New(_) => Cancelled::Pending,
                    WorkItem::Resume(_) => Cancelled::Suspended,
                });
            }
        }
        let slots: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.as_ref().is_some_and(|s| s.id == id))
            .map(|(i, _)| i)
            .collect();
        if !slots.is_empty() {
            let mut streams = 0;
            for i in slots {
                let stream = self.slots[i].take().expect("slot matched above");
                self.discard(stream);
                streams += 1;
            }
            // The whole group is gone: retire its ledger and the
            // shared-page charge no member carried individually.
            if let Some(group) = self.groups.remove(&id.0) {
                self.reserved_pages -= group.shared_pages;
            }
            self.stats.cancelled += 1;
            self.cancelled.insert(id);
            return Ok(Cancelled::Active { streams });
        }
        if self.finished.iter().any(|f| f.id == id) {
            return Err(CancelError::AlreadyFinished(id));
        }
        Err(CancelError::Unknown(id))
    }

    /// Tears down an active stream without recording a result: the
    /// page-release half of [`Scheduler::finish`] (reservation, prefix
    /// and radix references, physical pages, recycled allocations) with
    /// no `FinishedRequest` and no group bookkeeping — the cancel path
    /// retires the ledger wholesale instead.
    fn discard(&mut self, mut stream: Stream) {
        self.reserved_pages -= stream.reserved_pages;
        if let Some(key) = stream.prefix.take() {
            self.prefixes
                .get_mut(&key)
                .expect("registrations outlive their streams")
                .active -= 1;
        }
        if let Some(node) = stream.radix_node.take() {
            self.radix.release(node);
        }
        stream.cache.reset();
        if self.spare_caches.len() < self.cfg.max_batch {
            self.spare_caches.push(stream.cache);
        }
        self.spare_scratches.push(stream.scratch);
    }

    /// Puts `stream` in the first free slot (growing up to `max_batch`).
    fn place(&mut self, stream: Stream) {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.is_none()) {
            *slot = Some(stream);
        } else {
            debug_assert!(self.slots.len() < self.cfg.max_batch);
            self.slots.push(Some(stream));
        }
    }

    /// Moves every done stream out of its slot, releasing its page
    /// reservation and recycling its pages and cache/scratch allocations.
    fn retire(&mut self) {
        for i in 0..self.slots.len() {
            if self.slots[i].as_ref().is_some_and(|s| s.done.is_some()) {
                let stream = self.slots[i].take().expect("checked above");
                let reason = stream.done.expect("checked above");
                self.finish(stream, reason);
            }
        }
    }

    fn finish(&mut self, mut stream: Stream, reason: FinishReason) {
        self.reserved_pages -= stream.reserved_pages;
        if let Some(key) = &stream.prefix {
            let entry = self
                .prefixes
                .get_mut(key)
                .expect("registrations outlive their streams");
            entry.active -= 1;
        }
        if let Some(node) = stream.radix_node {
            // The matched tree node outlived this stream's decode; it
            // becomes evictable again once every holder retires.
            self.radix.release(node);
        }
        // Reset returns every owned page to the pool's free list, where
        // the next admission's prefill picks them up; shared prefix
        // leases (registry, radix tree, or sibling-held prompt pages)
        // are dropped, leaving the co-owners' pages alive.
        stream.cache.reset();
        if self.spare_caches.len() < self.cfg.max_batch {
            self.spare_caches.push(stream.cache);
        }
        self.spare_scratches.push(stream.scratch);
        let result = FinishedRequest {
            id: stream.id,
            tokens: stream.tokens,
            prompt_len: stream.prompt_len,
            reason,
            sample_index: stream.sample_index,
            cumulative_logprob: stream.group.map(|_| stream.cum_logprob),
        };
        let Some(gid) = stream.group else {
            self.finished.push(result);
            return;
        };
        let group = self
            .groups
            .get_mut(&gid)
            .expect("groups outlive their members");
        group.remaining -= 1;
        if group.best_of {
            group.collected.push(result);
        } else {
            self.finished.push(result);
        }
        if group.remaining == 0 {
            let group = self.groups.remove(&gid).expect("present above");
            // Last sibling out: the group's shared prompt pages are no
            // longer co-owned by any member — release their charge.
            self.reserved_pages -= group.shared_pages;
            if group.best_of {
                let winner = group
                    .collected
                    .into_iter()
                    .max_by(|a, b| {
                        // Highest cumulative logprob wins; exact ties
                        // break toward the lowest sample index (ordering
                        // treats the lower index as "greater").
                        a.cumulative_logprob
                            .partial_cmp(&b.cumulative_logprob)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(b.sample_index.cmp(&a.sample_index))
                    })
                    .expect("a group has at least one member");
                self.finished.push(winner);
            }
        }
    }
}

/// `ln softmax(logits)[token]`, accumulated in `f64` with the usual
/// max-subtracted log-sum-exp so the score is finite for any finite
/// logits. Serial reduction — the value is a pure function of the
/// logits, independent of batch composition and thread count, so
/// best-of selection is as deterministic as the decode itself.
fn logprob_of(logits: &[f32], token: usize) -> f64 {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
    let sum: f64 = logits.iter().map(|&x| (x as f64 - max).exp()).sum();
    (logits[token] as f64 - max) - sum.ln()
}
