//! Continuous-batching serving layer for the Anda reproduction.
//!
//! The paper's end-to-end efficiency story assumes many decode streams
//! sharing the compute substrate. This crate provides the missing piece
//! over `anda-llm`'s incremental-decode API: an Orca-style
//! iteration-level [`Scheduler`] that admits requests (weighted
//! round-robin across [`Priority`] classes, under page-accounted KV
//! admission, preempting outranked streams when slots or pages run
//! out), prefills new arrivals, and then continuous-batches decode —
//! every iteration advances **all** active streams by one token,
//! sharding the per-stream hidden-state work across one `rayon-lite`
//! scope per batch and finishing with a single batched LM-head GEMM
//! (`Model::lm_head_batch`). The [`Engine`] wraps that loop in a
//! handle-based serving front door: [`Engine::submit`] returns a
//! [`SubmitHandle`] that polls its stream
//! ([`SubmitHandle::try_next_tokens`]), reports its lifecycle state,
//! cancels it, or drives it to completion — see [`engine`] for the
//! lifecycle diagram, and [`workload`] for deterministic Poisson /
//! trace-replay arrival schedules in virtual step time.
//!
//! # KV memory model
//!
//! Every stream's `KvCache` leases fixed-size pages from the scheduler's
//! shared [`PagePool`] (`anda_llm::kv`). The pool's storage policy
//! ([`KvStorage`]) decides whether pages hold FP16 rows (read in place)
//! or Anda-compressed bit-plane rows (decoded on read, `16 / (M + 1 +
//! 5/64)` times smaller). Admission reserves each request's worst-case
//! page demand against the pool's `max_pages`, so a bounded pool is real
//! memory accounting: requests that could never fit are rejected at
//! submit time, admitted streams can never exhaust the pool mid-flight,
//! and a retired stream's pages are recycled to the next admission. An
//! Anda-policy pool holds proportionally more pages per bit, admitting
//! long-context batches whose FP16 KV would not fit (§VI).
//!
//! Workloads dominated by a shared prompt prefix (system prompt,
//! few-shot header) additionally deduplicate the prefix KV itself:
//! [`Scheduler::register_prefix`] prefills the prefix once into a
//! pinned cache, requests carrying the registered key
//! ([`Request::with_prefix`]) are admitted by *forking* that cache —
//! refcounted shared pages, copy-on-write on first divergence — and
//! admission charges each stream only its unshared pages. Sharing
//! composes multiplicatively with compression: the prefix is stored
//! once *and* `16 / (M + 1 + 5/64)` times smaller under `Anda{m}`.
//!
//! Sharing can also be *discovered* instead of declared:
//! `SchedulerConfig::auto_prefix` inserts every admitted prompt into a
//! page-granular radix tree ([`radix::RadixTree`]), matches later
//! prompts against it — forking the longest cached whole-page prefix,
//! prefilling only the uncovered suffix — and LRU-evicts cold tree
//! leaves under page pressure. The same fork mechanism, applied
//! mid-stream, serves multi-sample requests:
//! [`RequestBuilder::parallel`] / [`RequestBuilder::best_of`] prefill
//! the prompt once and fork the live cache into `n` sibling streams
//! whose sample `i` is bit-identical to a standalone request seeded
//! `seed + i`.
//!
//! # Determinism
//!
//! Serving is bit-exact: each stream's tokens (and the logits behind
//! them) are `f32::to_bits`-identical to running the same request alone
//! through `Model::generate_with_cache` on a same-policy cache, at every
//! batch composition, arrival order, page size and thread count. The
//! serial and pooled kernels are bit-identical, the batched LM head
//! computes the same ascending-`k` dots as the solo one, and every
//! stream owns its RNG — so batching is purely a throughput
//! optimization.
//!
//! # Example
//!
//! ```
//! use anda_llm::zoo::opt_125m_sim;
//! use anda_serve::{
//!     KvPoolConfig, KvStorage, Priority, Request, Scheduler, SchedulerConfig,
//! };
//!
//! let model = opt_125m_sim().build();
//! let mut sched = Scheduler::new(&model, SchedulerConfig {
//!     max_batch: 2,
//!     kv: KvPoolConfig {
//!         storage: KvStorage::Anda { mantissa_bits: 8 },
//!         page_positions: 8,
//!         max_pages: Some(256),
//!     },
//!     ..SchedulerConfig::default()
//! });
//! // A shared few-shot header: prefilled once, forked into every
//! // stream that references it.
//! sched.register_prefix("header", vec![11, 12, 13, 14]).unwrap();
//! sched.submit(Request::builder([1, 2, 3]).max_new(4).build().unwrap()).unwrap();
//! sched.submit(
//!     Request::builder([7, 8])
//!         .max_new(3)
//!         .prefix("header")
//!         .temperature(0.8)
//!         .seed(42)
//!         .priority(Priority::High)
//!         .build()
//!         .unwrap(),
//! ).unwrap();
//! sched.submit(
//!     Request::builder([9]).max_new(2).prefix("header").build().unwrap(),
//! ).unwrap();
//! let done = sched.run_to_completion();
//! assert_eq!(done.len(), 3);
//! for r in &done {
//!     assert_eq!(r.tokens.len(), r.prompt_len + r.generated().len());
//! }
//! assert_eq!(sched.stats().prefix_forks, 2);
//! ```

pub mod engine;
pub mod radix;
pub mod request;
pub mod scheduler;
pub mod workload;

pub use anda_llm::kv::{KvPoolConfig, KvStorage, PagePool, SharedPage};
pub use engine::{Engine, RequestState, SubmitHandle};
pub use radix::{RadixMatch, RadixTree};
pub use request::{
    FinishReason, FinishedRequest, Priority, Request, RequestBuilder, RequestError, RequestId,
    SamplingMode, SamplingParams,
};
pub use scheduler::{
    CancelError, Cancelled, PoolSnapshot, PrefixCacheSnapshot, ReleasePrefixError, Scheduler,
    SchedulerConfig, SchedulerStats, StreamStatus, SubmitError,
};
pub use workload::{ArrivalSchedule, Replay};
