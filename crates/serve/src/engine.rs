//! Handle-based serving front door over the [`Scheduler`].
//!
//! The scheduler is a synchronous batch loop: `submit` then `step`
//! until idle, then sift through `take_finished` for your id. That is
//! the right substrate but the wrong API for serving, where callers
//! arrive independently, poll *their* stream, and cancel without
//! knowing who else is in the batch. [`Engine`] wraps the scheduler in
//! exactly that shape:
//!
//! - [`Engine::submit`] returns a [`SubmitHandle`] tied to the
//!   submitted request;
//! - [`SubmitHandle::try_next_tokens`] polls the tokens generated since
//!   the last poll (non-blocking — empty when nothing new);
//! - [`SubmitHandle::cancel`] tears the request down wherever it is;
//! - [`SubmitHandle::await_finished`] drives the engine until the
//!   request completes and returns its results.
//!
//! Handles share the engine through `Rc<RefCell<…>>`, so they stay
//! self-contained values: any handle can drive or poll the engine
//! without borrowing the `Engine` itself. Everything is single-threaded
//! and cooperative — "async" here means *incremental*: one
//! [`Engine::step`] advances every active stream by one token, and
//! polling never blocks. Time is virtual throughout, measured in steps
//! ([`Engine::steps`]), which is what makes latency assertions
//! (time-to-first-token in steps) deterministic and machine-independent.
//!
//! # Lifecycle
//!
//! ```text
//! Pending ──► Prefilling ──► Decoding ──► Finished
//!                 ▲             │  ▲
//!                 │ (chunked    ▼  │ (preempted / resumed)
//!                 │  resume) Suspended
//! ```
//!
//! [`SubmitHandle::state`] reports the current position in that
//! diagram; cancellation is terminal from every non-finished state.

use std::cell::{Ref, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use anda_llm::Model;

use crate::request::{FinishedRequest, Request, RequestId, SamplingMode};
use crate::scheduler::{
    CancelError, Cancelled, Scheduler, SchedulerConfig, StreamStatus, SubmitError,
};

/// Where a submitted request currently is in the engine lifecycle.
/// The scheduler-side states mirror [`StreamStatus`]; `Finished` and
/// `Cancelled` are terminal and engine-tracked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RequestState {
    /// Queued, not yet admitted to a slot.
    Pending,
    /// Admitted, working off its prompt in chunks.
    Prefilling,
    /// Decoding one token per step.
    Decoding,
    /// Preempted: pages released, parked for resume via re-prefill.
    Suspended,
    /// All results are in (collectable via
    /// [`SubmitHandle::await_finished`]).
    Finished,
    /// Torn down by [`SubmitHandle::cancel`]; no results will arrive.
    Cancelled,
}

impl fmt::Display for RequestState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RequestState::Pending => "pending",
            RequestState::Prefilling => "prefilling",
            RequestState::Decoding => "decoding",
            RequestState::Suspended => "suspended",
            RequestState::Finished => "finished",
            RequestState::Cancelled => "cancelled",
        })
    }
}

/// The engine internals every handle shares.
struct EngineCore<'a> {
    sched: Scheduler<'a>,
    /// Finished results by request id, drained from the scheduler after
    /// every step and held until the owning handle collects them.
    results: HashMap<RequestId, Vec<FinishedRequest>>,
    /// Virtual time: scheduler iterations executed so far.
    steps: u64,
}

impl EngineCore<'_> {
    fn step(&mut self) {
        self.sched.step();
        self.steps += 1;
        for result in self.sched.take_finished() {
            self.results.entry(result.id).or_default().push(result);
        }
    }
}

/// How many [`FinishedRequest`] results a request produces: one per
/// parallel sample, one winner for best-of, one otherwise.
fn expected_results(mode: SamplingMode) -> usize {
    match mode {
        SamplingMode::Parallel { n } => n,
        SamplingMode::Single | SamplingMode::BestOf { .. } => 1,
    }
}

/// The serving front door: a handle-based submit/poll/cancel API over
/// the [`Scheduler`] (see the [module docs](self) for the lifecycle).
///
/// # Example
///
/// ```
/// use anda_llm::zoo::opt_125m_sim;
/// use anda_serve::{Engine, Priority, Request, RequestState, SchedulerConfig};
///
/// let model = opt_125m_sim().build();
/// let engine = Engine::new(&model, SchedulerConfig::default());
/// let mut fast = engine
///     .submit(
///         Request::builder([1, 2, 3])
///             .max_new(4)
///             .priority(Priority::High)
///             .build()
///             .unwrap(),
///     )
///     .unwrap();
/// let slow = engine
///     .submit(Request::builder([4, 5]).max_new(2).build().unwrap())
///     .unwrap();
/// engine.step();
/// assert!(!fast.try_next_tokens().is_empty());
/// let results = fast.await_finished();
/// assert_eq!(results[0].generated().len(), 4);
/// assert_eq!(slow.state(), RequestState::Finished);
/// ```
pub struct Engine<'a> {
    core: Rc<RefCell<EngineCore<'a>>>,
}

impl<'a> Engine<'a> {
    /// An engine over `model` with a fresh [`Scheduler`] built from
    /// `cfg`.
    pub fn new(model: &'a Model, cfg: SchedulerConfig) -> Self {
        Self::over(Scheduler::new(model, cfg))
    }

    /// An engine over an already-configured scheduler (custom thread
    /// pool, pre-registered prefixes).
    pub fn over(sched: Scheduler<'a>) -> Self {
        Engine {
            core: Rc::new(RefCell::new(EngineCore {
                sched,
                results: HashMap::new(),
                steps: 0,
            })),
        }
    }

    /// Submits `request` and returns the handle that polls, cancels, or
    /// awaits it. Admission control is the scheduler's
    /// ([`SubmitError`] distinguishes a request that can *never* fit
    /// from one blocked by current registrations).
    pub fn submit(&self, request: Request) -> Result<SubmitHandle<'a>, SubmitError> {
        let expected = expected_results(request.mode);
        let id = self.core.borrow_mut().sched.submit(request)?;
        Ok(SubmitHandle {
            core: Rc::clone(&self.core),
            id,
            expected,
            cursor: 0,
            cancelled: false,
        })
    }

    /// Advances every active stream by one token (admitting, resuming,
    /// and preempting as the scheduler sees fit) and banks any results
    /// that finished this iteration.
    pub fn step(&self) {
        self.core.borrow_mut().step();
    }

    /// Steps until no request is pending, suspended, or active.
    pub fn run_until_idle(&self) {
        while !self.core.borrow().sched.is_idle() {
            self.step();
        }
    }

    /// Virtual time: scheduler iterations executed so far. Handles
    /// measure TTFT/TPOT in this clock.
    pub fn steps(&self) -> u64 {
        self.core.borrow().steps
    }

    /// `true` when nothing is pending, suspended, or active.
    pub fn is_idle(&self) -> bool {
        self.core.borrow().sched.is_idle()
    }

    /// Cancels `id` wherever it currently lives (see
    /// [`Scheduler::cancel`]). [`SubmitHandle::cancel`] is the usual
    /// path; this one is for callers that only kept the id.
    pub fn cancel(&self, id: RequestId) -> Result<Cancelled, CancelError> {
        self.core.borrow_mut().sched.cancel(id)
    }

    /// Read access to the underlying scheduler (snapshots, stats,
    /// stream probes). The borrow must be dropped before the next
    /// [`Engine::step`].
    pub fn scheduler(&self) -> Ref<'_, Scheduler<'a>> {
        Ref::map(self.core.borrow(), |core| &core.sched)
    }

    /// Runs `f` with mutable access to the underlying scheduler
    /// (prefix registration, manual stepping).
    pub fn with_scheduler<R>(&self, f: impl FnOnce(&mut Scheduler<'a>) -> R) -> R {
        f(&mut self.core.borrow_mut().sched)
    }
}

/// A submitted request's handle: poll its tokens, watch its lifecycle
/// state, cancel it, or drive the engine to its completion. Handles
/// are independent values (they share the engine internally) and may
/// outlive the [`Engine`] they came from.
pub struct SubmitHandle<'a> {
    core: Rc<RefCell<EngineCore<'a>>>,
    id: RequestId,
    /// Results this request will produce (see [`expected_results`]).
    expected: usize,
    /// Generated tokens already reported by `try_next_tokens`.
    cursor: usize,
    cancelled: bool,
}

impl SubmitHandle<'_> {
    /// The scheduler-assigned id of this request.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Where the request is in the lifecycle right now.
    pub fn state(&self) -> RequestState {
        if self.cancelled {
            return RequestState::Cancelled;
        }
        let core = self.core.borrow();
        if core
            .results
            .get(&self.id)
            .is_some_and(|r| r.len() >= self.expected)
        {
            return RequestState::Finished;
        }
        match core.sched.status(self.id) {
            Some(StreamStatus::Pending) => RequestState::Pending,
            Some(StreamStatus::Prefilling) => RequestState::Prefilling,
            Some(StreamStatus::Decoding) => RequestState::Decoding,
            Some(StreamStatus::Suspended) => RequestState::Suspended,
            None if core.sched.is_cancelled(self.id) => RequestState::Cancelled,
            // Collected already (results drained by `await_finished`).
            None => RequestState::Finished,
        }
    }

    /// The tokens generated since the last poll, without stepping the
    /// engine — empty when nothing new arrived (someone must call
    /// [`Engine::step`] for tokens to appear). Polls the request's
    /// primary (sample 0) stream while it is live and its sample-0
    /// result once finished; for a best-of request the *winning*
    /// candidate may differ from the polled one, so treat
    /// [`SubmitHandle::await_finished`] as authoritative there.
    pub fn try_next_tokens(&mut self) -> Vec<usize> {
        let core = self.core.borrow();
        let fresh = if let Some(tokens) = core.sched.stream_tokens(self.id) {
            let generated = core
                .sched
                .generated_len(self.id)
                .expect("stream_tokens and generated_len agree on liveness");
            tokens[tokens.len() - (generated - self.cursor)..].to_vec()
        } else if let Some(results) = core.results.get(&self.id) {
            let primary = results
                .iter()
                .find(|r| r.sample_index == 0)
                .unwrap_or(&results[0]);
            primary.generated()[self.cursor..].to_vec()
        } else {
            Vec::new()
        };
        self.cursor += fresh.len();
        fresh
    }

    /// Tears the request down wherever it is — queued, suspended, or
    /// mid-decode (its pages are released this call; co-batched
    /// survivors never observe it). Terminal: the handle reports
    /// [`RequestState::Cancelled`] afterwards and no results arrive.
    pub fn cancel(&mut self) -> Result<Cancelled, CancelError> {
        let outcome = self.core.borrow_mut().sched.cancel(self.id);
        if outcome.is_ok() {
            self.cancelled = true;
        }
        outcome
    }

    /// Drives the engine until this request finishes, then removes and
    /// returns its results: `n` for a parallel request (sample order),
    /// the single winner for best-of, one otherwise. Returns the empty
    /// vector for a cancelled request. Other requests keep being served
    /// while this one is awaited — steps advance everyone.
    pub fn await_finished(&mut self) -> Vec<FinishedRequest> {
        loop {
            let mut core = self.core.borrow_mut();
            if self.cancelled || core.sched.is_cancelled(self.id) {
                self.cancelled = true;
                core.results.remove(&self.id);
                return Vec::new();
            }
            if core
                .results
                .get(&self.id)
                .is_some_and(|r| r.len() >= self.expected)
            {
                let mut results = core.results.remove(&self.id).expect("checked above");
                results.sort_by_key(|r| r.sample_index);
                return results;
            }
            core.step();
        }
    }
}
