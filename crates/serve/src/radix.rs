//! Page-granular radix tree over token sequences — automatic prefix
//! caching for the scheduler (the vLLM/SGLang block-trie design).
//!
//! PR 5's prefix sharing needs the caller to *name* a shared prefix
//! ([`Scheduler::register_prefix`](crate::Scheduler::register_prefix)).
//! This module discovers sharing instead: every admitted prompt is
//! inserted here, and every later prompt is matched against the tree so
//! its longest already-cached prefix is [`KvCache::fork_prefix`]-forked
//! (refcounted page-table clone, no row copies) and only the uncovered
//! suffix is prefilled.
//!
//! # Page granularity
//!
//! Everything the tree stores is rounded **down to whole KV pages**
//! (`page_positions` tokens): edges span whole pages, splits happen only
//! at page boundaries, and a lookup's usable depth is the matched length
//! rounded down to a page multiple. Two prompts that diverge inside
//! their first uncached page share nothing — exactly the page-granular
//! sharing the KV layer can express without copy-on-write traffic, so an
//! automatic hit never seals a *partial* page and an admitted stream's
//! first private append never triggers CoW against the tree. (The
//! explicit registry keeps sub-page prefixes; it is the pinned fast
//! path, not replaced by this tree.)
//!
//! # Node caches and physical sharing
//!
//! Each node holds a [`KvCache`] covering positions `0..end` of its
//! prefix. [`RadixTree::resident_pages`] charges each node its own edge
//! span — the page-accounting total the scheduler adds to its admission
//! watermark. That per-edge attribution is exact under the scheduler's
//! insert discipline: a stream's cache prefix up to its matched depth
//! was *forked from the tree path itself*, so a new leaf's pages below
//! its edge are physically the path's pages (and an edge split forks
//! the child's cache, allocating nothing). A standalone caller that
//! inserts from a cache built independently of the tree keeps duplicate
//! physical copies of any token-equal prefix pages; the span accounting
//! deliberately ignores those (they are the source's to account), and
//! eviction still frees every page the evicted node's cache holds.
//! While a source stream is still decoding, its prompt pages are
//! counted by both its reservation and the tree (the tree's lease is a
//! refcount on the same physical pages) — conservative, never an
//! undercount of what the tree itself retains.
//!
//! # Eviction
//!
//! Under page pressure the scheduler calls [`RadixTree::evict_lru`]:
//! least-recently-used **leaves** are dropped first (an interior node is
//! never evictable — its children chain-share its pages), and a leaf is
//! skipped while it has live forks ([`RadixTree::acquire`]d by an active
//! stream) or a pin on itself or any ancestor ([`RadixTree::pin`]
//! protects the subtree below it). Dropping a node's cache releases its
//! leases; pages nobody else co-owns rejoin the pool's free list.

use anda_llm::KvCache;

/// Identifier of a tree node, stable for the node's lifetime (slots are
/// recycled only after eviction).
pub type NodeId = usize;

const ROOT: NodeId = 0;

/// A successful [`RadixTree::lookup`]: fork `node`'s cache at `depth`
/// positions to reuse the cached prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RadixMatch {
    /// The node whose edge contains the last matched page (its cache
    /// covers at least `depth` positions).
    pub node: NodeId,
    /// Matched tokens, rounded down to a whole-page multiple (> 0).
    pub depth: usize,
}

#[derive(Debug)]
struct Node {
    parent: NodeId,
    /// Edge tokens from `start` to `start + edge.len()`; always a whole
    /// number of pages (empty only for the root).
    edge: Vec<usize>,
    /// Token depth where this node's edge begins.
    start: usize,
    /// KV rows for positions `0..start + edge.len()` of the prefix
    /// (`None` only for the root). A fork along the parent chain, so the
    /// path shares physical pages.
    cache: Option<KvCache>,
    children: Vec<NodeId>,
    /// LRU clock stamp of the last lookup/insert touching this node.
    last_used: u64,
    /// Live stream forks of this node's cache (blocks eviction).
    active: usize,
    /// Pin count; a pinned node protects itself and its whole subtree
    /// from eviction.
    pins: usize,
}

impl Node {
    fn end(&self) -> usize {
        self.start + self.edge.len()
    }
}

/// The automatic prefix cache: a radix tree over token sequences with
/// per-node [`KvCache`] forks, LRU eviction and page-exact residency
/// accounting. See the module docs for the design.
#[derive(Debug)]
pub struct RadixTree {
    /// KV page size in positions; every edge span and every match depth
    /// is a multiple of this.
    page_positions: usize,
    /// Model layers — each cached position costs one row *per layer*, so
    /// residency accounting multiplies by this.
    n_layers: usize,
    /// Node arena; slot 0 is the root, evicted slots are recycled.
    nodes: Vec<Option<Node>>,
    free: Vec<NodeId>,
    clock: u64,
    /// Σ over nodes of `n_layers · edge_pages` — the distinct physical
    /// pages attributable to the tree (path forks share pages, so each
    /// page is counted by exactly one node's edge).
    resident_pages: usize,
    evictions: u64,
}

impl RadixTree {
    /// An empty tree for a `page_positions`-position page geometry and an
    /// `n_layers`-layer model.
    ///
    /// # Panics
    ///
    /// Panics if `page_positions` or `n_layers` is zero.
    pub fn new(page_positions: usize, n_layers: usize) -> Self {
        assert!(page_positions >= 1, "page_positions must be at least 1");
        assert!(n_layers >= 1, "n_layers must be at least 1");
        RadixTree {
            page_positions,
            n_layers,
            nodes: vec![Some(Node {
                parent: ROOT,
                edge: Vec::new(),
                start: 0,
                cache: None,
                children: Vec::new(),
                last_used: 0,
                active: 0,
                pins: 0,
            })],
            free: Vec::new(),
            clock: 0,
            resident_pages: 0,
            evictions: 0,
        }
    }

    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id].as_ref().expect("live node id")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id].as_mut().expect("live node id")
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Pages charged for a `tokens`-long whole-page span, all layers.
    fn span_pages(&self, tokens: usize) -> usize {
        debug_assert!(tokens.is_multiple_of(self.page_positions));
        self.n_layers * (tokens / self.page_positions)
    }

    /// Physical KV pages attributable to the tree across all layers —
    /// what the scheduler charges against its admission watermark.
    pub fn resident_pages(&self) -> usize {
        self.resident_pages
    }

    /// Live nodes (the root excluded).
    pub fn node_count(&self) -> usize {
        self.nodes.iter().flatten().count() - 1
    }

    /// Nodes evicted since construction (monotonic).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The child of `id` sharing the longest token prefix with `t`,
    /// with the shared length. Siblings all diverge from each other
    /// within their first page, so at most one child can match a whole
    /// page or more.
    fn best_child(&self, id: NodeId, t: &[usize]) -> Option<(NodeId, usize)> {
        self.node(id)
            .children
            .iter()
            .map(|&c| {
                let k = self
                    .node(c)
                    .edge
                    .iter()
                    .zip(t)
                    .take_while(|(a, b)| a == b)
                    .count();
                (c, k)
            })
            .max_by_key(|&(_, k)| k)
            .filter(|&(_, k)| k > 0)
    }

    /// Longest cached prefix of `tokens` usable at page granularity,
    /// capped at `max_depth` tokens (the scheduler passes `prompt_len -
    /// 1` so at least one prompt token is always left to prefill — a
    /// fresh stream needs the prefill logits of its last prompt token).
    /// Touches the matched path's LRU stamps. Returns `None` when not
    /// even one whole page matches.
    pub fn lookup(&mut self, tokens: &[usize], max_depth: usize) -> Option<RadixMatch> {
        let mut path = vec![ROOT];
        let mut depth = 0usize;
        while let Some((child, k)) =
            self.best_child(*path.last().expect("non-empty"), &tokens[depth..])
        {
            path.push(child);
            depth += k;
            if k < self.node(child).edge.len() {
                break; // diverged (or ran out of tokens) mid-edge
            }
        }
        let usable = depth.min(max_depth) / self.page_positions * self.page_positions;
        if usable == 0 {
            return None;
        }
        let stamp = self.tick();
        for &id in &path {
            self.node_mut(id).last_used = stamp;
        }
        // The deepest path node whose edge contains position `usable`
        // holds a cache covering it (every shallower ancestor does too,
        // but the deepest one maximizes physical sharing with siblings).
        let node = *path
            .iter()
            .rev()
            .find(|&&id| self.node(id).start < usable)
            .expect("usable > 0 means some non-root node was matched");
        debug_assert!(usable <= self.node(node).end());
        Some(RadixMatch {
            node,
            depth: usable,
        })
    }

    /// Marks `node` as having one more live stream fork, protecting it
    /// (and, transitively, its ancestor chain — interior nodes are never
    /// evicted) from eviction until [`RadixTree::release`].
    pub fn acquire(&mut self, node: NodeId) {
        self.node_mut(node).active += 1;
    }

    /// Drops one live-fork hold acquired with [`RadixTree::acquire`].
    ///
    /// # Panics
    ///
    /// Panics if `node` has no live holds.
    pub fn release(&mut self, node: NodeId) {
        let stamp = self.tick();
        let n = self.node_mut(node);
        assert!(n.active > 0, "release without a matching acquire");
        n.active -= 1;
        n.last_used = stamp;
    }

    /// Forks `node`'s cache at `depth` positions — the admission step
    /// after a successful [`RadixTree::lookup`]. The caller must hold an
    /// [`RadixTree::acquire`] on `node` for the fork's lifetime so
    /// eviction cannot drop the node while the stream decodes on it.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds the node's cached positions.
    pub fn fork(&mut self, node: NodeId, depth: usize) -> KvCache {
        self.node_mut(node)
            .cache
            .as_mut()
            .expect("non-root nodes hold caches")
            .fork_prefix(depth)
    }

    /// Pins `node`: it and every descendant become ineligible for
    /// eviction until the matching [`RadixTree::unpin`]. Pins nest.
    pub fn pin(&mut self, node: NodeId) {
        self.node_mut(node).pins += 1;
    }

    /// Drops one pin placed by [`RadixTree::pin`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is not pinned.
    pub fn unpin(&mut self, node: NodeId) {
        let n = self.node_mut(node);
        assert!(n.pins > 0, "unpin without a matching pin");
        n.pins -= 1;
    }

    /// Inserts the whole-page prefix of `tokens` (length rounded down to
    /// a page multiple), sourcing KV rows by forking `source` — the
    /// freshly prefilled cache of the admitting stream, which must cover
    /// at least the aligned length. Shared interior pages are reused via
    /// forks of existing node caches (maximum physical dedup); only a
    /// genuinely new tail becomes a new leaf. Returns the node whose
    /// edge ends exactly at the aligned length (`None` when the aligned
    /// length is zero, or when the sequence diverges from an existing
    /// edge inside its first uncached page — nothing page-granular to
    /// add there... except there always is: the diverging tail itself
    /// becomes a sibling leaf, so the only `None` case is a zero aligned
    /// length).
    ///
    /// # Panics
    ///
    /// Panics if `source` holds fewer positions than the aligned length.
    pub fn insert(&mut self, tokens: &[usize], source: &mut KvCache) -> Option<NodeId> {
        let aligned = tokens.len() / self.page_positions * self.page_positions;
        if aligned == 0 {
            return None;
        }
        assert!(
            source.len() >= aligned,
            "source cache holds {} positions, insert needs {aligned}",
            source.len()
        );
        let t = &tokens[..aligned];
        let stamp = self.tick();
        let mut node = ROOT;
        let mut depth = 0usize;
        loop {
            self.node_mut(node).last_used = stamp;
            if depth == aligned {
                return Some(node);
            }
            let Some((child, k)) = self.best_child(node, &t[depth..]) else {
                return Some(self.new_leaf(node, t, depth, source, stamp));
            };
            if k == self.node(child).edge.len() {
                node = child;
                depth += k;
                continue;
            }
            // Diverged (or tokens exhausted) at offset `k` inside
            // `child`'s edge: split at the last page boundary at or
            // below `k`. Below one page there is nothing shareable —
            // the new tail becomes a plain sibling leaf instead.
            let split = k / self.page_positions * self.page_positions;
            if split == 0 {
                return Some(self.new_leaf(node, t, depth, source, stamp));
            }
            let mid = self.split_edge(node, child, split, stamp);
            node = mid;
            depth += split;
        }
    }

    /// Appends a leaf under `parent` holding `t[depth..]` (whole pages by
    /// construction), forked from `source`.
    fn new_leaf(
        &mut self,
        parent: NodeId,
        t: &[usize],
        depth: usize,
        source: &mut KvCache,
        stamp: u64,
    ) -> NodeId {
        debug_assert!(depth < t.len());
        let cache = source.fork_prefix(t.len());
        let leaf = self.alloc(Node {
            parent,
            edge: t[depth..].to_vec(),
            start: depth,
            cache: Some(cache),
            children: Vec::new(),
            last_used: stamp,
            active: 0,
            pins: 0,
        });
        self.node_mut(parent).children.push(leaf);
        self.resident_pages += self.span_pages(t.len() - depth);
        leaf
    }

    /// Splits `child` (a child of `parent`) at `split` tokens into its
    /// edge: a new interior node takes the first `split` tokens (cache
    /// forked from `child`'s, so the pages stay physically shared) and
    /// `child` keeps the remainder. Residency is unchanged — the pages
    /// move from `child`'s span to the new node's.
    fn split_edge(&mut self, parent: NodeId, child: NodeId, split: usize, stamp: u64) -> NodeId {
        let start = self.node(child).start;
        let head: Vec<usize> = self.node(child).edge[..split].to_vec();
        let cache = self
            .node_mut(child)
            .cache
            .as_mut()
            .expect("non-root nodes hold caches")
            .fork_prefix(start + split);
        let mid = self.alloc(Node {
            parent,
            edge: head,
            start,
            cache: Some(cache),
            children: vec![child],
            last_used: stamp,
            active: 0,
            pins: 0,
        });
        let c = self.node_mut(child);
        c.edge.drain(..split);
        c.start = start + split;
        c.parent = mid;
        let p = self.node_mut(parent);
        let slot = p
            .children
            .iter()
            .position(|&id| id == child)
            .expect("child is listed under its parent");
        p.children[slot] = mid;
        mid
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        match self.free.pop() {
            Some(id) => {
                self.nodes[id] = Some(node);
                id
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    /// `true` when `id` or any ancestor carries a pin (pins protect the
    /// whole subtree below them).
    fn pinned_path(&self, mut id: NodeId) -> bool {
        loop {
            let n = self.node(id);
            if n.pins > 0 {
                return true;
            }
            if id == ROOT {
                return false;
            }
            id = n.parent;
        }
    }

    /// The least-recently-used evictable node, if any: a leaf (interior
    /// nodes share their pages with descendants) with no live forks and
    /// no pin anywhere on its path.
    fn lru_candidate(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.as_ref().map(|n| (id, n)))
            .filter(|&(id, n)| {
                id != ROOT && n.children.is_empty() && n.active == 0 && !self.pinned_path(id)
            })
            .min_by_key(|&(_, n)| n.last_used)
            .map(|(id, _)| id)
    }

    /// Evicts least-recently-used leaves until at least `want_pages`
    /// accounting pages are freed or nothing evictable remains; returns
    /// the pages actually freed. Dropping a node's cache releases its
    /// page leases — whole pages nobody else co-owns rejoin the pool's
    /// free list immediately. Evicting a leaf can expose its parent as
    /// the next candidate, so sustained pressure drains whole cold
    /// chains.
    pub fn evict_lru(&mut self, want_pages: usize) -> usize {
        let mut freed = 0usize;
        while freed < want_pages {
            let Some(id) = self.lru_candidate() else {
                break;
            };
            freed += self.evict(id);
        }
        freed
    }

    /// Evicts everything evictable (tests, benches, and explicit cache
    /// flushes); returns the pages freed.
    pub fn evict_all(&mut self) -> usize {
        let mut freed = 0usize;
        while let Some(id) = self.lru_candidate() {
            freed += self.evict(id);
        }
        freed
    }

    /// Removes leaf `id`, dropping its cache (and with it, its page
    /// leases). Returns its accounting span.
    fn evict(&mut self, id: NodeId) -> usize {
        let node = self.nodes[id].take().expect("live node id");
        debug_assert!(node.children.is_empty(), "only leaves are evicted");
        debug_assert_eq!(node.active, 0, "a held node must never be evicted");
        let span = self.span_pages(node.edge.len());
        self.resident_pages -= span;
        self.evictions += 1;
        let p = self.node_mut(node.parent);
        p.children.retain(|&c| c != id);
        self.free.push(id);
        drop(node); // drops the cache → releases the page leases
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anda_llm::kv::{KvPoolConfig, KvStorage, PagePool};
    use anda_tensor::Rng;

    const PP: usize = 4;
    const DIM: usize = 16;

    fn pool() -> PagePool {
        PagePool::new(KvPoolConfig {
            storage: KvStorage::Fp16,
            page_positions: PP,
            max_pages: None,
        })
    }

    /// A single-layer cache filled with `tokens.len()` deterministic rows
    /// derived from the token ids, so equal prefixes hold equal bits.
    fn cache_for(pool: &PagePool, tokens: &[usize]) -> KvCache {
        let mut cache = pool.new_cache(1);
        for &tok in tokens {
            let mut rng = Rng::new(tok as u64 + 1);
            let row: Vec<f32> = (0..DIM).map(|_| rng.normal_with(0.0, 1.0)).collect();
            cache.append_row(0, &row, &row);
        }
        cache
    }

    fn seq(tag: usize, len: usize) -> Vec<usize> {
        (0..len).map(|i| (i * 31 + tag * 7 + 1) % 97).collect()
    }

    #[test]
    fn insert_then_lookup_round_trips_at_page_granularity() {
        let pool = pool();
        let mut tree = RadixTree::new(PP, 1);
        let tokens = seq(1, 11); // 2 whole pages + 3 spare tokens
        let mut cache = cache_for(&pool, &tokens);
        let node = tree.insert(&tokens, &mut cache).expect("aligned len 8");
        assert_eq!(tree.node(node).end(), 8);
        assert_eq!(tree.resident_pages(), 2);

        let m = tree.lookup(&tokens, tokens.len()).expect("must hit");
        assert_eq!(m.depth, 8, "match is page-rounded");
        assert_eq!(m.node, node);
        // The capped lookup never hands back the whole prompt.
        let m = tree
            .lookup(&tokens[..8], 7)
            .expect("cap still leaves a page");
        assert_eq!(m.depth, 4);
        // Sub-page prompts can never match.
        assert!(tree.lookup(&tokens[..3], 3).is_none());
    }

    #[test]
    fn diverging_sequences_split_on_page_boundaries_only() {
        let pool = pool();
        let mut tree = RadixTree::new(PP, 1);
        let a = seq(1, 12);
        let mut b = a.clone();
        b[6] += 1; // diverge mid-page-1: only page 0 is shareable
        let mut ca = cache_for(&pool, &a);
        let mut cb = cache_for(&pool, &b);
        tree.insert(&a, &mut ca).unwrap();
        assert_eq!(tree.node_count(), 1);
        tree.insert(&b, &mut cb).unwrap();
        // Split at 4 (page boundary below the divergence at 6): an
        // interior node plus two leaves.
        assert_eq!(tree.node_count(), 3);
        assert_eq!(tree.resident_pages(), 1 + 2 + 2);
        let ma = tree.lookup(&a, a.len()).unwrap();
        let mb = tree.lookup(&b, b.len()).unwrap();
        assert_eq!((ma.depth, mb.depth), (12, 12));
        assert_ne!(ma.node, mb.node);
    }

    #[test]
    fn fork_reads_the_inserted_bits() {
        let pool = pool();
        let mut tree = RadixTree::new(PP, 1);
        let tokens = seq(3, 8);
        let mut cache = cache_for(&pool, &tokens);
        let expect: Vec<u32> = (0..8)
            .flat_map(|i| {
                cache
                    .layer(0)
                    .key(i)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>()
            })
            .collect();
        let node = tree.insert(&tokens, &mut cache).unwrap();
        drop(cache); // the tree's fork keeps the pages alive
        tree.acquire(node);
        let fork = tree.fork(node, 8);
        let got: Vec<u32> = (0..8)
            .flat_map(|i| {
                fork.layer(0)
                    .key(i)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(got, expect, "forked prefix reads the donor's exact bits");
        tree.release(node);
    }

    #[test]
    fn eviction_is_lru_skips_held_and_pinned_and_frees_pages() {
        let pool = pool();
        let mut tree = RadixTree::new(PP, 1);
        let mut caches: Vec<KvCache> = Vec::new();
        let mut nodes = Vec::new();
        for tag in 0..3 {
            let tokens = seq(tag + 10, 8);
            let mut cache = cache_for(&pool, &tokens);
            nodes.push(tree.insert(&tokens, &mut cache).unwrap());
            caches.push(cache);
        }
        drop(caches); // tree leases are now the only owners
        let in_use = pool.pages_in_use();
        assert_eq!(in_use, 6, "three 2-page chains");

        tree.acquire(nodes[0]); // oldest, but held by a live stream
        tree.pin(nodes[1]); // next oldest, but pinned
        assert_eq!(tree.evict_lru(1), 2, "whole leaf spans are freed");
        assert_eq!(pool.pages_in_use(), in_use - 2, "pages really returned");
        assert_eq!(tree.evictions(), 1);
        // Only the unheld, unpinned leaf (the newest) was evictable.
        assert!(tree.lookup(&seq(12, 8), 8).is_none());
        assert!(tree.lookup(&seq(10, 8), 8).is_some());
        assert!(tree.lookup(&seq(11, 8), 8).is_some());

        // Nothing else is evictable until the hold and pin drop.
        assert_eq!(tree.evict_lru(usize::MAX), 0);
        tree.release(nodes[0]);
        tree.unpin(nodes[1]);
        assert_eq!(tree.evict_all(), 4);
        assert_eq!(tree.resident_pages(), 0);
        assert_eq!(pool.pages_in_use(), 0, "a drained tree frees every page");
    }

    #[test]
    fn split_keeps_interior_pages_shared_and_evicts_chains_bottom_up() {
        let pool = pool();
        let mut tree = RadixTree::new(PP, 1);
        let a = seq(5, 16);
        let mut b = a.clone();
        b[9] += 1; // shares pages 0–1, diverges in page 2
        let mut ca = cache_for(&pool, &a);
        tree.insert(&a, &mut ca).unwrap();
        drop(ca);
        assert_eq!(pool.pages_in_use(), 4);
        // The split forks a's leaf cache at the page-aligned divergence:
        // the interior node and a's shortened leaf co-own a's original
        // four pages — the split itself allocates nothing.
        let mut cb = cache_for(&pool, &b);
        tree.insert(&b, &mut cb).unwrap();
        assert_eq!(
            pool.pages_in_use(),
            8,
            "split is allocation-free; only b's own pages were added"
        );
        drop(cb); // b's leaf keeps b's pages alive
        assert_eq!(pool.pages_in_use(), 8);
        // Accounting counts edge spans: 2 (interior) + 2 (a tail) + 2
        // (b tail) — exact for scheduler-flow inserts, where b's first
        // two pages would have been forked *from the tree* and thus be
        // physically a's; this test's independently built cache keeps
        // its own copies, the documented standalone-use undercount.
        assert_eq!(tree.resident_pages(), 2 + 2 + 2);
        // The interior node is not a leaf: evicting everything drains
        // leaves first, then the exposed interior chain, and frees every
        // physical page even when spans undercount duplicates.
        assert_eq!(tree.evict_all(), 6);
        assert_eq!(pool.pages_in_use(), 0);
    }
}
