//! Compressed-KV serving: the scheduler on an FP16 or Anda page pool is
//! bit-exact against solo [`Model::generate_with_cache`] on a
//! same-policy cache, and Anda page accounting admits long-context
//! batches that FP32 accounting of the same memory budget must reject.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage, PagePool};
use anda_llm::zoo::{opt_125m_sim, sim_model};
use anda_llm::Model;
use anda_serve::{Request, Scheduler, SchedulerConfig, SubmitError};
use anda_tensor::Rng;
use rayon_lite::ThreadPool;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn llama() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| sim_model("LLaMA-7B").unwrap().build())
}

/// Solo reference under an arbitrary storage policy: the request run
/// alone on a fresh same-policy cache, truncated at the first EOS like
/// the scheduler truncates.
fn reference(model: &Model, req: &Request, storage: KvStorage) -> Vec<usize> {
    let pool = PagePool::new(KvPoolConfig::unbounded(storage));
    let mut cache = pool.new_cache(model.config().n_layers);
    let mut rng = Rng::new(req.sampling.seed);
    let full = model.generate_with_cache(
        &req.prompt,
        req.max_new,
        req.sampling.temperature,
        &mut rng,
        &mut cache,
    );
    if let Some(eos) = req.eos {
        let p = req.prompt.len();
        if let Some(i) = full[p..].iter().position(|&t| t == eos) {
            return full[..p + i + 1].to_vec();
        }
    }
    full
}

fn workload() -> Vec<Request> {
    vec![
        Request::builder([1, 2, 3]).max_new(12).build().unwrap(),
        Request::builder([400, 5])
            .max_new(9)
            .temperature(0.9)
            .seed(7)
            .build()
            .unwrap(),
        Request::builder([9, 9, 9, 12, 40])
            .max_new(15)
            .temperature(1.2)
            .seed(99)
            .build()
            .unwrap(),
    ]
}

/// Serving over a compressed page pool reproduces the same-policy solo
/// reference token for token, for every policy, page size 1 and the
/// default, and pool sizes 1 and 4 — on both model families.
#[test]
fn compressed_serving_matches_same_policy_solo_generate() {
    for m in [model(), llama()] {
        for storage in [
            KvStorage::Fp16,
            KvStorage::Bf16,
            KvStorage::Anda { mantissa_bits: 6 },
            KvStorage::Anda { mantissa_bits: 11 },
        ] {
            let reqs = workload();
            for (threads, page_positions) in [(1, 1), (4, 1), (1, 8), (4, 8)] {
                let pool = ThreadPool::new(threads);
                let mut sched = Scheduler::with_pool(
                    m,
                    SchedulerConfig {
                        max_batch: reqs.len(),
                        kv: KvPoolConfig {
                            storage,
                            page_positions,
                            max_pages: None,
                        },
                        ..SchedulerConfig::default()
                    },
                    &pool,
                );
                for r in &reqs {
                    sched.submit(r.clone()).unwrap();
                }
                let finished = sched.run_to_completion();
                assert!(sched.stats().peak_active >= 3, "streams must overlap");
                assert_eq!(finished.len(), reqs.len());
                for fin in &finished {
                    let req = &reqs[fin.id.0 as usize];
                    assert_eq!(
                        fin.tokens,
                        reference(m, req, storage),
                        "{storage:?} pp={page_positions} threads={threads} \
                         stream {} diverged from its solo reference",
                        fin.id
                    );
                }
            }
        }
    }
}

/// The §VI long-context headroom, as an admission fact: a batch of
/// streams whose summed worst-case FP32 KV exceeds a memory budget — so
/// FP32 page accounting rejects some of them outright — fits entirely in
/// an Anda pool of the *same* budget, which then actually serves the
/// whole batch concurrently within its page capacity.
#[test]
fn anda_pool_admits_a_batch_fp32_accounting_rejects() {
    let model = model();
    let cfg = model.config();
    let batch = 4usize;
    let prompt_len = 24usize;
    let max_new = 40usize;
    let worst_positions = prompt_len + max_new;
    let page_positions = 8usize;

    // Budget: 1.5 requests' worth of FP32 KV. Anda M=5 compresses rows
    // ~5.3x vs FP32, so the same bits hold the whole 4-stream batch.
    let fp32_req_bits = cfg.n_layers * 2 * worst_positions * KvStorage::Fp32.row_bits(cfg.d_model);
    let budget_bits = fp32_req_bits * 3 / 2;
    let anda = KvStorage::Anda { mantissa_bits: 5 };

    let reqs: Vec<Request> = (0..batch)
        .map(|i| {
            Request::builder(
                (0..prompt_len)
                    .map(|j| (i * 131 + j * 17 + 1) % cfg.vocab)
                    .collect::<Vec<_>>(),
            )
            .max_new(max_new)
            .temperature(0.8)
            .seed(i as u64)
            .build()
            .unwrap()
        })
        .collect();

    // FP32 accounting over this budget cannot even hold two streams at
    // once; with a single-request budget it must reject at submit time.
    let fp32_pool = KvPoolConfig {
        storage: KvStorage::Fp32,
        page_positions,
        max_pages: None,
    }
    .with_memory_budget(fp32_req_bits / 2, cfg.d_model);
    let mut fp32_sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: batch,
            kv: fp32_pool,
            ..SchedulerConfig::default()
        },
    );
    let err = fp32_sched.submit(reqs[0].clone()).unwrap_err();
    assert!(
        matches!(err, SubmitError::ExceedsPoolCapacity { .. }),
        "half a request's FP32 budget must reject at submit: {err}"
    );

    // The same total budget under Anda holds the entire batch at once.
    let anda_cfg = KvPoolConfig {
        storage: anda,
        page_positions,
        max_pages: None,
    }
    .with_memory_budget(budget_bits, cfg.d_model);
    let pages_per_req = cfg.n_layers * worst_positions.div_ceil(page_positions);
    assert!(
        anda_cfg.max_pages.unwrap() >= batch * pages_per_req,
        "the compressed pool must hold the whole batch's worst case \
         ({} pages < {} needed)",
        anda_cfg.max_pages.unwrap(),
        batch * pages_per_req
    );

    // And under FP32, the same budget provably cannot:
    let fp32_budget_cfg = KvPoolConfig {
        storage: KvStorage::Fp32,
        page_positions,
        max_pages: None,
    }
    .with_memory_budget(budget_bits, cfg.d_model);
    assert!(
        fp32_budget_cfg.max_pages.unwrap() < batch * pages_per_req,
        "the scenario must be out of reach for FP32 accounting"
    );

    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: batch,
            kv: anda_cfg,
            ..SchedulerConfig::default()
        },
    );
    for r in &reqs {
        sched.submit(r.clone()).unwrap();
    }
    let finished = sched.run_to_completion();
    assert_eq!(finished.len(), batch);
    assert_eq!(
        sched.stats().peak_active,
        batch,
        "the whole batch must run concurrently"
    );
    assert!(sched.stats().peak_pages_in_use <= anda_cfg.max_pages.unwrap());
    // Each stream still matches its solo compressed reference.
    for fin in &finished {
        let req = &reqs[fin.id.0 as usize];
        assert_eq!(fin.tokens, reference(model, req, anda));
    }
}
