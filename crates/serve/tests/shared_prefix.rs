//! Shared-prefix serving: a scheduler that forks registered prefix
//! caches into its streams is token/logit bit-exact against fully
//! private caches, charges each stream only its unshared pages, and
//! returns every page (pinned ones included) when the work drains.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage};
use anda_llm::zoo::{opt_125m_sim, sim_model};
use anda_llm::Model;
use anda_serve::{ReleasePrefixError, Request, Scheduler, SchedulerConfig, SubmitError};
use rayon_lite::ThreadPool;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn llama() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| sim_model("LLaMA-7B").unwrap().build())
}

/// A batch of requests over one shared prefix: varied private prompts,
/// budgets, temperatures and one EOS user.
fn private_parts() -> Vec<Request> {
    vec![
        Request::builder(vec![1, 2, 3]).max_new(10).build().unwrap(),
        Request::builder(vec![400, 5])
            .max_new(8)
            .temperature(0.9)
            .seed(7)
            .build()
            .unwrap(),
        Request::builder(vec![9, 9, 12])
            .max_new(12)
            .eos(40)
            .temperature(1.1)
            .seed(99)
            .build()
            .unwrap(),
    ]
}

/// Runs the same workload twice — once routed through a registered
/// prefix, once as fully private full-prompt requests — and demands
/// bit-identical completions, for every storage policy and page size
/// the satellite matrix names, with the prefix deliberately not
/// page-aligned at page size 8 so copy-on-write fires in the shared
/// run.
#[test]
fn shared_prefix_serving_is_bit_exact_vs_private_caches() {
    // 13 tokens: 1-page-misaligned at pp=8 (partial tail page → CoW)
    // and multi-page at pp=1.
    let prefix: Vec<usize> = (0..13).map(|i| (i * 29 + 11) % 500).collect();
    for m in [model(), llama()] {
        for storage in [
            KvStorage::Fp32,
            KvStorage::Fp16,
            KvStorage::Bf16,
            KvStorage::Anda { mantissa_bits: 6 },
            KvStorage::Anda { mantissa_bits: 11 },
        ] {
            for (threads, page_positions) in [(1, 1), (1, 8), (4, 8)] {
                let pool = ThreadPool::new(threads);
                let kv = KvPoolConfig {
                    storage,
                    page_positions,
                    max_pages: None,
                };
                let cfg = SchedulerConfig {
                    max_batch: 3,
                    kv,
                    ..SchedulerConfig::default()
                };

                let mut shared = Scheduler::with_pool(m, cfg, &pool);
                shared.register_prefix("sys", prefix.clone()).unwrap();
                for mut r in private_parts() {
                    r.prefix = Some("sys".into());
                    shared.submit(r).unwrap();
                }
                let mut shared_done = shared.run_to_completion();
                assert_eq!(shared.stats().prefix_forks, 3);

                let mut private = Scheduler::with_pool(m, cfg, &pool);
                for mut r in private_parts() {
                    let mut full = prefix.clone();
                    full.extend_from_slice(&r.prompt);
                    r.prompt = full;
                    private.submit(r).unwrap();
                }
                let mut private_done = private.run_to_completion();

                shared_done.sort_by_key(|f| f.id);
                private_done.sort_by_key(|f| f.id);
                for (s, p) in shared_done.iter().zip(&private_done) {
                    assert_eq!(
                        s.tokens, p.tokens,
                        "{storage:?} pp={page_positions} threads={threads}: \
                         shared-prefix stream {} diverged from its private twin",
                        s.id
                    );
                    assert_eq!(s.prompt_len, p.prompt_len, "effective prompt length");
                    assert_eq!(s.reason, p.reason);
                }
                // The shared run deduplicated real pages: it never
                // leased more than the private run, and at pp=8 the
                // whole-page prefix savings are strict.
                let (su, pu) = (
                    shared.stats().peak_pages_in_use,
                    private.stats().peak_pages_in_use,
                );
                assert!(su <= pu, "sharing must not cost pages ({su} > {pu})");
                if page_positions == 8 {
                    assert!(su < pu, "whole-page prefix sharing must save pages");
                }
            }
        }
    }
}

/// The admission discount as an executable fact: on a pool sized for
/// `pages(prefix) + N·pages(private)`, the shared batch runs fully
/// concurrently while the same workload as private full prompts cannot
/// — the watermark serializes it (and a single private request already
/// over-demands a pool that sharing would have made roomy).
#[test]
fn admission_charges_only_unshared_pages() {
    let m = model();
    let n_layers = m.config().n_layers;
    let batch = 4usize;
    let pp = 8usize;
    let prefix_len = 48usize; // page-aligned: 6 shared pages per layer
    let private_tokens = 8 + 16; // prompt suffix + max_new → 3 pages
    let prefix: Vec<usize> = (0..prefix_len).map(|i| (i * 7 + 1) % 500).collect();

    let shared_pages = n_layers * (prefix_len / pp);
    let private_pages = n_layers * ((prefix_len + private_tokens).div_ceil(pp) - prefix_len / pp);
    let capacity = shared_pages + batch * private_pages;

    let kv = KvPoolConfig {
        storage: KvStorage::Anda { mantissa_bits: 5 },
        page_positions: pp,
        max_pages: Some(capacity),
    };
    let mk_req = |i: usize| {
        Request::builder(
            (0..8)
                .map(|j| (i * 131 + j * 17 + 1) % 500)
                .collect::<Vec<_>>(),
        )
        .max_new(16)
        .temperature(0.8)
        .seed(i as u64)
        .build()
        .unwrap()
    };

    // Shared: everything fits at once.
    let mut shared = Scheduler::new(
        m,
        SchedulerConfig {
            max_batch: batch,
            kv,
            ..SchedulerConfig::default()
        },
    );
    let pinned = shared.register_prefix("sys", prefix.clone()).unwrap();
    assert_eq!(pinned, shared_pages);
    for i in 0..batch {
        let mut prefixed = mk_req(i);
        prefixed.prefix = Some("sys".into());
        assert_eq!(shared.pages_needed(&prefixed), private_pages);
        shared.submit(prefixed).unwrap();
    }
    let done = shared.run_to_completion();
    assert_eq!(done.len(), batch);
    assert_eq!(
        shared.stats().peak_active,
        batch,
        "the shared batch must run fully concurrently"
    );
    // Physical peak: the prefix pages once plus each stream's private
    // pages — `pages(P) + N·pages(private)`, not `N·pages(P+private)`.
    assert_eq!(shared.stats().peak_pages_in_use, capacity);

    // Private full prompts on the same pool: the watermark must
    // serialize the batch (each stream now demands its own prefix
    // pages too).
    let mut private = Scheduler::new(
        m,
        SchedulerConfig {
            max_batch: batch,
            kv,
            ..SchedulerConfig::default()
        },
    );
    for i in 0..batch {
        let mut r = mk_req(i);
        let mut full = prefix.clone();
        full.extend_from_slice(&r.prompt);
        r.prompt = full;
        private.submit(r).unwrap();
    }
    let done = private.run_to_completion();
    assert_eq!(done.len(), batch, "serialized, not starved");
    assert!(
        private.stats().peak_active < batch,
        "private full prompts must not fit concurrently on this pool"
    );
}

/// Registry lifecycle: duplicate and unknown keys are rejected,
/// release refuses while streams or queued requests depend on the
/// prefix, and a drained scheduler hands back every page — pinned ones
/// exactly when the release succeeds.
#[test]
fn registry_lifecycle_and_page_drain() {
    let m = model();
    let mut sched = Scheduler::new(
        m,
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                storage: KvStorage::Fp16,
                page_positions: 4,
                max_pages: Some(m.config().n_layers * 40),
            },
            ..SchedulerConfig::default()
        },
    );
    let vocab = m.config().vocab;
    assert_eq!(
        sched.register_prefix("p", vec![]),
        Err(SubmitError::EmptyPrompt)
    );
    assert_eq!(
        sched.register_prefix("p", vec![vocab]),
        Err(SubmitError::TokenOutOfVocab {
            token: vocab,
            vocab
        })
    );
    let pinned = sched.register_prefix("p", vec![5, 6, 7, 8, 9]).unwrap();
    assert_eq!(pinned, m.config().n_layers * 2, "5 tokens → 2 pages/layer");
    assert_eq!(sched.pool_snapshot().pinned_pages, pinned);
    assert_eq!(sched.prefix_len("p"), Some(5));
    assert_eq!(
        sched.register_prefix("p", vec![1]),
        Err(SubmitError::PrefixAlreadyRegistered)
    );
    assert_eq!(
        sched.submit(
            Request::builder(vec![1])
                .max_new(2)
                .prefix("nope")
                .build()
                .unwrap()
        ),
        Err(SubmitError::UnknownPrefix)
    );

    // Queued dependents block release; so do active streams. The error
    // names the exact blockers either way.
    let dep = sched
        .submit(
            Request::builder(vec![1, 2])
                .max_new(3)
                .prefix("p")
                .build()
                .unwrap(),
        )
        .unwrap();
    assert_eq!(
        sched.release_prefix("p"),
        Err(ReleasePrefixError::InUse {
            active_forks: 0,
            pending: vec![dep],
        }),
        "pending dependent must block, by id"
    );
    sched.step();
    assert_eq!(
        sched.release_prefix("p"),
        Err(ReleasePrefixError::InUse {
            active_forks: 1,
            pending: vec![],
        }),
        "active dependent must block, by fork count"
    );
    while !sched.is_idle() {
        sched.step();
    }
    let done = sched.take_finished();
    assert_eq!(done.len(), 1);
    assert_eq!(
        &done[0].tokens[..5],
        &[5, 6, 7, 8, 9],
        "prefix leads the output"
    );
    assert_eq!(done[0].prompt_len, 7);

    // Drained: only the pinned pages remain leased, and releasing the
    // prefix returns those too.
    assert_eq!(sched.pool_snapshot().reserved_pages, 0);
    assert_eq!(sched.kv_pool().pages_in_use(), pinned);
    assert_eq!(
        sched.release_prefix("ghost"),
        Err(ReleasePrefixError::UnknownKey)
    );
    assert_eq!(sched.release_prefix("p"), Ok(pinned));
    assert_eq!(sched.pool_snapshot().pinned_pages, 0);
    assert_eq!(sched.kv_pool().pages_in_use(), 0, "all pages drained");
    assert_eq!(
        sched.release_prefix("p"),
        Err(ReleasePrefixError::UnknownKey),
        "double release is refused as unknown"
    );
}

/// Mixed batches — prefix and non-prefix streams decoding side by side
/// — stay bit-exact, and two prefixes can be live at once.
#[test]
fn mixed_and_multi_prefix_batches_are_exact() {
    let m = model();
    let kv = KvPoolConfig {
        storage: KvStorage::Anda { mantissa_bits: 8 },
        page_positions: 8,
        max_pages: None,
    };
    let prefix_a: Vec<usize> = (0..11).map(|i| (i * 3 + 2) % 500).collect();
    let prefix_b: Vec<usize> = (0..19).map(|i| (i * 13 + 5) % 500).collect();

    let mut sched = Scheduler::new(
        m,
        SchedulerConfig {
            max_batch: 4,
            kv,
            ..SchedulerConfig::default()
        },
    );
    sched.register_prefix("a", prefix_a.clone()).unwrap();
    sched.register_prefix("b", prefix_b.clone()).unwrap();
    sched
        .submit(
            Request::builder(vec![1, 2])
                .max_new(6)
                .prefix("a")
                .build()
                .unwrap(),
        )
        .unwrap();
    sched
        .submit(
            Request::builder(vec![3, 4])
                .max_new(6)
                .prefix("b")
                .build()
                .unwrap(),
        )
        .unwrap();
    sched
        .submit(Request::builder(vec![5, 6]).max_new(6).build().unwrap())
        .unwrap();
    sched
        .submit(
            Request::builder(vec![7])
                .max_new(5)
                .prefix("a")
                .build()
                .unwrap(),
        )
        .unwrap();
    let mut done = sched.run_to_completion();
    done.sort_by_key(|f| f.id);

    let mut reference = Scheduler::new(
        m,
        SchedulerConfig {
            max_batch: 4,
            kv,
            ..SchedulerConfig::default()
        },
    );
    for full in [
        [prefix_a.clone(), vec![1, 2]].concat(),
        [prefix_b.clone(), vec![3, 4]].concat(),
        vec![5, 6],
        [prefix_a.clone(), vec![7]].concat(),
    ] {
        let max_new = if full.ends_with(&[7]) { 5 } else { 6 };
        reference
            .submit(Request::builder(full).max_new(max_new).build().unwrap())
            .unwrap();
    }
    let mut ref_done = reference.run_to_completion();
    ref_done.sort_by_key(|f| f.id);
    for (s, p) in done.iter().zip(&ref_done) {
        assert_eq!(s.tokens, p.tokens, "stream {} diverged", s.id);
    }
}

/// Registration ordered *after* an accepted submit must not strand it:
/// a pin that would leave the pending request permanently unadmittable
/// is rejected, the request still completes, and a pin that genuinely
/// fits alongside the queue is accepted.
#[test]
fn late_registration_cannot_strand_accepted_requests() {
    let m = model();
    let n_layers = m.config().n_layers;
    // Capacity: exactly one 4-token request (2 pages/layer at pp=2).
    let mut sched = Scheduler::new(
        m,
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                storage: KvStorage::Fp16,
                page_positions: 2,
                max_pages: Some(n_layers * 2),
            },
            ..SchedulerConfig::default()
        },
    );
    sched
        .submit(Request::builder(vec![1, 2, 3]).max_new(1).build().unwrap())
        .unwrap();
    // Pinning even one page/layer now would make the queued request's
    // 2-page demand unadmittable forever — must be refused.
    let err = sched.register_prefix("sys", vec![5, 6]).unwrap_err();
    // Transient refusal: the pool *could* hold the pin once the queue
    // drains (shown below), so this is saturation, not a capacity error.
    assert!(
        matches!(err, SubmitError::PoolSaturated { .. }),
        "a pin that strands the queue must be refused: {err}"
    );
    assert_eq!(
        sched.pool_snapshot().pinned_pages,
        0,
        "rejected pins charge nothing"
    );
    let done = sched.run_to_completion();
    assert_eq!(done.len(), 1, "the accepted request still terminates");
    // With the queue drained the same registration fits.
    assert!(sched.register_prefix("sys", vec![5, 6]).is_ok());
}
