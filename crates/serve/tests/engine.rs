//! The serving front door: [`Engine`] / [`SubmitHandle`] lifecycle,
//! incremental token polling, await semantics, and the deterministic
//! virtual-time workload generators ([`ArrivalSchedule`] / [`Replay`])
//! the SLO harness is built on. Everything here runs in virtual step
//! time — no wall clock anywhere — so every assertion is exact.

use std::sync::OnceLock;

use anda_llm::kv::KvPoolConfig;
use anda_llm::zoo::opt_125m_sim;
use anda_llm::Model;
use anda_serve::{
    ArrivalSchedule, CancelError, Engine, Priority, Replay, Request, RequestState, Scheduler,
    SchedulerConfig,
};

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

/// Reference: the same requests run straight through a scheduler.
fn reference(reqs: &[Request]) -> Vec<Vec<usize>> {
    let mut sched = Scheduler::new(model(), SchedulerConfig::default());
    for r in reqs {
        sched.submit(r.clone()).unwrap();
    }
    let mut done = sched.run_to_completion();
    done.sort_by_key(|f| (f.id, f.sample_index));
    done.into_iter().map(|f| f.tokens).collect()
}

/// Polling returns exactly the tokens generated since the last poll:
/// per-step polls concatenate to the stream's full generated sequence,
/// empty polls mean no progress, and two handles never see each other's
/// tokens.
#[test]
fn polls_accumulate_to_the_exact_stream() {
    let reqs = vec![
        Request::builder(vec![1, 2, 3]).max_new(6).build().unwrap(),
        Request::builder(vec![7, 8])
            .max_new(9)
            .temperature(0.9)
            .seed(3)
            .build()
            .unwrap(),
    ];
    let expect = reference(&reqs);

    let engine = Engine::new(model(), SchedulerConfig::default());
    let mut handles: Vec<_> = reqs
        .iter()
        .map(|r| engine.submit(r.clone()).unwrap())
        .collect();
    // Nothing stepped yet: polling is non-blocking and empty.
    assert!(handles[0].try_next_tokens().is_empty());
    assert_eq!(handles[0].state(), RequestState::Pending);

    let mut streamed: Vec<Vec<usize>> = vec![Vec::new(); reqs.len()];
    while !engine.is_idle() {
        engine.step();
        for (h, out) in handles.iter_mut().zip(&mut streamed) {
            let fresh = h.try_next_tokens();
            out.extend(fresh);
        }
    }
    for (i, (h, out)) in handles.iter_mut().zip(&mut streamed).enumerate() {
        assert_eq!(h.state(), RequestState::Finished);
        let results = h.await_finished();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].tokens, expect[i], "handle {i} diverged");
        // The incremental polls add up to exactly the generated suffix.
        assert_eq!(out, &results[0].generated(), "handle {i} streamed wrong");
        // Once collected, the handle stays Finished and polls are empty.
        assert_eq!(h.state(), RequestState::Finished);
        assert!(h.try_next_tokens().is_empty());
    }
}

/// `await_finished` drives the whole engine: co-submitted requests
/// finish too, a parallel request returns its samples in sample order,
/// and best-of returns exactly the winner.
#[test]
fn await_finished_returns_ordered_results() {
    let engine = Engine::new(model(), SchedulerConfig::default());
    let mut par = engine
        .submit(
            Request::builder(vec![3, 1, 4])
                .max_new(5)
                .temperature(0.8)
                .seed(11)
                .parallel(3)
                .build()
                .unwrap(),
        )
        .unwrap();
    let mut best = engine
        .submit(
            Request::builder(vec![1, 5, 9])
                .max_new(5)
                .temperature(0.8)
                .seed(12)
                .best_of(2)
                .build()
                .unwrap(),
        )
        .unwrap();
    let results = par.await_finished();
    assert_eq!(results.len(), 3, "one result per parallel sample");
    assert_eq!(
        results.iter().map(|r| r.sample_index).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    // Awaiting one handle advanced the other request too.
    assert_eq!(best.state(), RequestState::Finished);
    let winner = best.await_finished();
    assert_eq!(winner.len(), 1, "best-of returns only the winner");
    assert!(engine.is_idle());
}

/// The handle walks the documented lifecycle: Pending before a slot
/// opens, Prefilling while chunking a long prompt, Decoding,
/// Suspended under preemption, then Finished.
#[test]
fn states_walk_the_lifecycle() {
    let n_layers = model().config().n_layers;
    let engine = Engine::new(
        model(),
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                page_positions: 4,
                max_pages: Some(n_layers * 5),
                ..KvPoolConfig::default()
            },
            prefill_chunk_tokens: Some(4),
            ..SchedulerConfig::default()
        },
    );
    // A Low victim with a long prompt: 24 positions = 6 pages/layer at
    // 4/page — the pool (5/layer) only ever holds one of the two.
    let victim = engine
        .submit(
            Request::builder((0..14).map(|j| j * 3 + 1).collect::<Vec<_>>())
                .max_new(4)
                .priority(Priority::Low)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert_eq!(victim.state(), RequestState::Pending);
    engine.step();
    assert_eq!(victim.state(), RequestState::Prefilling);

    // A High arrival preempts it mid-prefill.
    let high = engine
        .submit(
            Request::builder(vec![1, 2, 3, 4, 5, 6, 7, 8])
                .max_new(8)
                .priority(Priority::High)
                .build()
                .unwrap(),
        )
        .unwrap();
    engine.step();
    assert_eq!(victim.state(), RequestState::Suspended);
    engine.step();
    assert_eq!(high.state(), RequestState::Decoding);

    engine.run_until_idle();
    assert_eq!(victim.state(), RequestState::Finished);
    assert_eq!(high.state(), RequestState::Finished);
    assert_eq!(engine.scheduler().stats().preemptions, 1);
}

/// Cancellation through the handle is terminal: the state flips to
/// Cancelled, `await_finished` returns nothing, a second cancel reports
/// the request as already cancelled, and the engine serves everyone
/// else to completion.
#[test]
fn handle_cancel_is_terminal() {
    let engine = Engine::new(model(), SchedulerConfig::default());
    let mut doomed = engine
        .submit(Request::builder(vec![9, 9, 9]).max_new(20).build().unwrap())
        .unwrap();
    let mut survivor = engine
        .submit(Request::builder(vec![1, 2, 3]).max_new(5).build().unwrap())
        .unwrap();
    engine.step();
    engine.step();
    assert_eq!(doomed.state(), RequestState::Decoding);
    doomed.cancel().unwrap();
    assert_eq!(doomed.state(), RequestState::Cancelled);
    assert!(doomed.await_finished().is_empty());
    assert_eq!(
        doomed.cancel(),
        Err(CancelError::Cancelled(doomed.id())),
        "cancel must be idempotent-with-error"
    );
    // Cancelling by bare id through the engine works the same way.
    assert_eq!(
        engine.cancel(doomed.id()),
        Err(CancelError::Cancelled(doomed.id()))
    );
    let results = survivor.await_finished();
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].tokens,
        reference(&[Request::builder(vec![1, 2, 3]).max_new(5).build().unwrap()])[0]
    );
    assert!(engine.is_idle());
}

/// Virtual time: `steps()` counts exactly the scheduler iterations the
/// engine ran, whether stepped by hand or driven by a handle.
#[test]
fn virtual_time_counts_engine_steps() {
    let engine = Engine::new(model(), SchedulerConfig::default());
    assert_eq!(engine.steps(), 0);
    let mut h = engine
        .submit(Request::builder(vec![2, 4, 6]).max_new(3).build().unwrap())
        .unwrap();
    engine.step();
    assert_eq!(engine.steps(), 1);
    h.await_finished();
    // Admission step sampled token 1; two more decode steps + the
    // retirement sweep bound the total.
    assert!(engine.steps() >= 3);
    let now = engine.steps();
    engine.run_until_idle();
    assert_eq!(engine.steps(), now, "idle engine must not consume time");
}

/// Poisson arrival schedules are seeded and fully deterministic: same
/// seed, same steps; different seeds diverge; the empirical mean gap
/// tracks the requested one; and schedules are non-decreasing.
#[test]
fn poisson_schedules_are_deterministic() {
    let a = ArrivalSchedule::poisson(42, 3.0, 256);
    let b = ArrivalSchedule::poisson(42, 3.0, 256);
    assert_eq!(a.steps(), b.steps(), "same seed must replay identically");
    let c = ArrivalSchedule::poisson(43, 3.0, 256);
    assert_ne!(a.steps(), c.steps(), "different seeds must diverge");
    assert_eq!(a.len(), 256);
    assert!(a.steps().windows(2).all(|w| w[0] <= w[1]));
    let mean = *a.steps().last().unwrap() as f64 / a.len() as f64;
    assert!(
        (1.5..=4.5).contains(&mean),
        "empirical mean gap {mean} is far from the requested 3.0"
    );
}

/// `Replay` surfaces each arrival exactly once, in order, as virtual
/// time passes its step — including several arrivals landing on one
/// step — and reports exhaustion.
#[test]
fn replay_yields_each_arrival_once() {
    let sched = ArrivalSchedule::trace(vec![0, 0, 2, 5, 5, 5]);
    let mut replay = Replay::new(sched);
    assert_eq!(replay.due(0), 0..2);
    assert_eq!(replay.due(1), 2..2, "nothing due between arrivals");
    assert_eq!(replay.due(4), 2..3, "catch-up covers skipped steps");
    assert!(!replay.exhausted());
    assert_eq!(replay.due(5), 3..6);
    assert!(replay.exhausted());
    assert_eq!(replay.due(100), 6..6);

    let uniform = ArrivalSchedule::uniform(4, 3);
    assert_eq!(uniform.steps(), &[0, 4, 8]);
}

/// The engine serves a replayed Poisson workload: submissions land at
/// their scheduled virtual steps, everyone finishes, and the outputs
/// are exactly the all-at-once reference (arrival timing never changes
/// tokens).
#[test]
fn replayed_workload_is_served_exactly() {
    let reqs: Vec<Request> = (0..6)
        .map(|i| {
            Request::builder(vec![5 + i, 10 + i, 15 + i])
                .max_new(4 + i % 3)
                .temperature(0.9)
                .seed(60 + i as u64)
                .build()
                .unwrap()
        })
        .collect();
    let expect = reference(&reqs);

    let engine = Engine::new(
        model(),
        SchedulerConfig {
            max_batch: 3,
            ..SchedulerConfig::default()
        },
    );
    let mut replay = Replay::new(ArrivalSchedule::poisson(7, 2.0, reqs.len()));
    let mut handles = Vec::new();
    while !(replay.exhausted() && engine.is_idle() && handles.len() == reqs.len()) {
        for i in replay.due(engine.steps()) {
            handles.push(engine.submit(reqs[i].clone()).unwrap());
        }
        engine.step();
    }
    for (i, h) in handles.iter_mut().enumerate() {
        let results = h.await_finished();
        assert_eq!(results[0].tokens, expect[i], "arrival {i} diverged");
    }
}
