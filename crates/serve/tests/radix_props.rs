//! Property suite for the automatic-prefix radix tree
//! ([`anda_serve::RadixTree`]).
//!
//! - **Retrievability**: every inserted sequence's whole-page prefix is
//!   found again by `lookup`, at exactly its page-aligned length.
//! - **Brute-force equivalence**: for arbitrary probes, the tree's
//!   longest-prefix match equals a linear scan over every inserted
//!   sequence (longest common prefix, capped, rounded down to a page).
//! - **Bit-exact forks**: forking a matched node reproduces the donor
//!   rows bit for bit.
//! - **Eviction safety**: eviction never frees a node with live forks
//!   or a pin anywhere on its path — held paths stay retrievable and
//!   their forked pages stay readable through arbitrary pressure, and
//!   once every hold and pin drops the tree drains to zero pages.

use anda_llm::kv::{KvCache, KvPoolConfig, KvStorage, PagePool};
use anda_serve::RadixTree;
use anda_tensor::Rng;
use proptest::prelude::*;

const DIM: usize = 8;

fn pool(page_positions: usize) -> PagePool {
    PagePool::new(KvPoolConfig {
        storage: KvStorage::Fp16,
        page_positions,
        max_pages: None,
    })
}

/// A single-layer cache whose rows are a deterministic function of the
/// token ids, so equal prefixes hold equal bits — the oracle for the
/// fork-exactness checks.
fn cache_for(pool: &PagePool, tokens: &[usize]) -> KvCache {
    let mut cache = pool.new_cache(1);
    for &tok in tokens {
        let mut rng = Rng::new(tok as u64 + 1);
        let row: Vec<f32> = (0..DIM).map(|_| rng.normal_with(0.0, 1.0)).collect();
        cache.append_row(0, &row, &row);
    }
    cache
}

fn key_bits(cache: &KvCache, positions: usize) -> Vec<u32> {
    (0..positions)
        .flat_map(|i| {
            cache
                .layer(0)
                .key(i)
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        })
        .collect()
}

fn lcp(a: &[usize], b: &[usize]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Sequences over a tiny alphabet so random draws collide on real
/// shared prefixes instead of diverging at token 0.
fn seqs_strategy(max_n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..4, 1..20), 1..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inserted sequences are retrievable at page granularity, and for
    /// arbitrary probes the tree's match equals the brute-force scan:
    /// the longest common prefix against any inserted sequence's
    /// aligned span, capped at `max_depth`, rounded down to a page.
    #[test]
    fn lookup_equals_brute_force_longest_prefix_scan(
        pp in 1usize..5,
        seqs in seqs_strategy(10),
        probes in seqs_strategy(8),
        cap_last_token in any::<bool>(),
    ) {
        let pool = pool(pp);
        let mut tree = RadixTree::new(pp, 1);
        for s in &seqs {
            let mut cache = cache_for(&pool, s);
            let aligned = s.len() / pp * pp;
            prop_assert_eq!(tree.insert(s, &mut cache).is_some(), aligned > 0);
            // The tree's forks keep the pages alive past the source.
        }
        // Edge-span accounting never exceeds the physical pages the
        // tree retains (duplicates from independent sources are the
        // source's to account, per the module contract).
        prop_assert!(tree.resident_pages() <= pool.pages_in_use());

        // Retrievability: each inserted sequence hits at exactly its
        // aligned length.
        for s in &seqs {
            let aligned = s.len() / pp * pp;
            match tree.lookup(s, s.len()) {
                Some(m) => prop_assert_eq!(m.depth, aligned),
                None => prop_assert_eq!(aligned, 0),
            }
        }

        // Brute-force equivalence on probes the tree has never seen,
        // under both an uncapped and a last-token-capped lookup (the
        // scheduler always passes `prompt_len - 1`).
        for probe in &probes {
            let max_depth = if cap_last_token {
                probe.len() - 1
            } else {
                probe.len()
            };
            let best = seqs
                .iter()
                .map(|s| lcp(probe, &s[..s.len() / pp * pp]))
                .max()
                .unwrap_or(0);
            let expect = best.min(max_depth) / pp * pp;
            match tree.lookup(probe, max_depth) {
                Some(m) => {
                    prop_assert_eq!(m.depth, expect);
                    // The matched node's fork reproduces the donor rows
                    // bit for bit.
                    tree.acquire(m.node);
                    let fork = tree.fork(m.node, m.depth);
                    let reference = cache_for(&pool, &probe[..m.depth]);
                    prop_assert_eq!(
                        key_bits(&fork, m.depth),
                        key_bits(&reference, m.depth),
                        "forked prefix diverged from the donor bits"
                    );
                    tree.release(m.node);
                }
                None => prop_assert_eq!(expect, 0),
            }
        }
    }

    /// Eviction under unbounded pressure never frees a node with live
    /// forks or a pin on its path: held/pinned sequences stay
    /// retrievable and their forked pages stay bit-readable, and once
    /// the holds and pins drop, the tree drains every page.
    #[test]
    fn eviction_never_frees_held_or_pinned_nodes(
        pp in 1usize..4,
        seqs in seqs_strategy(8),
        hold_mask in prop::collection::vec(any::<bool>(), 8),
        pin_mask in prop::collection::vec(any::<bool>(), 8),
    ) {
        let pool = pool(pp);
        let mut tree = RadixTree::new(pp, 1);
        let mut protected = Vec::new();
        for (i, s) in seqs.iter().enumerate() {
            let mut cache = cache_for(&pool, s);
            let Some(node) = tree.insert(s, &mut cache) else {
                continue; // sub-page sequence: nothing cached
            };
            let (hold, pin) = (hold_mask[i], pin_mask[i]);
            if hold {
                tree.acquire(node);
            }
            if pin {
                tree.pin(node);
            }
            if hold || pin {
                protected.push((node, s.clone(), hold, pin));
            }
        }

        // Unbounded pressure: everything unprotected must go...
        tree.evict_lru(usize::MAX);

        // ...while every protected sequence still hits at full aligned
        // depth and its pages still read back the donor bits.
        for (node, s, _, _) in &protected {
            let aligned = s.len() / pp * pp;
            let m = tree.lookup(s, aligned).expect("protected path evicted");
            prop_assert_eq!(m.depth, aligned);
            tree.acquire(*node);
            let fork = tree.fork(*node, aligned);
            let reference = cache_for(&pool, &s[..aligned]);
            prop_assert_eq!(
                key_bits(&fork, aligned),
                key_bits(&reference, aligned),
                "a protected node's pages were freed under pressure"
            );
            tree.release(*node);
        }

        // Dropping the holds and pins makes everything evictable: the
        // tree drains to zero nodes, zero accounted pages, and zero
        // physical pages.
        for (node, _, hold, pin) in &protected {
            if *hold {
                tree.release(*node);
            }
            if *pin {
                tree.unpin(*node);
            }
        }
        tree.evict_all();
        prop_assert_eq!(tree.node_count(), 0);
        prop_assert_eq!(tree.resident_pages(), 0);
        prop_assert_eq!(pool.pages_in_use(), 0);
    }
}
