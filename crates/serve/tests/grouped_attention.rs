//! Scheduler-level tests for grouped batched attention: the
//! `grouped_attention: true` default must serve token streams
//! bit-identical to the per-stream oracle (`grouped_attention: false`),
//! and [`SchedulerStats::pages_decoded`] must prove the decode-once
//! guarantee — each physical Anda page decodes exactly once per layer
//! per step no matter how many forked streams attend through it.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage};
use anda_llm::zoo::{opt_125m_sim, sim_model};
use anda_llm::Model;
use anda_serve::{Request, Scheduler, SchedulerConfig};
use rayon_lite::ThreadPool;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn llama() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| sim_model("LLaMA-7B").unwrap().build())
}

/// A mixed workload: staggered prompt lengths, budgets, greedy and
/// sampled streams, one EOS user.
fn workload() -> Vec<Request> {
    vec![
        Request::builder([1, 2, 3]).max_new(10).build().unwrap(),
        Request::builder([17]).max_new(6).build().unwrap(),
        Request::builder([400, 5, 77, 8])
            .max_new(8)
            .temperature(0.9)
            .seed(7)
            .build()
            .unwrap(),
        Request::builder([9, 9, 12])
            .max_new(12)
            .eos(40)
            .temperature(1.1)
            .seed(99)
            .build()
            .unwrap(),
    ]
}

/// Runs `workload` (optionally routed through a 16-token registered
/// prefix) to completion and returns finished requests sorted by id.
fn run(
    m: &Model,
    storage: KvStorage,
    page_positions: usize,
    threads: usize,
    grouped: bool,
    with_prefix: bool,
) -> Vec<(Vec<usize>, usize)> {
    let pool = ThreadPool::new(threads);
    let cfg = SchedulerConfig {
        max_batch: 4,
        kv: KvPoolConfig {
            storage,
            page_positions,
            max_pages: None,
        },
        grouped_attention: grouped,
        ..SchedulerConfig::default()
    };
    let mut sched = Scheduler::with_pool(m, cfg, &pool);
    if with_prefix {
        let prefix: Vec<usize> = (0..16).map(|i| (i * 29 + 11) % 500).collect();
        sched.register_prefix("sys", prefix).unwrap();
    }
    for mut r in workload() {
        if with_prefix {
            r.prefix = Some("sys".into());
        }
        sched.submit(r).unwrap();
    }
    let mut done = sched.run_to_completion();
    done.sort_by_key(|r| r.id);
    done.into_iter().map(|r| (r.tokens, r.prompt_len)).collect()
}

/// The grouped default serves the same tokens as the per-stream oracle
/// for every storage policy, page size and thread count, with and
/// without a shared prefix.
#[test]
fn grouped_serving_matches_per_stream_oracle() {
    for storage in [
        KvStorage::Fp32,
        KvStorage::Fp16,
        KvStorage::Bf16,
        KvStorage::Anda { mantissa_bits: 6 },
        KvStorage::Anda { mantissa_bits: 11 },
    ] {
        for (threads, page_positions) in [(1, 1), (1, 8), (4, 8)] {
            for with_prefix in [false, true] {
                let oracle = run(model(), storage, page_positions, 1, false, with_prefix);
                let grouped = run(model(), storage, page_positions, threads, true, with_prefix);
                assert_eq!(
                    grouped, oracle,
                    "grouped serving diverged: {storage:?}, pp {page_positions}, \
                     {threads} threads, prefix {with_prefix}"
                );
            }
        }
    }
}

/// Same through the LLaMA family (RoPE staging in the grouped path).
#[test]
fn grouped_serving_matches_oracle_for_llama() {
    let storage = KvStorage::Anda { mantissa_bits: 6 };
    let oracle = run(llama(), storage, 8, 1, false, true);
    let grouped = run(llama(), storage, 8, 4, true, true);
    assert_eq!(grouped, oracle);
}

/// The decode-once proof: N streams forked from a page-aligned shared
/// prefix cost its pages **once** per layer per step, not N times.
///
/// With a 16-token prefix on 8-position pages the two prefix pages stay
/// fully shared (appends open fresh private pages). At decode step `s`
/// (the first decode is step 2 — step 1 admits and prefills, and fresh
/// streams sample from prefill logits without decoding), stream `i`
/// holds `prompt_i + (s - 1)` private rows after the step's KV append,
/// so the whole batch decodes exactly
/// `n_layers × (2 + Σ_i ceil((prompt_i + s - 1) / 8))`
/// pages — against `n_layers × Σ_i (2 + ceil(...))` for a per-stream
/// walk, which re-decodes the shared pages once per attending stream.
#[test]
fn shared_prefix_pages_decode_once_per_step() {
    let prompts = [1usize, 3, 5, 8];
    let pp = 8usize;
    let n_layers = model().config().n_layers as u64;

    let pool = ThreadPool::new(4);
    let cfg = SchedulerConfig {
        max_batch: 4,
        kv: KvPoolConfig {
            storage: KvStorage::Anda { mantissa_bits: 6 },
            page_positions: pp,
            max_pages: None,
        },
        ..SchedulerConfig::default()
    };
    let mut sched = Scheduler::with_pool(model(), cfg, &pool);
    let prefix: Vec<usize> = (0..16).map(|i| (i * 29 + 11) % 500).collect();
    sched.register_prefix("sys", prefix).unwrap();
    for (i, &p) in prompts.iter().enumerate() {
        let prompt: Vec<usize> = (0..p).map(|j| (i * 31 + j * 13 + 5) % 500).collect();
        sched
            .submit(
                Request::builder(prompt)
                    .max_new(6)
                    .prefix("sys")
                    .build()
                    .unwrap(),
            )
            .unwrap();
    }

    // Step 1: admission + prefill only; fresh streams don't decode.
    sched.step();
    assert_eq!(sched.stats().pages_decoded, 0);

    let mut prev = 0;
    for s in 2..=5u64 {
        sched.step();
        let now = sched.stats().pages_decoded;
        let shared_once: u64 = 2 + prompts
            .iter()
            .map(|&p| (p as u64 + s - 1).div_ceil(pp as u64))
            .sum::<u64>();
        let per_stream: u64 = prompts
            .iter()
            .map(|&p| 2 + (p as u64 + s - 1).div_ceil(pp as u64))
            .sum::<u64>();
        assert_eq!(
            now - prev,
            n_layers * shared_once,
            "step {s}: shared prefix pages must decode once for the batch"
        );
        // The guarantee is meaningful: the per-stream walk decodes more.
        assert!(shared_once < per_stream);
        prev = now;
    }
}

/// Float-policy pages are read in place: a grouped scheduler over FP16
/// never decodes a page.
#[test]
fn float_policy_grouped_serving_decodes_nothing() {
    let pool = ThreadPool::new(2);
    let cfg = SchedulerConfig {
        max_batch: 4,
        kv: KvPoolConfig {
            storage: KvStorage::Fp16,
            page_positions: 8,
            max_pages: None,
        },
        ..SchedulerConfig::default()
    };
    let mut sched = Scheduler::with_pool(model(), cfg, &pool);
    for r in workload() {
        sched.submit(r).unwrap();
    }
    let done = sched.run_to_completion();
    assert_eq!(done.len(), 4);
    assert_eq!(sched.stats().pages_decoded, 0);
}

/// The per-stream fallback never touches the shared decode cache, so
/// its counter stays zero even under an Anda policy.
#[test]
fn per_stream_fallback_reports_zero_pages_decoded() {
    let pool = ThreadPool::new(2);
    let cfg = SchedulerConfig {
        max_batch: 4,
        kv: KvPoolConfig {
            storage: KvStorage::Anda { mantissa_bits: 6 },
            page_positions: 8,
            max_pages: None,
        },
        grouped_attention: false,
        ..SchedulerConfig::default()
    };
    let mut sched = Scheduler::with_pool(model(), cfg, &pool);
    for r in workload() {
        sched.submit(r).unwrap();
    }
    let done = sched.run_to_completion();
    assert_eq!(done.len(), 4);
    assert_eq!(sched.stats().pages_decoded, 0);
}
