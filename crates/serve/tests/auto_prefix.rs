//! Acceptance suite for automatic prefix caching
//! ([`SchedulerConfig::auto_prefix`]): token- and logit-bit-exact
//! against unshared decodes across every KV storage policy, exact
//! hit-rate accounting, survival of LRU eviction under page pressure,
//! and coexistence with the explicit pinned registry.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage};
use anda_llm::zoo::opt_125m_sim;
use anda_llm::Model;
use anda_serve::{FinishedRequest, Request, Scheduler, SchedulerConfig};

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

/// A workload of prompts sharing a 24-token family prefix to varying
/// depths, plus one unrelated prompt and one exact repeat — greedy and
/// sampled, one EOS user.
fn workload() -> Vec<Request> {
    let family: Vec<usize> = (0..24).map(|i| (i * 29 + 11) % 500).collect();
    let with_tail = |depth: usize, tail: &[usize]| {
        let mut p = family[..depth].to_vec();
        p.extend_from_slice(tail);
        p
    };
    vec![
        Request::builder(with_tail(24, &[7, 8, 9]))
            .max_new(8)
            .build()
            .unwrap(),
        Request::builder(with_tail(24, &[7, 8, 9]))
            .max_new(8)
            .build()
            .unwrap(), // exact repeat
        Request::builder(with_tail(16, &[300, 301]))
            .max_new(6)
            .temperature(0.9)
            .seed(7)
            .build()
            .unwrap(),
        Request::builder(with_tail(8, &[42]))
            .max_new(10)
            .eos(40)
            .temperature(1.1)
            .seed(99)
            .build()
            .unwrap(),
        Request::builder(vec![450, 451, 452, 453])
            .max_new(5)
            .build()
            .unwrap(), // unrelated
    ]
}

fn sorted_outputs(mut done: Vec<FinishedRequest>) -> Vec<FinishedRequest> {
    done.sort_by_key(|f| (f.id, f.sample_index));
    done
}

fn run(
    storage: KvStorage,
    auto: bool,
    max_pages: Option<usize>,
    reqs: Vec<Request>,
) -> (Vec<FinishedRequest>, u64, u64) {
    let mut sched = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 3,
            kv: KvPoolConfig {
                storage,
                page_positions: 8,
                max_pages,
            },
            auto_prefix: auto,
            ..SchedulerConfig::default()
        },
    );
    for r in reqs {
        sched.submit(r).unwrap();
    }
    let done = sorted_outputs(sched.run_to_completion());
    let stats = sched.stats();
    (done, stats.cache_hit_tokens, stats.prefill_tokens)
}

/// The tentpole exactness bar: automatic prefix caching must change
/// page traffic, never content — token-identical to the unshared run
/// for every storage policy, while provably serving prompt tokens from
/// the cache (fewer prefilled tokens, nonzero hit count).
#[test]
fn auto_prefix_is_bit_exact_across_storages() {
    for storage in [
        KvStorage::Fp32,
        KvStorage::Fp16,
        KvStorage::Bf16,
        KvStorage::Anda { mantissa_bits: 6 },
        KvStorage::Anda { mantissa_bits: 11 },
    ] {
        let (plain, plain_hits, plain_prefill) = run(storage, false, None, workload());
        let (auto_, auto_hits, auto_prefill) = run(storage, true, None, workload());
        for (a, b) in auto_.iter().zip(&plain) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.tokens, b.tokens, "auto prefix diverged: {storage:?}");
            assert_eq!(a.prompt_len, b.prompt_len);
            assert_eq!(a.reason, b.reason);
        }
        assert_eq!(plain_hits, 0, "the cache is off by default");
        assert!(auto_hits > 0, "the shared family must hit: {storage:?}");
        assert!(
            auto_prefill < plain_prefill,
            "hits must shrink prefill work: {auto_prefill} vs {plain_prefill}"
        );
    }
}

/// Exact hit accounting on a repeat prompt: a 17-token prompt aligns
/// to 16 cached positions (the lookup cap always leaves the last
/// prompt token to prefill), so the second submission prefills exactly
/// one token.
#[test]
fn repeat_prompt_hit_accounting_is_exact() {
    let prompt: Vec<usize> = (0..17).map(|i| (i * 13 + 2) % 500).collect();
    let mut sched = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                storage: KvStorage::Fp16,
                page_positions: 8,
                max_pages: None,
            },
            auto_prefix: true,
            ..SchedulerConfig::default()
        },
    );
    sched
        .submit(Request::builder(prompt.clone()).max_new(4).build().unwrap())
        .unwrap();
    sched
        .submit(Request::builder(prompt.clone()).max_new(4).build().unwrap())
        .unwrap();
    let done = sched.run_to_completion();
    assert_eq!(done.len(), 2);
    assert_eq!(done[0].tokens, done[1].tokens);
    let stats = sched.stats();
    assert_eq!(stats.cache_hit_tokens, 16);
    assert_eq!(stats.prefill_tokens, 17 + 1);
    assert_eq!(stats.prefix_forks, 1);
    // The tree retains the prompt's whole pages after the drain; an
    // explicit flush returns the pool to empty.
    assert!(sched.pool_snapshot().radix_resident_pages > 0);
    assert_eq!(
        sched.kv_pool().pages_in_use(),
        sched.pool_snapshot().radix_resident_pages
    );
    sched.flush_prefix_cache();
    assert_eq!(sched.kv_pool().pages_in_use(), 0);
}

/// Eviction under genuine page pressure: a pool too small to retain
/// wave A's cache alongside wave B forces LRU eviction between waves,
/// and every token stays bit-identical to the unshared reference.
#[test]
fn eviction_under_page_pressure_stays_bit_exact() {
    let storage = KvStorage::Anda { mantissa_bits: 6 };
    let n_layers = model().config().n_layers;
    // Room for roughly one wave's pages plus slack — retaining two
    // waves' worth of 20+-token prompts is impossible.
    let max_pages = Some(n_layers * 6);
    let wave = |tag: usize| -> Vec<Request> {
        (0..3)
            .map(|i| {
                let mut p: Vec<usize> = (0..18).map(|j| (j * 31 + tag * 101 + 13) % 500).collect();
                p.push(tag * 10 + i);
                Request::builder(p).max_new(4).build().unwrap()
            })
            .collect()
    };

    let mut sched = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                storage,
                page_positions: 8,
                max_pages,
            },
            auto_prefix: true,
            ..SchedulerConfig::default()
        },
    );
    let mut auto_done = Vec::new();
    for tag in 1..=3 {
        for r in wave(tag) {
            sched.submit(r).unwrap();
        }
        auto_done.extend(sched.run_to_completion());
    }
    assert!(
        sched.stats().radix_evictions > 0,
        "the pool is sized to force eviction"
    );
    assert!(sched.stats().cache_hit_tokens > 0, "waves share prefixes");

    // Unshared reference: same requests, cache off, unbounded pool.
    let mut plain = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                storage,
                page_positions: 8,
                max_pages: None,
            },
            ..SchedulerConfig::default()
        },
    );
    for tag in 1..=3 {
        for r in wave(tag) {
            plain.submit(r).unwrap();
        }
    }
    let plain_done = sorted_outputs(plain.run_to_completion());
    let auto_done = sorted_outputs(auto_done);
    assert_eq!(auto_done.len(), plain_done.len());
    for (a, b) in auto_done.iter().zip(&plain_done) {
        assert_eq!(a.tokens, b.tokens, "eviction corrupted a stream");
        assert_eq!(a.reason, b.reason);
    }
}

/// The explicit registry stays the pinned fast path: prefix-routed
/// requests fork the registration (and never enter the tree), plain
/// requests ride the automatic cache, and both drain cleanly.
#[test]
fn auto_prefix_coexists_with_explicit_registry() {
    let run_mixed = |auto: bool| -> (Vec<FinishedRequest>, u64) {
        let mut sched = Scheduler::new(
            model(),
            SchedulerConfig {
                max_batch: 3,
                kv: KvPoolConfig {
                    storage: KvStorage::Fp16,
                    page_positions: 8,
                    max_pages: None,
                },
                auto_prefix: auto,
                ..SchedulerConfig::default()
            },
        );
        let prefix: Vec<usize> = (0..16).map(|i| (i * 7 + 3) % 500).collect();
        sched.register_prefix("sys", prefix).unwrap();
        for r in workload() {
            let mut prefixed = r.clone();
            prefixed.prefix = Some("sys".into());
            sched.submit(prefixed).unwrap();
            sched.submit(r).unwrap();
        }
        let done = sorted_outputs(sched.run_to_completion());
        let hits = sched.stats().cache_hit_tokens;
        // The registration releases cleanly; the tree keeps only what
        // it accounted, and a flush empties the pool.
        sched.release_prefix("sys").unwrap();
        sched.flush_prefix_cache();
        assert_eq!(sched.kv_pool().pages_in_use(), 0);
        (done, hits)
    };
    let (plain, _) = run_mixed(false);
    let (auto_, hits) = run_mixed(true);
    assert!(hits > 0, "plain requests must still ride the tree");
    assert_eq!(auto_.len(), plain.len());
    for (a, b) in auto_.iter().zip(&plain) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.tokens, b.tokens, "registry/auto mix diverged");
        assert_eq!(a.reason, b.reason);
    }
}
