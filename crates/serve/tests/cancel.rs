//! Cancellation coverage: a cancel must tear the request down wherever
//! it lives — queued, suspended, or mid-decode — free its resources
//! *immediately* (queue slot or KV pages, the same step), never produce
//! a result, and never perturb co-batched survivors (their tokens stay
//! bit-exact versus a run where the cancelled request existed to the
//! end, and versus one where it never existed at all).

use std::sync::OnceLock;

use anda_llm::kv::KvPoolConfig;
use anda_llm::zoo::opt_125m_sim;
use anda_llm::Model;
use anda_serve::{
    CancelError, Cancelled, Priority, Request, RequestId, Scheduler, SchedulerConfig,
};

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn req(prompt: Vec<usize>, max_new: usize) -> Request {
    Request::builder(prompt)
        .max_new(max_new)
        .temperature(0.9)
        .seed(17)
        .build()
        .unwrap()
}

/// Solo reference tokens for `r`.
fn solo(r: &Request) -> Vec<usize> {
    let mut sched = Scheduler::new(model(), SchedulerConfig::default());
    sched.submit(r.clone()).unwrap();
    sched.run_to_completion().remove(0).tokens
}

/// Cancelling a queued request frees its queue slot: the request behind
/// it is admitted instead, the cancelled one never produces a result,
/// and the accounting records exactly one cancellation.
#[test]
fn cancel_pending_frees_the_queue_slot() {
    let mut sched = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 1,
            ..SchedulerConfig::default()
        },
    );
    let active = sched.submit(req(vec![1, 2, 3], 8)).unwrap();
    sched.step();
    let doomed = sched.submit(req(vec![4, 5, 6], 8)).unwrap();
    let behind = sched.submit(req(vec![7, 8, 9], 8)).unwrap();
    assert_eq!(sched.pending_len(), 2);

    assert_eq!(sched.cancel(doomed), Ok(Cancelled::Pending));
    assert_eq!(sched.pending_len(), 1, "queue slot freed immediately");
    assert!(sched.is_cancelled(doomed));

    let finished = sched.run_to_completion();
    assert_eq!(
        finished.iter().map(|f| f.id).collect::<Vec<_>>(),
        vec![active, behind],
        "the request behind the cancelled one takes its turn"
    );
    assert_eq!(sched.stats().cancelled, 1);
}

/// Cancelling mid-decode releases the stream's KV pages in the very
/// same call (no step needed), and every surviving co-batched stream
/// still produces tokens identical to a run where the cancelled stream
/// never existed.
#[test]
fn cancel_mid_decode_releases_pages_and_keeps_survivors_exact() {
    let a = req(vec![10, 20, 30], 12);
    let doomed = req(vec![40, 50], 20);
    let c = req(vec![60, 70, 80, 90], 10);

    let mut sched = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 3,
            ..SchedulerConfig::default()
        },
    );
    let aid = sched.submit(a.clone()).unwrap();
    let did = sched.submit(doomed.clone()).unwrap();
    let cid = sched.submit(c.clone()).unwrap();
    sched.step();
    sched.step();
    sched.step();

    let before = sched.pool_snapshot();
    let reserved_before = before.reserved_pages;
    assert_eq!(sched.cancel(did), Ok(Cancelled::Active { streams: 1 }));
    let after = sched.pool_snapshot();
    assert!(
        after.pages_in_use < before.pages_in_use,
        "physical pages must come back in the cancel call itself"
    );
    assert!(
        after.reserved_pages < reserved_before,
        "reservation dropped"
    );
    assert_eq!(sched.generated_len(did), None, "stream is gone");

    let finished = sched.run_to_completion();
    assert_eq!(finished.len(), 2, "the cancelled stream never finishes");
    for f in &finished {
        let r = if f.id == aid {
            &a
        } else {
            assert_eq!(f.id, cid);
            &c
        };
        assert_eq!(f.tokens, solo(r), "survivor {} perturbed by cancel", f.id);
    }
    assert!(!finished.iter().any(|f| f.id == did));
    assert_eq!(sched.stats().cancelled, 1);
}

/// Cancelling a best-of request retires the whole sibling ledger at
/// once: every candidate stream is torn down in the same call, the
/// group's shared pages are released, and no winner is ever selected.
#[test]
fn cancel_best_of_group_retires_the_whole_ledger() {
    let mut sched = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 4,
            ..SchedulerConfig::default()
        },
    );
    let group = sched
        .submit(
            Request::builder(vec![2, 7, 1, 8])
                .max_new(15)
                .temperature(0.8)
                .seed(28)
                .best_of(3)
                .build()
                .unwrap(),
        )
        .unwrap();
    let bystander = sched.submit(req(vec![3, 1, 4], 6)).unwrap();
    sched.step();
    sched.step();
    assert!(sched.pool_snapshot().reserved_pages > 0);

    assert_eq!(sched.cancel(group), Ok(Cancelled::Active { streams: 3 }));
    assert_eq!(sched.generated_len(group), None);

    let finished = sched.run_to_completion();
    assert_eq!(
        finished.iter().map(|f| f.id).collect::<Vec<_>>(),
        vec![bystander],
        "no best-of winner may surface after a group cancel"
    );
    // With the bystander retired too, every reservation (the group's
    // shared ledger included) is back.
    let snap = sched.pool_snapshot();
    assert_eq!(snap.reserved_pages, 0);
    assert_eq!(snap.pages_in_use, 0);
    assert_eq!(sched.stats().cancelled, 1);
}

/// Cancelling a preempted (suspended) request drops its parked resume
/// item: it never comes back, and the accounting shows a preemption
/// without a resume.
#[test]
fn cancel_suspended_drops_the_resume() {
    let n_layers = model().config().n_layers;
    let mut sched = Scheduler::new(
        model(),
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                page_positions: 4,
                max_pages: Some(n_layers * 5),
                ..KvPoolConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    let victim = sched
        .submit(
            Request::builder(vec![10, 11, 12, 13, 14, 15])
                .max_new(10)
                .priority(Priority::Low)
                .build()
                .unwrap(),
        )
        .unwrap();
    sched.step();
    let high = Request::builder(vec![1, 2, 3, 4, 5, 6, 7, 8])
        .max_new(8)
        .priority(Priority::High)
        .build()
        .unwrap();
    let hid = sched.submit(high.clone()).unwrap();
    sched.step();
    assert_eq!(sched.suspended_len(), 1);

    assert_eq!(sched.cancel(victim), Ok(Cancelled::Suspended));
    assert_eq!(sched.suspended_len(), 0);

    let finished = sched.run_to_completion();
    assert_eq!(finished.iter().map(|f| f.id).collect::<Vec<_>>(), vec![hid]);
    assert_eq!(finished[0].tokens, solo(&high));
    let stats = sched.stats();
    assert_eq!((stats.preemptions, stats.resumes), (1, 0));
    assert_eq!(stats.cancelled, 1);
}

/// The error surface: unknown ids, repeat cancels, and cancels of
/// finished (result-pending or drained) requests each report their own
/// distinct, displayable error.
#[test]
fn cancel_errors_name_their_cause() {
    let mut sched = Scheduler::new(model(), SchedulerConfig::default());
    let id = sched.submit(req(vec![1, 2], 3)).unwrap();

    let ghost = RequestId(999);
    assert_eq!(sched.cancel(ghost), Err(CancelError::Unknown(ghost)));

    sched.run_to_completion();
    // Finished (results already drained): the id is no longer live.
    assert_eq!(sched.cancel(id), Err(CancelError::Unknown(id)));

    // Finished but not yet drained: distinct error, results survive.
    let id2 = sched.submit(req(vec![3, 4], 3)).unwrap();
    while sched.status(id2).is_some() {
        sched.step();
    }
    assert_eq!(sched.cancel(id2), Err(CancelError::AlreadyFinished(id2)));
    assert_eq!(sched.take_finished().len(), 1, "results must survive");

    // Repeat cancel: the first succeeds, the second names the cancel.
    let id3 = sched.submit(req(vec![5, 6], 10)).unwrap();
    sched.step();
    assert_eq!(sched.cancel(id3), Ok(Cancelled::Active { streams: 1 }));
    assert_eq!(sched.cancel(id3), Err(CancelError::Cancelled(id3)));
    assert_eq!(sched.stats().cancelled, 1, "failed cancels are not counted");

    // The errors display as readable sentences.
    for (err, needle) in [
        (CancelError::Unknown(ghost), "not live"),
        (CancelError::AlreadyFinished(id2), "finished"),
        (CancelError::Cancelled(id3), "cancelled"),
    ] {
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
        let _: &dyn std::error::Error = &err;
    }
}
