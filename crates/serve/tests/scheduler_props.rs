//! Scheduler property suite: random arrival/length mixes must respect
//! the admission invariants at every iteration.
//!
//! - **Budget**: active reservations never exceed `token_budget`, and the
//!   actual cached KV positions never exceed the reservations.
//! - **No starvation**: every accepted request finishes (FIFO admission
//!   with no overtaking guarantees the queue head always drains).
//! - **Exact termination**: an accepted request generates exactly
//!   `min(max_new, first EOS position + 1)` tokens, and its output equals
//!   the solo `Model::generate` reference.
//! - **Policy independence**: the scheduling configuration (batch width,
//!   budget) changes only throughput, never content.

use std::sync::OnceLock;

use anda_llm::zoo::opt_125m_sim;
use anda_llm::Model;
use anda_serve::{
    FinishReason, FinishedRequest, Request, SamplingParams, Scheduler, SchedulerConfig, SubmitError,
};
use anda_tensor::Rng;
use proptest::prelude::*;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

/// (prompt, max_new, eos?, temperature>0?, seed) tuples drawn small: the
/// invariants are about scheduling, not model quality.
type RawReq = (Vec<usize>, usize, bool, usize, u64);

fn build_request((prompt, max_new, has_eos, eos, seed): RawReq, hot: bool) -> Request {
    Request {
        prompt,
        max_new,
        eos: has_eos.then_some(eos),
        sampling: SamplingParams {
            temperature: if hot { 0.9 } else { 0.0 },
            seed,
        },
    }
}

/// The solo reference, truncated at the first EOS.
fn reference(model: &Model, req: &Request) -> Vec<usize> {
    let mut rng = Rng::new(req.sampling.seed);
    let full = model.generate(&req.prompt, req.max_new, req.sampling.temperature, &mut rng);
    if let Some(eos) = req.eos {
        let p = req.prompt.len();
        if let Some(i) = full[p..].iter().position(|&t| t == eos) {
            return full[..p + i + 1].to_vec();
        }
    }
    full
}

/// Runs `sched` to completion while checking the per-iteration
/// invariants, with a hard step cap standing in for "does not starve".
fn run_checked(sched: &mut Scheduler<'_>) -> Vec<FinishedRequest> {
    let cfg = sched.config();
    let mut steps = 0usize;
    while !sched.is_idle() {
        sched.step();
        steps += 1;
        assert!(
            sched.reserved_tokens() <= cfg.token_budget,
            "reservations {} exceed the token budget {}",
            sched.reserved_tokens(),
            cfg.token_budget
        );
        assert!(
            sched.cached_tokens() <= sched.reserved_tokens(),
            "cached KV {} outgrew its reservation {}",
            sched.cached_tokens(),
            sched.reserved_tokens()
        );
        assert!(sched.active_len() <= cfg.max_batch, "slot overflow");
        assert!(
            steps <= 10_000,
            "scheduler starved: no completion in 10k steps"
        );
    }
    sched.take_finished()
}

fn check_termination(model: &Model, req: &Request, fin: &FinishedRequest) {
    assert_eq!(
        &fin.tokens[..fin.prompt_len],
        &req.prompt[..],
        "prompt prefix must be preserved"
    );
    let generated = fin.generated();
    assert!(generated.len() <= req.max_new);
    match fin.reason {
        FinishReason::Length => {
            assert_eq!(
                generated.len(),
                req.max_new,
                "Length-finished stream must use its whole budget"
            );
            if let Some(eos) = req.eos {
                assert!(
                    !generated.contains(&eos),
                    "an EOS sample must finish the stream as Eos"
                );
            }
        }
        FinishReason::Eos => {
            let eos = req.eos.expect("Eos reason requires an EOS token");
            assert_eq!(*generated.last().unwrap(), eos);
            assert_eq!(
                generated.iter().filter(|&&t| t == eos).count(),
                1,
                "the stream must stop at the first EOS"
            );
        }
    }
    // Exactness: min(max_new, first EOS + 1), token for token.
    assert_eq!(
        fin.tokens,
        reference(model, req),
        "diverged from solo generate"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mixes of arrivals, lengths, temperatures and EOS tokens:
    /// budget respected each iteration, nobody starves, terminations are
    /// exact, and a second scheduler with a different policy produces
    /// byte-identical outputs.
    #[test]
    fn random_mixes_respect_budget_and_terminate_exactly(
        raw in prop::collection::vec(
            (
                prop::collection::vec(0usize..512, 1..6),
                0usize..5,
                any::<bool>(),
                0usize..512,
                0u64..100_000,
            ),
            1..8,
        ),
        hot in any::<bool>(),
        max_batch in 1usize..5,
        token_budget in 6usize..48,
    ) {
        let model = model();
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig { max_batch, token_budget },
            rayon_lite::global(),
        );
        let mut accepted = Vec::new();
        for r in raw {
            let req = build_request(r, hot);
            match sched.submit(req.clone()) {
                Ok(id) => accepted.push((id, req)),
                Err(e) => {
                    // Only over-budget requests may be turned away here
                    // (prompts are in-vocab and far below max_seq), and
                    // rejection must be justified.
                    prop_assert_eq!(e, SubmitError::ExceedsTokenBudget {
                        total: req.reserve_tokens(),
                        budget: token_budget,
                    });
                    prop_assert!(req.reserve_tokens() > token_budget);
                }
            }
        }

        let finished = run_checked(&mut sched);
        // No starvation: exactly the accepted set finishes.
        let mut done_ids: Vec<_> = finished.iter().map(|f| f.id).collect();
        done_ids.sort();
        let submitted_ids: Vec<_> = accepted.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(done_ids, submitted_ids);

        for fin in &finished {
            let (_, req) = accepted
                .iter()
                .find(|(id, _)| *id == fin.id)
                .expect("finished id was accepted");
            check_termination(model, req, fin);
        }

        // Policy independence: a serial, wide-open scheduler over the
        // same accepted requests produces identical tokens per id.
        let mut solo = Scheduler::with_pool(
            model,
            SchedulerConfig { max_batch: 1, token_budget: 4096 },
            rayon_lite::global(),
        );
        for (_, req) in &accepted {
            solo.submit(req.clone()).unwrap();
        }
        let mut solo_done = solo.run_to_completion();
        solo_done.sort_by_key(|f| f.id);
        let mut batched_done = finished;
        batched_done.sort_by_key(|f| f.id);
        for (a, b) in batched_done.iter().zip(&solo_done) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.tokens, &b.tokens);
            prop_assert_eq!(a.reason, b.reason);
        }
    }
}

/// With one slot, completion order is exactly submission order — the
/// FIFO guarantee in its purest observable form.
#[test]
fn single_slot_completes_in_fifo_order() {
    let model = model();
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 1,
            token_budget: 64,
        },
    );
    let lengths = [5usize, 1, 3, 2];
    for (i, &n) in lengths.iter().enumerate() {
        sched
            .submit(Request::greedy(vec![(i * 17 + 1) % 512], n))
            .unwrap();
    }
    let finished = sched.run_to_completion();
    let order: Vec<u64> = finished.iter().map(|f| f.id.0).collect();
    assert_eq!(order, vec![0, 1, 2, 3]);
}

/// Unservable requests are rejected up front with the right reason —
/// queueing them would break the no-starvation guarantee.
#[test]
fn submit_rejects_unservable_requests() {
    let model = model();
    let max_seq = model.config().max_seq;
    let vocab = model.config().vocab;
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 2,
            token_budget: 32,
        },
    );
    assert_eq!(
        sched.submit(Request::greedy(vec![], 4)),
        Err(SubmitError::EmptyPrompt)
    );
    assert_eq!(
        sched.submit(Request::greedy(vec![vocab], 4)),
        Err(SubmitError::TokenOutOfVocab {
            token: vocab,
            vocab
        })
    );
    assert_eq!(
        sched.submit(Request {
            prompt: vec![1],
            max_new: 2,
            eos: Some(vocab + 7),
            sampling: SamplingParams::greedy(),
        }),
        Err(SubmitError::TokenOutOfVocab {
            token: vocab + 7,
            vocab
        })
    );
    assert_eq!(
        sched.submit(Request::greedy(vec![1], max_seq)),
        Err(SubmitError::ExceedsMaxSeq {
            total: max_seq + 1,
            max_seq
        })
    );
    // An absurd max_new must not wrap the reservation past the checks.
    assert_eq!(
        sched.submit(Request::greedy(vec![1, 2], usize::MAX)),
        Err(SubmitError::ExceedsMaxSeq {
            total: usize::MAX,
            max_seq
        })
    );
    assert_eq!(
        sched.submit(Request::greedy(vec![1], 40)),
        Err(SubmitError::ExceedsTokenBudget {
            total: 41,
            budget: 32
        })
    );
    // A servable request still goes through afterwards.
    assert!(sched.submit(Request::greedy(vec![1, 2], 4)).is_ok());
    assert_eq!(sched.run_to_completion().len(), 1);
}
