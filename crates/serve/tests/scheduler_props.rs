//! Scheduler property suite: random arrival/length mixes must respect
//! the page-accounted admission invariants at every iteration.
//!
//! - **Page accounting**: active reservations never exceed the pool
//!   capacity, the pages actually leased never exceed the reservations,
//!   and the pool never creates more pages than its capacity.
//! - **No starvation**: every accepted request finishes (FIFO admission
//!   with no overtaking guarantees the queue head always drains).
//! - **Exact termination**: an accepted request generates exactly
//!   `min(max_new, first EOS position + 1)` tokens, and its output equals
//!   the solo `Model::generate` reference.
//! - **Policy independence**: the scheduling configuration (batch width,
//!   page size, pool capacity) changes only throughput, never content.
//! - **Page recycling**: after the schedule drains, every page is back
//!   on the free list, and freed pages were reused before growth.

use std::sync::OnceLock;

use anda_llm::zoo::opt_125m_sim;
use anda_llm::Model;
use anda_serve::{
    FinishReason, FinishedRequest, KvPoolConfig, Priority, Request, SamplingMode, SamplingParams,
    Scheduler, SchedulerConfig, SubmitError,
};
use anda_tensor::Rng;
use proptest::prelude::*;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

/// (prompt, max_new, eos?, temperature>0?, seed) tuples drawn small: the
/// invariants are about scheduling, not model quality.
type RawReq = (Vec<usize>, usize, bool, usize, u64);

fn build_request((prompt, max_new, has_eos, eos, seed): RawReq, hot: bool) -> Request {
    let mut builder = Request::builder(prompt)
        .max_new(max_new)
        .temperature(if hot { 0.9 } else { 0.0 })
        .seed(seed);
    if has_eos {
        builder = builder.eos(eos);
    }
    builder.build().unwrap()
}

/// The request as an unshared full-prompt submission: the prefix tokens
/// (resolved by the caller) prepended to the private prompt.
fn flatten(req: &Request, prefix: &[usize]) -> Request {
    let mut full = prefix.to_vec();
    full.extend_from_slice(&req.prompt);
    Request {
        prompt: full,
        prefix: None,
        ..req.clone()
    }
}

/// The solo reference, truncated at the first EOS.
fn reference(model: &Model, req: &Request) -> Vec<usize> {
    let mut rng = Rng::new(req.sampling.seed);
    let full = model.generate(&req.prompt, req.max_new, req.sampling.temperature, &mut rng);
    if let Some(eos) = req.eos {
        let p = req.prompt.len();
        if let Some(i) = full[p..].iter().position(|&t| t == eos) {
            return full[..p + i + 1].to_vec();
        }
    }
    full
}

/// Runs `sched` to completion while checking the per-iteration
/// invariants, with a hard step cap standing in for "does not starve".
fn run_checked(sched: &mut Scheduler<'_>) -> Vec<FinishedRequest> {
    let capacity = sched.kv_pool().capacity();
    let mut steps = 0usize;
    while !sched.is_idle() {
        sched.step();
        steps += 1;
        if let Some(cap) = capacity {
            assert!(
                sched.pool_snapshot().reserved_pages <= cap,
                "reservations {} exceed the pool capacity {}",
                sched.pool_snapshot().reserved_pages,
                cap
            );
            assert!(
                sched.kv_pool().pages_created() <= cap,
                "pool created {} pages past its capacity {}",
                sched.kv_pool().pages_created(),
                cap
            );
        }
        assert!(
            sched.kv_pool().pages_in_use()
                <= sched.pool_snapshot().reserved_pages
                    + sched.pool_snapshot().pinned_pages
                    + sched.pool_snapshot().radix_resident_pages,
            "leased pages {} outgrew the reservations {} + pinned {} + cache-resident {}",
            sched.kv_pool().pages_in_use(),
            sched.pool_snapshot().reserved_pages,
            sched.pool_snapshot().pinned_pages,
            sched.pool_snapshot().radix_resident_pages
        );
        assert!(
            sched.stats().peak_pages_in_use >= sched.kv_pool().pages_in_use(),
            "peak watermark fell behind the live page count"
        );
        assert!(
            sched.active_len() <= sched.config().max_batch,
            "slot overflow"
        );
        assert!(
            steps <= 10_000,
            "scheduler starved: no completion in 10k steps"
        );
    }
    // Drained: every page not pinned by the registry or retained by the
    // automatic prefix cache is back on the free list for the next wave.
    assert_eq!(
        sched.kv_pool().pages_in_use(),
        sched.pool_snapshot().pinned_pages + sched.pool_snapshot().radix_resident_pages,
        "pages leaked at drain"
    );
    assert_eq!(
        sched.pool_snapshot().reserved_pages,
        0,
        "reservations leaked at drain"
    );
    sched.take_finished()
}

fn check_termination(model: &Model, req: &Request, fin: &FinishedRequest) {
    assert_eq!(
        &fin.tokens[..fin.prompt_len],
        &req.prompt[..],
        "prompt prefix must be preserved"
    );
    let generated = fin.generated();
    assert!(generated.len() <= req.max_new);
    match fin.reason {
        FinishReason::Length => {
            assert_eq!(
                generated.len(),
                req.max_new,
                "Length-finished stream must use its whole budget"
            );
            if let Some(eos) = req.eos {
                assert!(
                    !generated.contains(&eos),
                    "an EOS sample must finish the stream as Eos"
                );
            }
        }
        FinishReason::Eos => {
            let eos = req.eos.expect("Eos reason requires an EOS token");
            assert_eq!(*generated.last().unwrap(), eos);
            assert_eq!(
                generated.iter().filter(|&&t| t == eos).count(),
                1,
                "the stream must stop at the first EOS"
            );
        }
    }
    // Exactness: min(max_new, first EOS + 1), token for token.
    assert_eq!(
        fin.tokens,
        reference(model, req),
        "diverged from solo generate"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mixes of arrivals, lengths, temperatures and EOS tokens
    /// over a bounded page pool: page accounting respected each
    /// iteration, nobody starves, terminations are exact, and a second
    /// scheduler with a different policy produces byte-identical outputs.
    #[test]
    fn random_mixes_respect_page_accounting_and_terminate_exactly(
        raw in prop::collection::vec(
            (
                prop::collection::vec(0usize..512, 1..6),
                0usize..5,
                any::<bool>(),
                0usize..512,
                0u64..100_000,
            ),
            1..8,
        ),
        hot in any::<bool>(),
        max_batch in 1usize..5,
        page_positions in 1usize..6,
        capacity_tokens in 6usize..48,
    ) {
        let model = model();
        // Capacity expressed in worst-case positions, converted to whole
        // pages per layer so every page size yields a servable pool.
        let max_pages =
            model.config().n_layers * capacity_tokens.div_ceil(page_positions);
        let kv = KvPoolConfig {
            page_positions,
            max_pages: Some(max_pages),
            ..KvPoolConfig::default()
        };
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig { max_batch, kv, ..SchedulerConfig::default() },
            rayon_lite::global(),
        );
        let mut accepted = Vec::new();
        for r in raw {
            let req = build_request(r, hot);
            let demand =
                model.config().n_layers * req.reserve_tokens().div_ceil(page_positions);
            match sched.submit(req.clone()) {
                Ok(id) => {
                    prop_assert!(demand <= max_pages, "admitted an oversized request");
                    accepted.push((id, req));
                }
                Err(e) => {
                    // Only over-capacity requests may be turned away here
                    // (prompts are in-vocab and far below max_seq), and
                    // rejection must be justified.
                    prop_assert_eq!(e, SubmitError::ExceedsPoolCapacity {
                        pages: demand,
                        capacity: max_pages,
                    });
                    prop_assert!(demand > max_pages);
                }
            }
        }

        let finished = run_checked(&mut sched);
        // No starvation: exactly the accepted set finishes.
        let mut done_ids: Vec<_> = finished.iter().map(|f| f.id).collect();
        done_ids.sort();
        let submitted_ids: Vec<_> = accepted.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(done_ids, submitted_ids);

        for fin in &finished {
            let (_, req) = accepted
                .iter()
                .find(|(id, _)| *id == fin.id)
                .expect("finished id was accepted");
            check_termination(model, req, fin);
        }

        // Policy independence: a serial scheduler with an unbounded pool
        // and a different page size over the same accepted requests
        // produces identical tokens per id.
        let mut solo = Scheduler::with_pool(
            model,
            SchedulerConfig { max_batch: 1, kv: KvPoolConfig::default(), ..SchedulerConfig::default() },
            rayon_lite::global(),
        );
        for (_, req) in &accepted {
            solo.submit(req.clone()).unwrap();
        }
        let mut solo_done = solo.run_to_completion();
        solo_done.sort_by_key(|f| f.id);
        let mut batched_done = finished;
        batched_done.sort_by_key(|f| f.id);
        for (a, b) in batched_done.iter().zip(&solo_done) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.tokens, &b.tokens);
            prop_assert_eq!(a.reason, b.reason);
        }
    }

    /// Random mixes where a subset of requests routes through one
    /// registered prefix: the page-accounting invariants hold with the
    /// pin included, nobody starves, and every completion is
    /// bit-identical to the same workload flattened into unshared full
    /// prompts.
    #[test]
    fn prefix_routed_mixes_stay_exact_and_account_pinned_pages(
        raw in prop::collection::vec(
            (
                prop::collection::vec(0usize..512, 1..5),
                0usize..5,
                any::<bool>(),
                0usize..512,
                0u64..100_000,
            ),
            1..6,
        ),
        route in prop::collection::vec(any::<bool>(), 6),
        prefix_len in 1usize..14,
        hot in any::<bool>(),
        max_batch in 1usize..4,
        page_positions in 1usize..6,
    ) {
        let model = model();
        let prefix: Vec<usize> = (0..prefix_len).map(|i| (i * 37 + 3) % 512).collect();
        // Capacity: the prefix pin plus room for a couple of worst-case
        // streams, so admission really has to wait on the watermark.
        let per_layer = (prefix_len + 10).div_ceil(page_positions);
        let max_pages = model.config().n_layers * (per_layer * 2 + prefix_len.div_ceil(page_positions));
        let kv = KvPoolConfig {
            page_positions,
            max_pages: Some(max_pages),
            ..KvPoolConfig::default()
        };
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig { max_batch, kv, ..SchedulerConfig::default() },
            rayon_lite::global(),
        );
        let pinned = match sched.register_prefix("sys", prefix.clone()) {
            Ok(p) => p,
            // A tiny pool can be too small for this prefix: nothing
            // left to check in that draw.
            Err(SubmitError::ExceedsPoolCapacity { .. }) => return,
            Err(e) => panic!("unexpected registration failure: {e}"),
        };
        prop_assert_eq!(sched.pool_snapshot().pinned_pages, pinned);

        let mut accepted = Vec::new();
        for (i, r) in raw.into_iter().enumerate() {
            let mut req = build_request(r, hot);
            if route[i] {
                req.prefix = Some("sys".into());
            }
            if let Ok(id) = sched.submit(req.clone()) {
                accepted.push((id, req));
            }
        }
        let finished = run_checked(&mut sched);
        prop_assert_eq!(finished.len(), accepted.len(), "someone starved");

        // Flattened reference: the same requests as private full
        // prompts through a serial unbounded scheduler.
        let mut solo = Scheduler::with_pool(
            model,
            SchedulerConfig { max_batch: 1, kv: KvPoolConfig::default(), ..SchedulerConfig::default() },
            rayon_lite::global(),
        );
        let mut expect = Vec::new();
        for (id, req) in &accepted {
            let flat = if req.prefix.is_some() {
                flatten(req, &prefix)
            } else {
                flatten(req, &[])
            };
            expect.push((*id, solo.submit(flat).unwrap()));
        }
        let mut solo_done = solo.run_to_completion();
        solo_done.sort_by_key(|f| f.id);
        let mut batched = finished;
        batched.sort_by_key(|f| f.id);
        for ((shared_id, solo_id), s) in expect.iter().zip(&batched) {
            prop_assert_eq!(*shared_id, s.id);
            let solo_fin = solo_done
                .iter()
                .find(|f| f.id == *solo_id)
                .expect("solo twin finished");
            prop_assert_eq!(&s.tokens, &solo_fin.tokens, "diverged from private twin");
            prop_assert_eq!(s.prompt_len, solo_fin.prompt_len);
        }

        // The registration outlives the wave and releases cleanly.
        prop_assert!(sched.release_prefix("sys").is_ok());
        prop_assert_eq!(sched.kv_pool().pages_in_use(), 0);
    }

    /// Random prompt families over an auto-prefix scheduler on a
    /// bounded pool: the radix cache keeps the lease invariant
    /// (checked each iteration by `run_checked`), LRU eviction under
    /// page pressure never corrupts a stream, and every completion is
    /// bit-identical to the solo reference even when its prompt was
    /// served from a cached prefix.
    #[test]
    fn auto_prefix_mixes_stay_exact_under_eviction(
        family in prop::collection::vec(0usize..512, 8..24),
        raw in prop::collection::vec(
            (
                0usize..=16,                              // shared family depth
                prop::collection::vec(0usize..512, 1..5), // private tail
                0usize..5,
                0u64..100_000,
            ),
            2..8,
        ),
        hot in any::<bool>(),
        max_batch in 1usize..4,
        page_positions in 1usize..6,
        capacity_tokens in 24usize..64,
    ) {
        let model = model();
        let max_pages =
            model.config().n_layers * capacity_tokens.div_ceil(page_positions);
        let kv = KvPoolConfig {
            page_positions,
            max_pages: Some(max_pages),
            ..KvPoolConfig::default()
        };
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig {
                max_batch,
                kv,
                auto_prefix: true,
                ..SchedulerConfig::default()
            },
            rayon_lite::global(),
        );
        let mut accepted = Vec::new();
        for (depth, tail, max_new, seed) in raw {
            let depth = depth.min(family.len());
            let mut prompt = family[..depth].to_vec();
            prompt.extend_from_slice(&tail);
            let req = build_request((prompt, max_new, false, 0, seed), hot);
            // Worst-case demand fits the pool by construction:
            // depth (<=16) + tail (<=4) + max_new (<=4) stays within
            // capacity_tokens' floor of 24.
            let id = sched.submit(req.clone()).unwrap();
            accepted.push((id, req));
        }

        let finished = run_checked(&mut sched);
        let mut done_ids: Vec<_> = finished.iter().map(|f| f.id).collect();
        done_ids.sort();
        let submitted_ids: Vec<_> = accepted.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(done_ids, submitted_ids, "someone starved");
        for fin in &finished {
            let (_, req) = accepted
                .iter()
                .find(|(id, _)| *id == fin.id)
                .expect("finished id was accepted");
            check_termination(model, req, fin);
        }

        // The cache accounts its residency exactly, and flushing it
        // returns the pool to empty (nothing pinned here).
        let resident = sched.pool_snapshot().radix_resident_pages;
        prop_assert_eq!(sched.kv_pool().pages_in_use(), resident);
        sched.flush_prefix_cache();
        prop_assert_eq!(sched.pool_snapshot().radix_resident_pages, 0);
        prop_assert_eq!(sched.kv_pool().pages_in_use(), 0);
    }

    /// With chunked prefill enabled, an admitted decode stream never
    /// stalls: once a stream has sampled at least once, **every**
    /// subsequent step advances it by exactly one token until it
    /// finishes — long-prompt arrivals included — so the per-admission
    /// stall budget is zero, not just "at most one step". Outputs stay
    /// bit-identical to the solo reference.
    #[test]
    fn chunked_prefill_never_stalls_decode_streams(
        raw in prop::collection::vec(
            (
                prop::collection::vec(0usize..512, 1..24),
                1usize..6,
                any::<bool>(),
                0usize..512,
                0u64..100_000,
            ),
            1..7,
        ),
        hot in any::<bool>(),
        max_batch in 2usize..5,
        chunk in 0usize..7,
        page_positions in 1usize..6,
    ) {
        let model = model();
        let kv = KvPoolConfig { page_positions, ..KvPoolConfig::default() };
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig {
                max_batch,
                kv,
                prefill_chunk_tokens: Some(chunk),
                ..SchedulerConfig::default()
            },
            rayon_lite::global(),
        );
        let mut accepted = Vec::new();
        for r in raw {
            let req = build_request(r, hot);
            let id = sched.submit(req.clone()).unwrap();
            accepted.push((id, req));
        }

        let mut steps = 0usize;
        while !sched.is_idle() {
            let decoding: Vec<_> = accepted
                .iter()
                .filter_map(|(id, _)| {
                    sched.generated_len(*id).filter(|&g| g > 0).map(|g| (*id, g))
                })
                .collect();
            sched.step();
            for (id, before) in decoding {
                // Still active after the step → it must have sampled.
                if let Some(after) = sched.generated_len(id) {
                    prop_assert_eq!(after, before + 1, "decode stream stalled");
                }
            }
            steps += 1;
            prop_assert!(steps <= 10_000, "scheduler starved");
        }
        prop_assert_eq!(sched.stats().stalled_prefill_tokens, 0);

        let mut finished = sched.take_finished();
        finished.sort_by_key(|f| f.id);
        prop_assert_eq!(finished.len(), accepted.len(), "someone starved");
        for fin in &finished {
            let (_, req) = accepted
                .iter()
                .find(|(id, _)| *id == fin.id)
                .expect("finished id was accepted");
            check_termination(model, req, fin);
        }
    }
}

/// With one slot, completion order is exactly submission order — the
/// FIFO guarantee in its purest observable form.
#[test]
fn single_slot_completes_in_fifo_order() {
    let model = model();
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 1,
            kv: KvPoolConfig {
                page_positions: 4,
                max_pages: Some(model.config().n_layers * 16),
                ..KvPoolConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    let lengths = [5usize, 1, 3, 2];
    for (i, &n) in lengths.iter().enumerate() {
        sched
            .submit(
                Request::builder(vec![(i * 17 + 1) % 512])
                    .max_new(n)
                    .build()
                    .unwrap(),
            )
            .unwrap();
    }
    let finished = sched.run_to_completion();
    let order: Vec<u64> = finished.iter().map(|f| f.id.0).collect();
    assert_eq!(order, vec![0, 1, 2, 3]);
}

/// Unservable requests are rejected up front with the right reason —
/// queueing them would break the no-starvation guarantee.
#[test]
fn submit_rejects_unservable_requests() {
    let model = model();
    let max_seq = model.config().max_seq;
    let n_layers = model.config().n_layers;
    let vocab = model.config().vocab;
    let page_positions = 4;
    let max_pages = n_layers * 8; // 32 worst-case positions per layer
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                page_positions,
                max_pages: Some(max_pages),
                ..KvPoolConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    // The builder refuses an empty prompt at build time; the scheduler
    // still guards against hand-built requests.
    assert_eq!(
        sched.submit(Request {
            prompt: vec![],
            prefix: None,
            max_new: 4,
            eos: None,
            sampling: SamplingParams::greedy(),
            priority: Priority::Normal,
            mode: SamplingMode::Single,
        }),
        Err(SubmitError::EmptyPrompt)
    );
    assert_eq!(
        sched.submit(Request::builder(vec![vocab]).max_new(4).build().unwrap()),
        Err(SubmitError::TokenOutOfVocab {
            token: vocab,
            vocab
        })
    );
    assert_eq!(
        sched.submit(Request {
            prompt: vec![1],
            prefix: None,
            max_new: 2,
            eos: Some(vocab + 7),
            sampling: SamplingParams::greedy(),
            priority: Priority::Normal,
            mode: SamplingMode::Single,
        }),
        Err(SubmitError::TokenOutOfVocab {
            token: vocab + 7,
            vocab
        })
    );
    assert_eq!(
        sched.submit(Request::builder(vec![1]).max_new(max_seq).build().unwrap()),
        Err(SubmitError::ExceedsMaxSeq {
            total: max_seq + 1,
            max_seq
        })
    );
    // An absurd max_new must not wrap the reservation past the checks.
    assert_eq!(
        sched.submit(
            Request::builder(vec![1, 2])
                .max_new(usize::MAX)
                .build()
                .unwrap()
        ),
        Err(SubmitError::ExceedsMaxSeq {
            total: usize::MAX,
            max_seq
        })
    );
    // 41 worst-case positions → 11 pages per layer > the pool's 8.
    assert_eq!(
        sched.submit(Request::builder(vec![1]).max_new(40).build().unwrap()),
        Err(SubmitError::ExceedsPoolCapacity {
            pages: n_layers * 41usize.div_ceil(page_positions),
            capacity: max_pages
        })
    );
    // A servable request still goes through afterwards.
    assert!(sched
        .submit(Request::builder(vec![1, 2]).max_new(4).build().unwrap())
        .is_ok());
    assert_eq!(sched.run_to_completion().len(), 1);
}

/// A `max_new == 0` request is prefilled and retired inside the
/// admission loop, so its pages never survive to a step-end sample.
/// The peak watermark must still record the prefill footprint
/// (regression: the peak used to be sampled only after the whole
/// admission wave, missing these transients entirely).
#[test]
fn peak_watermark_sees_mid_admission_prefill() {
    let model = model();
    let pp = 4usize;
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                page_positions: pp,
                max_pages: None,
                ..KvPoolConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    let prompt: Vec<usize> = (0..9).map(|i| (i * 7 + 1) % 512).collect();
    sched
        .submit(Request::builder(prompt.clone()).max_new(0).build().unwrap())
        .unwrap();
    let done = sched.run_to_completion();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].tokens, prompt);
    // Every page was returned before the first step-end sample could
    // run; only the in-loop sample can have seen the footprint.
    assert_eq!(sched.kv_pool().pages_in_use(), 0);
    assert_eq!(
        sched.stats().peak_pages_in_use,
        model.config().n_layers * prompt.len().div_ceil(pp),
    );
}

/// Pinning the whole pool must degrade the submit-time headroom to
/// zero, never underflow it: a fully pinned pool refuses any request
/// with `PoolSaturated { available: 0 }` — the *transient* refusal,
/// distinct from `ExceedsPoolCapacity` (which means the raw pool could
/// never hold the request) — instead of panicking (regression:
/// `capacity - pinned_pages` was an unchecked subtraction).
#[test]
fn fully_pinned_pool_rejects_without_underflow() {
    let model = model();
    let n_layers = model.config().n_layers;
    let pp = 4usize;
    let max_pages = n_layers * 2; // exactly one 8-token prefix
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                page_positions: pp,
                max_pages: Some(max_pages),
                ..KvPoolConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    let prefix: Vec<usize> = (0..8).map(|i| (i * 37 + 3) % 512).collect();
    let pinned = sched.register_prefix("sys", prefix).unwrap();
    assert_eq!(pinned, max_pages);
    assert_eq!(
        sched.submit(Request::builder(vec![1]).max_new(1).build().unwrap()),
        Err(SubmitError::PoolSaturated {
            pages: n_layers,
            available: 0
        })
    );
    // Releasing the pin restores the headroom and the request fits.
    assert_eq!(sched.release_prefix("sys").unwrap(), max_pages);
    assert!(sched
        .submit(Request::builder(vec![1]).max_new(1).build().unwrap())
        .is_ok());
    assert_eq!(sched.run_to_completion().len(), 1);
}

/// Boundary arithmetic around the page-demand discount: an exactly
/// page-aligned prefix discounts all of its whole pages without
/// underflow, and a request whose demand is exactly the remaining
/// headroom is admitted (the watermark is `<=`, not `<`).
#[test]
fn aligned_prefix_discount_and_exact_fit_admit() {
    let model = model();
    let n_layers = model.config().n_layers;
    let pp = 4usize;
    // Prefix pins 2 pages/layer; one exact-fit stream needs 1 more.
    let max_pages = n_layers * 3;
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                page_positions: pp,
                max_pages: Some(max_pages),
                ..KvPoolConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    let prefix: Vec<usize> = (0..8).map(|i| (i * 11 + 5) % 512).collect();
    sched.register_prefix("sys", prefix).unwrap();
    // prompt 1 + max_new 0 on top of 8 shared positions: pages_for(9)
    // = 3 minus the 2 shared whole pages — exactly one private page.
    let req = Request::builder(vec![42])
        .max_new(0)
        .prefix("sys")
        .build()
        .unwrap();
    assert_eq!(sched.pages_needed(&req), n_layers);
    // That demand equals the post-pin headroom exactly: admitted.
    sched.submit(req).unwrap();
    let done = sched.run_to_completion();
    assert_eq!(done.len(), 1);
    assert_eq!(
        sched.kv_pool().pages_in_use(),
        sched.pool_snapshot().pinned_pages
    );
}

/// With one slot and all three classes backlogged, grants follow the
/// 4:2:1 weighted-round-robin schedule with no overtaking inside a
/// class — the starvation bound in its exact observable form.
#[test]
fn single_slot_grants_follow_the_wrr_schedule() {
    let model = model();
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 1,
            ..SchedulerConfig::default()
        },
    );
    // Three requests per class, max_new 1: admission is serial, so the
    // finish order *is* the grant order.
    for (class, prio) in [Priority::High, Priority::Normal, Priority::Low]
        .into_iter()
        .enumerate()
    {
        for j in 0..3 {
            sched
                .submit(
                    Request::builder(vec![(class * 31 + j * 7 + 1) % 512])
                        .max_new(1)
                        .priority(prio)
                        .build()
                        .unwrap(),
                )
                .unwrap();
        }
    }
    let order: Vec<u64> = sched.run_to_completion().iter().map(|f| f.id.0).collect();
    // Ids 0-2 High, 3-5 Normal, 6-8 Low. The H,N,H,L,H,N,H cycle grants
    // 4:2:1 while all classes are backlogged, then degenerates
    // gracefully as classes drain — FIFO within each class throughout.
    assert_eq!(order, vec![0, 3, 1, 6, 2, 4, 5, 7, 8]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The WRR starvation bound over random priority mixes: with every
    /// class backlogged, no class waits more than one full schedule
    /// cycle (7 grants) between consecutive grants.
    #[test]
    fn no_class_waits_more_than_one_wrr_cycle(
        classes in prop::collection::vec(0usize..3, 2..12),
    ) {
        let model = model();
        let mut sched = Scheduler::new(
            model,
            SchedulerConfig { max_batch: 1, ..SchedulerConfig::default() },
        );
        let prios = [Priority::High, Priority::Normal, Priority::Low];
        for (i, &c) in classes.iter().enumerate() {
            sched
                .submit(
                    Request::builder(vec![(i * 13 + 1) % 512])
                        .max_new(1)
                        .priority(prios[c])
                        .build()
                        .unwrap(),
                )
                .unwrap();
        }
        let finished = sched.run_to_completion();
        prop_assert_eq!(finished.len(), classes.len());
        // Serial: finish order == grant order. While a class still has
        // queued work, its next grant comes within 7 grants.
        let grant_classes: Vec<usize> =
            finished.iter().map(|f| classes[f.id.0 as usize]).collect();
        for c in 0..3 {
            let total = classes.iter().filter(|&&x| x == c).count();
            let mut seen = 0usize;
            let mut last = None::<usize>;
            for (pos, &g) in grant_classes.iter().enumerate() {
                if g != c {
                    continue;
                }
                let since = last.map_or(pos + 1, |l| pos - l);
                prop_assert!(
                    since <= 7,
                    "class {c} waited {since} grants with work pending"
                );
                last = Some(pos);
                seen += 1;
                if seen == total {
                    break;
                }
            }
            prop_assert_eq!(seen, total);
        }
    }

    /// Random priority mixes with staggered arrivals over a bounded
    /// pool: preemption may fire freely, yet the page watermark holds
    /// every iteration, every accepted request (suspended ones
    /// included) finishes with tokens bit-identical to its solo
    /// reference, and every suspension is matched by a resume.
    #[test]
    fn priority_mixes_preempt_safely_and_stay_exact(
        raw in prop::collection::vec(
            (
                prop::collection::vec(0usize..512, 1..6),
                0usize..5,
                any::<bool>(),
                0usize..512,
                0u64..100_000,
            ),
            2..8,
        ),
        classes in prop::collection::vec(0usize..3, 8),
        hot in any::<bool>(),
        max_batch in 1usize..4,
        page_positions in 1usize..6,
        capacity_tokens in 10usize..40,
    ) {
        let model = model();
        let max_pages =
            model.config().n_layers * capacity_tokens.div_ceil(page_positions);
        let kv = KvPoolConfig {
            page_positions,
            max_pages: Some(max_pages),
            ..KvPoolConfig::default()
        };
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig { max_batch, kv, ..SchedulerConfig::default() },
            rayon_lite::global(),
        );
        let prios = [Priority::High, Priority::Normal, Priority::Low];
        let mut accepted = Vec::new();
        // Stagger arrivals so later (possibly higher-priority) requests
        // land on a busy pool and preemption genuinely fires.
        for (i, r) in raw.into_iter().enumerate() {
            let mut req = build_request(r, hot);
            req.priority = prios[classes[i]];
            let id = sched.submit(req.clone()).unwrap();
            accepted.push((id, req));
            if i % 2 == 1 {
                sched.step();
            }
        }
        let finished = run_checked(&mut sched);

        // No starvation: exactly the accepted set finishes — preempted
        // and resumed streams included.
        let mut done_ids: Vec<_> = finished.iter().map(|f| f.id).collect();
        done_ids.sort();
        let mut submitted_ids: Vec<_> = accepted.iter().map(|(id, _)| *id).collect();
        submitted_ids.sort();
        prop_assert_eq!(done_ids, submitted_ids);

        for fin in &finished {
            let (_, req) = accepted
                .iter()
                .find(|(id, _)| *id == fin.id)
                .expect("finished id was accepted");
            check_termination(model, req, fin);
        }

        // Every suspension was resumed (nothing stranded, nothing
        // cancelled here), and the pool drained clean.
        let stats = sched.stats();
        prop_assert_eq!(stats.preemptions, stats.resumes);
        prop_assert_eq!(sched.suspended_len(), 0);
    }
}
