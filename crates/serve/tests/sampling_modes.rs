//! Acceptance suite for mid-stream-fork sampling modes
//! ([`SamplingMode::Parallel`] / [`SamplingMode::BestOf`]): every
//! sibling stream is bit-identical to a standalone request with the
//! derived seed, best-of selection is a pure function of the sampled
//! logits, and both survive automatic-prefix eviction under page
//! pressure unchanged.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage};
use anda_llm::zoo::opt_125m_sim;
use anda_llm::Model;
use anda_serve::{Request, RequestError, SamplingMode, Scheduler, SchedulerConfig, SubmitError};

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn cfg(
    storage: KvStorage,
    max_batch: usize,
    max_pages: Option<usize>,
    auto: bool,
) -> SchedulerConfig {
    SchedulerConfig {
        max_batch,
        kv: KvPoolConfig {
            storage,
            page_positions: 8,
            max_pages,
        },
        auto_prefix: auto,
        ..SchedulerConfig::default()
    }
}

fn request(prompt: Vec<usize>, max_new: usize, seed: u64, mode: SamplingMode) -> Request {
    Request::builder(prompt)
        .max_new(max_new)
        .eos(40)
        .temperature(0.9)
        .seed(seed)
        .mode(mode)
        .build()
        .unwrap()
}

fn prompt(tag: usize, len: usize) -> Vec<usize> {
    (0..len).map(|j| (j * 31 + tag * 101 + 13) % 500).collect()
}

/// Standalone twins: the same request as `n` independent `Single`
/// submissions with the derived seeds, run to completion.
fn standalone(storage: KvStorage, req: &Request, n: usize) -> Vec<Vec<usize>> {
    let mut sched = Scheduler::new(model(), cfg(storage, 1, None, false));
    for i in 0..n {
        let mut solo = req.clone();
        solo.mode = SamplingMode::Single;
        solo.sampling.seed = req.sampling.seed.wrapping_add(i as u64);
        sched.submit(solo).unwrap();
    }
    let mut done = sched.run_to_completion();
    done.sort_by_key(|f| f.id);
    done.into_iter().map(|f| f.tokens).collect()
}

/// A `Parallel { n }` request yields `n` streams, each bit-identical to
/// a standalone request seeded `seed + i` — one shared prefill, `n`
/// forked decodes, no content change. Exercised across float and
/// Anda-compressed storage.
#[test]
fn parallel_samples_match_standalone_requests() {
    for storage in [KvStorage::Fp32, KvStorage::Anda { mantissa_bits: 6 }] {
        let req = request(prompt(1, 11), 8, 42, SamplingMode::Parallel { n: 3 });
        let mut sched = Scheduler::new(model(), cfg(storage, 4, None, false));
        let id = sched.submit(req.clone()).unwrap();
        let mut done = sched.run_to_completion();
        done.sort_by_key(|f| f.sample_index);
        assert_eq!(done.len(), 3);
        assert_eq!(sched.stats().sample_forks, 2, "n - 1 sibling forks");

        let twins = standalone(storage, &req, 3);
        for (i, fin) in done.iter().enumerate() {
            assert_eq!(fin.id, id);
            assert_eq!(fin.sample_index, i);
            assert_eq!(
                fin.tokens, twins[i],
                "sample {i} diverged from its standalone twin: {storage:?}"
            );
            assert!(
                fin.cumulative_logprob.is_some(),
                "grouped samples report their score"
            );
        }
        // A Single request reports no score.
        let mut solo = Scheduler::new(model(), cfg(storage, 1, None, false));
        solo.submit(request(prompt(1, 11), 2, 42, SamplingMode::Single))
            .unwrap();
        assert_eq!(solo.run_to_completion()[0].cumulative_logprob, None);
    }
}

/// `BestOf { n }` returns exactly the `Parallel { n }` member with the
/// highest cumulative logprob (ties to the lowest sample index), score
/// included — selection is observable, deterministic, and consistent
/// between the two modes.
#[test]
fn best_of_picks_the_max_logprob_parallel_sample() {
    let storage = KvStorage::Anda { mantissa_bits: 6 };
    let make = |mode| request(prompt(2, 9), 6, 7, mode);

    let mut par = Scheduler::new(model(), cfg(storage, 4, None, false));
    par.submit(make(SamplingMode::Parallel { n: 4 })).unwrap();
    let mut samples = par.run_to_completion();
    samples.sort_by_key(|f| f.sample_index);
    assert_eq!(samples.len(), 4);
    let expect = samples
        .iter()
        .max_by(|a, b| {
            a.cumulative_logprob
                .partial_cmp(&b.cumulative_logprob)
                .unwrap()
                .then(b.sample_index.cmp(&a.sample_index))
        })
        .unwrap();

    let mut best = Scheduler::new(model(), cfg(storage, 4, None, false));
    best.submit(make(SamplingMode::BestOf { n: 4 })).unwrap();
    let done = best.run_to_completion();
    assert_eq!(done.len(), 1, "best-of returns only the winner");
    assert_eq!(done[0].tokens, expect.tokens);
    assert_eq!(done[0].sample_index, expect.sample_index);
    assert_eq!(done[0].cumulative_logprob, expect.cumulative_logprob);

    // The score itself is batch-independent: a serial scheduler
    // reproduces every sample's logprob bit for bit.
    let mut serial = Scheduler::new(model(), cfg(storage, 4, None, false));
    serial
        .submit(make(SamplingMode::Parallel { n: 4 }))
        .unwrap();
    let mut again = serial.run_to_completion();
    again.sort_by_key(|f| f.sample_index);
    for (a, b) in samples.iter().zip(&again) {
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.cumulative_logprob, b.cumulative_logprob);
    }
}

/// Sampling groups under a bounded pool with the automatic prefix
/// cache on: sibling forks ride radix hits (waves revisiting a prompt
/// family fork its cached pages), a cold family under page pressure
/// evicts the LRU family mid-run, and every sample — hit, miss, or
/// re-prefilled after eviction — stays bit-identical to its standalone
/// twin.
#[test]
fn sampling_stays_exact_across_eviction_under_pressure() {
    let storage = KvStorage::Anda { mantissa_bits: 6 };
    let n_layers = model().config().n_layers;
    // Room for two 16-token family prefixes plus one group's demand —
    // the third family cannot fit without evicting the coldest.
    let mut sched = Scheduler::new(model(), cfg(storage, 4, Some(n_layers * 6), true));
    let mut waves = Vec::new();
    for (wave, tag) in [1usize, 2, 1, 2, 3, 1].into_iter().enumerate() {
        let mut p = prompt(tag, 16);
        p.extend_from_slice(&[450 + wave, tag]);
        let req = request(p, 4, wave as u64 * 17, SamplingMode::Parallel { n: 2 });
        sched.submit(req.clone()).unwrap();
        let mut done = sched.run_to_completion();
        done.sort_by_key(|f| f.sample_index);
        waves.push((req, done));
    }
    assert!(
        sched.stats().radix_evictions > 0,
        "the cold family must evict the LRU one"
    );
    assert!(
        sched.stats().cache_hit_tokens > 0,
        "revisited families must fork the cached prefix"
    );
    for (req, done) in &waves {
        let twins = standalone(storage, req, 2);
        assert_eq!(done.len(), 2);
        for (i, fin) in done.iter().enumerate() {
            assert_eq!(fin.tokens, twins[i], "sample {i} diverged across eviction");
        }
    }
}

/// Submit-time validation of sample counts: zero samples and groups
/// wider than the batch are rejected up front with dedicated errors.
#[test]
fn submit_validates_sample_counts() {
    let mut sched = Scheduler::new(model(), cfg(KvStorage::Fp16, 4, None, false));
    // The builder rejects zero samples at build time; the scheduler
    // still guards hand-built requests.
    assert_eq!(
        Request::builder(vec![1, 2])
            .parallel(0)
            .build()
            .unwrap_err(),
        RequestError::ZeroSamples
    );
    let mut zero = request(vec![1, 2], 4, 0, SamplingMode::Single);
    zero.mode = SamplingMode::Parallel { n: 0 };
    assert_eq!(sched.submit(zero), Err(SubmitError::InvalidSampleCount));
    assert_eq!(
        sched.submit(request(vec![1, 2], 4, 0, SamplingMode::BestOf { n: 5 })),
        Err(SubmitError::SamplesExceedBatch { n: 5, max_batch: 4 })
    );
    // The boundary case fits: n == max_batch.
    sched
        .submit(request(vec![1, 2], 4, 0, SamplingMode::Parallel { n: 4 }))
        .unwrap();
    assert_eq!(sched.run_to_completion().len(), 4);
}
