//! Batched-vs-sequential bit-exactness for the continuous-batching
//! scheduler.
//!
//! Every stream a [`Scheduler`] serves must produce exactly the tokens a
//! solo [`Model::generate`] produces for the same request — independent
//! of batch composition, arrival staggering, budget-induced admission
//! waves, and thread count. Token ids are discrete, so token equality
//! across hundreds of temperature-sampled draws is the observable face of
//! logit bit-equality (which `crates/llm/tests/kv_api.rs` additionally
//! pins at the `f32::to_bits` level for the batched LM head and the
//! serial/pooled decode kernels).

use std::sync::OnceLock;

use anda_llm::zoo::{opt_125m_sim, sim_model};
use anda_llm::Model;
use anda_serve::{FinishReason, KvPoolConfig, Request, RequestId, Scheduler, SchedulerConfig};
use anda_tensor::Rng;
use rayon_lite::ThreadPool;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn llama() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| sim_model("LLaMA2-7B").unwrap().build())
}

/// The sequential reference: the request run alone through
/// [`Model::generate`], truncated at the first EOS like the scheduler
/// truncates.
fn reference(model: &Model, req: &Request) -> Vec<usize> {
    let mut rng = Rng::new(req.sampling.seed);
    let full = model.generate(&req.prompt, req.max_new, req.sampling.temperature, &mut rng);
    if let Some(eos) = req.eos {
        let p = req.prompt.len();
        if let Some(i) = full[p..].iter().position(|&t| t == eos) {
            return full[..p + i + 1].to_vec();
        }
    }
    full
}

/// A mixed workload: ≥3 concurrent streams with different prompts,
/// lengths, temperatures and seeds.
fn workload() -> Vec<Request> {
    vec![
        Request::builder(vec![1, 2, 3]).max_new(12).build().unwrap(),
        Request::builder(vec![400, 5])
            .max_new(9)
            .temperature(0.9)
            .seed(7)
            .build()
            .unwrap(),
        Request::builder(vec![9, 9, 9, 12, 40])
            .max_new(15)
            .temperature(1.2)
            .seed(99)
            .build()
            .unwrap(),
        Request::builder(vec![17, 250, 3])
            .max_new(6)
            .temperature(0.7)
            .seed(12345)
            .build()
            .unwrap(),
    ]
}

fn check_against_reference(model: &Model, reqs: &[Request], finished: &[(RequestId, Vec<usize>)]) {
    assert_eq!(finished.len(), reqs.len(), "every request must finish");
    for (id, tokens) in finished {
        let req = &reqs[id.0 as usize];
        let expect = reference(model, req);
        assert_eq!(
            tokens, &expect,
            "stream {id} diverged from its solo Model::generate"
        );
    }
}

fn drain(sched: &mut Scheduler<'_>) -> Vec<(RequestId, Vec<usize>)> {
    sched
        .run_to_completion()
        .into_iter()
        .map(|f| (f.id, f.tokens))
        .collect()
}

/// ≥3 concurrent streams, batched together from the start, at pool sizes
/// 1 and 4: every stream reproduces its solo generate exactly.
#[test]
fn batched_decode_matches_sequential_generate() {
    let model = model();
    let reqs = workload();
    for threads in [1, 4] {
        let pool = ThreadPool::new(threads);
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig {
                max_batch: reqs.len(),
                kv: KvPoolConfig::default(),
                ..SchedulerConfig::default()
            },
            &pool,
        );
        for r in &reqs {
            sched.submit(r.clone()).unwrap();
        }
        let finished = drain(&mut sched);
        assert!(sched.stats().peak_active >= 3, "streams must overlap");
        check_against_reference(model, &reqs, &finished);
    }
}

/// Arrival staggering — requests joining mid-flight, in several different
/// orders — never changes any stream's tokens.
#[test]
fn staggered_arrival_orders_are_bit_exact() {
    let model = model();
    let reqs = workload();
    for threads in [1, 4] {
        let pool = ThreadPool::new(threads);
        // Stagger A: 0 alone, then 1 and 2 mid-flight, then 3 later.
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig {
                max_batch: 4,
                kv: KvPoolConfig::default(),
                ..SchedulerConfig::default()
            },
            &pool,
        );
        sched.submit(reqs[0].clone()).unwrap();
        sched.step();
        sched.step();
        sched.submit(reqs[1].clone()).unwrap();
        sched.submit(reqs[2].clone()).unwrap();
        sched.step();
        sched.submit(reqs[3].clone()).unwrap();
        let finished = drain(&mut sched);
        check_against_reference(model, &reqs, &finished);

        // Stagger B: reverse submission order (ids map by submission, so
        // rebuild the id→request mapping accordingly).
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig {
                max_batch: 2,
                kv: KvPoolConfig::default(),
                ..SchedulerConfig::default()
            },
            &pool,
        );
        let reversed: Vec<Request> = reqs.iter().rev().cloned().collect();
        for r in &reversed {
            sched.submit(r.clone()).unwrap();
        }
        let finished = drain(&mut sched);
        check_against_reference(model, &reversed, &finished);
    }
}

/// A tight page pool forces admission waves, slot reuse and page
/// recycling; outputs still match the solo references.
#[test]
fn budget_constrained_admission_waves_stay_exact() {
    let model = model();
    let reqs = workload();
    let max_reserve = reqs.iter().map(Request::reserve_tokens).max().unwrap();
    let page_positions = 4;
    let pages_per_req = model.config().n_layers * max_reserve.div_ceil(page_positions);
    for threads in [1, 4] {
        let pool = ThreadPool::new(threads);
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig {
                max_batch: 2,
                // Room for roughly one and a half requests: streams must
                // queue, finish, and hand their slots/pages over.
                kv: KvPoolConfig {
                    page_positions,
                    max_pages: Some(pages_per_req + pages_per_req / 2),
                    ..KvPoolConfig::default()
                },
                ..SchedulerConfig::default()
            },
            &pool,
        );
        for r in &reqs {
            sched.submit(r.clone()).unwrap();
        }
        let finished = drain(&mut sched);
        check_against_reference(model, &reqs, &finished);
    }
}

/// The RoPE (LLaMA) family goes through the same scheduler bit-exactly.
#[test]
fn llama_family_batched_decode_is_exact() {
    let model = llama();
    let reqs = vec![
        Request::builder(vec![4, 8, 15]).max_new(8).build().unwrap(),
        Request::builder(vec![16, 23])
            .max_new(10)
            .temperature(1.0)
            .seed(2024)
            .build()
            .unwrap(),
        Request::builder(vec![42, 108, 3, 7])
            .max_new(5)
            .temperature(0.6)
            .seed(31337)
            .build()
            .unwrap(),
    ];
    for threads in [1, 4] {
        let pool = ThreadPool::new(threads);
        let mut sched = Scheduler::with_pool(
            model,
            SchedulerConfig {
                max_batch: 3,
                kv: KvPoolConfig::default(),
                ..SchedulerConfig::default()
            },
            &pool,
        );
        for r in &reqs {
            sched.submit(r.clone()).unwrap();
        }
        let finished = drain(&mut sched);
        check_against_reference(model, &reqs, &finished);
    }
}

/// EOS termination: the scheduler stops a stream exactly where the solo
/// reference first emits the EOS token, and reports the right reason.
#[test]
fn eos_truncation_matches_reference() {
    let model = model();
    // Pick, per seed, the token the reference actually generates third,
    // and use it as EOS — guaranteeing the EOS path fires mid-stream.
    let base = Request::builder(vec![30, 60, 90])
        .max_new(10)
        .temperature(1.1)
        .seed(555)
        .build()
        .unwrap();
    let solo = reference(model, &base);
    let eos_tok = solo[base.prompt.len() + 2];
    let req = Request {
        eos: Some(eos_tok),
        ..base.clone()
    };

    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 3,
            kv: KvPoolConfig::default(),
            ..SchedulerConfig::default()
        },
    );
    // Run it alongside unrelated traffic to prove batching does not
    // perturb the truncation point.
    sched.submit(req.clone()).unwrap();
    sched
        .submit(Request::builder(vec![1, 2]).max_new(6).build().unwrap())
        .unwrap();
    let finished = sched.run_to_completion();
    let hit = finished.iter().find(|f| f.id == RequestId(0)).unwrap();
    assert_eq!(hit.tokens, reference(model, &req));
    assert_eq!(*hit.tokens.last().unwrap(), eos_tok);
    assert!(hit.generated().len() <= 3 + 1);
    assert_eq!(hit.reason, FinishReason::Eos);
}
