//! Chunked prefill: with [`SchedulerConfig::prefill_chunk_tokens`] set,
//! prompts are worked off as per-step grouped-batch chunks instead of a
//! monolithic admission-time prefill. The token streams must be
//! **bit-identical** to monolithic admission across every KV storage
//! policy, chunk size (including chunks landing mid-page), thread
//! count, under the automatic prefix cache, and interleaved with live
//! decodes — and the stall accounting must show the admission stall is
//! actually gone.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage};
use anda_llm::zoo::{opt_125m_sim, sim_model};
use anda_llm::Model;
use anda_serve::{Request, Scheduler, SchedulerConfig};
use rayon_lite::ThreadPool;

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

fn llama() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| sim_model("LLaMA-7B").unwrap().build())
}

const POLICIES: [KvStorage; 5] = [
    KvStorage::Fp32,
    KvStorage::Fp16,
    KvStorage::Bf16,
    KvStorage::Anda { mantissa_bits: 6 },
    KvStorage::Anda { mantissa_bits: 11 },
];

/// Long-prompt length used across the suite; page size is 8, so chunk
/// sizes 1 / 3 / 8 / `LONG - 1` cover single-token chunks, chunks that
/// land mid-page, page-aligned chunks and one near-monolithic chunk.
const LONG: usize = 23;

fn long_prompt(salt: usize) -> Vec<usize> {
    (0..LONG).map(|j| (salt * 131 + j * 17 + 7) % 500).collect()
}

/// Mixed workload around one long prompt: short greedy streams, a
/// temperature-sampled stream, and an EOS user — the decodes the chunks
/// must interleave with.
fn workload() -> Vec<Request> {
    vec![
        Request::builder([1, 2, 3]).max_new(10).build().unwrap(),
        Request::builder(long_prompt(1)).max_new(8).build().unwrap(),
        Request::builder([400, 5, 77, 8])
            .max_new(8)
            .temperature(0.9)
            .seed(7)
            .build()
            .unwrap(),
        Request::builder([9, 9, 12])
            .max_new(12)
            .eos(40)
            .temperature(1.1)
            .seed(99)
            .build()
            .unwrap(),
    ]
}

/// Runs `workload` with the first request admitted and decoding for two
/// steps before the rest (the long prompt included) arrives, so chunks
/// genuinely interleave with live decode traffic. Returns finished
/// `(tokens, prompt_len)` sorted by request id.
fn run(
    m: &Model,
    storage: KvStorage,
    threads: usize,
    chunk: Option<usize>,
    auto_prefix: bool,
) -> Vec<(Vec<usize>, usize)> {
    let pool = ThreadPool::new(threads);
    let cfg = SchedulerConfig {
        max_batch: 4,
        kv: KvPoolConfig {
            storage,
            page_positions: 8,
            max_pages: None,
        },
        auto_prefix,
        prefill_chunk_tokens: chunk,
        ..SchedulerConfig::default()
    };
    let mut sched = Scheduler::with_pool(m, cfg, &pool);
    let mut reqs = workload().into_iter();
    sched
        .submit(reqs.next().expect("workload is non-empty"))
        .unwrap();
    sched.step();
    sched.step();
    for r in reqs {
        sched.submit(r).unwrap();
    }
    let mut done = sched.run_to_completion();
    done.sort_by_key(|r| r.id);
    done.into_iter().map(|r| (r.tokens, r.prompt_len)).collect()
}

/// The exactness matrix: every storage policy × chunk size (1,
/// mid-page, page, prompt−1) × thread count serves token streams
/// bit-identical to monolithic admission — for the chunked long prompt
/// *and* for every co-scheduled decode stream.
#[test]
fn chunked_serving_matches_monolithic() {
    for storage in POLICIES {
        let oracle = run(model(), storage, 1, None, false);
        for chunk in [1, 3, 8, LONG - 1] {
            for threads in [1, 4] {
                let chunked = run(model(), storage, threads, Some(chunk), false);
                assert_eq!(
                    chunked, oracle,
                    "chunked serving diverged: {storage:?}, chunk {chunk}, {threads} threads"
                );
            }
        }
    }
}

/// Same exactness through the LLaMA family (RoPE staging inside chunk
/// spans) and through the per-stream fallback path
/// (`grouped_attention: false` routes chunks via `Model::prefill_chunk`).
#[test]
fn chunked_matches_monolithic_for_llama_and_fallback() {
    let storage = KvStorage::Anda { mantissa_bits: 6 };
    let oracle = run(llama(), storage, 1, None, false);
    for threads in [1, 4] {
        assert_eq!(run(llama(), storage, threads, Some(3), false), oracle);
    }

    let pool = ThreadPool::new(2);
    let mk = |chunk| SchedulerConfig {
        max_batch: 4,
        kv: KvPoolConfig {
            storage,
            page_positions: 8,
            max_pages: None,
        },
        grouped_attention: false,
        prefill_chunk_tokens: chunk,
        ..SchedulerConfig::default()
    };
    let serve = |chunk| {
        let mut sched = Scheduler::with_pool(model(), mk(chunk), &pool);
        for r in workload() {
            sched.submit(r).unwrap();
        }
        let mut done = sched.run_to_completion();
        done.sort_by_key(|r| r.id);
        done.into_iter().map(|r| r.tokens).collect::<Vec<_>>()
    };
    assert_eq!(serve(Some(5)), serve(None), "fallback chunking diverged");
}

/// Chunked prefill under the automatic prefix cache: tokens stay
/// bit-identical to monolithic, and because completed prompts are
/// inserted into the radix tree (insert-on-completion), a repeat of the
/// long prompt still hits the cache.
#[test]
fn chunked_composes_with_auto_prefix() {
    for storage in [KvStorage::Fp16, KvStorage::Anda { mantissa_bits: 6 }] {
        let oracle = run(model(), storage, 1, None, true);
        let chunked = run(model(), storage, 4, Some(3), true);
        assert_eq!(chunked, oracle, "auto_prefix chunked diverged: {storage:?}");
    }

    // Insert-on-completion really feeds the tree: serve the long prompt
    // chunked, then resubmit it and observe a cache hit.
    let pool = ThreadPool::new(2);
    let cfg = SchedulerConfig {
        max_batch: 2,
        kv: KvPoolConfig {
            storage: KvStorage::Anda { mantissa_bits: 6 },
            page_positions: 8,
            max_pages: None,
        },
        auto_prefix: true,
        prefill_chunk_tokens: Some(4),
        ..SchedulerConfig::default()
    };
    let mut sched = Scheduler::with_pool(model(), cfg, &pool);
    sched
        .submit(Request::builder(long_prompt(1)).max_new(4).build().unwrap())
        .unwrap();
    let first = sched.run_to_completion();
    assert_eq!(sched.stats().cache_hit_tokens, 0);
    sched
        .submit(Request::builder(long_prompt(1)).max_new(4).build().unwrap())
        .unwrap();
    let second = sched.run_to_completion();
    assert!(
        sched.stats().cache_hit_tokens > 0,
        "completed chunked prompt never entered the prefix cache"
    );
    assert_eq!(first[0].tokens, second[0].tokens);
}

/// Sampling groups keep the monolithic path (siblings fork the fully
/// prefilled cache), and mixing them with chunked singles stays exact.
#[test]
fn groups_stay_monolithic_alongside_chunked_singles() {
    let serve = |chunk: Option<usize>| {
        let pool = ThreadPool::new(2);
        let cfg = SchedulerConfig {
            max_batch: 4,
            kv: KvPoolConfig::default(),
            prefill_chunk_tokens: chunk,
            ..SchedulerConfig::default()
        };
        let mut sched = Scheduler::with_pool(model(), cfg, &pool);
        sched
            .submit(
                Request::builder(vec![3, 1, 4, 1, 5])
                    .max_new(6)
                    .temperature(0.8)
                    .seed(11)
                    .parallel(2)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        sched
            .submit(Request::builder(long_prompt(2)).max_new(6).build().unwrap())
            .unwrap();
        let mut done: Vec<_> = sched
            .run_to_completion()
            .into_iter()
            .map(|r| (r.id, r.sample_index, r.tokens))
            .collect();
        done.sort();
        done
    };
    assert_eq!(serve(Some(3)), serve(None));
}

/// The structural no-stall guarantee: while a long prompt is worked off
/// chunk by chunk, the already-active stream samples exactly one token
/// **every step**, the long stream samples its first token the same
/// step its final chunk lands, and `stalled_prefill_tokens` stays zero
/// (monolithic admission of the same workload records the stall).
#[test]
fn long_arrival_never_stalls_active_decodes() {
    let chunk = 4usize;
    let pool = ThreadPool::new(2);
    let cfg = SchedulerConfig {
        max_batch: 2,
        kv: KvPoolConfig::default(),
        prefill_chunk_tokens: Some(chunk),
        ..SchedulerConfig::default()
    };
    let mut sched = Scheduler::with_pool(model(), cfg, &pool);
    let short = sched
        .submit(Request::builder(vec![5, 6]).max_new(40).build().unwrap())
        .unwrap();
    sched.step();
    assert_eq!(sched.generated_len(short), Some(1));
    let long = sched
        .submit(Request::builder(long_prompt(3)).max_new(5).build().unwrap())
        .unwrap();

    // ceil(LONG / chunk) steps of prefill; the final chunk's step also
    // samples the long stream's first token. The short stream advances
    // by exactly one token in every single one of them.
    let prefill_steps = LONG.div_ceil(chunk);
    for s in 1..=prefill_steps {
        let before = sched.generated_len(short).expect("short stream is active");
        sched.step();
        assert_eq!(
            sched.generated_len(short),
            Some(before + 1),
            "active stream stalled at chunk step {s}"
        );
        let expect_long = if s < prefill_steps { 0 } else { 1 };
        assert_eq!(
            sched.generated_len(long),
            Some(expect_long),
            "long stream sampled at the wrong step ({s}/{prefill_steps})"
        );
    }
    let stats = sched.stats();
    assert_eq!(stats.stalled_prefill_tokens, 0, "chunked admission stalled");
    // +1: the short prompt was itself admitted as a single chunk.
    assert_eq!(stats.prefill_chunks as usize, prefill_steps + 1);
    assert_eq!(stats.prefill_tokens as usize, 2 + LONG);
    sched.run_to_completion();

    // The monolithic control records exactly the stall chunking removed.
    let cfg = SchedulerConfig {
        max_batch: 2,
        kv: KvPoolConfig::default(),
        ..SchedulerConfig::default()
    };
    let mut sched = Scheduler::with_pool(model(), cfg, &pool);
    sched
        .submit(Request::builder(vec![5, 6]).max_new(40).build().unwrap())
        .unwrap();
    sched.step();
    sched
        .submit(Request::builder(long_prompt(3)).max_new(5).build().unwrap())
        .unwrap();
    sched.step();
    assert_eq!(
        sched.stats().stalled_prefill_tokens as usize,
        LONG,
        "monolithic admission must account its stall"
    );
    sched.run_to_completion();
}

/// A budget of 0 still makes progress (clamped to one token per step),
/// and a chunk budget far above every prompt degenerates to one chunk
/// per admission — both ends of the knob serve exact tokens.
#[test]
fn budget_extremes_stay_exact() {
    let oracle = run(model(), KvStorage::Fp32, 1, None, false);
    for chunk in [0, 1024] {
        let chunked = run(model(), KvStorage::Fp32, 2, Some(chunk), false);
        assert_eq!(chunked, oracle, "budget {chunk} diverged");
    }
}
