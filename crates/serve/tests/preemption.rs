//! Preemption under pressure: when a higher-priority arrival cannot get
//! slots or pages, the scheduler suspends strictly-outranked victims
//! (releasing their KV pages the same step) and later resumes them by
//! re-prefilling their full generated-so-far sequence with their saved
//! live RNG. Because prefill and decode share one bit-exact kernel path,
//! a suspended-and-resumed stream must produce **exactly** the tokens of
//! a never-preempted twin — across every KV storage policy, including
//! the compressed Anda formats. This suite pins that matrix, plus the
//! priority rules (who may preempt whom), the mid-chunked-prefill
//! suspend path, and the admission watermark under preemption churn.

use std::sync::OnceLock;

use anda_llm::kv::{KvPoolConfig, KvStorage};
use anda_llm::zoo::opt_125m_sim;
use anda_llm::Model;
use anda_serve::{Priority, Request, RequestId, Scheduler, SchedulerConfig, StreamStatus};

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(|| opt_125m_sim().build())
}

const POLICIES: [KvStorage; 5] = [
    KvStorage::Fp32,
    KvStorage::Fp16,
    KvStorage::Bf16,
    KvStorage::Anda { mantissa_bits: 6 },
    KvStorage::Anda { mantissa_bits: 11 },
];

/// The never-preempted twin: the request served alone, same KV storage
/// policy, unbounded pool — nothing to preempt it. Token equality over
/// temperature-sampled draws is the observable face of logit
/// bit-equality (the compressed policies legitimately differ from an
/// fp32 [`Model::generate`], so the twin must share the policy).
fn twin(model: &Model, storage: KvStorage, req: &Request) -> Vec<usize> {
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 1,
            kv: KvPoolConfig {
                storage,
                ..KvPoolConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    sched.submit(req.clone()).unwrap();
    let finished = sched.run_to_completion();
    finished.into_iter().next().unwrap().tokens
}

/// A temperature-sampled low-priority stream: the preemption victim.
/// Sampling (not greedy) makes the twin check also pin RNG-state
/// survival across suspend/resume.
fn victim_req() -> Request {
    Request::builder(vec![10, 11, 12, 13, 14, 15])
        .max_new(10)
        .temperature(0.9)
        .seed(7)
        .priority(Priority::Low)
        .build()
        .unwrap()
}

fn high_req() -> Request {
    Request::builder(vec![1, 2, 3, 4, 5, 6, 7, 8])
        .max_new(8)
        .temperature(1.1)
        .seed(99)
        .priority(Priority::High)
        .build()
        .unwrap()
}

/// Page-pressure preemption matrix: a Low victim decodes, a High arrival
/// needs pages the watermark cannot grant, the victim is suspended the
/// same step (pages released immediately) and resumed after the High
/// stream retires — and both streams' tokens are identical to their solo
/// twins under every KV storage policy.
#[test]
fn page_pressure_preemption_is_bit_exact() {
    let model = model();
    let n_layers = model.config().n_layers;
    let victim = victim_req();
    let high = high_req();
    // Both requests reserve 16 positions = 4 pages/layer at 4 positions
    // per page; capacity 5 pages/layer holds either one, never both.
    let cap = n_layers * 5;
    for storage in POLICIES {
        let mut sched = Scheduler::new(
            model,
            SchedulerConfig {
                max_batch: 2,
                kv: KvPoolConfig {
                    storage,
                    page_positions: 4,
                    max_pages: Some(cap),
                },
                ..SchedulerConfig::default()
            },
        );
        let vid = sched.submit(victim.clone()).unwrap();
        sched.step();
        sched.step();
        assert_eq!(sched.generated_len(vid), Some(2), "{storage:?}");

        let hid = sched.submit(high.clone()).unwrap();
        sched.step();
        let stats = sched.stats();
        assert_eq!(stats.preemptions, 1, "{storage:?}: victim not suspended");
        assert_eq!(sched.suspended_len(), 1);
        assert_eq!(sched.status(vid), Some(StreamStatus::Suspended));
        assert_eq!(sched.status(hid), Some(StreamStatus::Decoding));
        // The suspend released the victim's pages this very step: only
        // the High stream's reservation remains.
        let snap = sched.pool_snapshot();
        assert_eq!(snap.reserved_pages, n_layers * 4, "{storage:?}");
        // The suspended stream still reports its progress so far.
        assert_eq!(sched.generated_len(vid), Some(2));

        let finished = sched.run_to_completion();
        assert_eq!(finished.len(), 2);
        // The High stream retired first; the victim could only resume
        // after its pages came back.
        assert_eq!(finished[0].id, hid);
        assert_eq!(finished[1].id, vid);
        for f in &finished {
            let req = if f.id == vid { &victim } else { &high };
            assert_eq!(
                f.tokens,
                twin(model, storage, req),
                "{storage:?}: stream {} diverged from its never-preempted twin",
                f.id
            );
        }
        let stats = sched.stats();
        assert_eq!(stats.resumes, 1);
        // The resume re-prefilled prompt (6) + generated-so-far (2).
        assert_eq!(stats.resumed_prefill_tokens, 8, "{storage:?}");
    }
}

/// Preemption is a *page-pressure* mechanism only. Slot pressure parks
/// the arrival instead — slots turn over every few steps, so suspending
/// an incumbent (and paying a full re-prefill) for one would be waste,
/// and admission keeps its weighted-round-robin starvation bound.
#[test]
fn slot_pressure_parks_instead_of_preempting() {
    let model = model();
    let victim = victim_req();
    let high = high_req();
    for storage in [KvStorage::Fp32, KvStorage::Anda { mantissa_bits: 6 }] {
        let mut sched = Scheduler::new(
            model,
            SchedulerConfig {
                max_batch: 1,
                kv: KvPoolConfig {
                    storage,
                    ..KvPoolConfig::default()
                },
                ..SchedulerConfig::default()
            },
        );
        let vid = sched.submit(victim.clone()).unwrap();
        sched.step();
        let hid = sched.submit(high.clone()).unwrap();
        sched.step();
        assert_eq!(sched.stats().preemptions, 0, "{storage:?}");
        assert_eq!(sched.status(vid), Some(StreamStatus::Decoding));
        assert_eq!(sched.status(hid), Some(StreamStatus::Pending));
        let finished = sched.run_to_completion();
        assert_eq!(finished.len(), 2);
        // The incumbent kept its slot to the end; the High arrival took
        // over afterwards, and neither stream's tokens were disturbed.
        assert_eq!(
            finished.iter().map(|f| f.id).collect::<Vec<_>>(),
            vec![vid, hid],
            "{storage:?}"
        );
        for f in &finished {
            let req = if f.id == vid { &victim } else { &high };
            assert_eq!(f.tokens, twin(model, storage, req), "{storage:?}");
        }
        assert_eq!(sched.stats().resumes, 0);
    }
}

/// A stream suspended *mid-chunked-prefill* (no tokens generated yet)
/// resumes chunked and still matches its twin; the resume accounting
/// records the full re-prefill.
#[test]
fn mid_chunked_prefill_suspend_is_bit_exact() {
    let model = model();
    let n_layers = model.config().n_layers;
    let long: Vec<usize> = (0..23).map(|j| (j * 17 + 7) % 500).collect();
    let victim = Request::builder(long)
        .max_new(5)
        .temperature(0.9)
        .seed(13)
        .priority(Priority::Low)
        .build()
        .unwrap();
    let high = high_req();
    // Victim: 28 positions = 4 pages/layer at 8/page; High: 16 = 2.
    // Capacity 5 pages/layer forces the preemption.
    let cap = n_layers * 5;
    for storage in [KvStorage::Fp16, KvStorage::Anda { mantissa_bits: 6 }] {
        let mut sched = Scheduler::new(
            model,
            SchedulerConfig {
                max_batch: 2,
                kv: KvPoolConfig {
                    storage,
                    page_positions: 8,
                    max_pages: Some(cap),
                },
                prefill_chunk_tokens: Some(4),
                ..SchedulerConfig::default()
            },
        );
        let vid = sched.submit(victim.clone()).unwrap();
        sched.step();
        // One chunk in: the victim is still working off its prompt.
        assert_eq!(sched.status(vid), Some(StreamStatus::Prefilling));
        assert_eq!(sched.generated_len(vid), Some(0));

        let hid = sched.submit(high.clone()).unwrap();
        sched.step();
        assert_eq!(sched.stats().preemptions, 1, "{storage:?}");
        assert_eq!(sched.status(vid), Some(StreamStatus::Suspended));

        let finished = sched.run_to_completion();
        assert_eq!(finished.len(), 2);
        for f in &finished {
            let req = if f.id == vid { &victim } else { &high };
            assert_eq!(f.tokens, twin(model, storage, req), "{storage:?}");
        }
        let stats = sched.stats();
        assert_eq!(stats.resumes, 1);
        // Nothing was generated before the suspend: the resume replays
        // exactly the 23 prompt tokens.
        assert_eq!(stats.resumed_prefill_tokens, 23, "{storage:?}");
        assert_eq!(sched.status(hid), None);
    }
}

/// The priority rules: an arrival only suspends *strictly* outranked
/// streams. Equal-priority pressure parks the arrival (old FIFO
/// behaviour), and a Normal arrival never touches a High incumbent.
#[test]
fn only_strictly_outranked_streams_are_preempted() {
    let model = model();
    let n_layers = model.config().n_layers;
    let cap = n_layers * 5;
    let tight = || SchedulerConfig {
        max_batch: 2,
        kv: KvPoolConfig {
            page_positions: 4,
            max_pages: Some(cap),
            ..KvPoolConfig::default()
        },
        ..SchedulerConfig::default()
    };
    // Equal priority: incumbent Normal, arrival Normal — no preemption,
    // arrival waits its turn, FIFO order preserved.
    let mut sched = Scheduler::new(model, tight());
    let first = sched
        .submit(
            Request::builder(vec![10, 11, 12, 13, 14, 15])
                .max_new(10)
                .build()
                .unwrap(),
        )
        .unwrap();
    sched.step();
    let second = sched
        .submit(
            Request::builder(vec![1, 2, 3, 4, 5, 6, 7, 8])
                .max_new(8)
                .build()
                .unwrap(),
        )
        .unwrap();
    sched.step();
    assert_eq!(sched.stats().preemptions, 0);
    assert_eq!(sched.status(second), Some(StreamStatus::Pending));
    let finished = sched.run_to_completion();
    assert_eq!(
        finished.iter().map(|f| f.id).collect::<Vec<_>>(),
        vec![first, second]
    );

    // Inverted ranks: a Normal arrival must not suspend a High
    // incumbent (and a Low arrival outranks nobody at all).
    let mut sched = Scheduler::new(model, tight());
    let incumbent = sched
        .submit(
            Request::builder(vec![10, 11, 12, 13, 14, 15])
                .max_new(10)
                .priority(Priority::High)
                .build()
                .unwrap(),
        )
        .unwrap();
    sched.step();
    let normal = sched
        .submit(
            Request::builder(vec![1, 2, 3, 4, 5, 6, 7, 8])
                .max_new(8)
                .priority(Priority::Normal)
                .build()
                .unwrap(),
        )
        .unwrap();
    let low = sched
        .submit(
            Request::builder(vec![9, 9])
                .max_new(2)
                .priority(Priority::Low)
                .build()
                .unwrap(),
        )
        .unwrap();
    sched.step();
    assert_eq!(sched.stats().preemptions, 0);
    assert_eq!(sched.status(incumbent), Some(StreamStatus::Decoding));
    assert_eq!(sched.status(normal), Some(StreamStatus::Pending));
    assert_eq!(sched.status(low), Some(StreamStatus::Pending));
    assert_eq!(sched.run_to_completion().len(), 3);
}

/// `preemption: false` turns the whole mechanism off: the same
/// page-pressure scenario parks the High arrival instead, the Low
/// incumbent finishes first, and both streams still match their twins.
#[test]
fn preemption_gate_defaults_can_be_disabled() {
    let model = model();
    let n_layers = model.config().n_layers;
    let victim = victim_req();
    let high = high_req();
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 2,
            kv: KvPoolConfig {
                page_positions: 4,
                max_pages: Some(n_layers * 5),
                ..KvPoolConfig::default()
            },
            preemption: false,
            ..SchedulerConfig::default()
        },
    );
    let vid = sched.submit(victim.clone()).unwrap();
    sched.step();
    sched.step();
    let hid = sched.submit(high.clone()).unwrap();
    sched.step();
    assert_eq!(sched.stats().preemptions, 0);
    assert_eq!(sched.status(vid), Some(StreamStatus::Decoding));
    assert_eq!(sched.status(hid), Some(StreamStatus::Pending));
    let finished = sched.run_to_completion();
    // FIFO outcome: the incumbent retired first.
    assert_eq!(
        finished.iter().map(|f| f.id).collect::<Vec<_>>(),
        vec![vid, hid]
    );
    for f in &finished {
        let req = if f.id == vid { &victim } else { &high };
        assert_eq!(f.tokens, twin(model, KvStorage::Fp32, req));
    }
    assert_eq!(sched.stats().resumes, 0);
}

/// Watermark safety under churn: across a multi-wave priority workload
/// with repeated preemptions, `pinned + reserved + radix_resident` never
/// exceeds capacity, physical pages never exceed capacity, and every
/// stream — preempted or not — still matches its solo twin.
#[test]
fn watermark_holds_under_preemption_churn() {
    let model = model();
    let n_layers = model.config().n_layers;
    let cap = n_layers * 6;
    let reqs: Vec<Request> = (0..6)
        .map(|i| {
            let prio = [Priority::Low, Priority::Normal, Priority::High][i % 3];
            Request::builder(vec![30 + i, 60 + i, 90 + i])
                .max_new(6 + (i % 3) * 4)
                .temperature(0.8)
                .seed(100 + i as u64)
                .priority(prio)
                .build()
                .unwrap()
        })
        .collect();
    let mut sched = Scheduler::new(
        model,
        SchedulerConfig {
            max_batch: 3,
            kv: KvPoolConfig {
                page_positions: 4,
                max_pages: Some(cap),
                ..KvPoolConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    let mut ids: Vec<RequestId> = Vec::new();
    let mut queue = reqs.iter();
    // Stagger arrivals two at a time so later High arrivals land on a
    // busy pool.
    for _ in 0..3 {
        for r in queue.by_ref().take(2) {
            ids.push(sched.submit(r.clone()).unwrap());
        }
        for _ in 0..2 {
            sched.step();
            let snap = sched.pool_snapshot();
            let claimed = snap.pinned_pages + snap.reserved_pages + snap.radix_resident_pages;
            assert!(
                claimed <= cap,
                "watermark exceeded: {claimed} > {cap} pages claimed"
            );
            assert!(snap.pages_in_use <= cap, "physical pages over capacity");
        }
    }
    let mut guard = 0;
    while !sched.is_idle() {
        sched.step();
        let snap = sched.pool_snapshot();
        let claimed = snap.pinned_pages + snap.reserved_pages + snap.radix_resident_pages;
        assert!(claimed <= cap);
        guard += 1;
        assert!(guard < 500, "scheduler failed to drain: starvation?");
    }
    let finished = sched.run_to_completion();
    assert_eq!(finished.len(), reqs.len(), "every stream must finish");
    for f in &finished {
        let req = &reqs[ids.iter().position(|&i| i == f.id).unwrap()];
        assert_eq!(
            f.tokens,
            twin(model, KvStorage::Fp32, req),
            "stream {} diverged",
            f.id
        );
    }
    let stats = sched.stats();
    assert_eq!(stats.preemptions, stats.resumes, "every suspend resumed");
}
