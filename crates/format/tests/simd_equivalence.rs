//! Property-based scalar↔SIMD equivalence for the row codec and the
//! flat integer group dot: on every dispatch leg available on this
//! host, every kernel must reproduce its scalar oracle bit for bit —
//! encoded sign/exponent/plane words `==`-identical, decoded rows
//! `f32::to_bits`-identical, integer dots exactly equal.
//!
//! Row lengths sweep across the 64-lane group boundary (partial
//! trailing groups included), mantissa widths cover the full 1..=16
//! range, and inputs include non-finite values (the codec saturates
//! them like the scalar path must).

use anda_format::dot::{dot_group_int_flat_scalar, dot_group_int_flat_with_leg};
use anda_format::rowcodec::{
    decode_row_into_scalar, decode_row_into_with_leg, encode_row_into_scalar,
    encode_row_into_with_leg, groups_per_row, plane_words_per_row,
};
use anda_format::AndaConfig;
use anda_fp::{available_legs, RoundingMode};
use proptest::prelude::*;

/// Strategy: a row of f32 values from a mix of scales, with occasional
/// specials (NaN, infinities, subnormals, the FP16 saturation edge),
/// crossing the 64-lane group boundary.
fn row() -> impl Strategy<Value = Vec<f32>> {
    let element = (any::<u32>(), -70000.0f32..70000.0).prop_map(|(sel, v)| match sel % 16 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 65504.0,
        4 => -65504.0,
        5 => 0.0,
        6 => -0.0,
        7 => f32::from_bits(sel | 1) * f32::MIN_POSITIVE, // tiny / subnormal-ish
        _ => v,
    });
    prop::collection::vec(element, 1..=150)
}

fn rounding(rne: bool) -> RoundingMode {
    if rne {
        RoundingMode::NearestEven
    } else {
        RoundingMode::Truncate
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode on every leg produces word-identical sign/exponent/plane
    /// buffers, and decode on every leg reproduces the scalar decode of
    /// those buffers bit for bit.
    #[test]
    fn rowcodec_matches_scalar_on_all_legs(
        values in row(),
        m in 1u32..=16,
        rne in any::<bool>(),
    ) {
        let cfg = AndaConfig::with_rounding(64, m, rounding(rne)).unwrap();
        let g = groups_per_row(values.len(), cfg);
        let pw = plane_words_per_row(values.len(), cfg);

        let mut signs0 = vec![0u64; g];
        let mut exps0 = vec![0u16; g];
        let mut planes0 = vec![0u64; pw];
        encode_row_into_scalar(&values, cfg, &mut signs0, &mut exps0, &mut planes0);
        let mut out0 = vec![0.0f32; values.len()];
        decode_row_into_scalar(cfg, &signs0, &exps0, &planes0, &mut out0);

        for leg in available_legs() {
            let mut signs = vec![!0u64; g];
            let mut exps = vec![!0u16; g];
            let mut planes = vec![!0u64; pw];
            encode_row_into_with_leg(leg, &values, cfg, &mut signs, &mut exps, &mut planes);
            prop_assert_eq!(&signs, &signs0, "leg={} m={m} signs", leg.name());
            prop_assert_eq!(&exps, &exps0, "leg={} m={m} exps", leg.name());
            prop_assert_eq!(&planes, &planes0, "leg={} m={m} planes", leg.name());

            let mut out = vec![1.0f32; values.len()];
            decode_row_into_with_leg(leg, cfg, &signs0, &exps0, &planes0, &mut out);
            for (i, (a, b)) in out.iter().zip(&out0).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "leg={} m={m} i={i}: {} vs {}", leg.name(), a, b);
            }
        }
    }

    /// The flat integer group dot is exactly equal to its scalar
    /// bit-serial oracle on every leg, including INT8 weight extremes.
    #[test]
    fn flat_dot_matches_scalar_on_all_legs(
        values in prop::collection::vec(-100.0f32..100.0, 1..=64),
        weights in prop::collection::vec(any::<i8>(), 1..=64),
        m in 1u32..=16,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];
        let cfg = AndaConfig::new(64, m).unwrap();
        let mut signs = vec![0u64; 1];
        let mut exps = vec![0u16; 1];
        let mut planes = vec![0u64; m as usize];
        encode_row_into_scalar(values, cfg, &mut signs, &mut exps, &mut planes);

        let oracle = dot_group_int_flat_scalar(signs[0], &planes, weights);
        for leg in available_legs() {
            let got = dot_group_int_flat_with_leg(leg, signs[0], &planes, weights);
            prop_assert_eq!(got, oracle, "leg={} m={m}", leg.name());
        }
    }
}
