//! Adversarial scenario tests for the format kernels: patterns chosen to
//! stress sign handling, alignment extremes, and plane packing.

use anda_format::align::align_group;
use anda_format::bitplane::BitPlaneGroup;
use anda_format::compressor::BitPlaneCompressor;
use anda_format::dot::{dot_group_bit_serial, dot_group_reference};
use anda_format::{AndaConfig, AndaTensor};
use anda_fp::{RoundingMode, F16};

fn f16s(vals: &[f32]) -> Vec<F16> {
    vals.iter().map(|&v| F16::from_f32(v)).collect()
}

fn check_dot_equivalence(vals: &[f32], weights: &[i8], m: u32) {
    let g = align_group(&f16s(vals), m, RoundingMode::Truncate).unwrap();
    let bp = BitPlaneGroup::from_aligned(&g);
    assert_eq!(
        dot_group_bit_serial(&bp, weights).0,
        dot_group_reference(&g, weights),
        "m={m}"
    );
}

#[test]
fn alternating_signs_full_group() {
    let vals: Vec<f32> = (0..64)
        .map(|i| if i % 2 == 0 { 1.5 } else { -1.5 })
        .collect();
    let weights: Vec<i8> = (0..64).map(|i| if i % 3 == 0 { -8 } else { 7 }).collect();
    for m in [1, 2, 11, 16] {
        check_dot_equivalence(&vals, &weights, m);
    }
}

#[test]
fn maximum_exponent_spread() {
    // Largest normal next to smallest subnormal: 29-step exponent gap.
    let mut vals = vec![2.0f32.powi(-24); 64];
    vals[0] = 65504.0;
    let weights = vec![7i8; 64];
    for m in [1, 8, 16] {
        check_dot_equivalence(&vals, &weights, m);
    }
    // Dequantization: everything but the outlier collapses to zero even at
    // the widest mantissa (gap exceeds 16 bits).
    let t = AndaTensor::from_f32(&vals, AndaConfig::hardware(16).unwrap());
    let deq = t.to_f32();
    assert_eq!(deq[0], 65504.0);
    assert!(deq[1..].iter().all(|&x| x == 0.0));
}

#[test]
fn all_ones_mantissa_patterns() {
    // Significand 0b11111111111 at every lane: every plane fully populated.
    let v = F16::from_bits(0x3BFF).to_f32(); // sig = 2047
    let vals = vec![v; 64];
    let t = AndaTensor::from_f32(&vals, AndaConfig::hardware(11).unwrap());
    let g = &t.groups()[0];
    for plane in g.planes() {
        assert_eq!(*plane, u64::MAX);
    }
    let weights: Vec<i8> = (0..64).map(|i| (i % 16) as i8 - 8).collect();
    check_dot_equivalence(&vals, &weights, 11);
}

#[test]
fn negative_zero_inputs() {
    let vals = vec![-0.0f32, 0.0, -0.0, 1.0];
    let g = align_group(&f16s(&vals), 8, RoundingMode::Truncate).unwrap();
    assert_eq!(g.dequantize(0), 0.0);
    assert_eq!(g.dequantize(1), 0.0);
    // Sign-magnitude zero contributes nothing to dots regardless of sign bit.
    let bp = BitPlaneGroup::from_aligned(&g);
    let (dot, _) = dot_group_bit_serial(&bp, &[5, 5, 5, 5]);
    assert_eq!(dot, dot_group_reference(&g, &[5, 5, 5, 5]));
}

#[test]
fn single_lane_group() {
    for v in [0.0f32, -1.0, 42.5, 6.1e-5] {
        let t = AndaTensor::from_f32(&[v], AndaConfig::new(1, 11).unwrap());
        let deq = t.to_f32();
        let expect = F16::from_f32(v).to_f32();
        assert!((deq[0] - expect).abs() <= expect.abs() * 2.0f32.powi(-10) + 1e-7);
    }
}

#[test]
fn compressor_handles_adversarial_groups() {
    let patterns: Vec<Vec<f32>> = vec![
        vec![65504.0; 64],
        vec![-65504.0; 64],
        (0..64)
            .map(|i| (-1.0f32).powi(i) * 2.0f32.powi(i % 30 - 14))
            .collect(),
        vec![2.0f32.powi(-24); 64],
    ];
    for (pi, pattern) in patterns.iter().enumerate() {
        for m in [1u32, 7, 16] {
            let cfg = AndaConfig::hardware(m).unwrap();
            let direct = AndaTensor::from_f32(pattern, cfg);
            let (via_bpc, _) = BitPlaneCompressor::new(cfg).compress_f32(pattern);
            assert_eq!(via_bpc, direct, "pattern {pi} m={m}");
        }
    }
}

#[test]
fn extreme_weights_do_not_overflow() {
    // 64 lanes × max mantissa (2^16-1) × max weight (-8): |dot| ≤ 2^25·64,
    // comfortably inside i64 — but make sure the schedule agrees.
    let vals = vec![65504.0f32; 64];
    let weights = vec![-8i8; 64];
    check_dot_equivalence(&vals, &weights, 16);
}

#[test]
fn plane_order_is_msb_first_for_power_pattern() {
    // Values 2^0 and 2^-1 in one group: after alignment the smaller value's
    // hidden bit appears exactly one plane later.
    let t = AndaTensor::from_f32(&[1.0, 0.5], AndaConfig::new(2, 4).unwrap());
    let g = &t.groups()[0];
    assert_eq!(g.planes()[0] & 0b11, 0b01); // lane 0 MSB set
    assert_eq!(g.planes()[1] & 0b11, 0b10); // lane 1 one plane later
}
