//! Property-based tests for the Anda/BFP formats: the invariants that make
//! the hardware schedule correct.

use anda_format::align::{align_group, truncation_error_bound};
use anda_format::dot::{dot_group_bit_serial, dot_group_reference};
use anda_format::{
    AndaConfig, AndaTensor, BfpConfig, BfpTensor, BitPlaneCompressor, BitPlaneGroup,
};
use anda_fp::{RoundingMode, F16};
use proptest::prelude::*;

/// Strategy: a vector of finite f32 values inside the FP16 range.
fn finite_vals(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-6.0e4f32..6.0e4, 1..=max_len)
}

fn to_f16(vals: &[f32]) -> Vec<F16> {
    vals.iter().map(|&v| F16::from_f32(v)).collect()
}

proptest! {
    /// Every element's round-trip error is bounded by one group ULP.
    #[test]
    fn bfp_error_bounded_by_ulp(vals in finite_vals(64), m in 1u32..=16) {
        let f16s = to_f16(&vals);
        let g = align_group(&f16s, m, RoundingMode::Truncate).unwrap();
        let bound = truncation_error_bound(g.shared_exp, m);
        for (i, h) in f16s.iter().enumerate() {
            let err = (g.dequantize(i) - h.to_f32()).abs();
            prop_assert!(err <= bound, "i={i} err={err} bound={bound}");
        }
    }

    /// Truncation shrinks magnitudes (round-toward-zero on magnitudes).
    #[test]
    fn truncation_never_grows_magnitude(vals in finite_vals(64), m in 1u32..=16) {
        let f16s = to_f16(&vals);
        let g = align_group(&f16s, m, RoundingMode::Truncate).unwrap();
        for (i, h) in f16s.iter().enumerate() {
            prop_assert!(g.dequantize(i).abs() <= h.to_f32().abs());
            // Sign is preserved (or the value became zero).
            let d = g.dequantize(i);
            prop_assert!(d == 0.0 || d.is_sign_negative() == h.is_sign_negative());
        }
    }

    /// M = 16 with a single-element group is lossless (no alignment shift,
    /// 16 ≥ 11 significand bits).
    #[test]
    fn single_element_wide_mantissa_lossless(v in -6.0e4f32..6.0e4) {
        let h = F16::from_f32(v);
        let g = align_group(&[h], 16, RoundingMode::Truncate).unwrap();
        prop_assert_eq!(g.dequantize(0), h.to_f32());
    }

    /// Bit-plane transposition is a lossless permutation of storage.
    #[test]
    fn bitplane_round_trip(vals in finite_vals(64), m in 1u32..=16) {
        let f16s = to_f16(&vals);
        let g = align_group(&f16s, m, RoundingMode::Truncate).unwrap();
        let bp = BitPlaneGroup::from_aligned(&g);
        prop_assert_eq!(bp.to_aligned(), g);
    }

    /// The bit-serial APU schedule computes exactly the reference integer
    /// dot product, for every mantissa length and weight pattern.
    #[test]
    fn bit_serial_dot_equals_reference(
        vals in finite_vals(64),
        m in 1u32..=16,
        wseed in any::<u64>(),
    ) {
        let f16s = to_f16(&vals);
        let g = align_group(&f16s, m, RoundingMode::Truncate).unwrap();
        let bp = BitPlaneGroup::from_aligned(&g);
        // INT4 weights derived deterministically from the seed.
        let weights: Vec<i8> = (0..vals.len())
            .map(|i| {
                let h = wseed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                ((h >> 33) % 16) as i8 - 8
            })
            .collect();
        let (serial, trace) = dot_group_bit_serial(&bp, &weights);
        prop_assert_eq!(serial, dot_group_reference(&g, &weights));
        prop_assert_eq!(trace.cycles, u64::from(m) + 1);
    }

    /// The cycle-by-cycle BPC serial aligner produces exactly the same
    /// bit-plane groups as the direct conversion path.
    #[test]
    fn compressor_equals_direct_conversion(vals in finite_vals(256), m in 1u32..=16) {
        let cfg = AndaConfig::hardware(m).unwrap();
        let (via_bpc, report) = BitPlaneCompressor::new(cfg).compress_f32(&vals);
        let direct = AndaTensor::from_f32(&vals, cfg);
        prop_assert_eq!(&via_bpc, &direct);
        prop_assert_eq!(report.groups, vals.len().div_ceil(64));
    }

    /// Anda (≤64-lane, bit-plane) and BFP (software) agree numerically at
    /// identical (group size, mantissa) parameters.
    #[test]
    fn anda_matches_bfp(vals in finite_vals(200), m in 1u32..=16, gs in 1usize..=64) {
        let anda = AndaTensor::from_f32(&vals, AndaConfig::new(gs, m).unwrap());
        let bfp = BfpTensor::from_f32_saturating(&vals, BfpConfig::new(gs, m).unwrap());
        prop_assert_eq!(anda.to_f32(), bfp.to_f32());
    }

    /// Quantizing an already-quantized tensor is idempotent.
    #[test]
    fn requantization_is_idempotent(vals in finite_vals(128), m in 1u32..=11) {
        let cfg = AndaConfig::hardware(m).unwrap();
        let once = AndaTensor::from_f32(&vals, cfg).to_f32();
        let twice = AndaTensor::from_f32(&once, cfg).to_f32();
        prop_assert_eq!(once, twice);
    }

    /// Storage accounting: bits/element is exactly M + 1 + 5/64 for full
    /// 64-lane groups.
    #[test]
    fn storage_bits_formula(m in 1u32..=16, n_groups in 1usize..=8) {
        let vals = vec![1.0f32; 64 * n_groups];
        let t = AndaTensor::from_f32(&vals, AndaConfig::hardware(m).unwrap());
        let expect = (64 + 5 + 64 * m as usize) * n_groups;
        prop_assert_eq!(t.storage_bits(), expect);
    }
}
