//! Decode-count instrumentation for the Anda read path.
//!
//! The whole point of a compressed KV cache is that decode work scales
//! with *distinct* rows read, not with how many consumers read them — a
//! property that silently regressed once before (the serving layer
//! re-decoded every shared prefix page once per attending stream per
//! step). This module keeps that class of bug measurable: every row
//! decoded through [`crate::rowcodec::decode_row_into`] bumps a global
//! counter that tests and benches can snapshot around a workload.
//!
//! The counter is process-global and monotonic (there is deliberately no
//! reset: concurrent test threads decode too, so the only robust pattern
//! is delta-over-a-snapshot, and even then only `>=` / `<=` bounds are
//! meaningful under a parallel test runner). For an *exact* decode count
//! scoped to one scheduler, use the per-instance
//! `anda_llm::kv::PageDecodeCache::pages_decoded` counter surfaced via
//! `SchedulerStats` instead; this global hook is the cross-check that no
//! decode path escapes that accounting.
//!
//! Overhead is one relaxed atomic add per row — invisible next to the
//! bit-plane work of the row itself — so the hook is always on, in every
//! build profile.

use std::sync::atomic::{AtomicU64, Ordering};

static ROWS_DECODED: AtomicU64 = AtomicU64::new(0);

/// Records `rows` rows decoded (called by the row codec itself; callers
/// outside this crate never need it).
#[inline]
pub(crate) fn note_rows_decoded(rows: u64) {
    ROWS_DECODED.fetch_add(rows, Ordering::Relaxed);
}

/// Total Anda rows decoded by this process so far, across all threads.
///
/// Monotonic; snapshot before and after a workload and compare the delta
/// (with `>=` / `<=` bounds — other threads may decode concurrently).
pub fn rows_decoded() -> u64 {
    ROWS_DECODED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use crate::anda::AndaConfig;
    use crate::rowcodec::{decode_row_into, encode_row_into, plane_words_per_row};

    #[test]
    fn decode_bumps_the_row_counter() {
        let cfg = AndaConfig::new(64, 7).unwrap();
        let row: Vec<f32> = (0..64).map(|i| i as f32 * 0.5 - 16.0).collect();
        let mut signs = vec![0u64; 1];
        let mut exps = vec![0u16; 1];
        let mut planes = vec![0u64; plane_words_per_row(row.len(), cfg)];
        encode_row_into(&row, cfg, &mut signs, &mut exps, &mut planes);

        let before = super::rows_decoded();
        let mut out = vec![0.0f32; row.len()];
        for _ in 0..3 {
            decode_row_into(cfg, &signs, &exps, &planes, &mut out);
        }
        // `>=`: other test threads may decode concurrently.
        assert!(
            super::rows_decoded() >= before + 3,
            "three decodes must bump the global row counter by at least three"
        );
    }
}
