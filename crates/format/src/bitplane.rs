//! The bit-plane data layout scheme (paper Fig. 10).
//!
//! Anda values have variable-length mantissas, so an element-atomic layout
//! would produce irregular memory accesses. Instead, the layout is
//! *transposed*: bits of equal significance across a group of up to 64
//! elements are packed into one 64-bit memory word (a *bit plane*). A group
//! occupies:
//!
//! - one sign plane (64 bits),
//! - one shared-exponent entry (5 bits, stored in a separate exponent array),
//! - `M` mantissa planes, most-significant plane first.
//!
//! Changing M only changes the *address depth* of a group — never the word
//! width — so memory bandwidth utilization is constant, exactly as Fig. 10
//! argues.

use crate::align::{AlignedGroup, SignMag};

/// Hardware lane width: elements per group, bits per plane word.
pub const LANES: usize = 64;

/// One Anda group in the transposed bit-plane memory layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitPlaneGroup {
    /// Number of occupied lanes (1..=64); trailing lanes are zero-padded.
    len: usize,
    /// Sign plane: bit `i` set ⇔ element `i` is negative.
    signs: u64,
    /// Shared biased exponent (5-bit field, 1..=30).
    shared_exp: u16,
    /// Mantissa planes, **most-significant first**: `planes[0]` holds bit
    /// `M-1` of every element's mantissa.
    planes: Vec<u64>,
}

impl BitPlaneGroup {
    /// Transposes an aligned group into bit-plane layout.
    ///
    /// # Panics
    ///
    /// Panics if the group holds more than [`LANES`] elements (the hardware
    /// word width); `anda-format` enforces this upstream.
    pub fn from_aligned(group: &AlignedGroup) -> Self {
        let len = group.elements.len();
        assert!(
            len <= LANES,
            "bit-plane groups hold at most {LANES} elements, got {len}"
        );
        let m = group.mantissa_bits;
        let mut signs = 0u64;
        let mut planes = vec![0u64; m as usize];
        for (i, e) in group.elements.iter().enumerate() {
            if e.negative {
                signs |= 1 << i;
            }
            for b in 0..m {
                // plane 0 = MSB (bit m-1) … plane m-1 = LSB (bit 0)
                let bit = (e.magnitude >> (m - 1 - b)) & 1;
                planes[b as usize] |= u64::from(bit) << i;
            }
        }
        BitPlaneGroup {
            len,
            signs,
            shared_exp: group.shared_exp,
            planes,
        }
    }

    /// Reconstructs the element-major [`AlignedGroup`] view.
    pub fn to_aligned(&self) -> AlignedGroup {
        let m = self.planes.len() as u32;
        let elements = (0..self.len)
            .map(|i| {
                let mut mag = 0u16;
                for (b, plane) in self.planes.iter().enumerate() {
                    mag |= (((plane >> i) & 1) as u16) << (m as usize - 1 - b);
                }
                SignMag {
                    negative: (self.signs >> i) & 1 == 1,
                    magnitude: mag,
                }
            })
            .collect();
        AlignedGroup {
            shared_exp: self.shared_exp,
            mantissa_bits: m,
            elements,
        }
    }

    /// Creates a group directly from raw planes (used by the compressor).
    ///
    /// # Panics
    ///
    /// Panics if `len > LANES` or `planes` is empty.
    pub fn from_raw(len: usize, signs: u64, shared_exp: u16, planes: Vec<u64>) -> Self {
        assert!(len <= LANES && len > 0, "invalid lane count {len}");
        assert!(!planes.is_empty(), "a group needs at least one plane");
        BitPlaneGroup {
            len,
            signs,
            shared_exp,
            planes,
        }
    }

    /// Number of occupied lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no lanes are occupied (never for constructed groups).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mantissa length in bits (= number of mantissa planes).
    #[inline]
    pub fn mantissa_bits(&self) -> u32 {
        self.planes.len() as u32
    }

    /// The sign plane word.
    #[inline]
    pub fn signs(&self) -> u64 {
        self.signs
    }

    /// The shared biased exponent.
    #[inline]
    pub fn shared_exp(&self) -> u16 {
        self.shared_exp
    }

    /// Mantissa planes, most-significant first.
    #[inline]
    pub fn planes(&self) -> &[u64] {
        &self.planes
    }

    /// Memory words occupied in the activation buffer: one sign word plus
    /// one word per mantissa plane (the shared exponent lives in a separate
    /// narrow array, cf. Fig. 10's split mantissa/exponent address spaces).
    pub fn mantissa_words(&self) -> usize {
        1 + self.planes.len()
    }

    /// Exact storage footprint in bits: signs + exponent + mantissa planes.
    pub fn storage_bits(&self) -> usize {
        LANES + 5 + LANES * self.planes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::align_group;
    use anda_fp::{RoundingMode, F16};

    fn aligned(vals: &[f32], m: u32) -> AlignedGroup {
        let f16s: Vec<F16> = vals.iter().map(|&v| F16::from_f32(v)).collect();
        align_group(&f16s, m, RoundingMode::Truncate).unwrap()
    }

    #[test]
    fn round_trip_full_group() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 31.5) * 0.37).collect();
        for m in [1u32, 4, 8, 11, 16] {
            let g = aligned(&vals, m);
            let bp = BitPlaneGroup::from_aligned(&g);
            assert_eq!(bp.to_aligned(), g, "m={m}");
        }
    }

    #[test]
    fn round_trip_partial_group() {
        let g = aligned(&[1.0, -2.0, 0.5], 8);
        let bp = BitPlaneGroup::from_aligned(&g);
        assert_eq!(bp.len(), 3);
        assert_eq!(bp.to_aligned(), g);
    }

    #[test]
    fn plane_zero_is_msb() {
        // Single element with mantissa 0b100 (M=3): only plane 0 has the bit.
        let g = AlignedGroup {
            shared_exp: 15,
            mantissa_bits: 3,
            elements: vec![SignMag {
                negative: false,
                magnitude: 0b100,
            }],
        };
        let bp = BitPlaneGroup::from_aligned(&g);
        assert_eq!(bp.planes(), &[1, 0, 0]);
    }

    #[test]
    fn sign_plane_packs_signs() {
        let g = aligned(&[1.0, -1.0, 1.0, -1.0], 4);
        let bp = BitPlaneGroup::from_aligned(&g);
        assert_eq!(bp.signs() & 0xF, 0b1010);
    }

    #[test]
    fn storage_matches_fig10_accounting() {
        // 4-bit mantissa group: 1 sign word + 4 planes = 5 words; 5b exponent.
        let g = aligned(&[0.5; 64], 4);
        let bp = BitPlaneGroup::from_aligned(&g);
        assert_eq!(bp.mantissa_words(), 5);
        assert_eq!(bp.storage_bits(), 64 + 5 + 4 * 64);
        // 5-bit mantissa group occupies one more word, same word width.
        let g5 = aligned(&[0.5; 64], 5);
        let bp5 = BitPlaneGroup::from_aligned(&g5);
        assert_eq!(bp5.mantissa_words(), 6);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_group_panics() {
        let g = aligned(&vec![1.0; 65], 4);
        let _ = BitPlaneGroup::from_aligned(&g);
    }

    #[test]
    fn variable_length_groups_coexist() {
        // Fig. 10: group #0 with 4-bit mantissas next to group #1 with 5-bit
        // mantissas — only the address depth differs.
        let a = BitPlaneGroup::from_aligned(&aligned(&[1.0; 64], 4));
        let b = BitPlaneGroup::from_aligned(&aligned(&[1.0; 64], 5));
        assert_eq!(a.mantissa_words() + 1, b.mantissa_words());
        assert_eq!(a.storage_bits() + 64, b.storage_bits());
    }
}
