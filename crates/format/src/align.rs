//! Shared-exponent alignment: the math common to BFP and Anda conversion.
//!
//! Every finite FP16 value satisfies `x = (-1)^s · sig · 2^(e - 25)` with an
//! 11-bit significand `sig` (hidden bit explicit) and effective biased
//! exponent `e` (see [`anda_fp::Significand`]). A group shares `E = max e`;
//! an element's M-bit mantissa `m` is the significand aligned to `E` and cut
//! to M bits, so that the dequantized value is
//!
//! ```text
//! x̂ = (-1)^s · m · 2^(E - 14 - M)
//! ```
//!
//! For `M ≤ 11` this truncates precision even for the largest element; for
//! `M > 11` the extra bits absorb alignment shift, approaching lossless
//! storage as M grows (FIGNA's 14-bit mode and Flexpoint's 16-bit mode are
//! points in this space, cf. Table I).

use anda_fp::{shift_right_round, RoundingMode, F16};

use crate::error::FormatError;

/// A sign-magnitude mantissa produced by group alignment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SignMag {
    /// Sign: `true` when negative.
    pub negative: bool,
    /// M-bit magnitude (`0 ..= 2^M - 1`).
    pub magnitude: u16,
}

impl SignMag {
    /// The signed integer value of this mantissa.
    #[inline]
    pub fn signed(self) -> i32 {
        let m = i32::from(self.magnitude);
        if self.negative {
            -m
        } else {
            m
        }
    }

    /// Dequantizes this mantissa given its group's mantissa-LSB weight
    /// (see [`AlignedGroup::ulp`]). The single definition of the
    /// sign/magnitude dequant rule shared by every conversion path.
    #[inline]
    pub fn dequantize(self, ulp: f32) -> f32 {
        let v = f32::from(self.magnitude) * ulp;
        if self.negative {
            -v
        } else {
            v
        }
    }
}

/// Result of aligning one group of FP16 values to a shared exponent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlignedGroup {
    /// Shared (maximum) effective biased exponent of the group, 1..=30.
    pub shared_exp: u16,
    /// Mantissa length in bits (1..=16).
    pub mantissa_bits: u32,
    /// One aligned mantissa per input element.
    pub elements: Vec<SignMag>,
}

impl AlignedGroup {
    /// The power-of-two weight of one mantissa LSB: `2^(shared_exp - 14 - M)`.
    pub fn ulp(&self) -> f32 {
        exp2f(i32::from(self.shared_exp) - 14 - self.mantissa_bits as i32)
    }

    /// Dequantizes element `i` to `f32`.
    pub fn dequantize(&self, i: usize) -> f32 {
        self.elements[i].dequantize(self.ulp())
    }

    /// Dequantizes the whole group.
    pub fn dequantize_all(&self) -> Vec<f32> {
        (0..self.elements.len())
            .map(|i| self.dequantize(i))
            .collect()
    }
}

/// `2^e` as f32 for exponents representable in f32 (|e| ≤ 126 here).
#[inline]
pub fn exp2f(e: i32) -> f32 {
    anda_fp::f16::exp2i(e)
}

/// Aligns a group of finite FP16 values to their shared maximum exponent and
/// truncates each mantissa to `mantissa_bits`.
///
/// # Errors
///
/// Returns [`FormatError::NonFinite`] if any element is NaN or infinite, and
/// [`FormatError::InvalidMantissaBits`] for `mantissa_bits` outside 1..=16.
pub fn align_group(
    values: &[F16],
    mantissa_bits: u32,
    rounding: RoundingMode,
) -> Result<AlignedGroup, FormatError> {
    if !(1..=16).contains(&mantissa_bits) {
        return Err(FormatError::InvalidMantissaBits {
            requested: mantissa_bits,
            range: (1, 16),
        });
    }
    if let Some(index) = values.iter().position(|v| !v.is_finite()) {
        return Err(FormatError::NonFinite { index });
    }

    let sigs: Vec<_> = values.iter().map(|v| v.significand()).collect();
    let shared_exp = sigs.iter().map(|s| s.biased_exp).max().unwrap_or(1);

    let elements = sigs
        .iter()
        .map(|s| align_element(*s, shared_exp, mantissa_bits, rounding))
        .collect();

    Ok(AlignedGroup {
        shared_exp,
        mantissa_bits,
        elements,
    })
}

/// Aligns one significand to a group's shared exponent and truncates its
/// mantissa to `mantissa_bits`: the per-element step of [`align_group`],
/// exposed so streaming converters can quantize without building an
/// [`AlignedGroup`].
#[inline]
pub fn align_element(
    sig: anda_fp::Significand,
    shared_exp: u16,
    mantissa_bits: u32,
    rounding: RoundingMode,
) -> SignMag {
    let m = mantissa_bits;
    let max_mag = (1u32 << m) - 1;
    // m_exact = sig · 2^(M - 11 - (E - e)); compute as
    // (sig << M) >> (11 + E - e) with the requested rounding.
    let shift = 11 + u32::from(shared_exp - sig.biased_exp);
    let shifted = shift_right_round(u64::from(sig.magnitude) << m, shift, rounding);
    // RNE can carry out of the M-bit field for an all-ones
    // significand: saturate (truncation never overflows).
    let magnitude = (shifted as u32).min(max_mag) as u16;
    SignMag {
        negative: sig.negative,
        magnitude,
    }
}

/// Upper bound on the absolute quantization error of any element in a group
/// aligned with truncation: one mantissa ULP, `2^(E - 14 - M)`.
pub fn truncation_error_bound(shared_exp: u16, mantissa_bits: u32) -> f32 {
    exp2f(i32::from(shared_exp) - 14 - mantissa_bits as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f16s(vals: &[f32]) -> Vec<F16> {
        vals.iter().map(|&v| F16::from_f32(v)).collect()
    }

    #[test]
    fn single_element_full_mantissa_is_lossless() {
        let vals = f16s(&[1.5]);
        let g = align_group(&vals, 11, RoundingMode::Truncate).unwrap();
        assert_eq!(g.dequantize(0), 1.5);
    }

    #[test]
    fn equal_exponents_no_shift() {
        // 1.0 and 1.5 share exponent 15; M=11 keeps both exactly.
        let vals = f16s(&[1.0, 1.5, -1.25]);
        let g = align_group(&vals, 11, RoundingMode::Truncate).unwrap();
        assert_eq!(g.shared_exp, 15);
        assert_eq!(g.dequantize_all(), vec![1.0, 1.5, -1.25]);
    }

    #[test]
    fn smaller_elements_lose_alignment_bits() {
        // 8.0 (e=18) dominates 0.0625 (e=11): diff 7. With M=11 the small
        // element keeps 11-7=4 significant bits — 0.0625 = 2^-4 survives.
        let vals = f16s(&[8.0, 0.0625]);
        let g = align_group(&vals, 11, RoundingMode::Truncate).unwrap();
        assert_eq!(g.shared_exp, 18);
        assert_eq!(g.dequantize(0), 8.0);
        assert_eq!(g.dequantize(1), 0.0625);
        // With M=4, the small element underflows to zero entirely:
        // m_exact = 1024 · 2^(4-11-7) = 2^-4 → truncates to 0.
        let g4 = align_group(&vals, 4, RoundingMode::Truncate).unwrap();
        assert_eq!(g4.dequantize(1), 0.0);
    }

    #[test]
    fn truncation_error_within_one_ulp() {
        let vals = f16s(&[3.1, 0.02, -1.7, 0.9]);
        for m in 1..=16 {
            let g = align_group(&vals, m, RoundingMode::Truncate).unwrap();
            let bound = truncation_error_bound(g.shared_exp, m);
            for (i, v) in vals.iter().enumerate() {
                let err = (g.dequantize(i) - v.to_f32()).abs();
                assert!(err <= bound, "m={m} i={i} err={err} bound={bound}");
            }
        }
    }

    #[test]
    fn truncation_never_increases_magnitude() {
        let vals = f16s(&[0.3, -0.7, 12.0, -0.001]);
        for m in 1..=16 {
            let g = align_group(&vals, m, RoundingMode::Truncate).unwrap();
            for (i, v) in vals.iter().enumerate() {
                assert!(g.dequantize(i).abs() <= v.to_f32().abs() + f32::EPSILON);
            }
        }
    }

    #[test]
    fn wide_mantissa_absorbs_alignment_shift() {
        // Exponent spread of 4; M=15 ≥ 11+4 keeps everything lossless.
        let vals = f16s(&[16.0, 1.0]);
        let g = align_group(&vals, 15, RoundingMode::Truncate).unwrap();
        assert_eq!(g.dequantize_all(), vec![16.0, 1.0]);
    }

    #[test]
    fn all_zero_group() {
        let vals = f16s(&[0.0, -0.0]);
        let g = align_group(&vals, 8, RoundingMode::Truncate).unwrap();
        assert_eq!(g.shared_exp, 1);
        assert_eq!(g.dequantize_all(), vec![0.0, 0.0]);
    }

    #[test]
    fn subnormals_align_correctly() {
        let tiny = 2.0f32.powi(-24); // smallest subnormal
        let vals = f16s(&[tiny, 2.0f32.powi(-14)]);
        let g = align_group(&vals, 11, RoundingMode::Truncate).unwrap();
        assert_eq!(g.dequantize(1), 2.0f32.powi(-14));
        assert_eq!(g.dequantize(0), tiny);
    }

    #[test]
    fn rne_saturates_instead_of_overflowing() {
        // 2047/2048 significand with M=4 rounds up to 16 = 2^4: must clamp.
        let v = F16::from_bits(0x3BFF); // 0.99951… (sig = 2047, e = 14)
        let g = align_group(&[v], 4, RoundingMode::NearestEven).unwrap();
        assert_eq!(g.elements[0].magnitude, 15);
    }

    #[test]
    fn rejects_non_finite() {
        let err = align_group(&[F16::NAN], 8, RoundingMode::Truncate).unwrap_err();
        assert_eq!(err, FormatError::NonFinite { index: 0 });
        let err = align_group(&[F16::ONE, F16::INFINITY], 8, RoundingMode::Truncate).unwrap_err();
        assert_eq!(err, FormatError::NonFinite { index: 1 });
    }

    #[test]
    fn rejects_bad_mantissa_bits() {
        for bad in [0u32, 17, 100] {
            let err = align_group(&[F16::ONE], bad, RoundingMode::Truncate).unwrap_err();
            assert!(matches!(err, FormatError::InvalidMantissaBits { .. }));
        }
    }

    #[test]
    fn signed_helper() {
        assert_eq!(
            SignMag {
                negative: true,
                magnitude: 5
            }
            .signed(),
            -5
        );
        assert_eq!(
            SignMag {
                negative: false,
                magnitude: 5
            }
            .signed(),
            5
        );
    }
}
