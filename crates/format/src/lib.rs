//! Block-floating-point and Anda activation data formats.
//!
//! This crate implements the paper's primary contribution:
//!
//! - [`bfp`] — classic block floating point with arbitrary group size and
//!   mantissa length (the design space of §II-B/§II-C, used by the
//!   sensitivity studies of Figs. 5–7).
//! - [`align`] — the shared exponent-alignment math: every finite FP16 value
//!   is decomposed into sign/significand/exponent, aligned to the group's
//!   maximum exponent, and truncated to an M-bit mantissa.
//! - [`anda`] — the Anda format proper (§III): fixed hardware group size of
//!   up to 64 lanes, variable mantissa length 1..=16, with conversion to and
//!   from the transposed *bit-plane* memory layout of Fig. 10.
//! - [`bitplane`] — the bit-plane data layout scheme: sign plane, shared
//!   exponent word and M mantissa planes of one 64-bit word each.
//! - [`compressor`] — a functional model of the on-the-fly bit-plane
//!   compressor (BPC, Fig. 12) including the cycle-by-cycle
//!   parallel-to-serial mantissa aligner.
//! - [`dot`] — group dot-product kernels: the reference sign-magnitude
//!   integer dot and the bit-serial (plane-by-plane, adder-tree) schedule of
//!   the Anda processing element (Fig. 11), which are proven equivalent.
//! - [`rowcodec`] — allocation-free flat encode/decode of fixed-width rows
//!   over caller-owned sign/exponent/plane buffers (the primitive behind
//!   the paged Anda KV cache's per-token hot path).
//! - [`metrics`] — decode-count instrumentation: a global rows-decoded
//!   counter bumped by every row decode, so redundant-decode regressions
//!   on shared KV pages stay measurable.
//! - [`serialize`] — the byte-exact memory image of an Anda tensor
//!   (header + per-group sign/exponent/plane records).
//! - [`stats`] — quantization-error metrics shared by the experiments.
//!
//! # Quickstart
//!
//! ```
//! use anda_format::{AndaConfig, AndaTensor};
//! use anda_fp::F16;
//!
//! let xs: Vec<F16> = (0..64).map(|i| F16::from_f32((i as f32 - 32.0) * 0.25)).collect();
//! let cfg = AndaConfig::new(64, 8).unwrap();
//! let tensor = AndaTensor::from_f16(&xs, cfg);
//! let err = tensor
//!     .to_f32()
//!     .iter()
//!     .zip(&xs)
//!     .map(|(q, x)| (q - x.to_f32()).abs())
//!     .fold(0.0f32, f32::max);
//! assert!(err <= tensor.groups()[0].ulp());
//! ```

pub mod align;
pub mod anda;
pub mod bfp;
pub mod bitplane;
pub mod compressor;
pub mod dot;
pub mod error;
pub mod metrics;
pub mod rowcodec;
pub mod serialize;
pub mod stats;

pub use anda::{AndaConfig, AndaGroup, AndaTensor};
pub use bfp::{BfpConfig, BfpGroup, BfpTensor};
pub use bitplane::BitPlaneGroup;
pub use compressor::{BitPlaneCompressor, CompressorReport};
pub use error::FormatError;
