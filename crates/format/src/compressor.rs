//! Functional model of the on-the-fly bit-plane compressor (BPC, Fig. 12).
//!
//! The BPC converts FP16 values (e.g. MXU or vector-unit outputs) into
//! bit-plane Anda groups *on the fly*. Each of its 16 lanes processes one
//! 64-element group:
//!
//! 1. **FP field extractor** — splits each FP16 input into sign, exponent
//!    and mantissa (hidden bit made explicit).
//! 2. **Max-exponent catcher** — finds the group's maximum exponent and each
//!    element's difference to it.
//! 3. **Parallel-to-serial mantissa aligner** — per cycle, every element
//!    whose remaining exponent difference is zero shifts out its mantissa
//!    MSB; others emit 0 and decrement their difference. The 64 emitted bits
//!    form one mantissa plane. After `M` cycles the configured number of
//!    planes has been produced.
//! 4. **Data packager** — assembles sign plane, shared exponent and mantissa
//!    planes into the memory layout.
//!
//! The model is cycle-faithful (one plane per cycle per lane) and is proven
//! equivalent to the direct conversion path ([`crate::align::align_group`]
//! with truncation) in the tests — the serial aligner *is* alignment +
//! truncation, computed one bit at a time.

use anda_fp::F16;

use crate::anda::{AndaConfig, AndaTensor};
use crate::bfp::saturate_to_f16;
use crate::bitplane::{BitPlaneGroup, LANES};

/// Number of parallel group lanes in the hardware BPC.
pub const BPC_LANES: usize = 16;

/// Cycle and throughput statistics of one compression run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompressorReport {
    /// Number of 64-element groups compressed.
    pub groups: usize,
    /// Total BPC cycles: groups are processed [`BPC_LANES`] at a time, each
    /// batch costing `M` aligner cycles plus [`PIPELINE_OVERHEAD`].
    pub cycles: u64,
    /// Total output bits produced (signs + exponents + mantissa planes).
    pub output_bits: usize,
    /// Total input bits consumed (16 per element).
    pub input_bits: usize,
}

impl CompressorReport {
    /// Achieved compression ratio (input bits / output bits).
    pub fn compression_ratio(&self) -> f64 {
        if self.output_bits == 0 {
            1.0
        } else {
            self.input_bits as f64 / self.output_bits as f64
        }
    }
}

/// Fixed per-batch pipeline overhead: extractor + max-exponent catcher +
/// packager stages.
pub const PIPELINE_OVERHEAD: u64 = 3;

/// The on-the-fly bit-plane compressor.
///
/// # Example
///
/// ```
/// use anda_format::{AndaConfig, BitPlaneCompressor};
///
/// let bpc = BitPlaneCompressor::new(AndaConfig::hardware(6).unwrap());
/// let acts: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
/// let (tensor, report) = bpc.compress_f32(&acts);
/// assert_eq!(report.groups, 4);
/// assert!(report.compression_ratio() > 2.0);
/// assert_eq!(tensor.to_f32().len(), 256);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BitPlaneCompressor {
    config: AndaConfig,
}

impl BitPlaneCompressor {
    /// Creates a compressor for the given output configuration.
    pub fn new(config: AndaConfig) -> Self {
        BitPlaneCompressor { config }
    }

    /// The output configuration.
    pub fn config(&self) -> &AndaConfig {
        &self.config
    }

    /// Compresses one group (≤ 64 elements) through the cycle-by-cycle
    /// serial aligner, returning the bit-plane group.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or exceeds 64 lanes.
    pub fn compress_group(&self, values: &[F16]) -> BitPlaneGroup {
        assert!(
            !values.is_empty() && values.len() <= LANES,
            "BPC lane holds 1..=64 values, got {}",
            values.len()
        );
        let m = self.config.mantissa_bits();

        // 1. FP field extractor (saturating non-finite inputs like the
        //    upstream FP32→FP16 converter would).
        let sigs: Vec<_> = values
            .iter()
            .map(|&v| {
                let v = if v.is_finite() {
                    v
                } else {
                    saturate_to_f16(v.to_f32())
                };
                v.significand()
            })
            .collect();

        // 2. Max-exponent catcher.
        let shared_exp = sigs.iter().map(|s| s.biased_exp).max().unwrap_or(1);
        let mut exp_diff: Vec<u16> = sigs.iter().map(|s| shared_exp - s.biased_exp).collect();

        // Sign plane.
        let mut signs = 0u64;
        for (i, s) in sigs.iter().enumerate() {
            if s.negative {
                signs |= 1 << i;
            }
        }

        // 3. Parallel-to-serial mantissa aligner: 11-bit registers, MSB out.
        let mut regs: Vec<u16> = sigs.iter().map(|s| s.magnitude).collect();
        let mut planes = Vec::with_capacity(m as usize);
        for _cycle in 0..m {
            let mut plane = 0u64;
            for i in 0..regs.len() {
                if exp_diff[i] == 0 {
                    let msb = (regs[i] >> 10) & 1;
                    plane |= u64::from(msb) << i;
                    regs[i] = (regs[i] << 1) & 0x7FF;
                } else {
                    exp_diff[i] -= 1;
                    // emit 0 for this lane this cycle
                }
            }
            planes.push(plane);
        }

        // 4. Data packager.
        BitPlaneGroup::from_raw(values.len(), signs, shared_exp, planes)
    }

    /// Compresses a full FP16 tensor, modelling the 16-lane batching, and
    /// returns the Anda tensor plus cycle/throughput statistics.
    pub fn compress(&self, values: &[F16]) -> (AndaTensor, CompressorReport) {
        let gs = self.config.group_size();
        let groups: Vec<BitPlaneGroup> = values
            .chunks(gs)
            .filter(|c| !c.is_empty())
            .map(|chunk| self.compress_group(chunk))
            .collect();

        let n_groups = groups.len();
        let batches = n_groups.div_ceil(BPC_LANES) as u64;
        let m = u64::from(self.config.mantissa_bits());
        let output_bits: usize = groups.iter().map(BitPlaneGroup::storage_bits).sum();
        let report = CompressorReport {
            groups: n_groups,
            cycles: batches * (m + PIPELINE_OVERHEAD),
            output_bits,
            input_bits: values.len() * 16,
        };
        let tensor = AndaTensor::from_parts(self.config, groups, values.len());
        (tensor, report)
    }

    /// Convenience: compress `f32` values (saturating FP16 rounding first).
    pub fn compress_f32(&self, values: &[f32]) -> (AndaTensor, CompressorReport) {
        let f16s: Vec<F16> = values.iter().map(|&v| saturate_to_f16(v)).collect();
        self.compress(&f16s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anda_fp::F16;

    fn f16s(vals: &[f32]) -> Vec<F16> {
        vals.iter().map(|&v| F16::from_f32(v)).collect()
    }

    #[test]
    fn serial_aligner_matches_direct_conversion() {
        let vals: Vec<f32> = (0..64)
            .map(|i| ((i * 31) % 97) as f32 * 0.37 - 15.0)
            .collect();
        for m in 1..=16u32 {
            let cfg = AndaConfig::hardware(m).unwrap();
            let bpc = BitPlaneCompressor::new(cfg);
            let serial = bpc.compress_group(&f16s(&vals));
            let direct = AndaTensor::from_f32(&vals, cfg);
            assert_eq!(&serial, &direct.groups()[0], "m={m}");
        }
    }

    #[test]
    fn fig12_walkthrough_three_cycles() {
        // Three elements with exponent differences 1, 0, 2 (cf. Fig. 12):
        // cycle 1 emits only element 1's MSB; cycle 2 emits elements 0,1;
        // cycle 3 emits all three.
        let vals = [1.0f32, 2.0, 0.5]; // exponents 15, 16, 14 → diffs 1,0,2
        let bpc = BitPlaneCompressor::new(AndaConfig::new(64, 3).unwrap());
        let g = bpc.compress_group(&f16s(&vals));
        // Mantissas are all 1.0…0 (sig = 0b10000000000).
        assert_eq!(g.planes()[0], 0b010); // only element 1 aligned
        assert_eq!(g.planes()[1], 0b001); // element 0's hidden bit arrives
        assert_eq!(g.planes()[2], 0b100); // element 2's hidden bit arrives
    }

    #[test]
    fn whole_tensor_compression_and_cycles() {
        let vals: Vec<f32> = (0..64 * 33).map(|i| (i as f32 * 0.01).cos()).collect();
        let bpc = BitPlaneCompressor::new(AndaConfig::hardware(5).unwrap());
        let (tensor, report) = bpc.compress_f32(&vals);
        assert_eq!(report.groups, 33);
        // 33 groups → 3 batches of 16 lanes; each batch M + overhead cycles.
        assert_eq!(report.cycles, 3 * (5 + PIPELINE_OVERHEAD));
        assert_eq!(tensor.len(), vals.len());
        // M=5 → ~6.08 bits/elem vs 16: ratio ≈ 2.6.
        assert!(report.compression_ratio() > 2.5);
    }

    #[test]
    fn compressed_tensor_equals_direct_tensor() {
        let vals: Vec<f32> = (0..500)
            .map(|i| ((i * 7) % 113) as f32 * 0.21 - 10.0)
            .collect();
        let cfg = AndaConfig::hardware(7).unwrap();
        let (via_bpc, _) = BitPlaneCompressor::new(cfg).compress_f32(&vals);
        let direct = AndaTensor::from_f32(&vals, cfg);
        assert_eq!(via_bpc, direct);
    }

    #[test]
    fn zero_group_compresses_to_zero_planes() {
        let bpc = BitPlaneCompressor::new(AndaConfig::hardware(4).unwrap());
        let g = bpc.compress_group(&f16s(&[0.0; 64]));
        assert!(g.planes().iter().all(|&p| p == 0));
        assert_eq!(g.shared_exp(), 1);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn empty_group_panics() {
        let bpc = BitPlaneCompressor::new(AndaConfig::hardware(4).unwrap());
        let _ = bpc.compress_group(&[]);
    }
}
