//! Error type for format construction and conversion.

use core::fmt;

/// Errors raised while constructing or converting Anda/BFP data.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// A group size outside the supported range was requested.
    InvalidGroupSize {
        /// The requested group size.
        requested: usize,
        /// Largest supported group size for this format.
        max: usize,
    },
    /// A mantissa length outside the supported range was requested.
    InvalidMantissaBits {
        /// The requested mantissa length.
        requested: u32,
        /// Inclusive supported range.
        range: (u32, u32),
    },
    /// The input contained a NaN or infinity, which block floating point
    /// cannot represent.
    NonFinite {
        /// Index of the offending element in the input slice.
        index: usize,
    },
    /// A buffer length did not match the expected element count.
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::InvalidGroupSize { requested, max } => write!(
                f,
                "invalid group size {requested}: must be between 1 and {max}"
            ),
            FormatError::InvalidMantissaBits { requested, range } => write!(
                f,
                "invalid mantissa length {requested}: must be between {} and {}",
                range.0, range.1
            ),
            FormatError::NonFinite { index } => write!(
                f,
                "input element {index} is NaN or infinite; block floating point \
                 requires finite values"
            ),
            FormatError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FormatError::InvalidMantissaBits {
            requested: 0,
            range: (1, 16),
        };
        let msg = e.to_string();
        assert!(msg.contains('0') && msg.contains("16"), "{msg}");
        assert!(FormatError::NonFinite { index: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&FormatError::NonFinite { index: 0 });
    }
}
