//! Byte-exact serialization of Anda tensors — the memory image a deployment
//! would persist or DMA.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  "ANDA"            4 bytes
//! version                  u8 (currently 1)
//! group_size               u8
//! mantissa_bits            u8
//! reserved                 u8 (zero)
//! element_count            u64
//! per group:
//!   shared_exp             u8
//!   lane_count             u8
//!   signs                  u64
//!   planes[mantissa_bits]  u64 each, MSB plane first
//! ```
//!
//! This mirrors the bit-plane buffer image: the variable mantissa length
//! changes only each group's record length, exactly as Fig. 10's variable
//! address depth.

use crate::anda::{AndaConfig, AndaTensor};
use crate::bitplane::BitPlaneGroup;
use crate::error::FormatError;

/// Serialization format version.
pub const FORMAT_VERSION: u8 = 1;

const MAGIC: &[u8; 4] = b"ANDA";

/// Serializes a tensor to its byte image.
pub fn to_bytes(tensor: &AndaTensor) -> Vec<u8> {
    let cfg = tensor.config();
    let mut out =
        Vec::with_capacity(16 + tensor.groups().len() * (10 + 8 * cfg.mantissa_bits() as usize));
    out.extend_from_slice(MAGIC);
    out.push(FORMAT_VERSION);
    out.push(cfg.group_size() as u8);
    out.push(cfg.mantissa_bits() as u8);
    out.push(0);
    out.extend_from_slice(&(tensor.len() as u64).to_le_bytes());
    for g in tensor.groups() {
        out.push(g.shared_exp() as u8);
        out.push(g.len() as u8);
        out.extend_from_slice(&g.signs().to_le_bytes());
        for plane in g.planes() {
            out.extend_from_slice(&plane.to_le_bytes());
        }
    }
    out
}

/// Deserializes a tensor from its byte image.
///
/// # Errors
///
/// Returns [`FormatError::LengthMismatch`] on truncated input and
/// [`FormatError::InvalidMantissaBits`]/[`FormatError::InvalidGroupSize`]
/// on corrupted headers.
pub fn from_bytes(bytes: &[u8]) -> Result<AndaTensor, FormatError> {
    let need = |expected: usize, actual: usize| -> Result<(), FormatError> {
        if actual < expected {
            Err(FormatError::LengthMismatch { expected, actual })
        } else {
            Ok(())
        }
    };
    need(16, bytes.len())?;
    if &bytes[0..4] != MAGIC || bytes[4] != FORMAT_VERSION {
        return Err(FormatError::LengthMismatch {
            expected: usize::from(FORMAT_VERSION),
            actual: usize::from(bytes[4]),
        });
    }
    let group_size = usize::from(bytes[5]);
    let mantissa_bits = u32::from(bytes[6]);
    let cfg = AndaConfig::new(group_size, mantissa_bits)?;
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;

    let n_groups = len.div_ceil(group_size);
    let record = 10 + 8 * mantissa_bits as usize;
    need(16 + n_groups * record, bytes.len())?;

    let mut groups = Vec::with_capacity(n_groups);
    let mut off = 16;
    for _ in 0..n_groups {
        let shared_exp = u16::from(bytes[off]);
        let lanes = usize::from(bytes[off + 1]);
        if lanes == 0 || lanes > group_size {
            return Err(FormatError::InvalidGroupSize {
                requested: lanes,
                max: group_size,
            });
        }
        let signs = u64::from_le_bytes(bytes[off + 2..off + 10].try_into().expect("8 bytes"));
        let mut planes = Vec::with_capacity(mantissa_bits as usize);
        for p in 0..mantissa_bits as usize {
            let s = off + 10 + 8 * p;
            planes.push(u64::from_le_bytes(
                bytes[s..s + 8].try_into().expect("8 bytes"),
            ));
        }
        groups.push(BitPlaneGroup::from_raw(lanes, signs, shared_exp, planes));
        off += record;
    }
    Ok(AndaTensor::from_parts(cfg, groups, len))
}

/// Serialized size in bytes for a tensor of `len` elements at the given
/// configuration (header + group records).
pub fn serialized_size(len: usize, cfg: &AndaConfig) -> usize {
    16 + len.div_ceil(cfg.group_size()) * (10 + 8 * cfg.mantissa_bits() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(m: u32, n: usize) -> AndaTensor {
        let vals: Vec<f32> = (0..n)
            .map(|i| ((i * 31) % 97) as f32 * 0.17 - 8.0)
            .collect();
        AndaTensor::from_f32(&vals, AndaConfig::hardware(m).unwrap())
    }

    #[test]
    fn round_trip_across_mantissas_and_lengths() {
        for m in [1u32, 5, 11, 16] {
            for n in [1usize, 63, 64, 65, 500] {
                let t = tensor(m, n);
                let bytes = to_bytes(&t);
                assert_eq!(bytes.len(), serialized_size(n, t.config()), "m={m} n={n}");
                let back = from_bytes(&bytes).unwrap();
                assert_eq!(back, t, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn header_fields() {
        let t = tensor(7, 128);
        let bytes = to_bytes(&t);
        assert_eq!(&bytes[0..4], b"ANDA");
        assert_eq!(bytes[4], FORMAT_VERSION);
        assert_eq!(bytes[5], 64);
        assert_eq!(bytes[6], 7);
    }

    #[test]
    fn truncated_input_rejected() {
        let t = tensor(6, 200);
        let bytes = to_bytes(&t);
        for cut in [0usize, 8, 17, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupted_magic_rejected() {
        let t = tensor(6, 64);
        let mut bytes = to_bytes(&t);
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupted_mantissa_header_rejected() {
        let t = tensor(6, 64);
        let mut bytes = to_bytes(&t);
        bytes[6] = 0; // invalid mantissa bits
        assert!(from_bytes(&bytes).is_err());
        bytes[6] = 99;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn size_beats_fp16_at_narrow_mantissas() {
        let n = 4096;
        let cfg = AndaConfig::hardware(5).unwrap();
        let size = serialized_size(n, &cfg);
        assert!(size * 8 < n * 16, "{} bytes vs fp16 {}", size, n * 2);
    }
}
