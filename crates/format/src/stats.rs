//! Quantization-error metrics shared by the experiments.

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Maximum absolute elementwise error.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_abs_err(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_err length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Signal-to-quantization-noise ratio in dB: `10·log10(‖a‖² / ‖a-b‖²)`.
///
/// Returns `f64::INFINITY` when the error is exactly zero.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sqnr_db(signal: &[f32], quantized: &[f32]) -> f64 {
    assert_eq!(signal.len(), quantized.len(), "sqnr length mismatch");
    let sig_pow: f64 = signal.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    let err_pow: f64 = signal
        .iter()
        .zip(quantized)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    if err_pow == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig_pow / err_pow).log10()
    }
}

/// Fraction of elements that became exactly zero in `b` while nonzero in `a`
/// — the "shifted to zero" effect of aggressive mantissa truncation (Fig. 4).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn zeroed_fraction(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "zeroed_fraction length mismatch");
    let nonzero = a.iter().filter(|&&x| x != 0.0).count();
    if nonzero == 0 {
        return 0.0;
    }
    let zeroed = a
        .iter()
        .zip(b)
        .filter(|(&x, &y)| x != 0.0 && y == 0.0)
        .count();
    zeroed as f64 / nonzero as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_slices_is_zero() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_known_value() {
        assert_eq!(mse(&[0.0, 0.0], &[1.0, -1.0]), 1.0);
    }

    #[test]
    fn max_abs_err_picks_largest() {
        assert_eq!(max_abs_err(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
    }

    #[test]
    fn sqnr_infinite_for_exact() {
        assert!(sqnr_db(&[1.0, 2.0], &[1.0, 2.0]).is_infinite());
    }

    #[test]
    fn sqnr_drops_with_noise() {
        let sig = [1.0f32; 100];
        let small: Vec<f32> = sig.iter().map(|x| x + 0.01).collect();
        let large: Vec<f32> = sig.iter().map(|x| x + 0.1).collect();
        assert!(sqnr_db(&sig, &small) > sqnr_db(&sig, &large));
        assert!((sqnr_db(&sig, &small) - 40.0).abs() < 0.5);
    }

    #[test]
    fn zeroed_fraction_counts_only_new_zeros() {
        let a = [1.0f32, 0.0, 2.0, 3.0];
        let b = [1.0f32, 0.0, 0.0, 3.0];
        assert!((zeroed_fraction(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(zeroed_fraction(&[], &[]), 0.0);
    }
}
