//! Classic block floating point (BFP) with arbitrary group size.
//!
//! This is the design space explored in §II of the paper (Figs. 4–7): FP16
//! tensors are split into groups of `group_size` consecutive elements, each
//! group shares its maximum exponent, and mantissas are right-shifted and
//! truncated to `mantissa_bits`. The hardware-oriented [`crate::anda`] format
//! restricts the group size to ≤ 64 lanes and adds the bit-plane layout; this
//! module has no such restriction and is what the accuracy sweeps use.

use anda_fp::{RoundingMode, F16};

use crate::align::{align_group, AlignedGroup};
use crate::error::FormatError;

/// Configuration of a BFP conversion: group size, mantissa length, rounding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfpConfig {
    group_size: usize,
    mantissa_bits: u32,
    rounding: RoundingMode,
}

impl BfpConfig {
    /// Creates a configuration with truncation rounding (the paper's mode).
    ///
    /// # Errors
    ///
    /// Returns an error for a zero group size or a mantissa length outside
    /// 1..=16.
    pub fn new(group_size: usize, mantissa_bits: u32) -> Result<Self, FormatError> {
        Self::with_rounding(group_size, mantissa_bits, RoundingMode::Truncate)
    }

    /// Creates a configuration with an explicit rounding mode.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BfpConfig::new`].
    pub fn with_rounding(
        group_size: usize,
        mantissa_bits: u32,
        rounding: RoundingMode,
    ) -> Result<Self, FormatError> {
        if group_size == 0 {
            return Err(FormatError::InvalidGroupSize {
                requested: 0,
                max: usize::MAX,
            });
        }
        if !(1..=16).contains(&mantissa_bits) {
            return Err(FormatError::InvalidMantissaBits {
                requested: mantissa_bits,
                range: (1, 16),
            });
        }
        Ok(BfpConfig {
            group_size,
            mantissa_bits,
            rounding,
        })
    }

    /// Elements per shared-exponent group.
    #[inline]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Mantissa length in bits.
    #[inline]
    pub fn mantissa_bits(&self) -> u32 {
        self.mantissa_bits
    }

    /// Rounding mode applied during alignment.
    #[inline]
    pub fn rounding(&self) -> RoundingMode {
        self.rounding
    }
}

/// One shared-exponent group of BFP elements.
pub type BfpGroup = AlignedGroup;

/// A tensor stored in BFP format: consecutive groups over a flat buffer.
///
/// The final group may be shorter than `group_size` when the element count is
/// not a multiple of the group size.
#[derive(Clone, Debug, PartialEq)]
pub struct BfpTensor {
    config: BfpConfig,
    groups: Vec<BfpGroup>,
    len: usize,
}

impl BfpTensor {
    /// Quantizes a slice of FP16 values.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NonFinite`] (with the *global* element index)
    /// if the input contains NaN or infinity.
    pub fn from_f16(values: &[F16], config: BfpConfig) -> Result<Self, FormatError> {
        let mut groups = Vec::with_capacity(values.len().div_ceil(config.group_size));
        for (gi, chunk) in values.chunks(config.group_size).enumerate() {
            let group =
                align_group(chunk, config.mantissa_bits, config.rounding).map_err(|e| match e {
                    FormatError::NonFinite { index } => FormatError::NonFinite {
                        index: gi * config.group_size + index,
                    },
                    other => other,
                })?;
            groups.push(group);
        }
        Ok(BfpTensor {
            config,
            groups,
            len: values.len(),
        })
    }

    /// Quantizes `f32` values by first rounding them to FP16 (the W4A16
    /// activation path: FP32 accumulator output → FP16 → BFP).
    ///
    /// Values outside the FP16 range are clamped to ±65504 so that activation
    /// spikes degrade gracefully instead of erroring, mirroring saturating
    /// hardware casts.
    pub fn from_f32_saturating(values: &[f32], config: BfpConfig) -> Self {
        let f16s: Vec<F16> = values.iter().map(|&v| saturate_to_f16(v)).collect();
        Self::from_f16(&f16s, config).expect("saturated values are always finite")
    }

    /// The conversion configuration.
    pub fn config(&self) -> &BfpConfig {
        &self.config
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shared-exponent groups.
    pub fn groups(&self) -> &[BfpGroup] {
        &self.groups
    }

    /// Dequantizes the whole tensor back to `f32`.
    pub fn to_f32(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.write_f32(&mut out);
        out
    }

    /// Dequantizes into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn write_f32(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "write_f32 length mismatch");
        let mut offset = 0usize;
        for g in &self.groups {
            let ulp = g.ulp();
            for (e, slot) in g.elements.iter().zip(&mut out[offset..]) {
                *slot = e.dequantize(ulp);
            }
            offset += g.elements.len();
        }
    }

    /// Total storage footprint in bits: per group, one sign bit per element,
    /// a 5-bit shared exponent, and M bits per element mantissa.
    pub fn storage_bits(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.elements.len() * (1 + self.config.mantissa_bits as usize) + 5)
            .sum()
    }

    /// Mean bits per element (FP16 would be 16.0).
    pub fn bits_per_element(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.storage_bits() as f64 / self.len as f64
        }
    }
}

/// Rounds an `f32` to FP16, clamping overflow to ±65504 (finite).
///
/// Re-exported from `anda-fp` so the SIMD batch kernels there and the
/// format/KV layers here agree on one saturation definition.
pub use anda_fp::f16::saturate_to_f16;

/// Convenience: quantize → dequantize an `f32` slice through BFP, returning
/// the values a BFP-converted activation tensor would carry.
pub fn fake_quantize_f32(values: &[f32], config: BfpConfig) -> Vec<f32> {
    BfpTensor::from_f32_saturating(values, config).to_f32()
}

/// [`fake_quantize_f32`] writing into a caller-provided buffer, for hot
/// paths (per-layer activation codecs) that must not reallocate.
///
/// This streams group by group with **no heap allocation**: the shared
/// exponent comes from a first pass over the group, each element is then
/// aligned and dequantized directly into `out`. The saturating FP16 cast
/// runs twice per element, trading a little redundant bit math for zero
/// allocations; results are bit-identical to the [`BfpTensor`] path.
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn fake_quantize_f32_into(values: &[f32], config: BfpConfig, out: &mut [f32]) {
    assert_eq!(
        out.len(),
        values.len(),
        "fake_quantize_f32_into length mismatch"
    );
    let m = config.mantissa_bits;
    for (chunk, out_chunk) in values
        .chunks(config.group_size)
        .zip(out.chunks_mut(config.group_size))
    {
        let shared_exp = chunk
            .iter()
            .map(|&v| saturate_to_f16(v).significand().biased_exp)
            .max()
            .unwrap_or(1);
        let ulp = crate::align::exp2f(i32::from(shared_exp) - 14 - m as i32);
        for (&v, slot) in chunk.iter().zip(out_chunk) {
            let sig = saturate_to_f16(v).significand();
            let e = crate::align::align_element(sig, shared_exp, m, config.rounding);
            *slot = e.dequantize(ulp);
        }
    }
}

/// Re-export for group element access.
pub use crate::align::SignMag as BfpElement;

#[cfg(test)]
mod tests {
    use super::*;

    fn f16s(vals: &[f32]) -> Vec<F16> {
        vals.iter().map(|&v| F16::from_f32(v)).collect()
    }

    #[test]
    fn streaming_fake_quantize_is_bit_identical_to_tensor_path() {
        // Mix of zeros, signs, subnormals, spread exponents, saturation.
        let mut vals: Vec<f32> = (0..200)
            .map(|i| ((i as f32) - 100.0) * ((i as f32 * 0.7).sin() * 37.5))
            .collect();
        vals.extend_from_slice(&[0.0, -0.0, 1e-7, -1e-7, 7e4, -7e4, 65504.0]);
        for (gs, m) in [(64usize, 4u32), (64, 8), (3, 1), (7, 16), (128, 11)] {
            let cfg = BfpConfig::new(gs, m).unwrap();
            let via_tensor = fake_quantize_f32(&vals, cfg);
            let mut streamed = vec![0.0f32; vals.len()];
            fake_quantize_f32_into(&vals, cfg, &mut streamed);
            for (i, (&a, &b)) in via_tensor.iter().zip(&streamed).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "gs={gs} m={m} i={i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn config_validation() {
        assert!(BfpConfig::new(0, 8).is_err());
        assert!(BfpConfig::new(64, 0).is_err());
        assert!(BfpConfig::new(64, 17).is_err());
        let c = BfpConfig::new(64, 8).unwrap();
        assert_eq!(c.group_size(), 64);
        assert_eq!(c.mantissa_bits(), 8);
    }

    #[test]
    fn grouping_splits_with_remainder() {
        let vals = f16s(&[1.0; 10]);
        let t = BfpTensor::from_f16(&vals, BfpConfig::new(4, 8).unwrap()).unwrap();
        assert_eq!(t.groups().len(), 3);
        assert_eq!(t.groups()[2].elements.len(), 2);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn paper_fig4_case1_gs3_m6() {
        // Fig. 4 case 1: GS=3, M=6. Values with exponents 15,16,12: the
        // shared exponent is 16 and the e=12 element is shifted by 4.
        let vals = [
            F16::from_bits((1 << 15) | (15 << 10) | 0b1011010110), // -1.x · 2^0
            F16::from_bits((16 << 10) | 0b1000110001),             // +1.x · 2^1
            F16::from_bits((12 << 10) | 0b1000110011),             // +1.x · 2^-3
        ];
        let t = BfpTensor::from_f16(&vals, BfpConfig::new(3, 6).unwrap()).unwrap();
        let g = &t.groups()[0];
        assert_eq!(g.shared_exp, 16);
        // Element 0: sig=0b11011010110 (11 bits), shift 1 → top 6 of
        // 0b011011010110… = sig·2^6 >> 11+1: 0b110110101 10 >>… compute:
        let sig0: u64 = 0b11011010110;
        assert_eq!(u64::from(g.elements[0].magnitude), (sig0 << 6) >> 12);
        assert!(g.elements[0].negative);
        // Element 2: shift 4.
        let sig2: u64 = 0b11000110011;
        assert_eq!(u64::from(g.elements[2].magnitude), (sig2 << 6) >> 15);
    }

    #[test]
    fn round_trip_error_bounded_by_group_ulp() {
        let vals: Vec<f32> = (0..256)
            .map(|i| ((i * 37) % 101) as f32 * 0.11 - 5.0)
            .collect();
        for (gs, m) in [(8, 4), (32, 7), (64, 10), (128, 13)] {
            let cfg = BfpConfig::new(gs, m).unwrap();
            let t = BfpTensor::from_f32_saturating(&vals, cfg);
            let deq = t.to_f32();
            for (gi, g) in t.groups().iter().enumerate() {
                let bound = g.ulp();
                for i in 0..g.elements.len() {
                    let idx = gi * gs + i;
                    let orig = F16::from_f32(vals[idx]).to_f32();
                    assert!((deq[idx] - orig).abs() <= bound, "gs={gs} m={m} idx={idx}");
                }
            }
        }
    }

    #[test]
    fn larger_mantissa_never_increases_error() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 30.0) * 0.317).collect();
        let mut prev_err = f64::INFINITY;
        for m in [2u32, 4, 6, 8, 10, 12, 14, 16] {
            let cfg = BfpConfig::new(64, m).unwrap();
            let deq = fake_quantize_f32(&vals, cfg);
            let err: f64 = vals
                .iter()
                .zip(&deq)
                .map(|(&a, &b)| f64::from((F16::from_f32(a).to_f32() - b).abs()))
                .sum();
            assert!(err <= prev_err + 1e-9, "m={m}: {err} > {prev_err}");
            prev_err = err;
        }
    }

    #[test]
    fn smaller_groups_never_increase_error() {
        let vals: Vec<f32> = (0..128)
            .map(|i| if i % 17 == 0 { 50.0 } else { 0.01 * i as f32 })
            .collect();
        let mut prev_err = f64::INFINITY;
        for gs in [128usize, 64, 32, 16, 8, 1] {
            let cfg = BfpConfig::new(gs, 6).unwrap();
            let deq = fake_quantize_f32(&vals, cfg);
            let err: f64 = vals
                .iter()
                .zip(&deq)
                .map(|(&a, &b)| f64::from((F16::from_f32(a).to_f32() - b).abs()))
                .sum();
            assert!(err <= prev_err + 1e-9, "gs={gs}: {err} > {prev_err}");
            prev_err = err;
        }
    }

    #[test]
    fn outlier_forces_small_values_to_zero() {
        // One huge element with a tight mantissa wipes out tiny peers —
        // the failure mode motivating variable-length mantissas (§II-B).
        let vals = [1000.0f32, 0.001, 0.002, -0.0015];
        let cfg = BfpConfig::new(4, 4).unwrap();
        let deq = fake_quantize_f32(&vals, cfg);
        assert!((deq[0] - 1000.0).abs() < 64.0);
        assert_eq!(&deq[1..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn storage_accounting() {
        let vals = f16s(&[1.0; 64]);
        let t = BfpTensor::from_f16(&vals, BfpConfig::new(64, 7).unwrap()).unwrap();
        assert_eq!(t.storage_bits(), 64 * 8 + 5);
        assert!((t.bits_per_element() - (8.0 + 5.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn saturation_clamps_overflow_and_nan() {
        assert_eq!(saturate_to_f16(1e9).to_f32(), 65504.0);
        assert_eq!(saturate_to_f16(-1e9).to_f32(), -65504.0);
        assert_eq!(saturate_to_f16(f32::NAN).to_f32(), 0.0);
        assert_eq!(saturate_to_f16(1.5).to_f32(), 1.5);
    }

    #[test]
    fn non_finite_reports_global_index() {
        let mut vals = f16s(&[1.0; 10]);
        vals[7] = F16::INFINITY;
        let err = BfpTensor::from_f16(&vals, BfpConfig::new(4, 8).unwrap()).unwrap_err();
        assert_eq!(err, FormatError::NonFinite { index: 7 });
    }

    #[test]
    fn empty_tensor() {
        let t = BfpTensor::from_f16(&[], BfpConfig::new(4, 8).unwrap()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.to_f32(), Vec::<f32>::new());
        assert_eq!(t.bits_per_element(), 0.0);
    }
}
