//! Group dot-product kernels: reference sign-magnitude integer dot and the
//! bit-serial schedule of the Anda processing element (paper Fig. 11).
//!
//! The APU computes the dot product of one Anda group (≤ 64 activations)
//! with INT weights in three steps:
//!
//! 1. **Per bit-plane reduction** — for each mantissa plane (MSB first), an
//!    adder tree sums the sign-applied weights of the lanes whose plane bit
//!    is set ("first-element-then-bit-plane" reduction: one partial sum per
//!    plane instead of one running value per element).
//! 2. **Shift-accumulate** — plane partial sums are accumulated with a
//!    left-shift per plane, producing the exact integer dot product.
//! 3. **Rescale** — the integer result is scaled by `2^(E - 14 - M)` and the
//!    weight group's scale factor, then accumulated in FP32 across groups.
//!
//! [`dot_group_bit_serial`] is proven equal to [`dot_group_reference`] for
//! every input (see the property tests), which is the correctness argument
//! for the hardware schedule.

use crate::align::{exp2f, AlignedGroup};
use crate::bitplane::BitPlaneGroup;

/// Reference integer dot product of an aligned group with INT weights:
/// `Σ (-1)^{s_i} · m_i · w_i`.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the group's element count.
pub fn dot_group_reference(group: &AlignedGroup, weights: &[i8]) -> i64 {
    assert_eq!(
        group.elements.len(),
        weights.len(),
        "group/weight length mismatch"
    );
    group
        .elements
        .iter()
        .zip(weights)
        .map(|(e, &w)| i64::from(e.signed()) * i64::from(w))
        .sum()
}

/// Execution trace of one bit-serial group dot product.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSerialTrace {
    /// Partial sum produced by the adder tree for each plane (MSB first).
    pub plane_partials: Vec<i64>,
    /// Total APU cycles: one per mantissa plane plus one setup cycle for
    /// latching signs and the shared exponent.
    pub cycles: u64,
}

/// Bit-serial dot product over bit-plane storage, returning the integer
/// result and the per-plane execution trace.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the group's lane count.
pub fn dot_group_bit_serial(group: &BitPlaneGroup, weights: &[i8]) -> (i64, BitSerialTrace) {
    assert_eq!(group.len(), weights.len(), "group/weight length mismatch");
    // Cycle 0 (setup): latch signs, apply them to the weights once.
    let signs = group.signs();
    let signed_weights: Vec<i64> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let w = i64::from(w);
            if (signs >> i) & 1 == 1 {
                -w
            } else {
                w
            }
        })
        .collect();

    let m = group.mantissa_bits();
    let mut plane_partials = Vec::with_capacity(m as usize);
    let mut acc = 0i64;
    for plane in group.planes() {
        // Adder tree: sum the signed weights of set lanes.
        let mut partial = 0i64;
        let mut bits = *plane;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            partial += signed_weights[lane];
            bits &= bits - 1;
        }
        plane_partials.push(partial);
        // Shift-accumulate: planes arrive MSB first.
        acc = (acc << 1) + partial;
    }
    (
        acc,
        BitSerialTrace {
            plane_partials,
            cycles: u64::from(m) + 1,
        },
    )
}

/// Full APU result for one group: integer dot product rescaled to `f32`.
///
/// `weight_scale` is the INT-weight group's dequantization scale.
pub fn dot_group_f32(group: &BitPlaneGroup, weights: &[i8], weight_scale: f32) -> f32 {
    let (int_dot, _) = dot_group_bit_serial(group, weights);
    rescale_int_dot(
        int_dot,
        group.shared_exp(),
        group.mantissa_bits(),
        weight_scale,
    )
}

/// Applies the Anda output scaling: `dot · 2^(E - 14 - M) · weight_scale`.
#[inline]
pub fn rescale_int_dot(
    int_dot: i64,
    shared_exp: u16,
    mantissa_bits: u32,
    weight_scale: f32,
) -> f32 {
    int_dot as f32 * exp2f(i32::from(shared_exp) - 14 - mantissa_bits as i32) * weight_scale
}

/// FP16-activation reference dot product (the FP-FP baseline computation):
/// `Σ a_i · w_i · weight_scale`, accumulated in `f32`.
pub fn dot_f16_int_reference(acts: &[anda_fp::F16], weights: &[i8], weight_scale: f32) -> f32 {
    assert_eq!(acts.len(), weights.len(), "length mismatch");
    let mut acc = 0.0f32;
    for (a, &w) in acts.iter().zip(weights) {
        acc += a.to_f32() * f32::from(w);
    }
    acc * weight_scale
}

/// Hardware-cost accounting of the APU's "first-element-then-bit-plane"
/// reduction versus a naive per-element shift-accumulate (paper §IV-B):
/// the plane-first order needs a *single* shared accumulator instead of one
/// wide register per lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReductionCosts {
    /// Additions performed by the plane-first schedule.
    pub plane_adds: u64,
    /// Accumulator storage bits of the plane-first schedule.
    pub plane_register_bits: u64,
    /// Additions performed by the naive per-element schedule.
    pub naive_adds: u64,
    /// Accumulator storage bits of the naive schedule.
    pub naive_register_bits: u64,
}

impl ReductionCosts {
    /// Register-storage saving factor of the plane-first schedule.
    pub fn register_saving(&self) -> f64 {
        self.naive_register_bits as f64 / self.plane_register_bits as f64
    }
}

/// Computes both schedules' costs for an `lanes`-element group dot at
/// mantissa length `m` with `weight_bits`-wide weights.
pub fn reduction_costs(m: u32, lanes: u32, weight_bits: u32) -> ReductionCosts {
    let m = u64::from(m);
    let lanes = u64::from(lanes);
    let wb = u64::from(weight_bits);
    // Plane partial sums need weight_bits + log2(lanes) bits; the shared
    // shift-accumulator needs that plus m.
    let partial_bits = wb + 64 - (lanes - 1).leading_zeros() as u64;
    ReductionCosts {
        // Per plane: adder tree (lanes-1) + one shift-add into the shared
        // accumulator.
        plane_adds: m * (lanes - 1) + m,
        plane_register_bits: partial_bits + (partial_bits + m),
        // Naive: every element keeps a private shift-accumulator updated
        // every cycle, plus a final cross-element adder tree.
        naive_adds: m * lanes + (lanes - 1),
        naive_register_bits: lanes * (wb + m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::align_group;
    use anda_fp::{RoundingMode, F16};

    fn group_of(vals: &[f32], m: u32) -> (AlignedGroup, BitPlaneGroup) {
        let f16s: Vec<F16> = vals.iter().map(|&v| F16::from_f32(v)).collect();
        let g = align_group(&f16s, m, RoundingMode::Truncate).unwrap();
        let bp = BitPlaneGroup::from_aligned(&g);
        (g, bp)
    }

    #[test]
    fn bit_serial_equals_reference_simple() {
        let (g, bp) = group_of(&[1.0, -2.0, 0.5, 4.0], 8);
        let weights = [3i8, -1, 7, 2];
        let reference = dot_group_reference(&g, &weights);
        let (serial, trace) = dot_group_bit_serial(&bp, &weights);
        assert_eq!(serial, reference);
        assert_eq!(trace.cycles, 9);
        assert_eq!(trace.plane_partials.len(), 8);
    }

    #[test]
    fn bit_serial_equals_reference_across_mantissa_lengths() {
        let vals: Vec<f32> = (0..64)
            .map(|i| ((i * 29) % 63) as f32 * 0.13 - 4.0)
            .collect();
        let weights: Vec<i8> = (0..64).map(|i| ((i * 11) % 15) as i8 - 7).collect();
        for m in 1..=16u32 {
            let (g, bp) = group_of(&vals, m);
            assert_eq!(
                dot_group_bit_serial(&bp, &weights).0,
                dot_group_reference(&g, &weights),
                "m={m}"
            );
        }
    }

    #[test]
    fn plane_partials_reconstruct_dot() {
        let (_, bp) = group_of(&[2.5, -1.25, 8.0], 6);
        let weights = [5i8, 3, -2];
        let (dot, trace) = dot_group_bit_serial(&bp, &weights);
        let m = trace.plane_partials.len() as u32;
        let manual: i64 = trace
            .plane_partials
            .iter()
            .enumerate()
            .map(|(b, &p)| p << (m - 1 - b as u32))
            .sum();
        assert_eq!(manual, dot);
    }

    #[test]
    fn rescaled_dot_approaches_fp_reference_with_wide_mantissa() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 30.0) * 0.043).collect();
        let f16s: Vec<F16> = vals.iter().map(|&v| F16::from_f32(v)).collect();
        let weights: Vec<i8> = (0..64).map(|i| ((i * 7) % 15) as i8 - 7).collect();
        let scale = 0.02f32;

        let reference = dot_f16_int_reference(&f16s, &weights, scale);
        let (_, bp) = group_of(&vals, 16);
        let anda = dot_group_f32(&bp, &weights, scale);
        assert!(
            (anda - reference).abs() <= reference.abs() * 1e-4 + 1e-4,
            "{anda} vs {reference}"
        );
    }

    #[test]
    fn narrower_mantissa_gives_larger_dot_error() {
        let vals: Vec<f32> = (0..64)
            .map(|i| {
                if i == 0 {
                    30.0
                } else {
                    ((i * 29) % 63) as f32 * 0.01
                }
            })
            .collect();
        let f16s: Vec<F16> = vals.iter().map(|&v| F16::from_f32(v)).collect();
        let weights: Vec<i8> = (0..64).map(|i| ((i * 5) % 15) as i8 - 7).collect();
        let reference = dot_f16_int_reference(&f16s, &weights, 1.0);

        // Individual dot errors are not strictly monotone in M (signed terms
        // can cancel), but the wide-mantissa error must be far below the
        // aggressive-truncation error.
        let err_at = |m: u32| {
            let (_, bp) = group_of(&vals, m);
            (dot_group_f32(&bp, &weights, 1.0) - reference).abs()
        };
        assert!(
            err_at(16) < 0.05 * err_at(2).max(1.0),
            "{} vs {}",
            err_at(16),
            err_at(2)
        );
        assert!(err_at(11) <= err_at(2));
    }

    #[test]
    fn zero_weights_give_zero_dot() {
        let (_, bp) = group_of(&[1.0, 2.0, 3.0], 8);
        let (dot, _) = dot_group_bit_serial(&bp, &[0, 0, 0]);
        assert_eq!(dot, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weight_length_mismatch_panics() {
        let (_, bp) = group_of(&[1.0, 2.0], 8);
        let _ = dot_group_bit_serial(&bp, &[1]);
    }

    #[test]
    fn plane_first_reduction_saves_registers() {
        // Paper §IV-B: one shared accumulator instead of per-element
        // intermediate results.
        let c = reduction_costs(8, 64, 4);
        assert!(c.register_saving() > 20.0, "saving {}", c.register_saving());
        // Add counts are comparable (same asymptotic work).
        let ratio = c.plane_adds as f64 / c.naive_adds as f64;
        assert!(ratio > 0.8 && ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn reduction_costs_scale_with_mantissa() {
        let narrow = reduction_costs(4, 64, 4);
        let wide = reduction_costs(12, 64, 4);
        assert!(wide.plane_adds > 2 * narrow.plane_adds);
        assert!(wide.naive_register_bits > narrow.naive_register_bits);
    }

    #[test]
    fn int4_weight_extremes() {
        let (g, bp) = group_of(&[65504.0, -65504.0], 16);
        let weights = [-8i8, 7];
        assert_eq!(
            dot_group_bit_serial(&bp, &weights).0,
            dot_group_reference(&g, &weights)
        );
    }
}
