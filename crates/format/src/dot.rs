//! Group dot-product kernels: reference sign-magnitude integer dot and the
//! bit-serial schedule of the Anda processing element (paper Fig. 11).
//!
//! The APU computes the dot product of one Anda group (≤ 64 activations)
//! with INT weights in three steps:
//!
//! 1. **Per bit-plane reduction** — for each mantissa plane (MSB first), an
//!    adder tree sums the sign-applied weights of the lanes whose plane bit
//!    is set ("first-element-then-bit-plane" reduction: one partial sum per
//!    plane instead of one running value per element).
//! 2. **Shift-accumulate** — plane partial sums are accumulated with a
//!    left-shift per plane, producing the exact integer dot product.
//! 3. **Rescale** — the integer result is scaled by `2^(E - 14 - M)` and the
//!    weight group's scale factor, then accumulated in FP32 across groups.
//!
//! [`dot_group_bit_serial`] is proven equal to [`dot_group_reference`] for
//! every input (see the property tests), which is the correctness argument
//! for the hardware schedule.

use crate::align::{exp2f, AlignedGroup};
use crate::bitplane::BitPlaneGroup;

/// Reference integer dot product of an aligned group with INT weights:
/// `Σ (-1)^{s_i} · m_i · w_i`.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the group's element count.
pub fn dot_group_reference(group: &AlignedGroup, weights: &[i8]) -> i64 {
    assert_eq!(
        group.elements.len(),
        weights.len(),
        "group/weight length mismatch"
    );
    group
        .elements
        .iter()
        .zip(weights)
        .map(|(e, &w)| i64::from(e.signed()) * i64::from(w))
        .sum()
}

/// Execution trace of one bit-serial group dot product.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSerialTrace {
    /// Partial sum produced by the adder tree for each plane (MSB first).
    pub plane_partials: Vec<i64>,
    /// Total APU cycles: one per mantissa plane plus one setup cycle for
    /// latching signs and the shared exponent.
    pub cycles: u64,
}

/// Bit-serial dot product over bit-plane storage, returning the integer
/// result and the per-plane execution trace.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the group's lane count.
pub fn dot_group_bit_serial(group: &BitPlaneGroup, weights: &[i8]) -> (i64, BitSerialTrace) {
    assert_eq!(group.len(), weights.len(), "group/weight length mismatch");
    // Cycle 0 (setup): latch signs, apply them to the weights once.
    let signs = group.signs();
    let signed_weights: Vec<i64> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let w = i64::from(w);
            if (signs >> i) & 1 == 1 {
                -w
            } else {
                w
            }
        })
        .collect();

    let m = group.mantissa_bits();
    let mut plane_partials = Vec::with_capacity(m as usize);
    let mut acc = 0i64;
    for plane in group.planes() {
        // Adder tree: sum the signed weights of set lanes.
        let mut partial = 0i64;
        let mut bits = *plane;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            partial += signed_weights[lane];
            bits &= bits - 1;
        }
        plane_partials.push(partial);
        // Shift-accumulate: planes arrive MSB first.
        acc = (acc << 1) + partial;
    }
    (
        acc,
        BitSerialTrace {
            plane_partials,
            cycles: u64::from(m) + 1,
        },
    )
}

/// Allocation-free integer group dot over flat bit-plane storage (sign
/// word + MSB-first planes, as written by [`crate::rowcodec`]), on the
/// active SIMD dispatch leg. Equal to [`dot_group_bit_serial`]'s integer
/// result for the same group — the dot is exact integer arithmetic, so
/// every summation order (bit-serial, scalar, vector) produces the same
/// value — but without building the trace or allocating.
///
/// Lanes at or beyond `weights.len()` must have zero plane and sign bits
/// (the row codec guarantees this for trailing lanes).
///
/// # Panics
///
/// Panics if `weights` holds more than [`crate::bitplane::LANES`] lanes.
pub fn dot_group_int_flat(sign_word: u64, planes: &[u64], weights: &[i8]) -> i64 {
    dot_group_int_flat_with_leg(anda_fp::simd::active_leg(), sign_word, planes, weights)
}

/// [`dot_group_int_flat`] on an explicit leg (oracle tests and benches).
///
/// # Panics
///
/// As [`dot_group_int_flat`], or if the leg is unavailable on this host.
pub fn dot_group_int_flat_with_leg(
    leg: anda_fp::simd::SimdLeg,
    sign_word: u64,
    planes: &[u64],
    weights: &[i8],
) -> i64 {
    use anda_fp::simd::SimdLeg;
    match leg {
        SimdLeg::Scalar => dot_group_int_flat_scalar(sign_word, planes, weights),
        #[cfg(target_arch = "x86_64")]
        SimdLeg::Avx2 => unsafe { dot_group_int_flat_avx2(sign_word, planes, weights) },
        #[cfg(target_arch = "aarch64")]
        SimdLeg::Neon => unsafe { dot_group_int_flat_neon(sign_word, planes, weights) },
        #[allow(unreachable_patterns)]
        other => panic!("SIMD leg {} unavailable on this host", other.name()),
    }
}

/// The scalar oracle of [`dot_group_int_flat`]: the bit-serial schedule
/// with signs applied on the fly instead of staged into a buffer.
pub fn dot_group_int_flat_scalar(sign_word: u64, planes: &[u64], weights: &[i8]) -> i64 {
    assert!(
        weights.len() <= crate::bitplane::LANES,
        "a group holds at most 64 lanes"
    );
    let mut acc = 0i64;
    for plane in planes {
        let mut partial = 0i64;
        let mut bits = *plane;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            let w = i64::from(weights[lane]);
            partial += if (sign_word >> lane) & 1 == 1 { -w } else { w };
            bits &= bits - 1;
        }
        acc = (acc << 1) + partial;
    }
    acc
}

/// AVX2 leg of [`dot_group_int_flat`]: signs are applied to the weights
/// once into an i16 staging array; each plane then expands 16 plane bits
/// at a time into full-lane masks (compare-against-bit-mask), ANDs them
/// with the signed weights and pairwise-sums with `_mm256_madd_epi16` —
/// the adder tree of the paper's APU, four chunks wide.
///
/// # Safety
///
/// Requires AVX2 (callers go through the dispatch layer).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_group_int_flat_avx2(sign_word: u64, planes: &[u64], weights: &[i8]) -> i64 {
    use core::arch::x86_64::*;
    assert!(
        weights.len() <= crate::bitplane::LANES,
        "a group holds at most 64 lanes"
    );
    // Lanes beyond the group tail keep weight 0, so stray reads are inert.
    let mut sw = [0i16; crate::bitplane::LANES];
    for (i, &w) in weights.iter().enumerate() {
        let w = i16::from(w);
        sw[i] = if (sign_word >> i) & 1 == 1 { -w } else { w };
    }
    let lane_bits = _mm256_setr_epi16(
        1,
        1 << 1,
        1 << 2,
        1 << 3,
        1 << 4,
        1 << 5,
        1 << 6,
        1 << 7,
        1 << 8,
        1 << 9,
        1 << 10,
        1 << 11,
        1 << 12,
        1 << 13,
        1 << 14,
        i16::MIN, // 1 << 15 as i16
    );
    let mut acc = 0i64;
    for plane in planes {
        let mut sums = _mm256_setzero_si256();
        for chunk in 0..4 {
            let bits16 = _mm256_set1_epi16(((plane >> (chunk * 16)) & 0xFFFF) as i16);
            let hit = _mm256_cmpeq_epi16(_mm256_and_si256(bits16, lane_bits), lane_bits);
            let w = _mm256_loadu_si256(sw.as_ptr().add(chunk * 16).cast());
            let masked = _mm256_and_si256(hit, w);
            // Pairwise i16·1 + i16·1 → i32 partial sums (no i16 overflow).
            sums = _mm256_add_epi32(sums, _mm256_madd_epi16(masked, _mm256_set1_epi16(1)));
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), sums);
        let partial: i64 = lanes.iter().map(|&x| i64::from(x)).sum();
        acc = (acc << 1) + partial;
    }
    acc
}

/// NEON leg of [`dot_group_int_flat`]: the 8-lane i16 mirror of the AVX2
/// leg using `vaddlvq_s16` for the per-chunk adder tree.
///
/// # Safety
///
/// Requires NEON.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_group_int_flat_neon(sign_word: u64, planes: &[u64], weights: &[i8]) -> i64 {
    use core::arch::aarch64::*;
    assert!(
        weights.len() <= crate::bitplane::LANES,
        "a group holds at most 64 lanes"
    );
    let mut sw = [0i16; crate::bitplane::LANES];
    for (i, &w) in weights.iter().enumerate() {
        let w = i16::from(w);
        sw[i] = if (sign_word >> i) & 1 == 1 { -w } else { w };
    }
    let lane_bits = {
        let bits: [u16; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
        vld1q_u16(bits.as_ptr())
    };
    let mut acc = 0i64;
    for plane in planes {
        let mut partial = 0i64;
        for chunk in 0..8 {
            let bits8 = vdupq_n_u16(((plane >> (chunk * 8)) & 0xFF) as u16);
            let hit = vceqq_u16(vandq_u16(bits8, lane_bits), lane_bits);
            let w = vld1q_s16(sw.as_ptr().add(chunk * 8));
            let masked = vandq_s16(w, vreinterpretq_s16_u16(hit));
            partial += i64::from(vaddlvq_s16(masked));
        }
        acc = (acc << 1) + partial;
    }
    acc
}

/// Full APU result for one group: integer dot product rescaled to `f32`.
///
/// `weight_scale` is the INT-weight group's dequantization scale.
pub fn dot_group_f32(group: &BitPlaneGroup, weights: &[i8], weight_scale: f32) -> f32 {
    let (int_dot, _) = dot_group_bit_serial(group, weights);
    rescale_int_dot(
        int_dot,
        group.shared_exp(),
        group.mantissa_bits(),
        weight_scale,
    )
}

/// Applies the Anda output scaling: `dot · 2^(E - 14 - M) · weight_scale`.
#[inline]
pub fn rescale_int_dot(
    int_dot: i64,
    shared_exp: u16,
    mantissa_bits: u32,
    weight_scale: f32,
) -> f32 {
    int_dot as f32 * exp2f(i32::from(shared_exp) - 14 - mantissa_bits as i32) * weight_scale
}

/// FP16-activation reference dot product (the FP-FP baseline computation):
/// `Σ a_i · w_i · weight_scale`, accumulated in `f32`.
pub fn dot_f16_int_reference(acts: &[anda_fp::F16], weights: &[i8], weight_scale: f32) -> f32 {
    assert_eq!(acts.len(), weights.len(), "length mismatch");
    let mut acc = 0.0f32;
    for (a, &w) in acts.iter().zip(weights) {
        acc += a.to_f32() * f32::from(w);
    }
    acc * weight_scale
}

/// Hardware-cost accounting of the APU's "first-element-then-bit-plane"
/// reduction versus a naive per-element shift-accumulate (paper §IV-B):
/// the plane-first order needs a *single* shared accumulator instead of one
/// wide register per lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReductionCosts {
    /// Additions performed by the plane-first schedule.
    pub plane_adds: u64,
    /// Accumulator storage bits of the plane-first schedule.
    pub plane_register_bits: u64,
    /// Additions performed by the naive per-element schedule.
    pub naive_adds: u64,
    /// Accumulator storage bits of the naive schedule.
    pub naive_register_bits: u64,
}

impl ReductionCosts {
    /// Register-storage saving factor of the plane-first schedule.
    pub fn register_saving(&self) -> f64 {
        self.naive_register_bits as f64 / self.plane_register_bits as f64
    }
}

/// Computes both schedules' costs for an `lanes`-element group dot at
/// mantissa length `m` with `weight_bits`-wide weights.
pub fn reduction_costs(m: u32, lanes: u32, weight_bits: u32) -> ReductionCosts {
    let m = u64::from(m);
    let lanes = u64::from(lanes);
    let wb = u64::from(weight_bits);
    // Plane partial sums need weight_bits + log2(lanes) bits; the shared
    // shift-accumulator needs that plus m.
    let partial_bits = wb + 64 - (lanes - 1).leading_zeros() as u64;
    ReductionCosts {
        // Per plane: adder tree (lanes-1) + one shift-add into the shared
        // accumulator.
        plane_adds: m * (lanes - 1) + m,
        plane_register_bits: partial_bits + (partial_bits + m),
        // Naive: every element keeps a private shift-accumulator updated
        // every cycle, plus a final cross-element adder tree.
        naive_adds: m * lanes + (lanes - 1),
        naive_register_bits: lanes * (wb + m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::align_group;
    use anda_fp::{RoundingMode, F16};

    fn group_of(vals: &[f32], m: u32) -> (AlignedGroup, BitPlaneGroup) {
        let f16s: Vec<F16> = vals.iter().map(|&v| F16::from_f32(v)).collect();
        let g = align_group(&f16s, m, RoundingMode::Truncate).unwrap();
        let bp = BitPlaneGroup::from_aligned(&g);
        (g, bp)
    }

    #[test]
    fn bit_serial_equals_reference_simple() {
        let (g, bp) = group_of(&[1.0, -2.0, 0.5, 4.0], 8);
        let weights = [3i8, -1, 7, 2];
        let reference = dot_group_reference(&g, &weights);
        let (serial, trace) = dot_group_bit_serial(&bp, &weights);
        assert_eq!(serial, reference);
        assert_eq!(trace.cycles, 9);
        assert_eq!(trace.plane_partials.len(), 8);
    }

    #[test]
    fn bit_serial_equals_reference_across_mantissa_lengths() {
        let vals: Vec<f32> = (0..64)
            .map(|i| ((i * 29) % 63) as f32 * 0.13 - 4.0)
            .collect();
        let weights: Vec<i8> = (0..64).map(|i| ((i * 11) % 15) as i8 - 7).collect();
        for m in 1..=16u32 {
            let (g, bp) = group_of(&vals, m);
            assert_eq!(
                dot_group_bit_serial(&bp, &weights).0,
                dot_group_reference(&g, &weights),
                "m={m}"
            );
        }
    }

    #[test]
    fn plane_partials_reconstruct_dot() {
        let (_, bp) = group_of(&[2.5, -1.25, 8.0], 6);
        let weights = [5i8, 3, -2];
        let (dot, trace) = dot_group_bit_serial(&bp, &weights);
        let m = trace.plane_partials.len() as u32;
        let manual: i64 = trace
            .plane_partials
            .iter()
            .enumerate()
            .map(|(b, &p)| p << (m - 1 - b as u32))
            .sum();
        assert_eq!(manual, dot);
    }

    #[test]
    fn rescaled_dot_approaches_fp_reference_with_wide_mantissa() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 30.0) * 0.043).collect();
        let f16s: Vec<F16> = vals.iter().map(|&v| F16::from_f32(v)).collect();
        let weights: Vec<i8> = (0..64).map(|i| ((i * 7) % 15) as i8 - 7).collect();
        let scale = 0.02f32;

        let reference = dot_f16_int_reference(&f16s, &weights, scale);
        let (_, bp) = group_of(&vals, 16);
        let anda = dot_group_f32(&bp, &weights, scale);
        assert!(
            (anda - reference).abs() <= reference.abs() * 1e-4 + 1e-4,
            "{anda} vs {reference}"
        );
    }

    #[test]
    fn narrower_mantissa_gives_larger_dot_error() {
        let vals: Vec<f32> = (0..64)
            .map(|i| {
                if i == 0 {
                    30.0
                } else {
                    ((i * 29) % 63) as f32 * 0.01
                }
            })
            .collect();
        let f16s: Vec<F16> = vals.iter().map(|&v| F16::from_f32(v)).collect();
        let weights: Vec<i8> = (0..64).map(|i| ((i * 5) % 15) as i8 - 7).collect();
        let reference = dot_f16_int_reference(&f16s, &weights, 1.0);

        // Individual dot errors are not strictly monotone in M (signed terms
        // can cancel), but the wide-mantissa error must be far below the
        // aggressive-truncation error.
        let err_at = |m: u32| {
            let (_, bp) = group_of(&vals, m);
            (dot_group_f32(&bp, &weights, 1.0) - reference).abs()
        };
        assert!(
            err_at(16) < 0.05 * err_at(2).max(1.0),
            "{} vs {}",
            err_at(16),
            err_at(2)
        );
        assert!(err_at(11) <= err_at(2));
    }

    #[test]
    fn zero_weights_give_zero_dot() {
        let (_, bp) = group_of(&[1.0, 2.0, 3.0], 8);
        let (dot, _) = dot_group_bit_serial(&bp, &[0, 0, 0]);
        assert_eq!(dot, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weight_length_mismatch_panics() {
        let (_, bp) = group_of(&[1.0, 2.0], 8);
        let _ = dot_group_bit_serial(&bp, &[1]);
    }

    #[test]
    fn plane_first_reduction_saves_registers() {
        // Paper §IV-B: one shared accumulator instead of per-element
        // intermediate results.
        let c = reduction_costs(8, 64, 4);
        assert!(c.register_saving() > 20.0, "saving {}", c.register_saving());
        // Add counts are comparable (same asymptotic work).
        let ratio = c.plane_adds as f64 / c.naive_adds as f64;
        assert!(ratio > 0.8 && ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn reduction_costs_scale_with_mantissa() {
        let narrow = reduction_costs(4, 64, 4);
        let wide = reduction_costs(12, 64, 4);
        assert!(wide.plane_adds > 2 * narrow.plane_adds);
        assert!(wide.naive_register_bits > narrow.naive_register_bits);
    }

    #[test]
    fn flat_dot_matches_bit_serial_on_every_leg() {
        let vals: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 61) as f32 * 0.21 - 6.0)
            .collect();
        let weights: Vec<i8> = (0..64).map(|i| ((i * 13) % 255) as i8).collect();
        for leg in anda_fp::simd::available_legs() {
            for m in [1u32, 4, 8, 11, 16] {
                for len in [1usize, 7, 16, 33, 64] {
                    let (_, bp) = group_of(&vals[..len], m);
                    let expected = dot_group_bit_serial(&bp, &weights[..len]).0;
                    let flat =
                        dot_group_int_flat_with_leg(leg, bp.signs(), bp.planes(), &weights[..len]);
                    assert_eq!(flat, expected, "leg={} m={m} len={len}", leg.name());
                }
            }
        }
    }

    #[test]
    fn flat_dot_extreme_weights_all_lanes() {
        // ±127 on all 64 lanes at m=16 stresses the widest partials.
        let vals = vec![65504.0f32; 64];
        let weights: Vec<i8> = (0..64)
            .map(|i| if i % 2 == 0 { 127 } else { -128 })
            .collect();
        let (_, bp) = group_of(&vals, 16);
        let expected = dot_group_bit_serial(&bp, &weights).0;
        for leg in anda_fp::simd::available_legs() {
            assert_eq!(
                dot_group_int_flat_with_leg(leg, bp.signs(), bp.planes(), &weights),
                expected,
                "leg={}",
                leg.name()
            );
        }
    }

    #[test]
    fn int4_weight_extremes() {
        let (g, bp) = group_of(&[65504.0, -65504.0], 16);
        let weights = [-8i8, 7];
        assert_eq!(
            dot_group_bit_serial(&bp, &weights).0,
            dot_group_reference(&g, &weights)
        );
    }
}
