//! The Anda data format (paper §III): variable-length grouped activations.
//!
//! An [`AndaTensor`] stores FP16-derived activations as consecutive groups of
//! up to 64 lanes. Each group shares its maximum exponent and keeps one sign
//! bit plus an `M`-bit mantissa per element, physically organized in the
//! transposed bit-plane layout of [`crate::bitplane`]. `M` is chosen *per
//! tensor* (1..=16) by the adaptive precision search — this is the
//! "variable-length" property distinguishing Anda from uni-length formats
//! like VS-Quant/FIGNA and multi-length formats like FAST/DaCapo (Table I).

use anda_fp::{RoundingMode, F16};

use crate::align::{align_group, AlignedGroup};
use crate::bfp::saturate_to_f16;
use crate::bitplane::{BitPlaneGroup, LANES};
use crate::error::FormatError;

/// Configuration of an Anda conversion.
///
/// # Example
///
/// ```
/// use anda_format::AndaConfig;
///
/// let cfg = AndaConfig::new(64, 7).unwrap();
/// assert_eq!(cfg.group_size(), 64);
/// assert_eq!(cfg.mantissa_bits(), 7);
/// assert!(AndaConfig::new(65, 7).is_err()); // beyond the 64-lane hardware
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AndaConfig {
    group_size: usize,
    mantissa_bits: u32,
    rounding: RoundingMode,
}

impl AndaConfig {
    /// Creates a configuration with truncation rounding (the paper's mode).
    ///
    /// # Errors
    ///
    /// Returns an error when `group_size` is 0 or exceeds the 64-lane
    /// hardware word, or when `mantissa_bits` is outside 1..=16.
    pub fn new(group_size: usize, mantissa_bits: u32) -> Result<Self, FormatError> {
        Self::with_rounding(group_size, mantissa_bits, RoundingMode::Truncate)
    }

    /// Creates a configuration with an explicit rounding mode.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AndaConfig::new`].
    pub fn with_rounding(
        group_size: usize,
        mantissa_bits: u32,
        rounding: RoundingMode,
    ) -> Result<Self, FormatError> {
        if group_size == 0 || group_size > LANES {
            return Err(FormatError::InvalidGroupSize {
                requested: group_size,
                max: LANES,
            });
        }
        if !(1..=16).contains(&mantissa_bits) {
            return Err(FormatError::InvalidMantissaBits {
                requested: mantissa_bits,
                range: (1, 16),
            });
        }
        Ok(AndaConfig {
            group_size,
            mantissa_bits,
            rounding,
        })
    }

    /// The paper's hardware configuration: 64 lanes, mantissa length `m`.
    ///
    /// # Errors
    ///
    /// Returns an error when `m` is outside 1..=16.
    pub fn hardware(m: u32) -> Result<Self, FormatError> {
        Self::new(LANES, m)
    }

    /// Elements per shared-exponent group.
    #[inline]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Mantissa length in bits.
    #[inline]
    pub fn mantissa_bits(&self) -> u32 {
        self.mantissa_bits
    }

    /// Rounding mode applied during alignment.
    #[inline]
    pub fn rounding(&self) -> RoundingMode {
        self.rounding
    }
}

/// One Anda group: bit-plane storage plus cached lane count.
pub type AndaGroup = BitPlaneGroup;

/// A tensor in the Anda format: bit-plane groups over a flat buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct AndaTensor {
    config: AndaConfig,
    groups: Vec<AndaGroup>,
    len: usize,
}

impl AndaTensor {
    /// Assembles a tensor from pre-built groups (the compressor's output
    /// path); the caller guarantees group/config consistency.
    pub(crate) fn from_parts(config: AndaConfig, groups: Vec<AndaGroup>, len: usize) -> Self {
        AndaTensor {
            config,
            groups,
            len,
        }
    }

    /// Converts FP16 activations to the Anda format.
    ///
    /// Non-finite inputs are saturated to ±65504 first (hardware casts
    /// saturate rather than trap), so conversion always succeeds.
    pub fn from_f16(values: &[F16], config: AndaConfig) -> Self {
        let sane: Vec<F16> = values
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    v
                } else {
                    saturate_to_f16(v.to_f32())
                }
            })
            .collect();
        let groups = sane
            .chunks(config.group_size)
            .filter(|c| !c.is_empty())
            .map(|chunk| {
                let aligned = align_group(chunk, config.mantissa_bits, config.rounding)
                    .expect("saturated finite inputs cannot fail alignment");
                BitPlaneGroup::from_aligned(&aligned)
            })
            .collect();
        AndaTensor {
            config,
            groups,
            len: values.len(),
        }
    }

    /// Converts `f32` activations (rounding through FP16 with saturation).
    pub fn from_f32(values: &[f32], config: AndaConfig) -> Self {
        let f16s: Vec<F16> = values.iter().map(|&v| saturate_to_f16(v)).collect();
        Self::from_f16(&f16s, config)
    }

    /// The conversion configuration.
    pub fn config(&self) -> &AndaConfig {
        &self.config
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit-plane groups.
    pub fn groups(&self) -> &[AndaGroup] {
        &self.groups
    }

    /// Dequantizes the whole tensor back to `f32`.
    pub fn to_f32(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.decode_into(&mut out);
        out
    }

    /// Dequantizes into a caller-owned slice without allocating — the
    /// read primitive the KV-cache hot paths are built on. Bit-identical
    /// to [`AndaTensor::to_f32`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn decode_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "decode width mismatch");
        let mut chunks = out.chunks_mut(self.config.group_size());
        for g in &self.groups {
            let chunk = chunks.next().expect("group/len consistency");
            g.decode_into(chunk);
        }
    }

    /// Element-major (aligned) view of every group.
    pub fn to_aligned_groups(&self) -> Vec<AlignedGroup> {
        self.groups.iter().map(BitPlaneGroup::to_aligned).collect()
    }

    /// Total storage footprint in bits.
    pub fn storage_bits(&self) -> usize {
        self.groups.iter().map(BitPlaneGroup::storage_bits).sum()
    }

    /// Mean bits per element (FP16 would be 16.0). Includes zero-padded
    /// lanes of a trailing partial group, as the hardware would.
    pub fn bits_per_element(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.storage_bits() as f64 / self.len as f64
        }
    }

    /// Compression ratio versus FP16 element storage.
    pub fn compression_vs_f16(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            (self.len * 16) as f64 / self.storage_bits() as f64
        }
    }
}

/// Extension helpers on groups.
impl AndaGroup {
    /// The weight of one mantissa LSB for this group.
    pub fn ulp(&self) -> f32 {
        crate::align::exp2f(i32::from(self.shared_exp()) - 14 - self.mantissa_bits() as i32)
    }

    /// Dequantizes this group's occupied lanes into `out` without
    /// allocating (bit-identical to `to_aligned().dequantize_all()`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn decode_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len(), "group decode width mismatch");
        crate::rowcodec::decode_group_into(self.signs(), self.ulp(), self.planes(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_rejects_hardware_violations() {
        assert!(AndaConfig::new(0, 8).is_err());
        assert!(AndaConfig::new(65, 8).is_err());
        assert!(AndaConfig::new(64, 0).is_err());
        assert!(AndaConfig::new(64, 17).is_err());
        assert!(AndaConfig::hardware(16).is_ok());
    }

    #[test]
    fn round_trip_error_bounded() {
        let vals: Vec<f32> = (0..200)
            .map(|i| ((i * 13) % 41) as f32 * 0.21 - 4.0)
            .collect();
        let cfg = AndaConfig::new(64, 8).unwrap();
        let t = AndaTensor::from_f32(&vals, cfg);
        assert_eq!(t.len(), 200);
        assert_eq!(t.groups().len(), 4);
        let deq = t.to_f32();
        for (gi, g) in t.groups().iter().enumerate() {
            for i in 0..g.len() {
                let idx = gi * 64 + i;
                let orig = F16::from_f32(vals[idx]).to_f32();
                assert!((deq[idx] - orig).abs() <= g.ulp(), "idx={idx}");
            }
        }
    }

    #[test]
    fn matches_bfp_semantics_at_same_parameters() {
        use crate::bfp::{fake_quantize_f32, BfpConfig};
        let vals: Vec<f32> = (0..128).map(|i| (i as f32 - 64.0) * 0.05).collect();
        let anda = AndaTensor::from_f32(&vals, AndaConfig::new(64, 6).unwrap()).to_f32();
        let bfp = fake_quantize_f32(&vals, BfpConfig::new(64, 6).unwrap());
        assert_eq!(anda, bfp, "Anda is BFP + layout; values must agree");
    }

    #[test]
    fn non_finite_inputs_saturate() {
        let t = AndaTensor::from_f32(
            &[f32::INFINITY, -1e30, 1.0],
            AndaConfig::new(64, 11).unwrap(),
        );
        let deq = t.to_f32();
        assert!((deq[0] - 65504.0).abs() < 65504.0 * 0.01);
        assert!((deq[1] + 65504.0).abs() < 65504.0 * 0.01);
    }

    #[test]
    fn storage_shrinks_with_mantissa_bits() {
        let vals = vec![1.0f32; 640];
        let wide = AndaTensor::from_f32(&vals, AndaConfig::new(64, 12).unwrap());
        let narrow = AndaTensor::from_f32(&vals, AndaConfig::new(64, 5).unwrap());
        assert!(narrow.storage_bits() < wide.storage_bits());
        // M=5: ≈ 6.08 bits/element → ~2.6x compression vs FP16.
        assert!((narrow.bits_per_element() - (5.0 + 1.0 + 5.0 / 64.0)).abs() < 1e-9);
        assert!(narrow.compression_vs_f16() > 2.5);
    }

    #[test]
    fn empty_tensor_is_well_formed() {
        let t = AndaTensor::from_f32(&[], AndaConfig::new(64, 8).unwrap());
        assert!(t.is_empty());
        assert_eq!(t.groups().len(), 0);
        assert_eq!(t.compression_vs_f16(), 1.0);
    }
}
