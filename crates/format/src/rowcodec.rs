//! Allocation-free Anda row codec for fixed-width rows.
//!
//! The KV cache stores one `dim`-wide row per cached position. Encoding a
//! row through [`crate::AndaTensor`] allocates a fresh group vector (plus
//! one plane vector per group) per call — unacceptable on the per-token
//! decode path. This module provides the same conversion over *flat,
//! caller-owned* buffers: a row of `g = ceil(dim / group_size)` groups
//! occupies `g` sign words, `g` shared-exponent entries and `g · M`
//! mantissa-plane words, laid out group-major exactly like
//! [`crate::bitplane`]'s transposed layout (plane 0 = MSB).
//!
//! Both directions are bit-exact with the owning-tensor path:
//! `encode_row_into` followed by `decode_row_into` reproduces
//! `AndaTensor::from_f32(row, cfg).to_f32()` bit for bit (the property
//! suite pins this), so callers can mix the two freely.

use anda_fp::F16;

use crate::align::{align_element, exp2f};
use crate::anda::AndaConfig;
use crate::bfp::saturate_to_f16;
use crate::bitplane::LANES;

/// Number of shared-exponent groups in a `len`-element row under `cfg`.
#[inline]
pub fn groups_per_row(len: usize, cfg: AndaConfig) -> usize {
    len.div_ceil(cfg.group_size())
}

/// Mantissa-plane words a `len`-element row occupies under `cfg`
/// (`groups · M`; the sign words and exponent entries are one per group).
#[inline]
pub fn plane_words_per_row(len: usize, cfg: AndaConfig) -> usize {
    groups_per_row(len, cfg) * cfg.mantissa_bits() as usize
}

/// Exact storage footprint in bits of a `len`-element encoded row:
/// per group one sign plane, a 5-bit exponent and `M` mantissa planes
/// (zero-padded trailing lanes included, as the hardware would).
#[inline]
pub fn row_storage_bits(len: usize, cfg: AndaConfig) -> usize {
    groups_per_row(len, cfg) * (LANES + 5 + LANES * cfg.mantissa_bits() as usize)
}

/// Encodes one row into flat caller-owned buffers without allocating.
///
/// Inputs round through FP16 with saturation (non-finite values become
/// ±65504), exactly like [`crate::AndaTensor::from_f32`]. Buffers are
/// fully overwritten for the row's `groups_per_row` prefix.
///
/// # Panics
///
/// Panics if `values` is empty or any destination slice is shorter than
/// the row requires ([`groups_per_row`] / [`plane_words_per_row`]).
pub fn encode_row_into(
    values: &[f32],
    cfg: AndaConfig,
    signs: &mut [u64],
    exps: &mut [u16],
    planes: &mut [u64],
) {
    assert!(!values.is_empty(), "cannot encode an empty row");
    let g = groups_per_row(values.len(), cfg);
    let m = cfg.mantissa_bits();
    assert!(signs.len() >= g, "sign buffer too small");
    assert!(exps.len() >= g, "exponent buffer too small");
    assert!(planes.len() >= g * m as usize, "plane buffer too small");

    let mut f16s = [F16::from_bits(0); LANES];
    for (gi, chunk) in values.chunks(cfg.group_size()).enumerate() {
        let staged = &mut f16s[..chunk.len()];
        for (s, &v) in staged.iter_mut().zip(chunk) {
            *s = saturate_to_f16(v);
        }
        // Shared exponent = max effective biased exponent of the group
        // (saturated values are finite, so `significand` cannot panic).
        let shared_exp = staged
            .iter()
            .map(|v| v.significand().biased_exp)
            .max()
            .unwrap_or(1);
        let group_planes = &mut planes[gi * m as usize..(gi + 1) * m as usize];
        group_planes.fill(0);
        let mut sign_word = 0u64;
        for (i, v) in staged.iter().enumerate() {
            let e = align_element(v.significand(), shared_exp, m, cfg.rounding());
            if e.negative {
                sign_word |= 1 << i;
            }
            for b in 0..m {
                // plane 0 = MSB (bit m-1) … plane m-1 = LSB (bit 0)
                let bit = (e.magnitude >> (m - 1 - b)) & 1;
                group_planes[b as usize] |= u64::from(bit) << i;
            }
        }
        signs[gi] = sign_word;
        exps[gi] = shared_exp;
    }
}

/// Decodes a row previously written by [`encode_row_into`] into `out`
/// without allocating. `out.len()` determines the row width.
///
/// # Panics
///
/// Panics if `out` is empty or a source slice is shorter than the row
/// requires.
pub fn decode_row_into(
    cfg: AndaConfig,
    signs: &[u64],
    exps: &[u16],
    planes: &[u64],
    out: &mut [f32],
) {
    assert!(!out.is_empty(), "cannot decode into an empty row");
    let g = groups_per_row(out.len(), cfg);
    let m = cfg.mantissa_bits();
    assert!(signs.len() >= g, "sign buffer too small");
    assert!(exps.len() >= g, "exponent buffer too small");
    assert!(planes.len() >= g * m as usize, "plane buffer too small");

    for (gi, chunk) in out.chunks_mut(cfg.group_size()).enumerate() {
        let ulp = exp2f(i32::from(exps[gi]) - 14 - m as i32);
        decode_group_into(
            signs[gi],
            ulp,
            &planes[gi * m as usize..(gi + 1) * m as usize],
            chunk,
        );
    }
}

/// Dequantizes one bit-plane group (sign word, mantissa-LSB weight,
/// MSB-first planes) into `out` — the single definition of the plane
/// transpose + sign/magnitude dequant rule, shared by the flat row
/// codec and [`crate::AndaTensor`]'s in-place decode.
///
/// # Panics
///
/// Panics if `out` holds more than [`LANES`] elements.
pub fn decode_group_into(sign_word: u64, ulp: f32, planes: &[u64], out: &mut [f32]) {
    assert!(out.len() <= LANES, "a group holds at most {LANES} lanes");
    let m = planes.len();
    for (i, o) in out.iter_mut().enumerate() {
        let mut mag = 0u16;
        for (b, plane) in planes.iter().enumerate() {
            mag |= (((plane >> i) & 1) as u16) << (m - 1 - b);
        }
        // Same sign/magnitude dequant rule as `SignMag::dequantize`.
        let v = f32::from(mag) * ulp;
        *o = if (sign_word >> i) & 1 == 1 { -v } else { v };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AndaTensor;

    fn row(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 16) as i32 % 4001) as f32 * 0.01 - 2.0
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn flat_codec_matches_owning_tensor_bit_for_bit() {
        for (len, m) in [(64usize, 4u32), (128, 8), (100, 6), (1, 11), (320, 1)] {
            let cfg = AndaConfig::hardware(m).unwrap();
            let data = row(len, (len * 31 + m as usize) as u64);
            let g = groups_per_row(len, cfg);
            let mut signs = vec![0u64; g];
            let mut exps = vec![0u16; g];
            let mut planes = vec![0u64; plane_words_per_row(len, cfg)];
            encode_row_into(&data, cfg, &mut signs, &mut exps, &mut planes);

            let tensor = AndaTensor::from_f32(&data, cfg);
            for (gi, group) in tensor.groups().iter().enumerate() {
                assert_eq!(signs[gi], group.signs(), "len={len} m={m} group {gi}");
                assert_eq!(exps[gi], group.shared_exp());
                assert_eq!(
                    &planes[gi * m as usize..(gi + 1) * m as usize],
                    group.planes()
                );
            }

            let mut out = vec![0.0f32; len];
            decode_row_into(cfg, &signs, &exps, &planes, &mut out);
            assert_eq!(bits(&out), bits(&tensor.to_f32()), "len={len} m={m}");

            let mut out2 = vec![0.0f32; len];
            tensor.decode_into(&mut out2);
            assert_eq!(bits(&out2), bits(&out));
        }
    }

    #[test]
    fn non_finite_inputs_saturate_like_the_tensor_path() {
        let cfg = AndaConfig::hardware(9).unwrap();
        let data = [f32::INFINITY, -1e30, f32::NEG_INFINITY, 1.0];
        let mut signs = [0u64; 1];
        let mut exps = [0u16; 1];
        let mut planes = [0u64; 9];
        encode_row_into(&data, cfg, &mut signs, &mut exps, &mut planes);
        let mut out = [0.0f32; 4];
        decode_row_into(cfg, &signs, &exps, &planes, &mut out);
        assert_eq!(bits(&out), bits(&AndaTensor::from_f32(&data, cfg).to_f32()));
    }

    #[test]
    fn storage_accounting_matches_bitplane_groups() {
        let cfg = AndaConfig::hardware(5).unwrap();
        let data = row(192, 7);
        assert_eq!(
            row_storage_bits(192, cfg),
            AndaTensor::from_f32(&data, cfg).storage_bits()
        );
        // Partial trailing group still occupies full planes.
        let cfg8 = AndaConfig::hardware(8).unwrap();
        assert_eq!(row_storage_bits(65, cfg8), 2 * (64 + 5 + 8 * 64));
    }

    #[test]
    #[should_panic(expected = "plane buffer too small")]
    fn short_plane_buffer_panics() {
        let cfg = AndaConfig::hardware(8).unwrap();
        let mut signs = [0u64; 1];
        let mut exps = [0u16; 1];
        let mut planes = [0u64; 7];
        encode_row_into(&[1.0; 64], cfg, &mut signs, &mut exps, &mut planes);
    }
}
